# Empty dependencies file for omig_workload.
# This may be replaced when dependencies are built.
