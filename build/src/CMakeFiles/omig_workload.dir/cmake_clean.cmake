file(REMOVE_RECURSE
  "CMakeFiles/omig_workload.dir/workload/fragmented.cpp.o"
  "CMakeFiles/omig_workload.dir/workload/fragmented.cpp.o.d"
  "CMakeFiles/omig_workload.dir/workload/one_layer.cpp.o"
  "CMakeFiles/omig_workload.dir/workload/one_layer.cpp.o.d"
  "CMakeFiles/omig_workload.dir/workload/params.cpp.o"
  "CMakeFiles/omig_workload.dir/workload/params.cpp.o.d"
  "CMakeFiles/omig_workload.dir/workload/two_layer.cpp.o"
  "CMakeFiles/omig_workload.dir/workload/two_layer.cpp.o.d"
  "libomig_workload.a"
  "libomig_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
