file(REMOVE_RECURSE
  "libomig_workload.a"
)
