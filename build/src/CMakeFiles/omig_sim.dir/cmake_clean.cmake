file(REMOVE_RECURSE
  "CMakeFiles/omig_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/omig_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/omig_sim.dir/sim/gate.cpp.o"
  "CMakeFiles/omig_sim.dir/sim/gate.cpp.o.d"
  "CMakeFiles/omig_sim.dir/sim/random.cpp.o"
  "CMakeFiles/omig_sim.dir/sim/random.cpp.o.d"
  "libomig_sim.a"
  "libomig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
