# Empty compiler generated dependencies file for omig_sim.
# This may be replaced when dependencies are built.
