file(REMOVE_RECURSE
  "libomig_sim.a"
)
