file(REMOVE_RECURSE
  "libomig_core.a"
)
