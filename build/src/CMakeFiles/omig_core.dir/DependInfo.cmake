
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/omig_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/omig_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/omig_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/plot.cpp" "src/CMakeFiles/omig_core.dir/core/plot.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/plot.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/CMakeFiles/omig_core.dir/core/presets.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/presets.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/CMakeFiles/omig_core.dir/core/sweep.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/sweep.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/CMakeFiles/omig_core.dir/core/table.cpp.o" "gcc" "src/CMakeFiles/omig_core.dir/core/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omig_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_objsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
