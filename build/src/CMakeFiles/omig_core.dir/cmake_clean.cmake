file(REMOVE_RECURSE
  "CMakeFiles/omig_core.dir/core/config.cpp.o"
  "CMakeFiles/omig_core.dir/core/config.cpp.o.d"
  "CMakeFiles/omig_core.dir/core/experiment.cpp.o"
  "CMakeFiles/omig_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/omig_core.dir/core/metrics.cpp.o"
  "CMakeFiles/omig_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/omig_core.dir/core/plot.cpp.o"
  "CMakeFiles/omig_core.dir/core/plot.cpp.o.d"
  "CMakeFiles/omig_core.dir/core/presets.cpp.o"
  "CMakeFiles/omig_core.dir/core/presets.cpp.o.d"
  "CMakeFiles/omig_core.dir/core/sweep.cpp.o"
  "CMakeFiles/omig_core.dir/core/sweep.cpp.o.d"
  "CMakeFiles/omig_core.dir/core/table.cpp.o"
  "CMakeFiles/omig_core.dir/core/table.cpp.o.d"
  "libomig_core.a"
  "libomig_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
