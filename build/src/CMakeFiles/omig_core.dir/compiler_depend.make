# Empty compiler generated dependencies file for omig_core.
# This may be replaced when dependencies are built.
