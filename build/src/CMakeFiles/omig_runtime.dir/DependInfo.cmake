
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/live_node.cpp" "src/CMakeFiles/omig_runtime.dir/runtime/live_node.cpp.o" "gcc" "src/CMakeFiles/omig_runtime.dir/runtime/live_node.cpp.o.d"
  "/root/repo/src/runtime/live_object.cpp" "src/CMakeFiles/omig_runtime.dir/runtime/live_object.cpp.o" "gcc" "src/CMakeFiles/omig_runtime.dir/runtime/live_object.cpp.o.d"
  "/root/repo/src/runtime/live_system.cpp" "src/CMakeFiles/omig_runtime.dir/runtime/live_system.cpp.o" "gcc" "src/CMakeFiles/omig_runtime.dir/runtime/live_system.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "src/CMakeFiles/omig_runtime.dir/runtime/mailbox.cpp.o" "gcc" "src/CMakeFiles/omig_runtime.dir/runtime/mailbox.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/CMakeFiles/omig_runtime.dir/runtime/message.cpp.o" "gcc" "src/CMakeFiles/omig_runtime.dir/runtime/message.cpp.o.d"
  "/root/repo/src/runtime/serde.cpp" "src/CMakeFiles/omig_runtime.dir/runtime/serde.cpp.o" "gcc" "src/CMakeFiles/omig_runtime.dir/runtime/serde.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
