# Empty compiler generated dependencies file for omig_runtime.
# This may be replaced when dependencies are built.
