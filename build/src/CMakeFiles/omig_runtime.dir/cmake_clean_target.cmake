file(REMOVE_RECURSE
  "libomig_runtime.a"
)
