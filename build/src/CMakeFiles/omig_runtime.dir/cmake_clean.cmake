file(REMOVE_RECURSE
  "CMakeFiles/omig_runtime.dir/runtime/live_node.cpp.o"
  "CMakeFiles/omig_runtime.dir/runtime/live_node.cpp.o.d"
  "CMakeFiles/omig_runtime.dir/runtime/live_object.cpp.o"
  "CMakeFiles/omig_runtime.dir/runtime/live_object.cpp.o.d"
  "CMakeFiles/omig_runtime.dir/runtime/live_system.cpp.o"
  "CMakeFiles/omig_runtime.dir/runtime/live_system.cpp.o.d"
  "CMakeFiles/omig_runtime.dir/runtime/mailbox.cpp.o"
  "CMakeFiles/omig_runtime.dir/runtime/mailbox.cpp.o.d"
  "CMakeFiles/omig_runtime.dir/runtime/message.cpp.o"
  "CMakeFiles/omig_runtime.dir/runtime/message.cpp.o.d"
  "CMakeFiles/omig_runtime.dir/runtime/serde.cpp.o"
  "CMakeFiles/omig_runtime.dir/runtime/serde.cpp.o.d"
  "libomig_runtime.a"
  "libomig_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
