# Empty compiler generated dependencies file for omig_migration.
# This may be replaced when dependencies are built.
