file(REMOVE_RECURSE
  "libomig_migration.a"
)
