
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migration/alliance.cpp" "src/CMakeFiles/omig_migration.dir/migration/alliance.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/alliance.cpp.o.d"
  "/root/repo/src/migration/attachment.cpp" "src/CMakeFiles/omig_migration.dir/migration/attachment.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/attachment.cpp.o.d"
  "/root/repo/src/migration/manager.cpp" "src/CMakeFiles/omig_migration.dir/migration/manager.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/manager.cpp.o.d"
  "/root/repo/src/migration/policy.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy.cpp.o.d"
  "/root/repo/src/migration/policy_compare_nodes.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy_compare_nodes.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy_compare_nodes.cpp.o.d"
  "/root/repo/src/migration/policy_compare_reinstantiate.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy_compare_reinstantiate.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy_compare_reinstantiate.cpp.o.d"
  "/root/repo/src/migration/policy_conventional.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy_conventional.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy_conventional.cpp.o.d"
  "/root/repo/src/migration/policy_load_share.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy_load_share.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy_load_share.cpp.o.d"
  "/root/repo/src/migration/policy_placement.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy_placement.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy_placement.cpp.o.d"
  "/root/repo/src/migration/policy_sedentary.cpp" "src/CMakeFiles/omig_migration.dir/migration/policy_sedentary.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/policy_sedentary.cpp.o.d"
  "/root/repo/src/migration/primitives.cpp" "src/CMakeFiles/omig_migration.dir/migration/primitives.cpp.o" "gcc" "src/CMakeFiles/omig_migration.dir/migration/primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omig_objsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
