file(REMOVE_RECURSE
  "CMakeFiles/omig_migration.dir/migration/alliance.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/alliance.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/attachment.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/attachment.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/manager.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/manager.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy_compare_nodes.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy_compare_nodes.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy_compare_reinstantiate.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy_compare_reinstantiate.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy_conventional.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy_conventional.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy_load_share.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy_load_share.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy_placement.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy_placement.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/policy_sedentary.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/policy_sedentary.cpp.o.d"
  "CMakeFiles/omig_migration.dir/migration/primitives.cpp.o"
  "CMakeFiles/omig_migration.dir/migration/primitives.cpp.o.d"
  "libomig_migration.a"
  "libomig_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
