file(REMOVE_RECURSE
  "CMakeFiles/omig_trace.dir/trace/log.cpp.o"
  "CMakeFiles/omig_trace.dir/trace/log.cpp.o.d"
  "libomig_trace.a"
  "libomig_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
