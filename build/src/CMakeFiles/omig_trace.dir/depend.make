# Empty dependencies file for omig_trace.
# This may be replaced when dependencies are built.
