file(REMOVE_RECURSE
  "libomig_trace.a"
)
