# Empty dependencies file for omig_stats.
# This may be replaced when dependencies are built.
