file(REMOVE_RECURSE
  "libomig_stats.a"
)
