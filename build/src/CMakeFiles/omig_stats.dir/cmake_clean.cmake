file(REMOVE_RECURSE
  "CMakeFiles/omig_stats.dir/stats/batch_means.cpp.o"
  "CMakeFiles/omig_stats.dir/stats/batch_means.cpp.o.d"
  "CMakeFiles/omig_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/omig_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/omig_stats.dir/stats/quantiles.cpp.o"
  "CMakeFiles/omig_stats.dir/stats/quantiles.cpp.o.d"
  "CMakeFiles/omig_stats.dir/stats/welford.cpp.o"
  "CMakeFiles/omig_stats.dir/stats/welford.cpp.o.d"
  "libomig_stats.a"
  "libomig_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
