file(REMOVE_RECURSE
  "CMakeFiles/omig_util.dir/util/assert.cpp.o"
  "CMakeFiles/omig_util.dir/util/assert.cpp.o.d"
  "libomig_util.a"
  "libomig_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
