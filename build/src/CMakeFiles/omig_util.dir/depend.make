# Empty dependencies file for omig_util.
# This may be replaced when dependencies are built.
