file(REMOVE_RECURSE
  "libomig_util.a"
)
