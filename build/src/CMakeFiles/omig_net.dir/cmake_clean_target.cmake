file(REMOVE_RECURSE
  "libomig_net.a"
)
