# Empty compiler generated dependencies file for omig_net.
# This may be replaced when dependencies are built.
