file(REMOVE_RECURSE
  "CMakeFiles/omig_net.dir/net/latency.cpp.o"
  "CMakeFiles/omig_net.dir/net/latency.cpp.o.d"
  "CMakeFiles/omig_net.dir/net/topology.cpp.o"
  "CMakeFiles/omig_net.dir/net/topology.cpp.o.d"
  "libomig_net.a"
  "libomig_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
