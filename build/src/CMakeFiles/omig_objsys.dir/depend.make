# Empty dependencies file for omig_objsys.
# This may be replaced when dependencies are built.
