
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objsys/invocation.cpp" "src/CMakeFiles/omig_objsys.dir/objsys/invocation.cpp.o" "gcc" "src/CMakeFiles/omig_objsys.dir/objsys/invocation.cpp.o.d"
  "/root/repo/src/objsys/location_service.cpp" "src/CMakeFiles/omig_objsys.dir/objsys/location_service.cpp.o" "gcc" "src/CMakeFiles/omig_objsys.dir/objsys/location_service.cpp.o.d"
  "/root/repo/src/objsys/object.cpp" "src/CMakeFiles/omig_objsys.dir/objsys/object.cpp.o" "gcc" "src/CMakeFiles/omig_objsys.dir/objsys/object.cpp.o.d"
  "/root/repo/src/objsys/registry.cpp" "src/CMakeFiles/omig_objsys.dir/objsys/registry.cpp.o" "gcc" "src/CMakeFiles/omig_objsys.dir/objsys/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
