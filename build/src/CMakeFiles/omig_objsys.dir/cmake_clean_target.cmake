file(REMOVE_RECURSE
  "libomig_objsys.a"
)
