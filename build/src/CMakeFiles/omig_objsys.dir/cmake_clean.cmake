file(REMOVE_RECURSE
  "CMakeFiles/omig_objsys.dir/objsys/invocation.cpp.o"
  "CMakeFiles/omig_objsys.dir/objsys/invocation.cpp.o.d"
  "CMakeFiles/omig_objsys.dir/objsys/location_service.cpp.o"
  "CMakeFiles/omig_objsys.dir/objsys/location_service.cpp.o.d"
  "CMakeFiles/omig_objsys.dir/objsys/object.cpp.o"
  "CMakeFiles/omig_objsys.dir/objsys/object.cpp.o.d"
  "CMakeFiles/omig_objsys.dir/objsys/registry.cpp.o"
  "CMakeFiles/omig_objsys.dir/objsys/registry.cpp.o.d"
  "libomig_objsys.a"
  "libomig_objsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_objsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
