# Empty dependencies file for live_runtime_demo.
# This may be replaced when dependencies are built.
