file(REMOVE_RECURSE
  "CMakeFiles/live_runtime_demo.dir/live_runtime_demo.cpp.o"
  "CMakeFiles/live_runtime_demo.dir/live_runtime_demo.cpp.o.d"
  "live_runtime_demo"
  "live_runtime_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_runtime_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
