# Empty compiler generated dependencies file for static_catalogue.
# This may be replaced when dependencies are built.
