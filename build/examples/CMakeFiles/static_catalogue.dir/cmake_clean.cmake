file(REMOVE_RECURSE
  "CMakeFiles/static_catalogue.dir/static_catalogue.cpp.o"
  "CMakeFiles/static_catalogue.dir/static_catalogue.cpp.o.d"
  "static_catalogue"
  "static_catalogue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_catalogue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
