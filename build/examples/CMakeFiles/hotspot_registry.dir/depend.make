# Empty dependencies file for hotspot_registry.
# This may be replaced when dependencies are built.
