file(REMOVE_RECURSE
  "CMakeFiles/hotspot_registry.dir/hotspot_registry.cpp.o"
  "CMakeFiles/hotspot_registry.dir/hotspot_registry.cpp.o.d"
  "hotspot_registry"
  "hotspot_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
