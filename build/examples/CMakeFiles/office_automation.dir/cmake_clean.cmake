file(REMOVE_RECURSE
  "CMakeFiles/office_automation.dir/office_automation.cpp.o"
  "CMakeFiles/office_automation.dir/office_automation.cpp.o.d"
  "office_automation"
  "office_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
