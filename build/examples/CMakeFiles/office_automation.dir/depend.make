# Empty dependencies file for office_automation.
# This may be replaced when dependencies are built.
