# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  ENVIRONMENT "OMIG_CI_TARGET=0.08;OMIG_MAX_BLOCKS=1500" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_office_automation "/root/repo/build/examples/office_automation")
set_tests_properties(example_office_automation PROPERTIES  ENVIRONMENT "OMIG_CI_TARGET=0.08;OMIG_MAX_BLOCKS=1500" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hotspot_registry "/root/repo/build/examples/hotspot_registry")
set_tests_properties(example_hotspot_registry PROPERTIES  ENVIRONMENT "OMIG_CI_TARGET=0.08;OMIG_MAX_BLOCKS=1500" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_runtime_demo "/root/repo/build/examples/live_runtime_demo")
set_tests_properties(example_live_runtime_demo PROPERTIES  ENVIRONMENT "OMIG_CI_TARGET=0.08;OMIG_MAX_BLOCKS=1500" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_static_catalogue "/root/repo/build/examples/static_catalogue")
set_tests_properties(example_static_catalogue PROPERTIES  ENVIRONMENT "OMIG_CI_TARGET=0.08;OMIG_MAX_BLOCKS=1500" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
