# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/omig_sim" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_single "/root/repo/build/tools/omig_sim" "policy=placement" "clients=4" "tm=15" "max-blocks=1500" "ci=0.08" "--trace" "5")
set_tests_properties(cli_single PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sweep "/root/repo/build/tools/omig_sim" "--sweep" "clients=2:6:2" "policy=conventional" "max-blocks=800" "ci=0.1" "--csv")
set_tests_properties(cli_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_key "/root/repo/build/tools/omig_sim" "bogus=1")
set_tests_properties(cli_rejects_bad_key PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_immutable "/root/repo/build/tools/omig_sim" "policy=placement" "immutable=1" "clients=4" "max-blocks=800" "ci=0.1")
set_tests_properties(cli_immutable PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fragments "/root/repo/build/tools/omig_sim" "fragments=6" "view=2" "policy=placement" "attach=a-transitive" "max-blocks=600" "ci=0.1" "nodes=8" "clients=4" "n=6")
set_tests_properties(cli_fragments PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_goal_conflict "/root/repo/build/tools/omig_sim" "policy=placement" "egoistic-clients=2" "egoistic-policy=load-share" "clients=4" "nodes=4" "max-blocks=600" "ci=0.1")
set_tests_properties(cli_goal_conflict PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_file "/root/repo/build/tools/omig_sim" "policy=placement" "clients=4" "max-blocks=400" "ci=0.1" "--trace-file" "/root/repo/build/tools/trace.jsonl")
set_tests_properties(cli_trace_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
