file(REMOVE_RECURSE
  "CMakeFiles/omig_sim_tool.dir/omig_sim.cpp.o"
  "CMakeFiles/omig_sim_tool.dir/omig_sim.cpp.o.d"
  "omig_sim"
  "omig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omig_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
