# Empty dependencies file for omig_sim_tool.
# This may be replaced when dependencies are built.
