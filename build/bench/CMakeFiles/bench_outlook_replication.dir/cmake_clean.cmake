file(REMOVE_RECURSE
  "CMakeFiles/bench_outlook_replication.dir/bench_outlook_replication.cpp.o"
  "CMakeFiles/bench_outlook_replication.dir/bench_outlook_replication.cpp.o.d"
  "bench_outlook_replication"
  "bench_outlook_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlook_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
