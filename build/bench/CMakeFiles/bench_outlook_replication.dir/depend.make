# Empty dependencies file for bench_outlook_replication.
# This may be replaced when dependencies are built.
