file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_goal_conflict.dir/bench_ablation_goal_conflict.cpp.o"
  "CMakeFiles/bench_ablation_goal_conflict.dir/bench_ablation_goal_conflict.cpp.o.d"
  "bench_ablation_goal_conflict"
  "bench_ablation_goal_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_goal_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
