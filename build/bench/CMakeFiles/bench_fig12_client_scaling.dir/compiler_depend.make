# Empty compiler generated dependencies file for bench_fig12_client_scaling.
# This may be replaced when dependencies are built.
