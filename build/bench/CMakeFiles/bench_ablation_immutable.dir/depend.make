# Empty dependencies file for bench_ablation_immutable.
# This may be replaced when dependencies are built.
