file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_immutable.dir/bench_ablation_immutable.cpp.o"
  "CMakeFiles/bench_ablation_immutable.dir/bench_ablation_immutable.cpp.o.d"
  "bench_ablation_immutable"
  "bench_ablation_immutable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_immutable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
