# Empty dependencies file for bench_fig10_call_duration.
# This may be replaced when dependencies are built.
