# Empty dependencies file for bench_ablation_nm_ratio.
# This may be replaced when dependencies are built.
