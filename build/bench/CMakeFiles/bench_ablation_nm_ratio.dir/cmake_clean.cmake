file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_nm_ratio.dir/bench_ablation_nm_ratio.cpp.o"
  "CMakeFiles/bench_ablation_nm_ratio.dir/bench_ablation_nm_ratio.cpp.o.d"
  "bench_ablation_nm_ratio"
  "bench_ablation_nm_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_nm_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
