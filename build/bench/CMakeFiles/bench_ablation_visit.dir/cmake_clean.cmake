file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_visit.dir/bench_ablation_visit.cpp.o"
  "CMakeFiles/bench_ablation_visit.dir/bench_ablation_visit.cpp.o.d"
  "bench_ablation_visit"
  "bench_ablation_visit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_visit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
