# Empty compiler generated dependencies file for bench_ablation_visit.
# This may be replaced when dependencies are built.
