file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_attachments.dir/bench_fig16_attachments.cpp.o"
  "CMakeFiles/bench_fig16_attachments.dir/bench_fig16_attachments.cpp.o.d"
  "bench_fig16_attachments"
  "bench_fig16_attachments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_attachments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
