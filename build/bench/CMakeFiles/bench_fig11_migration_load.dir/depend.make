# Empty dependencies file for bench_fig11_migration_load.
# This may be replaced when dependencies are built.
