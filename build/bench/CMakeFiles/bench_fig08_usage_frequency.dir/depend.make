# Empty dependencies file for bench_fig08_usage_frequency.
# This may be replaced when dependencies are built.
