# Empty dependencies file for bench_fig14_dynamic_policies.
# This may be replaced when dependencies are built.
