# Empty compiler generated dependencies file for bench_ablation_location_schemes.
# This may be replaced when dependencies are built.
