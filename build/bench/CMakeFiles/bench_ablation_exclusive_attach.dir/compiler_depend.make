# Empty compiler generated dependencies file for bench_ablation_exclusive_attach.
# This may be replaced when dependencies are built.
