file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_exclusive_attach.dir/bench_ablation_exclusive_attach.cpp.o"
  "CMakeFiles/bench_ablation_exclusive_attach.dir/bench_ablation_exclusive_attach.cpp.o.d"
  "bench_ablation_exclusive_attach"
  "bench_ablation_exclusive_attach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exclusive_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
