file(REMOVE_RECURSE
  "CMakeFiles/bench_outlook_fragmentation.dir/bench_outlook_fragmentation.cpp.o"
  "CMakeFiles/bench_outlook_fragmentation.dir/bench_outlook_fragmentation.cpp.o.d"
  "bench_outlook_fragmentation"
  "bench_outlook_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outlook_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
