# Empty compiler generated dependencies file for bench_live_runtime.
# This may be replaced when dependencies are built.
