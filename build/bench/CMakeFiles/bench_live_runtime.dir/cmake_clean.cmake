file(REMOVE_RECURSE
  "CMakeFiles/bench_live_runtime.dir/bench_live_runtime.cpp.o"
  "CMakeFiles/bench_live_runtime.dir/bench_live_runtime.cpp.o.d"
  "bench_live_runtime"
  "bench_live_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
