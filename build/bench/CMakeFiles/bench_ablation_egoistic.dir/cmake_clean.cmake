file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_egoistic.dir/bench_ablation_egoistic.cpp.o"
  "CMakeFiles/bench_ablation_egoistic.dir/bench_ablation_egoistic.cpp.o.d"
  "bench_ablation_egoistic"
  "bench_ablation_egoistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_egoistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
