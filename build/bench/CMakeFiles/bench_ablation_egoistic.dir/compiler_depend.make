# Empty compiler generated dependencies file for bench_ablation_egoistic.
# This may be replaced when dependencies are built.
