
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_egoistic.cpp" "bench/CMakeFiles/bench_ablation_egoistic.dir/bench_ablation_egoistic.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_egoistic.dir/bench_ablation_egoistic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_objsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
