file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_throughput.dir/bench_kernel_throughput.cpp.o"
  "CMakeFiles/bench_kernel_throughput.dir/bench_kernel_throughput.cpp.o.d"
  "bench_kernel_throughput"
  "bench_kernel_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
