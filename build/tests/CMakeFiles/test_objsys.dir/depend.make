# Empty dependencies file for test_objsys.
# This may be replaced when dependencies are built.
