file(REMOVE_RECURSE
  "CMakeFiles/test_objsys.dir/objsys/invocation_test.cpp.o"
  "CMakeFiles/test_objsys.dir/objsys/invocation_test.cpp.o.d"
  "CMakeFiles/test_objsys.dir/objsys/location_service_test.cpp.o"
  "CMakeFiles/test_objsys.dir/objsys/location_service_test.cpp.o.d"
  "CMakeFiles/test_objsys.dir/objsys/registry_test.cpp.o"
  "CMakeFiles/test_objsys.dir/objsys/registry_test.cpp.o.d"
  "CMakeFiles/test_objsys.dir/objsys/replication_test.cpp.o"
  "CMakeFiles/test_objsys.dir/objsys/replication_test.cpp.o.d"
  "test_objsys"
  "test_objsys.pdb"
  "test_objsys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_objsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
