
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/config_test.cpp" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/test_core.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/plot_test.cpp" "tests/CMakeFiles/test_core.dir/core/plot_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/plot_test.cpp.o.d"
  "/root/repo/tests/core/presets_test.cpp" "tests/CMakeFiles/test_core.dir/core/presets_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/presets_test.cpp.o.d"
  "/root/repo/tests/core/sweep_test.cpp" "tests/CMakeFiles/test_core.dir/core/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/sweep_test.cpp.o.d"
  "/root/repo/tests/core/table_test.cpp" "tests/CMakeFiles/test_core.dir/core/table_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omig_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_objsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
