file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/experiment_test.cpp.o"
  "CMakeFiles/test_core.dir/core/experiment_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/plot_test.cpp.o"
  "CMakeFiles/test_core.dir/core/plot_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/presets_test.cpp.o"
  "CMakeFiles/test_core.dir/core/presets_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/sweep_test.cpp.o"
  "CMakeFiles/test_core.dir/core/sweep_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/table_test.cpp.o"
  "CMakeFiles/test_core.dir/core/table_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
