file(REMOVE_RECURSE
  "CMakeFiles/test_migration.dir/migration/alliance_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/alliance_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/attachment_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/attachment_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/immutable_policy_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/immutable_policy_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/interaction_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/interaction_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/manager_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/manager_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/policy_conventional_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/policy_conventional_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/policy_dynamic_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/policy_dynamic_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/policy_load_share_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/policy_load_share_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/policy_placement_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/policy_placement_test.cpp.o.d"
  "CMakeFiles/test_migration.dir/migration/primitives_test.cpp.o"
  "CMakeFiles/test_migration.dir/migration/primitives_test.cpp.o.d"
  "test_migration"
  "test_migration.pdb"
  "test_migration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
