#!/usr/bin/env python3
"""Regenerates the scenario-pack claims grid in EXPERIMENTS.md.

Runs `omig_sim --scenario` over the workload zoo x policy/attachment cells
x DirectoryKind{central,sharded} (paper claims 1-4), plus the
consistency-mode table (eager-invalidate / lazy-forward / lease-ttl) for
the cache and game scenarios, and prints both as markdown. Every cell is a
single deterministic run (fixed seed, stopping rule ci=0.05 bounded by
max-time=1500 so overload-collapse cells terminate).

Usage: python3 scripts/scenario_grid.py [path/to/omig_sim]
"""
import json
import subprocess
import sys

SIM = sys.argv[1] if len(sys.argv) > 1 else "build/tools/omig_sim"
SCENARIOS = ["social", "cache", "game", "iot"]
BOUNDS = ["max-blocks=2000", "ci=0.05", "max-time=1500"]

# (label, extra args) — the policy/attachment cells the claims need.
CELLS = [
    ("sedentary", ["policy=sedentary"]),
    ("conventional+unrestricted", ["policy=conventional",
                                   "attach=unrestricted"]),
    ("conventional+a-transitive", ["policy=conventional",
                                   "attach=a-transitive"]),
    ("placement+unrestricted", ["policy=placement", "attach=unrestricted"]),
    ("placement+a-transitive", ["policy=placement", "attach=a-transitive"]),
    ("compare-nodes+a-transitive", ["policy=compare-nodes",
                                    "attach=a-transitive"]),
    # The claim-3 re-judgement (docs/policies.md): feedback-driven kinds,
    # same A-transitive scoping as the dynamic-policy cell they contest.
    ("adaptive+a-transitive", ["policy=adaptive", "attach=a-transitive"]),
    ("adaptive-load+a-transitive", ["policy=adaptive-load",
                                    "attach=a-transitive"]),
]


def run(args):
    out = subprocess.run([SIM, "--json"] + args + BOUNDS,
                         capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


def cell_text(doc):
    if doc["blocks"] == 0:
        return f"collapse ({doc['migrations']} migr, 0 blocks)"
    return f"{doc['total_per_call']:.2f}"


def claims_grid():
    print("| scenario | directory | " + " | ".join(l for l, _ in CELLS) + " |")
    print("|---|---|" + "---|" * len(CELLS))
    for scenario in SCENARIOS:
        for directory in ["central", "sharded"]:
            row = [scenario, directory]
            for _, extra in CELLS:
                doc = run(["--scenario", scenario,
                           f"directory={directory}"] + extra)
                row.append(cell_text(doc))
            print("| " + " | ".join(row) + " |")


def dir_series(metrics, family, want):
    for entry in metrics.get(family, []):
        labels = entry.get("labels", {})
        if all(labels.get(k) == v for k, v in want.items()):
            return entry.get("value", 0)
    return 0


def consistency_table():
    print("| scenario | strategy | total/call | lookups | stale | "
          "forward hops | invalidations |")
    print("|---|---|---|---|---|---|---|")
    for scenario in ["cache", "game"]:
        for strategy in ["eager-invalidate", "lazy-forward", "lease-ttl"]:
            doc = run(["--scenario", scenario, "directory=sharded",
                       f"dir-strategy={strategy}"])
            m = doc["metrics"]
            hits = dir_series(m, "omig_dir_lookups_total", {"result": "hit"})
            stale = dir_series(m, "omig_dir_lookups_total",
                               {"result": "stale"})
            miss = dir_series(m, "omig_dir_lookups_total", {"result": "miss"})
            lookups = hits + stale + miss
            hops = dir_series(m, "omig_dir_forward_hops_total", {})
            inval = dir_series(m, "omig_dir_invalidations_total", {})
            stale_pct = 100.0 * stale / lookups if lookups else 0.0
            print(f"| {scenario} | {strategy} | {doc['total_per_call']:.2f} "
                  f"| {lookups} | {stale} ({stale_pct:.1f}%) "
                  f"| {hops} | {inval} |")


if __name__ == "__main__":
    print("### Claims 1-4 x workload zoo x directory (total/call)\n")
    claims_grid()
    print("\n### Directory consistency modes x scenario (sharded)\n")
    consistency_table()
