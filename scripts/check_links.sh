#!/usr/bin/env bash
# Dead-link check for the repo's markdown: every relative link target in a
# *.md file must exist on disk. External links (http/https/mailto) and
# pure in-page anchors (#...) are out of scope — this guards against doc
# rot when files move or get renamed.
#
# Usage: scripts/check_links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

failures=0
while IFS= read -r -d '' file; do
  dir=$(dirname "$file")
  # Pull out inline markdown link targets: [text](target).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path=${target%%#*}   # strip an in-page anchor from a file link
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "DEAD LINK: $file -> $target"
      failures=$((failures + 1))
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done < <(find . -name '*.md' -not -path './build*/*' -not -path './.git/*' -print0)

if [ "$failures" -gt 0 ]; then
  echo "check_links.sh: $failures dead relative link(s)"
  exit 1
fi
echo "check_links.sh: all relative markdown links resolve"
