#!/usr/bin/env bash
# Records the simulation-kernel perf trajectory into BENCH_kernel.json.
#
# Builds a Release tree and runs the kernel microbench suite
# (bench_kernel_throughput, google-benchmark: 3 repetitions, medians) plus
# two representative figure benches (fig 8 usage-frequency and fig 11
# migration-load, wall-clock medians of 3 runs at a fixed reduced
# resolution). Results are merged into BENCH_kernel.json under the given
# label, so running it once per kernel revision accumulates the before/after
# trajectory:
#
#   scripts/bench_baseline.sh --label before   # on the old kernel
#   scripts/bench_baseline.sh --label after    # on the new kernel
#
# When both labels are present the script also computes the headline
# speedup (raw kernel event-dispatch throughput, after/before).
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL=after
OUT=BENCH_kernel.json
MIN_TIME=0.5
MODE=kernel
while [[ $# -gt 0 ]]; do
  case "$1" in
    --label) LABEL="$2"; shift 2 ;;
    --output) OUT="$2"; shift 2 ;;
    --min-time) MIN_TIME="$2"; shift 2 ;;
    --store) MODE=store; shift ;;
    --directory) MODE=directory; shift ;;
    --scenario) MODE=scenario; shift ;;
    --policy) MODE=policy; shift ;;
    --transport) MODE=transport; shift ;;
    *) echo "usage: $0 [--label NAME] [--output FILE] [--min-time SECS]" >&2
       echo "          [--store]      # bench the durable store into BENCH_store.json" >&2
       echo "          [--directory]  # bench directory lookups into BENCH_directory.json" >&2
       echo "          [--scenario]   # bench the scenario pack into BENCH_scenario.json" >&2
       echo "          [--policy]     # bench adaptive placement into BENCH_policy.json" >&2
       echo "          [--transport]  # bench transport backends into BENCH_transport.json" >&2
       exit 2 ;;
  esac
done

BUILD_DIR=build-bench

# --scenario: record scenario-pack live-runtime throughput (issued ops/sec
# and per-op p50/p99 in microseconds, per scenario in the zoo) into
# BENCH_scenario.json. Medians of 3 runs per scenario.
if [[ "$MODE" == scenario ]]; then
  [[ "$OUT" == BENCH_kernel.json ]] && OUT=BENCH_scenario.json
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_scenario >/dev/null
  SCEN_JSON=$(mktemp)
  for rep in 1 2 3; do
    "$BUILD_DIR/bench/bench_scenario" >>"$SCEN_JSON"
  done
  GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  LABEL="$LABEL" OUT="$OUT" SCEN_JSON="$SCEN_JSON" GIT_REV="$GIT_REV" \
  python3 - <<'PY'
import json, os, statistics

# Three concatenated JSON documents (one per repetition): decode them in
# sequence, then take the per-scenario median of each measure.
reps, decoder, text, pos = [], json.JSONDecoder(), open(os.environ["SCEN_JSON"]).read(), 0
while pos < len(text):
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        break
    doc, pos = decoder.raw_decode(text, pos)
    reps.append(doc)

series = {}
for doc in reps:
    for row in doc["results"]:
        entry = series.setdefault(row["scenario"], {
            "issued_ops": [], "wall_ms": [], "ops_per_sec": [],
            "op_p50_us": [], "op_p99_us": [],
            "bursts": row["bursts"], "moves": row["moves"],
            "visits": row["visits"],
        })
        for key in ("issued_ops", "wall_ms", "ops_per_sec",
                    "op_p50_us", "op_p99_us"):
            entry[key].append(row[key])

results = [
    {
        "scenario": scenario,
        "issued_ops": statistics.median(entry["issued_ops"]),
        "bursts": entry["bursts"],
        "moves": entry["moves"],
        "visits": entry["visits"],
        "wall_ms": statistics.median(entry["wall_ms"]),
        "ops_per_sec": statistics.median(entry["ops_per_sec"]),
        "op_p50_us": statistics.median(entry["op_p50_us"]),
        "op_p99_us": statistics.median(entry["op_p99_us"]),
    }
    for scenario, entry in sorted(series.items())
]

out = os.environ["OUT"]
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc.setdefault("bench", "scenario-pack")
doc.setdefault("recipe", {
    "build": "Release",
    "scenario": "bench_scenario (in-process LiveSystem, 4 nodes, 8 sources "
                "x 200 bursts, 4 worker threads; medians of 3 runs)",
    "headline": "issued ops/sec per scenario on the live runtime",
})
doc.setdefault("runs", {})[os.environ["LABEL"]] = {
    "git": os.environ["GIT_REV"],
    "nproc": os.cpu_count(),
    "scenarios": results,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} [{os.environ['LABEL']}]")
PY
  rm -f "$SCEN_JSON"
  exit 0
fi

# --policy: record the adaptive-placement cost picture into
# BENCH_policy.json — the locality tracker's isolated record()/estimate()
# hot path, the Sedentary-vs-SedentaryTracked BM_ExperimentBlocks pair
# (identical simulation, tracker attached but unconsumed: the pure
# bookkeeping overhead, budget <5%, docs/policies.md), and the
# Sedentary-vs-Adaptive behavioral delta for context.
if [[ "$MODE" == policy ]]; then
  [[ "$OUT" == BENCH_kernel.json ]] && OUT=BENCH_policy.json
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_policy >/dev/null
  POLICY_JSON=$(mktemp)
  "$BUILD_DIR/bench/bench_policy" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >"$POLICY_JSON" 2>/dev/null
  GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  LABEL="$LABEL" OUT="$OUT" POLICY_JSON="$POLICY_JSON" GIT_REV="$GIT_REV" \
  python3 - <<'PY'
import json, os

with open(os.environ["POLICY_JSON"]) as f:
    raw = json.load(f)
scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}
bench = {}
for b in raw["benchmarks"]:
    if b["name"].endswith("_median"):
        name = b["name"][: -len("_median")]
        entry = {"real_time_ns": b["real_time"] * scale[b["time_unit"]]}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        bench[name] = entry

out = os.environ["OUT"]
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc.setdefault("bench", "adaptive-placement")
doc.setdefault("recipe", {
    "build": "Release",
    "policy": "bench_policy --benchmark_min_time=<min-time> "
              "--benchmark_repetitions=3 (medians)",
    "headline": "BM_ExperimentBlocksSedentaryTracked / "
                "BM_ExperimentBlocksSedentary real_time ratio - 1 "
                "(pure locality-tracker bookkeeping per block; budget <5%, "
                "docs/policies.md). adaptive_policy_delta_pct is the "
                "behavioral Sedentary-vs-Adaptive delta, for context.",
})
run = {
    "git": os.environ["GIT_REV"],
    "nproc": os.cpu_count(),
    "policy": bench,
}
sed = bench.get("BM_ExperimentBlocksSedentary", {}).get("real_time_ns")
trk = bench.get("BM_ExperimentBlocksSedentaryTracked", {}).get("real_time_ns")
ada = bench.get("BM_ExperimentBlocksAdaptive", {}).get("real_time_ns")
if sed and trk:
    run["tracker_overhead_pct"] = round((trk / sed - 1.0) * 100.0, 2)
if sed and ada:
    run["adaptive_policy_delta_pct"] = round((ada / sed - 1.0) * 100.0, 2)
doc.setdefault("runs", {})[os.environ["LABEL"]] = run
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} [{os.environ['LABEL']}]")
if "tracker_overhead_pct" in run:
    print(f"tracker bookkeeping overhead: {run['tracker_overhead_pct']}%")
if "adaptive_policy_delta_pct" in run:
    print(f"adaptive behavioral delta: {run['adaptive_policy_delta_pct']}%")
PY
  rm -f "$POLICY_JSON"
  exit 0
fi

# --transport: record transport-backend throughput (frames/sec, RTT
# p50/p99 per backend: inproc / blocking tcp / event-loop async_tcp) and
# the connection ladder (concurrent links vs one forked node-server
# process, with the client's thread count and RSS at each rung) into
# BENCH_transport.json. Echo rows are medians of 3 runs; ladder rows keep
# the best (min-wall) run, since connect storms are the noisy part.
if [[ "$MODE" == transport ]]; then
  [[ "$OUT" == BENCH_kernel.json ]] && OUT=BENCH_transport.json
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_transport >/dev/null
  TRANSPORT_JSON=$(mktemp)
  for rep in 1 2 3; do
    "$BUILD_DIR/bench/bench_transport" >>"$TRANSPORT_JSON"
  done
  GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  LABEL="$LABEL" OUT="$OUT" TRANSPORT_JSON="$TRANSPORT_JSON" GIT_REV="$GIT_REV" \
  python3 - <<'PY'
import json, os, statistics

reps, decoder, text, pos = [], json.JSONDecoder(), open(os.environ["TRANSPORT_JSON"]).read(), 0
while pos < len(text):
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        break
    doc, pos = decoder.raw_decode(text, pos)
    reps.append(doc)

echo = {}
for doc in reps:
    for row in doc["echo"]:
        entry = echo.setdefault(row["backend"], {
            "round_trips": row["round_trips"],
            "rtt_p50_us": [], "rtt_p99_us": [], "frames_per_sec": [],
        })
        for key in ("rtt_p50_us", "rtt_p99_us", "frames_per_sec"):
            entry[key].append(row[key])
echo_rows = [
    {
        "backend": backend,
        "round_trips": entry["round_trips"],
        "rtt_p50_us": statistics.median(entry["rtt_p50_us"]),
        "rtt_p99_us": statistics.median(entry["rtt_p99_us"]),
        "frames_per_sec": statistics.median(entry["frames_per_sec"]),
    }
    for backend, entry in echo.items()
]

ladder = {}
for doc in reps:
    for row in doc["ladder"]:
        key = (row["backend"], row["target_conns"])
        best = ladder.get(key)
        if best is None or (row["ok"] and row["wall_ms"] < best["wall_ms"]):
            ladder[key] = row
ladder_rows = [ladder[key] for key in sorted(ladder,
                                             key=lambda k: (k[0], k[1]))]

out = os.environ["OUT"]
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc.setdefault("bench", "transport-backends")
doc.setdefault("recipe", {
    "build": "Release",
    "transport": "bench_transport (forked LiveNode+NodeServer process; "
                 "2k serial + 20k pipelined round trips per backend, "
                 "window 256; ladder 100/1000 tcp, 100/1000/10000 "
                 "async_tcp; echo medians of 3 runs)",
    "headline": "async_tcp sustains the 10k-connection rung on one loop "
                "thread; blocking tcp pays one OS thread per connection",
})
run = {
    "git": os.environ["GIT_REV"],
    "nproc": os.cpu_count(),
    "echo": echo_rows,
    "ladder": ladder_rows,
}
by_backend = {r["backend"]: r for r in echo_rows}
if "tcp" in by_backend and "async_tcp" in by_backend:
    run["async_vs_tcp_frames_ratio"] = round(
        by_backend["async_tcp"]["frames_per_sec"] /
        by_backend["tcp"]["frames_per_sec"], 3)
best_conns = {}
for r in ladder_rows:
    if r["ok"]:
        best_conns[r["backend"]] = max(best_conns.get(r["backend"], 0),
                                       r["connected"])
run["max_sustained_conns"] = best_conns
doc.setdefault("runs", {})[os.environ["LABEL"]] = run
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} [{os.environ['LABEL']}]")
for r in echo_rows:
    print(f"  {r['backend']}: {r['frames_per_sec']:.0f} frames/s, "
          f"p99 {r['rtt_p99_us']:.1f} us")
print(f"  max sustained connections: {best_conns}")
PY
  rm -f "$TRANSPORT_JSON"
  exit 0
fi

# --directory: record location-directory lookup latency (p50/p99 per
# lookup, Central vs Sharded, at 10/100/1000 simulated nodes) into
# BENCH_directory.json. Medians of 3 runs per percentile.
if [[ "$MODE" == directory ]]; then
  [[ "$OUT" == BENCH_kernel.json ]] && OUT=BENCH_directory.json
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_directory >/dev/null
  DIR_JSON=$(mktemp)
  for rep in 1 2 3; do
    "$BUILD_DIR/bench/bench_directory" >>"$DIR_JSON"
  done
  GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  LABEL="$LABEL" OUT="$OUT" DIR_JSON="$DIR_JSON" GIT_REV="$GIT_REV" \
  python3 - <<'PY'
import json, os, statistics

# Three concatenated JSON documents (one per repetition): decode them in
# sequence, then take the per-series median of each percentile.
reps, decoder, text, pos = [], json.JSONDecoder(), open(os.environ["DIR_JSON"]).read(), 0
while pos < len(text):
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        break
    doc, pos = decoder.raw_decode(text, pos)
    reps.append(doc)

series = {}
for doc in reps:
    for row in doc["results"]:
        key = (row["kind"], row["nodes"])
        entry = series.setdefault(key, {"p50_ns": [], "p99_ns": [],
                                        "objects": row["objects"],
                                        "lookups": row["lookups"]})
        entry["p50_ns"].append(row["p50_ns"])
        entry["p99_ns"].append(row["p99_ns"])

results = [
    {
        "kind": kind,
        "nodes": nodes,
        "objects": entry["objects"],
        "lookups": entry["lookups"],
        "p50_ns": statistics.median(entry["p50_ns"]),
        "p99_ns": statistics.median(entry["p99_ns"]),
    }
    for (kind, nodes), entry in sorted(series.items(),
                                       key=lambda kv: (kv[0][1], kv[0][0]))
]

out = os.environ["OUT"]
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc.setdefault("bench", "location-directory")
doc.setdefault("recipe", {
    "build": "Release",
    "directory": "bench_directory (200k lookups per config, one migration "
                 "per 8 lookups; per-lookup latency medians of 3 runs)",
    "headline": "sharded p99_ns at nodes=1000 vs central p99_ns at "
                "nodes=1000 (tail lookup latency at scale)",
})
doc.setdefault("runs", {})[os.environ["LABEL"]] = {
    "git": os.environ["GIT_REV"],
    "nproc": os.cpu_count(),
    "directory": results,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} [{os.environ['LABEL']}]")
PY
  rm -f "$DIR_JSON"
  exit 0
fi

# --store: record the durable-store microbench medians (WAL append with
# both fsync disciplines, replay, compaction) into BENCH_store.json.
if [[ "$MODE" == store ]]; then
  [[ "$OUT" == BENCH_kernel.json ]] && OUT=BENCH_store.json
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target bench_store >/dev/null
  STORE_JSON=$(mktemp)
  "$BUILD_DIR/bench/bench_store" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json >"$STORE_JSON" 2>/dev/null
  GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
  LABEL="$LABEL" OUT="$OUT" STORE_JSON="$STORE_JSON" GIT_REV="$GIT_REV" \
  python3 - <<'PY'
import json, os

with open(os.environ["STORE_JSON"]) as f:
    raw = json.load(f)
scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}
bench = {}
for b in raw["benchmarks"]:
    if b["name"].endswith("_median"):
        name = b["name"][: -len("_median")]
        entry = {"real_time_ns": b["real_time"] * scale[b["time_unit"]]}
        for key in ("items_per_second", "bytes_per_second"):
            if key in b:
                entry[key] = b[key]
        bench[name] = entry

out = os.environ["OUT"]
doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc.setdefault("bench", "durable-store")
doc.setdefault("recipe", {
    "build": "Release",
    "store": "bench_store --benchmark_min_time=<min-time> "
             "--benchmark_repetitions=3 (medians)",
    "headline": "BM_WalAppend/64/1 real_time_ns "
                "(one fsynced 64-byte checkpoint append)",
})
doc.setdefault("runs", {})[os.environ["LABEL"]] = {
    "git": os.environ["GIT_REV"],
    "nproc": os.cpu_count(),
    "store": bench,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} [{os.environ['LABEL']}]")
PY
  rm -f "$STORE_JSON"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target \
  bench_kernel_throughput bench_fig08_usage_frequency \
  bench_fig11_migration_load >/dev/null

KERNEL_JSON=$(mktemp)
"$BUILD_DIR/bench/bench_kernel_throughput" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json >"$KERNEL_JSON" 2>/dev/null

# Figure benches at a fixed reduced resolution (the absolute tables are not
# the point here — only the wall-clock trend of the same workload).
time_fig() {
  local bin="$1" runs=3 best=""
  local t0 t1 dt
  for _ in $(seq "$runs"); do
    t0=$(date +%s%N)
    OMIG_THREADS=1 OMIG_CI_TARGET=0.05 OMIG_MAX_BLOCKS=4000 \
      "$BUILD_DIR/bench/$bin" >/dev/null
    t1=$(date +%s%N)
    dt=$(( (t1 - t0) / 1000000 ))  # ms
    best="$best $dt"
  done
  # median of three
  echo "$best" | tr ' ' '\n' | sed '/^$/d' | sort -n | sed -n 2p
}

FIG08_MS=$(time_fig bench_fig08_usage_frequency)
FIG11_MS=$(time_fig bench_fig11_migration_load)

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

LABEL="$LABEL" OUT="$OUT" KERNEL_JSON="$KERNEL_JSON" FIG08_MS="$FIG08_MS" \
FIG11_MS="$FIG11_MS" GIT_REV="$GIT_REV" python3 - <<'PY'
import json, os

label = os.environ["LABEL"]
out = os.environ["OUT"]

with open(os.environ["KERNEL_JSON"]) as f:
    raw = json.load(f)

kernel = {}
for b in raw["benchmarks"]:
    if b["name"].endswith("_median"):
        name = b["name"][: -len("_median")]
        entry = {"real_time_ns": b["real_time"] * {"ns": 1, "us": 1e3,
                                                   "ms": 1e6, "s": 1e9}[b["time_unit"]]}
        if "items_per_second" in b:
            entry["items_per_second"] = b["items_per_second"]
        kernel[name] = entry

doc = {}
if os.path.exists(out):
    with open(out) as f:
        doc = json.load(f)
doc.setdefault("bench", "simulation-kernel")
doc.setdefault("recipe", {
    "build": "Release",
    "kernel": "bench_kernel_throughput --benchmark_min_time=<min-time> "
              "--benchmark_repetitions=3 (medians)",
    "figures": "OMIG_THREADS=1 OMIG_CI_TARGET=0.05 OMIG_MAX_BLOCKS=4000, "
               "wall-clock median of 3 runs",
    "headline": "BM_EngineEventThroughput/100000 items_per_second "
                "(kernel event dispatch, 100k-event run)",
})
doc["recipe"]["headline"] = (
    "BM_EngineEventThroughput/100000 items_per_second "
    "(kernel event dispatch, 100k-event run)")
runs = doc.setdefault("runs", {})
runs[label] = {
    "git": os.environ["GIT_REV"],
    "nproc": os.cpu_count(),
    "kernel": kernel,
    "fig08_usage_frequency_ms": int(os.environ["FIG08_MS"]),
    "fig11_migration_load_ms": int(os.environ["FIG11_MS"]),
}

if "before" in runs and "after" in runs:
    head = "BM_EngineEventThroughput/100000"
    b = runs["before"]["kernel"][head]["items_per_second"]
    a = runs["after"]["kernel"][head]["items_per_second"]
    speedups = {}
    for name, rec in runs["after"]["kernel"].items():
        if name in runs["before"]["kernel"] and "items_per_second" in rec:
            prev = runs["before"]["kernel"][name].get("items_per_second")
            if prev:
                speedups[name] = round(rec["items_per_second"] / prev, 3)
    doc["headline"] = {
        "metric": head + " events/sec",
        "before": b,
        "after": a,
        "speedup": round(a / b, 3),
        "all_speedups": speedups,
        "fig08_speedup": round(
            runs["before"]["fig08_usage_frequency_ms"]
            / runs["after"]["fig08_usage_frequency_ms"], 3),
        "fig11_speedup": round(
            runs["before"]["fig11_migration_load_ms"]
            / runs["after"]["fig11_migration_load_ms"], 3),
    }

with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=False)
    f.write("\n")
print(f"wrote {out} [{label}]")
PY

rm -f "$KERNEL_JSON"
