#!/usr/bin/env bash
# Sanitizer gate for the concurrent code paths: builds a Debug tree with
# ThreadSanitizer + UBSan and runs the suites that exercise real threads —
# the live runtime, the transport layer (wire codec, TCP sockets,
# multi-process cluster), the fault-injection / chaos tests, the durable
# store (WAL, snapshots, crash recovery), the work-stealing executor +
# parallel sweep engine, the scenario pack's threaded live driver, and the
# adaptive placement policies (EMA tracker, hysteresis, live moves).
#
# Usage: scripts/check.sh [extra ctest args]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan

cmake -B "$BUILD_DIR" -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread,undefined"
cmake --build "$BUILD_DIR"

# Combining the tsan and ubsan shared runtimes makes tsan intercept pipe()
# calls issued from libubsan's own internals (IsAccessibleMemoryRange) and
# report them as races; suppress anything rooted in libubsan — reports in
# *our* code keep firing.
SUPP="$PWD/$BUILD_DIR/tsan.supp"
printf 'called_from_lib:libubsan\n' > "$SUPP"

# halt_on_error so a race fails the run instead of scrolling past.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1} suppressions=$SUPP"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j \
  -R 'Mailbox|LiveNode|LiveSystem|OfficeWorkflow|LiveFault|FaultPlan|FaultInjector|NodeHealth|CrashDriver|Chaos|Executor|SweepParallel|SweepGolden|EnginePool|EventHeap|DenseTable|Transport|Wire|MultiProcess|TcpLink|InProcTransport|Metrics|Histogram|Exporter|Wal|Store|Snapshot|Recovery|ShardedDirectory|LocationCache|LocationFuzz|Scenario|Zipf|Adaptive|Locality|Hysteresis|EventLoop|AsyncTcp|Net' \
  "$@"

echo "check.sh: sanitized runtime + fault suites passed"
