#!/usr/bin/env bash
# Reproduce everything: build, full test suite, every table/figure/ablation.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
#
# Knobs (see README): OMIG_CI_TARGET (default 0.01 = the paper's stopping
# rule), OMIG_MAX_BLOCKS, OMIG_POINTS, OMIG_PROGRESS=1.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: test_output.txt + bench_output.txt"
