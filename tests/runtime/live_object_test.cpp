#include "runtime/live_object.hpp"

#include <gtest/gtest.h>

namespace omig::runtime {
namespace {

LiveObject make_counter(const std::string& name) {
  ObjectState state;
  state.type = "counter";
  state.fields["value"] = "0";
  LiveObject obj{name, std::move(state)};
  obj.register_method("inc", [](ObjectState& self, const std::string&) {
    self.fields["value"] = std::to_string(std::stoi(self.fields["value"]) + 1);
    return self.fields["value"];
  });
  obj.register_method("get", [](ObjectState& self, const std::string&) {
    return self.fields["value"];
  });
  return obj;
}

TEST(LiveObjectTest, MethodDispatch) {
  LiveObject obj = make_counter("c");
  EXPECT_EQ(obj.name(), "c");
  EXPECT_EQ(obj.type(), "counter");
  auto r = obj.call("inc", "");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, "1");
  r = obj.call("inc", "");
  EXPECT_EQ(r.value, "2");
  EXPECT_EQ(obj.call("get", "").value, "2");
}

TEST(LiveObjectTest, UnknownMethodFails) {
  LiveObject obj = make_counter("c");
  const auto r = obj.call("frobnicate", "");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.value.find("frobnicate"), std::string::npos);
}

TEST(LiveObjectTest, LinearizeCapturesState) {
  LiveObject obj = make_counter("c");
  obj.call("inc", "");
  obj.call("inc", "");
  obj.call("inc", "");
  const ObjectState snap = obj.linearize();
  EXPECT_EQ(snap.type, "counter");
  EXPECT_EQ(snap.fields.at("value"), "3");
}

TEST(LiveObjectTest, RebuiltObjectContinuesWhereItLeftOff) {
  // The migration contract: factory(linearize()) behaves identically.
  LiveObject original = make_counter("c");
  original.call("inc", "");
  LiveObject rebuilt{"c", original.linearize()};
  rebuilt.register_method("inc", [](ObjectState& self, const std::string&) {
    self.fields["value"] = std::to_string(std::stoi(self.fields["value"]) + 1);
    return self.fields["value"];
  });
  EXPECT_EQ(rebuilt.call("inc", "").value, "2");
}

TEST(LiveObjectTest, MethodReplacement) {
  LiveObject obj = make_counter("c");
  obj.register_method("get", [](ObjectState&, const std::string&) {
    return std::string{"overridden"};
  });
  EXPECT_EQ(obj.call("get", "").value, "overridden");
}

}  // namespace
}  // namespace omig::runtime
