// End-to-end live-runtime scenario in the paper's motivating domain
// (Section 1: office automation): three independently developed components
// — intake, billing, archive — cooperate on shared case files across four
// node threads. Exercises types, alliances, placement conflicts, visits
// and migration-under-load together.
//
// Parametrised over the transport backend: the whole suite runs once with
// in-process mailbox delivery and once with every inter-node request
// marshalled through a wire frame and a localhost socket — the semantics
// must not depend on how the messages travel (docs/transport.md).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"

namespace omig::runtime {
namespace {

class OfficeWorkflow : public ::testing::TestWithParam<TransportKind> {
protected:
  void SetUp() override {
    LiveSystem::Options opts;
    opts.nodes = 4;
    opts.policy = MovePolicy::Placement;
    opts.a_transitive_attachments = true;
    opts.transport = GetParam();
    sys = std::make_unique<LiveSystem>(opts);
    register_demo_types(*sys);
    sys->start();

    ASSERT_TRUE(
        sys->create("case-1", make_state("case-file", {{"log", ""}}), 0));
    ASSERT_TRUE(
        sys->create("case-2", make_state("case-file", {{"log", ""}}), 0));
    ASSERT_TRUE(
        sys->create("ledger", make_state("ledger", {{"total", "0"}}), 3));

    // Billing keeps the ledger with whichever case it processes — one
    // cooperation context *per case*: attaching both cases in a single
    // context would chain them through the shared ledger (A-transitivity
    // follows every edge of the named context).
    sys->attach("case-1", "ledger", "billing");
    sys->attach("case-2", "ledger", "billing-2");
  }

  std::unique_ptr<LiveSystem> sys;
};

TEST_P(OfficeWorkflow, ThreeComponentsCooperate) {
  // Intake (node 1) visits case-1, appends entries, lets it go home.
  auto intake = sys->visit("case-1", 1, "intake");
  ASSERT_TRUE(intake.granted);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sys->invoke_from(1, "case-1", "append", "intake").ok);
  }
  sys->end(intake);
  EXPECT_EQ(sys->location("case-1"), 0u);

  // Billing (node 2) moves case-1 *in the billing alliance*: the ledger
  // follows, case-2 does not.
  auto billing = sys->move("case-1", 2, "billing");
  ASSERT_TRUE(billing.granted);
  EXPECT_EQ(sys->location("case-1"), 2u);
  EXPECT_EQ(sys->location("ledger"), 2u);
  EXPECT_EQ(sys->location("case-2"), 0u);
  sys->invoke_from(2, "ledger", "bill", "");
  sys->invoke_from(2, "case-1", "append", "billed");

  // Archive (node 3) wants the same case mid-billing: transient placement
  // refuses, archive works remotely instead.
  auto archive = sys->move("case-1", 3, "archive");
  EXPECT_FALSE(archive.granted);
  ASSERT_TRUE(sys->invoke_from(3, "case-1", "append", "archived").ok);
  sys->end(archive);
  sys->end(billing);

  // After billing ends, archive can take it.
  auto retry = sys->move("case-1", 3, "archive");
  EXPECT_TRUE(retry.granted);
  EXPECT_EQ(sys->location("case-1"), 3u);
  sys->end(retry);

  // All state survived every linearisation round trip.
  EXPECT_EQ(sys->invoke("case-1", "entries", "").value, "7");
  EXPECT_EQ(sys->invoke("ledger", "total", "").value, "10");
  EXPECT_EQ(sys->refused_moves(), 1u);
  EXPECT_EQ(sys->send_rejections(), 0u);
}

TEST_P(OfficeWorkflow, ConcurrentComponentsNeverLoseWork) {
  constexpr int kRounds = 30;
  auto component = [&](std::size_t home, const char* tag,
                       const char* case_name) {
    for (int i = 0; i < kRounds; ++i) {
      auto token = sys->move(case_name, home, tag);
      sys->invoke_from(home, case_name, "append", tag);
      sys->end(token);
    }
  };
  std::thread intake{component, 1, "intake", "case-1"};
  std::thread billing{component, 2, "billing", "case-1"};
  std::thread archive{component, 3, "archive", "case-2"};
  intake.join();
  billing.join();
  archive.join();
  // Every append landed exactly once, refusals notwithstanding.
  EXPECT_EQ(sys->invoke("case-1", "entries", "").value,
            std::to_string(2 * kRounds));
  EXPECT_EQ(sys->invoke("case-2", "entries", "").value,
            std::to_string(kRounds));
}

TEST_P(OfficeWorkflow, FixPinsTheLedgerForAudit) {
  sys->fix("ledger");
  auto billing = sys->move("case-1", 2, "billing");
  ASSERT_TRUE(billing.granted);
  EXPECT_EQ(sys->location("case-1"), 2u);
  EXPECT_EQ(sys->location("ledger"), 3u);  // fixed: stayed for the audit
  sys->end(billing);
}

INSTANTIATE_TEST_SUITE_P(Backends, OfficeWorkflow,
                         ::testing::Values(TransportKind::InProc,
                                           TransportKind::Tcp),
                         [](const auto& info) {
                           return info.param == TransportKind::InProc
                                      ? "InProc"
                                      : "Tcp";
                         });

}  // namespace
}  // namespace omig::runtime
