#include "runtime/live_system.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace omig::runtime {
namespace {

ObjectFactory counter_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("inc", [](ObjectState& self, const std::string&) {
      self.fields["value"] =
          std::to_string(std::stoi(self.fields["value"]) + 1);
      return self.fields["value"];
    });
    obj->register_method("get", [](ObjectState& self, const std::string&) {
      return self.fields["value"];
    });
    return obj;
  };
}

ObjectState counter_state() {
  ObjectState s;
  s.type = "counter";
  s.fields["value"] = "0";
  return s;
}

std::unique_ptr<LiveSystem> make_system(std::size_t nodes,
                                        bool placement = true,
                                        bool a_transitive = false) {
  LiveSystem::Options opts;
  opts.nodes = nodes;
  opts.policy = placement ? MovePolicy::Placement : MovePolicy::Conventional;
  opts.a_transitive_attachments = a_transitive;
  auto sys = std::make_unique<LiveSystem>(opts);
  sys->register_type("counter", counter_factory());
  sys->start();
  return sys;
}

TEST(LiveSystemTest, CreateAndInvoke) {
  auto sys = make_system(2);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  EXPECT_EQ(sys->location("c"), 0u);
  auto r = sys->invoke("c", "inc", "");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, "1");
  EXPECT_EQ(sys->invoke("c", "get", "").value, "1");
  EXPECT_EQ(sys->invocations(), 2u);
}

TEST(LiveSystemTest, DuplicateCreateFails) {
  auto sys = make_system(2);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  EXPECT_FALSE(sys->create("c", counter_state(), 1));
}

TEST(LiveSystemTest, UnknownTypeFails) {
  auto sys = make_system(2);
  ObjectState s;
  s.type = "nonsense";
  EXPECT_FALSE(sys->create("x", s, 0));
}

TEST(LiveSystemTest, UnknownObjectInvokeFails) {
  auto sys = make_system(2);
  const auto r = sys->invoke("ghost", "get", "");
  EXPECT_FALSE(r.ok);
}

TEST(LiveSystemTest, MigrationPreservesState) {
  auto sys = make_system(3);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  sys->invoke("c", "inc", "");
  sys->invoke("c", "inc", "");
  ASSERT_TRUE(sys->migrate("c", 2));
  EXPECT_EQ(sys->location("c"), 2u);
  EXPECT_EQ(sys->invoke("c", "get", "").value, "2");
  EXPECT_EQ(sys->migrations(), 1u);
}

TEST(LiveSystemTest, FixPreventsMigration) {
  auto sys = make_system(2);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  sys->fix("c");
  EXPECT_TRUE(sys->is_fixed("c"));
  sys->migrate("c", 1);
  EXPECT_EQ(sys->location("c"), 0u);  // stayed
  sys->unfix("c");
  sys->migrate("c", 1);
  EXPECT_EQ(sys->location("c"), 1u);
}

TEST(LiveSystemTest, AttachmentsMigrateTogether) {
  auto sys = make_system(3);
  ASSERT_TRUE(sys->create("a", counter_state(), 0));
  ASSERT_TRUE(sys->create("b", counter_state(), 1));
  EXPECT_TRUE(sys->attach("a", "b"));
  EXPECT_FALSE(sys->attach("a", "b"));  // duplicate ignored
  sys->migrate("a", 2);
  EXPECT_EQ(sys->location("a"), 2u);
  EXPECT_EQ(sys->location("b"), 2u);
  EXPECT_TRUE(sys->detach("a", "b"));
  sys->migrate("a", 0);
  EXPECT_EQ(sys->location("b"), 2u);  // no longer dragged
}

TEST(LiveSystemTest, ATransitiveAttachmentRestriction) {
  auto sys = make_system(3, /*placement=*/true, /*a_transitive=*/true);
  ASSERT_TRUE(sys->create("s", counter_state(), 0));
  ASSERT_TRUE(sys->create("mine", counter_state(), 0));
  ASSERT_TRUE(sys->create("foreign", counter_state(), 0));
  sys->attach("s", "mine", "my-alliance");
  sys->attach("s", "foreign", "their-alliance");
  sys->migrate("s", 2, "my-alliance");
  EXPECT_EQ(sys->location("s"), 2u);
  EXPECT_EQ(sys->location("mine"), 2u);
  EXPECT_EQ(sys->location("foreign"), 0u);  // other context: not dragged
}

TEST(LiveSystemTest, PlacementRefusesConflictingMove) {
  auto sys = make_system(3);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  auto first = sys->move("c", 1);
  EXPECT_TRUE(first.granted);
  EXPECT_EQ(sys->location("c"), 1u);
  auto second = sys->move("c", 2);
  EXPECT_FALSE(second.granted);  // transient placement: refused
  EXPECT_EQ(sys->location("c"), 1u);
  EXPECT_EQ(sys->refused_moves(), 1u);
  sys->end(first);
  auto third = sys->move("c", 2);
  EXPECT_TRUE(third.granted);
  EXPECT_EQ(sys->location("c"), 2u);
  sys->end(third);
}

TEST(LiveSystemTest, ConventionalMoveAlwaysSteals) {
  auto sys = make_system(3, /*placement=*/false);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  auto first = sys->move("c", 1);
  auto second = sys->move("c", 2);
  EXPECT_TRUE(first.granted);
  EXPECT_TRUE(second.granted);
  EXPECT_EQ(sys->location("c"), 2u);  // stolen
  EXPECT_EQ(sys->refused_moves(), 0u);
}

TEST(LiveSystemTest, VisitMigratesBack) {
  auto sys = make_system(3);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  auto token = sys->visit("c", 2);
  ASSERT_TRUE(token.granted);
  EXPECT_EQ(sys->location("c"), 2u);
  sys->invoke_from(2, "c", "inc", "");
  sys->end(token);
  EXPECT_EQ(sys->location("c"), 0u);  // back home
  EXPECT_EQ(sys->invoke("c", "get", "").value, "1");  // state survived both trips
  EXPECT_EQ(sys->migrations(), 2u);
}

TEST(LiveSystemTest, VisitOfClusterReturnsEveryMember) {
  auto sys = make_system(4);
  ASSERT_TRUE(sys->create("a", counter_state(), 0));
  ASSERT_TRUE(sys->create("b", counter_state(), 1));
  sys->attach("a", "b");
  auto token = sys->visit("a", 3);
  EXPECT_EQ(sys->location("a"), 3u);
  EXPECT_EQ(sys->location("b"), 3u);
  sys->end(token);
  EXPECT_EQ(sys->location("a"), 0u);
  EXPECT_EQ(sys->location("b"), 1u);  // each member returns to ITS origin
}

TEST(LiveSystemTest, RefusedVisitDoesNothingOnEnd) {
  auto sys = make_system(3);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  auto holder = sys->move("c", 1);
  auto refused = sys->visit("c", 2);
  EXPECT_FALSE(refused.granted);
  sys->end(refused);
  EXPECT_EQ(sys->location("c"), 1u);  // untouched
  sys->end(holder);
}

TEST(LiveSystemTest, ConcurrentInvokersSeeConsistentCounter) {
  auto sys = make_system(4);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sys] {
      for (int i = 0; i < kPerThread; ++i) sys->invoke("c", "inc", "");
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(sys->invoke("c", "get", "").value,
            std::to_string(kThreads * kPerThread));
}

TEST(LiveSystemTest, InvokeDuringMigrationNeverFails) {
  auto sys = make_system(4);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread invoker{[&] {
    while (!stop.load()) {
      if (!sys->invoke("c", "inc", "").ok) failures.fetch_add(1);
    }
  }};
  // Bounce the object around while it is being invoked.
  for (int i = 0; i < 50; ++i) sys->migrate("c", i % 4);
  stop.store(true);
  invoker.join();
  EXPECT_EQ(failures.load(), 0);
  // Only the very first migrate (0 → 0) is a no-op; the rest all relocate.
  EXPECT_EQ(sys->migrations(), 49u);
}

TEST(LiveNodeTest, DoubleStartAndDoubleStopAreIdempotent) {
  const std::unordered_map<std::string, ObjectFactory> factories;
  LiveNode node{0, &factories};
  EXPECT_FALSE(node.running());
  node.start();
  node.start();  // no-op
  EXPECT_TRUE(node.running());
  node.stop();
  node.stop();  // no-op
  EXPECT_FALSE(node.running());
  node.start();  // restartable after a graceful stop
  EXPECT_TRUE(node.running());
}

TEST(LiveNodeTest, ConcurrentStartStopCyclesAreSafe) {
  const std::unordered_map<std::string, ObjectFactory> factories;
  LiveNode node{0, &factories};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&node] {
      for (int i = 0; i < 25; ++i) {
        node.start();
        node.stop();
      }
    });
  }
  for (auto& t : threads) t.join();
  node.stop();
  EXPECT_FALSE(node.running());
}

TEST(LiveNodeTest, CrashAndRestartOnStoppedNodeAreNoops) {
  const std::unordered_map<std::string, ObjectFactory> factories;
  LiveNode node{0, &factories};
  node.crash();  // not running: nothing to kill
  EXPECT_FALSE(node.running());
  node.start();
  node.restart();  // still running: nothing to do
  EXPECT_TRUE(node.running());
  node.crash();
  EXPECT_FALSE(node.running());
  node.restart();
  EXPECT_TRUE(node.running());
  EXPECT_EQ(node.hosted_objects(), 0u);  // crash dropped all state
}

TEST(LiveSystemTest, StopIsIdempotentAndConcurrent) {
  auto sys = make_system(3);
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  EXPECT_TRUE(sys->invoke("c", "inc", "").ok);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&sys] { sys->stop(); });
  }
  for (auto& t : stoppers) t.join();
  sys->stop();  // and once more for good measure
  sys.reset();  // destructor's stop() is also a no-op
}

}  // namespace
}  // namespace omig::runtime
