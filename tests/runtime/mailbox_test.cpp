#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

namespace omig::runtime {
namespace {

TEST(MailboxTest, PushPopSingleThread) {
  Mailbox<int> box;
  EXPECT_EQ(box.push(1), PushStatus::Ok);
  EXPECT_EQ(box.push(2), PushStatus::Ok);
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.pop(), 1);
  EXPECT_EQ(box.pop(), 2);
}

TEST(MailboxTest, CloseDrainsThenSignalsShutdown) {
  Mailbox<int> box;
  box.push(42);
  box.close();
  EXPECT_EQ(box.push(43), PushStatus::Closed);
  EXPECT_EQ(box.pop(), 42);    // pending message still delivered
  EXPECT_EQ(box.pop(), std::nullopt);
}

TEST(MailboxTest, PopBlocksUntilPush) {
  Mailbox<int> box;
  std::thread producer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(7);
  }};
  EXPECT_EQ(box.pop(), 7);
  producer.join();
}

TEST(MailboxTest, CloseWakesBlockedConsumer) {
  Mailbox<int> box;
  std::thread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  }};
  EXPECT_EQ(box.pop(), std::nullopt);
  closer.join();
}

TEST(MailboxTest, ManyProducersOneConsumer) {
  Mailbox<int> box;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box] {
      for (int i = 0; i < kPerProducer; ++i) box.push(1);
    });
  }
  long long sum = 0;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    sum += box.pop().value();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, kProducers * kPerProducer);
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxTest, MoveOnlyPayloads) {
  Mailbox<std::unique_ptr<int>> box;
  box.push(std::make_unique<int>(5));
  auto out = box.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

TEST(MailboxTest, CloseIsIdempotent) {
  Mailbox<int> box;
  box.push(1);
  box.close();
  box.close();  // second close must be a harmless no-op
  EXPECT_TRUE(box.closed());
  EXPECT_EQ(box.push(2), PushStatus::Closed);
  EXPECT_EQ(box.pop(), 1);
  EXPECT_EQ(box.pop(), std::nullopt);
}

TEST(MailboxTest, CloseAndDiscardDropsPendingMessages) {
  Mailbox<int> box;
  box.push(1);
  box.push(2);
  EXPECT_EQ(box.close_and_discard(), 2u);
  EXPECT_EQ(box.size(), 0u);
  EXPECT_EQ(box.pop(), std::nullopt);  // nothing delivered
}

TEST(MailboxTest, CloseAndDiscardBreaksCarriedPromises) {
  // A crash destroys queued messages; any promise they carried breaks, so
  // a sender blocked on the reply future observes the failure.
  Mailbox<std::promise<int>> box;
  std::promise<int> p;
  std::future<int> reply = p.get_future();
  box.push(std::move(p));
  box.close_and_discard();
  EXPECT_THROW(reply.get(), std::future_error);
}

TEST(MailboxTest, ReopenRearmsAClosedMailbox) {
  Mailbox<int> box;
  box.push(1);
  box.close_and_discard();
  EXPECT_EQ(box.push(2), PushStatus::Closed);
  box.reopen();
  EXPECT_FALSE(box.closed());
  EXPECT_EQ(box.push(3), PushStatus::Ok);
  EXPECT_EQ(box.pop(), 3);  // nothing from before the restart survives
}

TEST(MailboxTest, ConcurrentClosersAndProducersAreSafe) {
  // close() racing push() from many threads: every push either lands before
  // the close (accepted) or after (rejected) — never crashes or deadlocks.
  for (int round = 0; round < 20; ++round) {
    Mailbox<int> box;
    std::atomic<int> accepted{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < 4; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          if (box.push(i) == PushStatus::Ok) accepted.fetch_add(1);
        }
      });
    }
    threads.emplace_back([&] { box.close(); });
    threads.emplace_back([&] { box.close(); });
    for (auto& t : threads) t.join();
    int drained = 0;
    while (box.pop().has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load());  // accepted messages all deliver
    EXPECT_TRUE(box.closed());
  }
}

TEST(MailboxTest, CloseRacingBlockedConsumerAlwaysWakes) {
  for (int round = 0; round < 50; ++round) {
    Mailbox<int> box;
    std::thread consumer{[&] {
      while (box.pop().has_value()) {
      }
    }};
    box.push(round);
    box.close();
    consumer.join();  // must terminate: close wakes the blocked pop
  }
}

}  // namespace
}  // namespace omig::runtime
