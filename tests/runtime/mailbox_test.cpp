#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace omig::runtime {
namespace {

TEST(MailboxTest, PushPopSingleThread) {
  Mailbox<int> box;
  EXPECT_TRUE(box.push(1));
  EXPECT_TRUE(box.push(2));
  EXPECT_EQ(box.size(), 2u);
  EXPECT_EQ(box.pop(), 1);
  EXPECT_EQ(box.pop(), 2);
}

TEST(MailboxTest, CloseDrainsThenSignalsShutdown) {
  Mailbox<int> box;
  box.push(42);
  box.close();
  EXPECT_FALSE(box.push(43));  // closed
  EXPECT_EQ(box.pop(), 42);    // pending message still delivered
  EXPECT_EQ(box.pop(), std::nullopt);
}

TEST(MailboxTest, PopBlocksUntilPush) {
  Mailbox<int> box;
  std::thread producer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.push(7);
  }};
  EXPECT_EQ(box.pop(), 7);
  producer.join();
}

TEST(MailboxTest, CloseWakesBlockedConsumer) {
  Mailbox<int> box;
  std::thread closer{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  }};
  EXPECT_EQ(box.pop(), std::nullopt);
  closer.join();
}

TEST(MailboxTest, ManyProducersOneConsumer) {
  Mailbox<int> box;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box] {
      for (int i = 0; i < kPerProducer; ++i) box.push(1);
    });
  }
  long long sum = 0;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    sum += box.pop().value();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(sum, kProducers * kPerProducer);
  EXPECT_EQ(box.size(), 0u);
}

TEST(MailboxTest, MoveOnlyPayloads) {
  Mailbox<std::unique_ptr<int>> box;
  box.push(std::make_unique<int>(5));
  auto out = box.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

}  // namespace
}  // namespace omig::runtime
