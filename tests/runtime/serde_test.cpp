#include "runtime/serde.hpp"

#include <gtest/gtest.h>

namespace omig::runtime {
namespace {

ObjectState sample_state() {
  ObjectState s;
  s.type = "cart";
  s.fields["items"] = "a,b,c";
  s.fields["owner"] = "alice";
  s.fields["empty"] = "";
  return s;
}

TEST(SerdeTest, RoundTrip) {
  const ObjectState original = sample_state();
  const auto bytes = encode(original);
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, original.type);
  EXPECT_EQ(decoded->fields, original.fields);
}

TEST(SerdeTest, EmptyStateRoundTrips) {
  ObjectState s;
  s.type = "x";
  const auto decoded = decode(encode(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, "x");
  EXPECT_TRUE(decoded->fields.empty());
}

TEST(SerdeTest, BinarySafeValues) {
  ObjectState s;
  s.type = "blob";
  s.fields["data"] = std::string{"\0\x01\xff zero", 8};
  const auto decoded = decode(encode(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->fields.at("data"), s.fields.at("data"));
}

TEST(SerdeTest, TruncatedBufferRejected) {
  auto bytes = encode(sample_state());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{bytes.data(), cut};
    EXPECT_FALSE(decode(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(SerdeTest, TrailingGarbageRejected) {
  auto bytes = encode(sample_state());
  bytes.push_back(0x42);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(SerdeTest, OverlongLengthRejected) {
  // Claim a 2^31-byte type on a 16-byte buffer.
  std::vector<std::uint8_t> bytes{0x00, 0x00, 0x00, 0x80};
  bytes.resize(16, 0);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(SerdeTest, EmptyBufferRejected) {
  EXPECT_FALSE(decode({}).has_value());
}

TEST(SerdeTest, EncodingIsLengthPrefixed) {
  ObjectState s;
  s.type = "ab";
  const auto bytes = encode(s);
  // u32(2) + "ab" + u32(0 fields) = 10 bytes.
  ASSERT_EQ(bytes.size(), 10u);
  EXPECT_EQ(bytes[0], 2u);
  EXPECT_EQ(bytes[4], 'a');
  EXPECT_EQ(bytes[5], 'b');
}

}  // namespace
}  // namespace omig::runtime
