#include "trace/log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace omig::trace {
namespace {

using objsys::BlockId;
using objsys::NodeId;
using objsys::ObjectId;

Event ev(double t, EventKind kind, std::uint32_t obj = 0,
         std::uint32_t blk = 0) {
  return Event{t, kind, ObjectId{obj}, NodeId{0}, BlockId{blk}};
}

TEST(TraceLogTest, RecordsInOrder) {
  TraceLog log;
  log.record(ev(1.0, EventKind::BlockBegin));
  log.record(ev(2.0, EventKind::MoveRequest));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events().front().kind, EventKind::BlockBegin);
  EXPECT_EQ(log.events().back().kind, EventKind::MoveRequest);
  EXPECT_EQ(log.recorded(), 2u);
  EXPECT_FALSE(log.truncated());
}

TEST(TraceLogTest, RingBufferDropsOldest) {
  TraceLog log{3};
  for (int i = 0; i < 5; ++i) {
    log.record(ev(static_cast<double>(i), EventKind::MoveRequest));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_TRUE(log.truncated());
  EXPECT_DOUBLE_EQ(log.events().front().time, 2.0);
}

TEST(TraceLogTest, QueriesFilter) {
  TraceLog log;
  log.record(ev(1.0, EventKind::Lock, 7, 1));
  log.record(ev(2.0, EventKind::Lock, 8, 1));
  log.record(ev(3.0, EventKind::Unlock, 7, 1));
  EXPECT_EQ(log.count(EventKind::Lock), 2u);
  EXPECT_EQ(log.of_kind(EventKind::Unlock).size(), 1u);
  EXPECT_EQ(log.for_object(ObjectId{7}).size(), 2u);
}

TEST(TraceLogTest, RenderMentionsKinds) {
  TraceLog log;
  log.record(ev(1.5, EventKind::MigrationStart, 3, 2));
  const std::string text = log.render();
  EXPECT_NE(text.find("migration-start"), std::string::npos);
  EXPECT_NE(text.find("t=1.5"), std::string::npos);
}

TEST(TraceLogTest, RenderTruncatesLongLogs) {
  TraceLog log;
  for (int i = 0; i < 300; ++i) log.record(ev(i, EventKind::MoveRequest));
  const std::string text = log.render(10);
  EXPECT_NE(text.find("earlier events)"), std::string::npos);
}

TEST(TraceLogTest, ClearResets) {
  TraceLog log;
  log.record(ev(1.0, EventKind::Fix));
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.recorded(), 0u);
}

TEST(TraceChecksTest, LocksBalanceDetectsDoubleLock) {
  TraceLog log;
  log.record(ev(1.0, EventKind::Lock, 1, 1));
  log.record(ev(2.0, EventKind::Lock, 1, 1));
  EXPECT_FALSE(check::locks_balance(log).empty());
}

TEST(TraceChecksTest, LocksBalanceDetectsSpuriousUnlock) {
  TraceLog log;
  log.record(ev(1.0, EventKind::Unlock, 1, 1));
  EXPECT_FALSE(check::locks_balance(log).empty());
}

TEST(TraceChecksTest, LocksBalanceAllowsOpenLocksByDefault) {
  TraceLog log;
  log.record(ev(1.0, EventKind::Lock, 1, 1));
  EXPECT_TRUE(check::locks_balance(log).empty());
  EXPECT_FALSE(check::locks_balance(log, /*allow_open=*/false).empty());
}

TEST(TraceChecksTest, TransitsAlternate) {
  TraceLog log;
  log.record(ev(1.0, EventKind::MigrationStart, 1));
  log.record(ev(2.0, EventKind::MigrationEnd, 1));
  log.record(ev(3.0, EventKind::MigrationStart, 1));
  EXPECT_TRUE(check::transits_alternate(log).empty());
  log.record(ev(4.0, EventKind::MigrationStart, 1));  // nested: violation
  EXPECT_FALSE(check::transits_alternate(log).empty());
}

TEST(TraceChecksTest, RefusedBlocksNeverMigrate) {
  TraceLog log;
  log.record(ev(1.0, EventKind::MoveRefused, 1, 5));
  log.record(ev(2.0, EventKind::MigrationStart, 1, 6));  // different block
  EXPECT_TRUE(check::refused_blocks_never_migrate(log).empty());
  log.record(ev(3.0, EventKind::MigrationStart, 1, 5));  // violation
  EXPECT_FALSE(check::refused_blocks_never_migrate(log).empty());
}

TEST(TraceLogTest, JsonlExport) {
  TraceLog log;
  log.record(ev(1.5, EventKind::MigrationStart, 3, 2));
  log.record(Event{2.0, EventKind::Fix, ObjectId{4}, NodeId::invalid(),
                   BlockId::invalid()});
  std::ostringstream os;
  EXPECT_EQ(log.to_jsonl(os), 2u);
  const std::string out = os.str();
  EXPECT_NE(out.find("{\"t\":1.5,\"kind\":\"migration-start\",\"obj\":3"),
            std::string::npos);
  // Invalid operands are omitted entirely.
  EXPECT_NE(out.find("{\"t\":2,\"kind\":\"fix\",\"obj\":4}"),
            std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(TraceLogTest, ChromeJsonExport) {
  TraceLog log;
  log.record(ev(1.5, EventKind::MigrationStart, 3, 2));
  log.record(ev(4.0, EventKind::MigrationEnd, 3, 2));
  log.record(Event{5.0, EventKind::Lock, ObjectId{4}, NodeId{1},
                   BlockId{9}});
  std::ostringstream os;
  EXPECT_EQ(log.to_chrome_json(os), 3u);
  const std::string out = os.str();
  // Wrapped as one trace object, times scaled to microseconds.
  EXPECT_EQ(out.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  // The transit is an async begin/end pair keyed by the object id.
  EXPECT_NE(out.find("\"name\":\"transit\",\"pid\":0,\"tid\":0,"
                     "\"ts\":1500,\"ph\":\"b\",\"cat\":\"migration\","
                     "\"id\":3"),
            std::string::npos);
  EXPECT_NE(out.find("\"ts\":4000,\"ph\":\"e\""), std::string::npos);
  // Everything else is an instant event on its node's row.
  EXPECT_NE(out.find("\"name\":\"lock\",\"pid\":0,\"tid\":1,\"ts\":5000,"
                     "\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(out.find("\"blk\":9"), std::string::npos);
  // Balanced JSON array + object close.
  EXPECT_NE(out.find("\n]}\n"), std::string::npos);
}

TEST(TraceLogTest, ZeroCapacityRejected) {
  EXPECT_THROW(TraceLog{0}, omig::AssertionError);
}

}  // namespace
}  // namespace omig::trace
