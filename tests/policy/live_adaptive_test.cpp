// Adaptive placement on the live runtime (docs/policies.md): the same
// EMA + hysteresis decision the simulator makes, on real threads — plus
// the transport-parity check that one workload yields one protocol trace
// whether the messages travel in-process or over TCP.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/live_system.hpp"
#include "trace/log.hpp"

namespace omig::runtime {
namespace {

ObjectFactory counter_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("add", [](ObjectState& self, const std::string&) {
      self.fields["count"] += "x";
      return self.fields["count"];
    });
    return obj;
  };
}

ObjectState counter_state() {
  ObjectState s;
  s.type = "counter";
  s.fields["count"] = "";
  return s;
}

LiveSystem::Options adaptive_opts(MovePolicy policy, std::size_t nodes = 3) {
  LiveSystem::Options opts;
  opts.nodes = nodes;
  opts.policy = policy;
  return opts;
}

TEST(LiveAdaptiveTest, MovesTowardTheDominantCallerNotTheRequestedDest) {
  LiveSystem sys{adaptive_opts(MovePolicy::Adaptive)};
  sys.register_type("counter", counter_factory());
  sys.start();
  ASSERT_TRUE(sys.create("obj", counter_state(), 0));
  for (int i = 0; i < 8; ++i) sys.invoke_from(2, "obj", "add", "");

  // Node 1 asks for the object; the EMA says node 2 is where it belongs.
  auto token = sys.move("obj", 1);
  EXPECT_TRUE(token.granted);
  EXPECT_EQ(sys.location("obj"), std::size_t{2});
  EXPECT_EQ(sys.policy_migrations(), 1u);
  EXPECT_EQ(sys.policy_suppressed_hysteresis(), 0u);
  EXPECT_EQ(sys.ema_updates(), 8u);
  sys.end(token);
  sys.stop();
}

TEST(LiveAdaptiveTest, HysteresisKeepsAnEvenlySharedObjectHome) {
  LiveSystem sys{adaptive_opts(MovePolicy::Adaptive)};
  sys.register_type("counter", counter_factory());
  sys.start();
  // The object lives with one of its two callers, who take strict turns:
  // the other caller's EMA lead (~0.05) never clears the 0.2 band.
  ASSERT_TRUE(sys.create("obj", counter_state(), 1));
  for (int i = 0; i < 12; ++i) {
    sys.invoke_from(1 + static_cast<std::size_t>(i % 2), "obj", "add", "");
  }
  auto token = sys.move("obj", 2);
  EXPECT_TRUE(token.granted);  // the block itself proceeds (remote calls)
  EXPECT_EQ(sys.location("obj"), std::size_t{1});
  EXPECT_EQ(sys.policy_migrations(), 0u);
  EXPECT_GE(sys.policy_suppressed_hysteresis(), 1u);
  sys.end(token);

  // Keep alternating move()s from both callers: the object must not
  // ping-pong (the satellite regression, live edition).
  for (int round = 0; round < 8; ++round) {
    const std::size_t caller = 1 + static_cast<std::size_t>(round % 2);
    sys.invoke_from(caller, "obj", "add", "");
    auto t = sys.move("obj", caller);
    sys.end(t);
  }
  EXPECT_EQ(sys.policy_migrations(), 0u);
  EXPECT_EQ(sys.policy_reversals(), 0u);
  EXPECT_EQ(sys.location("obj"), std::size_t{1});
  sys.stop();
}

TEST(LiveAdaptiveTest, LoadVetoSuppressesMovesIntoACrowdedNode) {
  LiveSystem sys{adaptive_opts(MovePolicy::AdaptiveLoad)};
  sys.register_type("counter", counter_factory());
  sys.start();
  ASSERT_TRUE(sys.create("obj", counter_state(), 0));
  // 8 bystanders on node 2: 9 objects over 3 nodes, mean 3, cap 6 — node 2
  // would host 9 > 6 after the move.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        sys.create("ballast" + std::to_string(i), counter_state(), 2));
  }
  for (int i = 0; i < 8; ++i) sys.invoke_from(2, "obj", "add", "");
  auto token = sys.move("obj", 2);
  EXPECT_EQ(sys.location("obj"), std::size_t{0});
  EXPECT_GE(sys.policy_suppressed_load(), 1u);
  EXPECT_EQ(sys.policy_migrations(), 0u);
  sys.end(token);
  sys.stop();
}

// One single-threaded workload, recorded at the directory layer on the
// logical clock, must yield the identical protocol trace under the InProc
// and the Tcp transport (live_system.hpp's determinism contract) — now
// including the adaptive decision events (refusals, EMA-directed
// migrations).
std::vector<trace::Event> traced_workload(TransportKind transport) {
  trace::TraceLog log;
  LiveSystem::Options opts = adaptive_opts(MovePolicy::Adaptive);
  opts.transport = transport;
  opts.trace = &log;
  LiveSystem sys{opts};
  sys.register_type("counter", counter_factory());
  sys.start();
  sys.create("obj", counter_state(), 0);
  sys.create("peer", counter_state(), 1);
  sys.attach("obj", "peer");
  for (int i = 0; i < 3; ++i) sys.invoke_from(2, "obj", "add", "");
  auto refused = sys.move("obj", 1);  // EMA weight still below the gate...
  sys.end(refused);
  for (int i = 0; i < 6; ++i) sys.invoke_from(2, "obj", "add", "");
  auto granted = sys.move("obj", 1);  // ...then the EMA sends it to node 2
  for (int i = 0; i < 2; ++i) sys.invoke_from(2, "obj", "add", "");
  sys.end(granted);
  sys.stop();
  return log.events();
}

TEST(LiveAdaptiveTest, TraceIsIdenticalAcrossTransports) {
  const std::vector<trace::Event> inproc = traced_workload(TransportKind::InProc);
  const std::vector<trace::Event> tcp = traced_workload(TransportKind::Tcp);
  ASSERT_FALSE(inproc.empty());
  ASSERT_EQ(inproc.size(), tcp.size());
  for (std::size_t i = 0; i < inproc.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "event " << i);
    EXPECT_EQ(inproc[i].time, tcp[i].time);
    EXPECT_EQ(inproc[i].kind, tcp[i].kind);
    EXPECT_EQ(inproc[i].object, tcp[i].object);
    EXPECT_EQ(inproc[i].node, tcp[i].node);
    EXPECT_EQ(inproc[i].block, tcp[i].block);
  }
  // The workload drove real adaptive decisions, not an empty trace.
  std::size_t migrations = 0;
  for (const trace::Event& e : inproc) {
    if (e.kind == trace::EventKind::MigrationEnd) ++migrations;
  }
  EXPECT_GE(migrations, 1u);
}

}  // namespace
}  // namespace omig::runtime
