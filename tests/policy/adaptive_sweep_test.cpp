// Golden determinism record for the adaptive policy kinds.
//
// Companion to tests/core/sweep_golden_test.cpp: the same canonicalised
// hexfloat rendering, but over an adaptive / adaptive-load fig-8 grid and
// extended with the omig_policy_* counters, proving that (a) the adaptive
// decision path consumes no randomness of its own and (b) a sweep over the
// new PolicyKinds is bit-identical at any worker-thread count.
//
// To regenerate after a legitimate functional change:
//   OMIG_PRINT_POLICY_GOLDEN=1 ./build/tests/test_policy
//       --gtest_filter='AdaptiveSweepGoldenTest.*'
// and paste the output over the raw string below (say so in the commit).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/sweep.hpp"

namespace omig::core {
namespace {

stats::StoppingRule tiny_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 200;
  rule.max_observations = 500;
  return rule;
}

std::vector<SweepVariant> adaptive_variants() {
  return {
      {"adaptive",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Adaptive);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
      {"adaptive-load",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::AdaptiveLoad);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
  };
}

const std::vector<double> kXs{5.0, 30.0, 80.0};

void canonicalise(std::ostream& os, const std::vector<SweepPoint>& points) {
  os << std::hexfloat;
  for (const auto& p : points) {
    os << "x=" << p.x << '\n';
    for (const auto& r : p.results) {
      os << "  tpc=" << r.total_per_call << " cd=" << r.call_duration
         << " mpc=" << r.migration_per_call << " blocks=" << r.blocks
         << " calls=" << r.calls << " migr=" << r.migrations
         << " ctrl=" << r.control_messages << " events=" << r.events
         << " t=" << r.sim_time << " pm=" << r.policy_migrations
         << " ph=" << r.policy_suppressed_hysteresis
         << " pl=" << r.policy_suppressed_load
         << " pr=" << r.policy_reversals << " ema=" << r.ema_updates << '\n';
    }
  }
}

std::string golden_run(std::uint64_t base_seed, int threads) {
  const auto variants = adaptive_variants();
  SweepOptions opts;
  opts.threads = threads;
  opts.base_seed = base_seed;
  const auto points = run_sweep(kXs, variants, opts);
  std::ostringstream os;
  os << "seed=" << std::hex << base_seed << std::dec
     << " threads=" << threads << '\n';
  canonicalise(os, points);
  os << sweep_table("t_m", variants, points, Metric::TotalPerCall).to_text();
  return os.str();
}

// Captured when the adaptive kinds were introduced; regenerated only on
// functional changes (docs/performance.md).
const char* const kGolden = R"GOLD(seed=1 threads=1
x=0x1.4p+2
  tpc=0x1.614815c264a3bp+0 cd=0x1.1fb0b8725b6ccp+0 mpc=0x1.065d754024db4p-2 blocks=500 calls=3871 migr=126 ctrl=569 events=10418 t=0x1.1371465f83166p+12 pm=151 ph=92 pl=0 pr=58 ema=4416
  tpc=0x1.5e1a7f7824d46p+0 cd=0x1.1ddc347c364c2p+0 mpc=0x1.00f92befba21ep-2 blocks=500 calls=4244 migr=137 ctrl=558 events=11031 t=0x1.2d0feb34b967fp+12 pm=165 ph=46 pl=7 pr=62 ema=4723
x=0x1.ep+4
  tpc=0x1.8446c7440bb12p+0 cd=0x1.3d0e50a6ba385p+0 mpc=0x1.1ce1da7545e24p-2 blocks=500 calls=4287 migr=146 ctrl=523 events=11019 t=0x1.1e55d570b6bb7p+13 pm=159 ph=65 pl=0 pr=73 ema=4480
  tpc=0x1.848e3834b205fp+0 cd=0x1.3ea9f8813871fp+0 mpc=0x1.1790fecde6501p-2 blocks=500 calls=4042 migr=144 ctrl=531 events=10620 t=0x1.1556d7aab3d44p+13 pm=152 ph=54 pl=7 pr=82 ema=4244
x=0x1.4p+6
  tpc=0x1.7fcf81e917fabp+0 cd=0x1.31cb94681750dp+0 mpc=0x1.380fb60402a79p-2 blocks=500 calls=3872 migr=156 ctrl=521 events=10086 t=0x1.0883b8a45845bp+14 pm=160 ph=62 pl=0 pr=81 ema=4034
  tpc=0x1.ab3e681015b78p+0 cd=0x1.633da9d0a3329p+0 mpc=0x1.2002f8fdca13p-2 blocks=448 calls=3757 migr=133 ctrl=465 events=10291 t=0x1.e7c106390b2f3p+13 pm=140 ph=49 pl=29 pr=61 ema=3926
    t_m  adaptive  adaptive-load
--------------------------------
 5.0000    1.3800         1.3676
30.0000    1.5167         1.5178
80.0000    1.4993         1.6689
)GOLD";

TEST(AdaptiveSweepGoldenTest, AdaptiveKindsMatchTheRecordBitForBit) {
  const std::string one = golden_run(0x1ULL, 1);
  if (std::getenv("OMIG_PRINT_POLICY_GOLDEN") != nullptr) {
    std::fputs(one.c_str(), stdout);
  }
  EXPECT_EQ(one, kGolden);
  // The 8-thread grid reproduces the sequential record byte for byte
  // (modulo the `threads=` header, which names the worker count).
  const std::string eight = golden_run(0x1ULL, 8);
  EXPECT_EQ(eight.substr(eight.find('\n')),
            std::string{kGolden}.substr(std::string{kGolden}.find('\n')));
}

TEST(AdaptiveSweepGoldenTest, ThreadCountNeverChangesAdaptiveResults) {
  // Same invariant for seeds and thread counts not pinned in the record.
  for (const std::uint64_t seed : {0xfeedc0deULL, 0xabad1deaULL}) {
    const std::string one = golden_run(seed, 1);
    const std::string five = golden_run(seed, 5);
    EXPECT_EQ(one.substr(one.find('\n')), five.substr(five.find('\n')))
        << "adaptive sweep diverged across thread counts for seed " << seed;
  }
}

TEST(AdaptiveSweepGoldenTest, AdaptiveTelemetryIsLive) {
  // The fig-8 goal-conflict workload must actually exercise the decision
  // path: EMA updates on every invocation and at least one suppressed or
  // triggered migration — otherwise the golden pins a dead feature.
  ExperimentConfig cfg = fig8_config(5.0, migration::PolicyKind::Adaptive);
  cfg.stopping = tiny_rule();
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.ema_updates, 0u);
  EXPECT_GT(r.policy_migrations + r.policy_suppressed_hysteresis, 0u);
}

}  // namespace
}  // namespace omig::core
