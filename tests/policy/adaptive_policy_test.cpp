// Adaptive placement policy decision tests (docs/policies.md): migrate
// toward the EMA-dominant caller, but only when the margin clears the
// hysteresis band, the EMA carries enough weight, and (for the load-aware
// variant) the destination is not already overloaded.
#include <gtest/gtest.h>

#include "../migration/fixture.hpp"
#include "migration/policy.hpp"
#include "objsys/locality.hpp"
#include "util/assert.hpp"

namespace omig::migration {
namespace {

using objsys::LocalityTracker;
using objsys::NodeId;
using testing::MigrationFixture;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

/// Feeds `count` accesses to `o` from `caller` into the fixture's tracker.
void access(LocalityTracker& tracker, ObjectId o, NodeId caller, int count) {
  for (int i = 0; i < count; ++i) tracker.record(o, caller);
}

TEST(AdaptivePolicyTest, RequiresALocalityTracker) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  EXPECT_THROW(f.engine.run(), AssertionError);
}

TEST(AdaptivePolicyTest, MigratesTowardTheDominantCallerNotTheRequester) {
  MigrationFixture f;
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  // Node 2 dominates the recent accesses; node 1 issues the move().
  access(tracker, o, f.node(2), 8);
  MoveBlock blk = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  // The requested destination is advisory: the object lands at node 2.
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 1u);
  EXPECT_EQ(f.manager.policy_counters().suppressed_hysteresis, 0u);
}

TEST(AdaptivePolicyTest, StaysWhenTheHostAlreadyDominates) {
  MigrationFixture f;
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  access(tracker, o, f.node(0), 8);
  MoveBlock blk = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 0u);
}

TEST(AdaptivePolicyTest, MinWeightGateBlocksASingleAccess) {
  MigrationFixture f;  // default adaptive_min_weight = 4.0
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  access(tracker, o, f.node(2), 1);  // weight 1 < 4
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_EQ(f.manager.policy_counters().suppressed_hysteresis, 1u);
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 0u);
}

TEST(AdaptivePolicyTest, HysteresisSuppressesAThinMargin) {
  MigrationFixture f;  // default hysteresis_band = 0.2
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  // The host and node 2 alternate strictly: with decay 0.9 the latest
  // caller (node 2) leads the host by share 1/(1+0.9) - 0.9/(1+0.9)
  // ~= 0.053, far under the 0.2 band.
  for (int i = 0; i < 12; ++i) {
    tracker.record(o, f.node(i % 2 == 0 ? 0u : 2u));
  }
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_EQ(f.manager.policy_counters().suppressed_hysteresis, 1u);
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 0u);
}

// The satellite regression: an object shared by two alternating callers
// must NOT ping-pong between them. With the hysteresis band in place the
// object never moves at all; with the band (and the min-weight gate)
// zeroed out, the same trace bounces the object on every block — which is
// exactly what the reversal counter exists to expose.
TEST(AdaptivePolicyTest, NoPingPongOnAlternatingTwoNodeTrace) {
  MigrationFixture f;
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  // The object lives with one of the two callers; they take strict turns.
  const ObjectId o = f.registry.create("o", f.node(1));
  for (int round = 0; round < 16; ++round) {
    const NodeId caller = f.node(round % 2 == 0 ? 1u : 2u);
    tracker.record(o, caller);
    MoveBlock blk = f.manager.new_block(caller, o);
    f.engine.spawn(run_block(*policy, blk));
    f.engine.run();
    policy->end_block(blk);
  }
  // Node 2's turns leave it dominant by only ~0.05 of the EMA mass, so
  // every candidate move is suppressed; node 1's turns find the dominant
  // node already hosting. The object never moves, so it cannot ping-pong.
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 0u);
  EXPECT_EQ(f.manager.policy_counters().pingpong_reversals, 0u);
  EXPECT_EQ(f.registry.location(o), f.node(1));
  EXPECT_EQ(f.manager.policy_counters().suppressed_hysteresis, 8u);
}

TEST(AdaptivePolicyTest, DisablingHysteresisReproducesThePingPong) {
  ManagerOptions opts;
  opts.hysteresis_band = 0.0;
  opts.adaptive_min_weight = 0.0;
  MigrationFixture f{4, opts};
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::Adaptive, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  for (int round = 0; round < 16; ++round) {
    const NodeId caller = f.node(1 + static_cast<std::uint32_t>(round % 2));
    tracker.record(o, caller);
    MoveBlock blk = f.manager.new_block(caller, o);
    f.engine.spawn(run_block(*policy, blk));
    f.engine.run();
    policy->end_block(blk);
  }
  // Every block migrates toward the latest caller; from the third block on
  // each move exactly undoes the previous one.
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 16u);
  EXPECT_GE(f.manager.policy_counters().pingpong_reversals, 14u);
}

TEST(AdaptiveLoadPolicyTest, OverloadedDominantNodeVetoesTheMove) {
  MigrationFixture f;  // default load_factor = 2.0
  LocalityTracker tracker{4};
  f.manager.set_locality_tracker(&tracker);
  const ObjectId o = f.registry.create("o", f.node(0));
  // Pile 11 bystander objects onto node 2: object_count 12 over 4 nodes is
  // a mean of 3, cap 6 — node 2 would host 12 > 6 after the move.
  for (int i = 0; i < 11; ++i) {
    f.registry.create("ballast" + std::to_string(i), f.node(2));
  }
  access(tracker, o, f.node(2), 8);

  auto load_aware = make_policy(PolicyKind::AdaptiveLoad, f.manager);
  MoveBlock blk = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*load_aware, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_EQ(f.manager.policy_counters().suppressed_load, 1u);
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 0u);

  // The plain adaptive policy ignores load and takes the same move.
  auto plain = make_policy(PolicyKind::Adaptive, f.manager);
  MoveBlock blk2 = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*plain, blk2));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 1u);
}

TEST(AdaptiveLoadPolicyTest, MeanLoadIsFlooredSoSparseSystemsStillMigrate) {
  // Regression: with fewer objects than nodes the raw mean is < 1 and a
  // load_factor cap below 1 would veto every migration. The floor keeps a
  // lone object free to join its dominant caller.
  MigrationFixture f{8};
  LocalityTracker tracker{8};
  f.manager.set_locality_tracker(&tracker);
  auto policy = make_policy(PolicyKind::AdaptiveLoad, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));  // 1 object, 8 nodes
  access(tracker, o, f.node(5), 8);
  MoveBlock blk = f.manager.new_block(f.node(5), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(5));
  EXPECT_EQ(f.manager.policy_counters().suppressed_load, 0u);
  EXPECT_EQ(f.manager.policy_counters().migrations_triggered, 1u);
}

}  // namespace
}  // namespace omig::migration
