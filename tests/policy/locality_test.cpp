// LocalityTracker unit tests: the per-object access-locality EMA that
// feeds the adaptive placement policies (docs/policies.md).
#include <gtest/gtest.h>

#include <cmath>

#include "objsys/locality.hpp"

namespace omig::objsys {
namespace {

ObjectId obj(std::uint32_t i) { return ObjectId{i}; }
NodeId node(std::uint32_t i) { return NodeId{i}; }

TEST(LocalityTrackerTest, UntouchedObjectHasNoEstimate) {
  LocalityTracker tracker{4};
  const LocalityEstimate est = tracker.estimate(obj(0), node(0));
  EXPECT_FALSE(est.dominant.valid());
  EXPECT_DOUBLE_EQ(est.share, 0.0);
  EXPECT_DOUBLE_EQ(est.weight, 0.0);
  EXPECT_EQ(tracker.updates(), 0u);
}

TEST(LocalityTrackerTest, DominantFollowsTheMajorityCaller) {
  LocalityTracker tracker{4};
  for (int i = 0; i < 6; ++i) tracker.record(obj(0), node(2));
  for (int i = 0; i < 2; ++i) tracker.record(obj(0), node(1));
  const LocalityEstimate est = tracker.estimate(obj(0), node(0));
  EXPECT_EQ(est.dominant, node(2));
  EXPECT_GT(est.share, 0.5);
  EXPECT_DOUBLE_EQ(est.host_share, 0.0);  // host never called
  EXPECT_EQ(tracker.updates(), 8u);
}

TEST(LocalityTrackerTest, HostShareReportsTheHostsSlice) {
  LocalityTracker tracker{4};
  for (int i = 0; i < 4; ++i) tracker.record(obj(0), node(1));
  const LocalityEstimate est = tracker.estimate(obj(0), node(1));
  EXPECT_EQ(est.dominant, node(1));
  EXPECT_DOUBLE_EQ(est.share, 1.0);
  EXPECT_DOUBLE_EQ(est.host_share, 1.0);
}

TEST(LocalityTrackerTest, EstimatesAreDeterministic) {
  // Two trackers fed the same sequence agree bit-for-bit — the property the
  // 1-vs-8-thread sweep goldens rely on. Also pins the documented tie rule:
  // the dominant scan keeps the first strict maximum, so equal scores
  // resolve to the lowest node index.
  LocalityTracker a{5, 0.8};
  LocalityTracker b{5, 0.8};
  const std::uint32_t callers[] = {4, 1, 1, 3, 0, 1, 4, 4, 2, 1, 4};
  for (std::uint32_t c : callers) {
    a.record(obj(0), node(c));
    b.record(obj(0), node(c));
  }
  const LocalityEstimate ea = a.estimate(obj(0), node(2));
  const LocalityEstimate eb = b.estimate(obj(0), node(2));
  EXPECT_EQ(ea.dominant, eb.dominant);
  EXPECT_EQ(ea.share, eb.share);          // exact: same float operations
  EXPECT_EQ(ea.host_share, eb.host_share);
  EXPECT_EQ(ea.weight, eb.weight);
}

TEST(LocalityTrackerTest, RecencyOutweighsHistory) {
  // 20 old accesses from node 1, then 8 recent from node 2: with decay
  // 0.9 the effective window is ~10 accesses, so node 2 takes over.
  LocalityTracker tracker{4, 0.9};
  for (int i = 0; i < 20; ++i) tracker.record(obj(0), node(1));
  EXPECT_EQ(tracker.estimate(obj(0), node(0)).dominant, node(1));
  for (int i = 0; i < 8; ++i) tracker.record(obj(0), node(2));
  const LocalityEstimate est = tracker.estimate(obj(0), node(0));
  EXPECT_EQ(est.dominant, node(2));
  EXPECT_GT(est.share, 0.5);
}

TEST(LocalityTrackerTest, WeightConvergesToTheEffectiveSampleSize) {
  // The effective sample size of an EMA with retention d converges to
  // 1/(1-d): 10 for the default decay of 0.9.
  LocalityTracker tracker{2, 0.9};
  tracker.record(obj(0), node(0));
  EXPECT_NEAR(tracker.estimate(obj(0), node(0)).weight, 1.0, 1e-9);
  for (int i = 0; i < 500; ++i) tracker.record(obj(0), node(0));
  EXPECT_NEAR(tracker.estimate(obj(0), node(0)).weight, 10.0, 1e-6);
}

TEST(LocalityTrackerTest, RenormalisationKeepsEstimatesFinite) {
  // With decay 0.2 the growing weight multiplies by 5 per access, so a few
  // hundred accesses cross the 1e100 renormalisation threshold many times.
  LocalityTracker tracker{3, 0.2};
  for (int i = 0; i < 2000; ++i) {
    tracker.record(obj(0), node(static_cast<std::uint32_t>(i % 2)));
  }
  const LocalityEstimate est = tracker.estimate(obj(0), node(2));
  EXPECT_TRUE(std::isfinite(est.share));
  EXPECT_TRUE(std::isfinite(est.weight));
  EXPECT_TRUE(est.dominant.valid());
  // The latest access came from node 1 and decay is aggressive: node 1
  // holds almost the whole window.
  EXPECT_EQ(est.dominant, node(1));
  EXPECT_GT(est.share, 0.7);
  // Effective sample size stays at the EMA's limit, 1/(1-0.2) = 1.25.
  EXPECT_NEAR(est.weight, 1.25, 1e-6);
}

TEST(LocalityTrackerTest, ObjectsAreTrackedIndependently) {
  LocalityTracker tracker{4};
  tracker.record(obj(0), node(1));
  tracker.record(obj(7), node(3));
  EXPECT_EQ(tracker.estimate(obj(0), node(0)).dominant, node(1));
  EXPECT_EQ(tracker.estimate(obj(7), node(0)).dominant, node(3));
  EXPECT_EQ(tracker.tracked_objects(), 2u);
}

TEST(LocalityTrackerTest, RejectsDegenerateParameters) {
  EXPECT_ANY_THROW(LocalityTracker(0, 0.9));
  EXPECT_ANY_THROW(LocalityTracker(4, 0.0));
  EXPECT_ANY_THROW(LocalityTracker(4, 1.0));
  EXPECT_ANY_THROW(LocalityTracker(4, -0.5));
}

}  // namespace
}  // namespace omig::objsys
