// Seed-fuzzed re-judgement of paper claim 3 (docs/policies.md): on the
// social scenario's goal-conflict traffic — many sources visit()-storming
// the same celebrity profiles — the adaptive policy, which suppresses
// migrations that lack a clear EMA majority, must never lose to the
// conventional move-always policy. 32 base seeds drawn from a fixed
// splitmix64 stream (same scheme as tests/integration/properties_test.cpp)
// so any failure reproduces; each failure names the seed.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "sim/random.hpp"

namespace omig::core {
namespace {

std::vector<std::uint64_t> fuzz_seeds(std::size_t count) {
  sim::SplitMix64 gen{0x5eedf0ccacc1a1edULL};
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(gen.next());
  return seeds;
}

ExperimentConfig social_config(migration::PolicyKind policy) {
  ExperimentConfig cfg;
  cfg.policy = policy;
  // A-transitive closures isolate the claim-3 comparison: under
  // unrestricted transitivity every move drags the whole connected social
  // graph along (claim 4's pathology) and both policies drown in transit.
  cfg.transitivity = migration::AttachTransitivity::ATransitive;
  cfg.scenario.name = "social";
  cfg.scenario.nodes = 4;
  cfg.scenario.sources = 8;
  cfg.scenario.objects = 24;
  cfg.scenario.rate = 0.08;
  cfg.stopping.relative_target = 0.2;
  cfg.stopping.min_observations = 120;
  cfg.stopping.max_observations = 400;
  // Conventional cells can collapse under the open-loop storms (in-flight
  // migrations pile up faster than they drain); bound the horizon the same
  // way the EXPERIMENTS.md grid does so those runs still terminate.
  cfg.max_time = 1500.0;
  return cfg;
}

TEST(AdaptiveFuzzTest, AdaptiveNeverWorseThanConventionalOnSocialConflict) {
  for (const std::uint64_t seed : fuzz_seeds(32)) {
    ExperimentConfig conv = social_config(migration::PolicyKind::Conventional);
    ExperimentConfig adap = social_config(migration::PolicyKind::Adaptive);
    conv.seed = seed;
    adap.seed = seed;
    const ExperimentResult rc = run_experiment(conv);
    const ExperimentResult ra = run_experiment(adap);
    // A conventional cell that collapsed (no blocks completed inside the
    // horizon) is the strongest possible loss: adaptive merely has to
    // finish work to win. Otherwise compare the per-call cost directly.
    if (rc.blocks == 0) {
      EXPECT_GT(ra.blocks, 0u)
          << "adaptive collapsed alongside conventional for seed " << seed;
    } else {
      EXPECT_LE(ra.total_per_call, rc.total_per_call)
          << "adaptive worse than conventional for seed " << seed;
    }
    // The celebrity storms arrive from every node, so no caller builds the
    // hysteresis margin: the adaptive policy must be migrating far less.
    EXPECT_LT(ra.migrations, rc.migrations) << "seed " << seed;
  }
}

TEST(AdaptiveFuzzTest, TelemetryAccountsForEveryDecision) {
  // Every opened block over a mutable object either migrates or is
  // suppressed; the counters in the result must reflect a live decision
  // path for every fuzzed seed (a zeroed counter set would mean the
  // tracker silently detached).
  for (const std::uint64_t seed : fuzz_seeds(8)) {
    ExperimentConfig cfg = social_config(migration::PolicyKind::Adaptive);
    cfg.seed = seed;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_GT(r.ema_updates, 0u) << "seed " << seed;
    EXPECT_GT(r.policy_migrations + r.policy_suppressed_hysteresis, 0u)
        << "seed " << seed;
    EXPECT_EQ(r.policy_suppressed_load, 0u)
        << "plain adaptive must never load-veto, seed " << seed;
  }
}

}  // namespace
}  // namespace omig::core
