#include "sim/gate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omig::sim {
namespace {

Task wait_then_log(Engine& eng, Gate& gate, std::vector<double>& log,
                   double id) {
  co_await gate.wait();
  log.push_back(id);
  (void)eng;
}

TEST(GateTest, OpenGateDoesNotSuspend) {
  Engine eng;
  Gate gate{eng};
  std::vector<double> log;
  eng.spawn(wait_then_log(eng, gate, log, 1.0));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
}

Task opener(Engine& eng, Gate& gate, SimTime at) {
  co_await eng.delay(at);
  gate.open();
}

TEST(GateTest, ClosedGateSuspendsUntilOpened) {
  Engine eng;
  Gate gate{eng};
  gate.close();
  std::vector<double> log;
  eng.spawn(wait_then_log(eng, gate, log, 1.0));
  eng.spawn(opener(eng, gate, 7.0));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(eng.now(), 7.0);
}

TEST(GateTest, OpenWakesAllWaiters) {
  Engine eng;
  Gate gate{eng};
  gate.close();
  std::vector<double> log;
  for (int i = 0; i < 4; ++i) {
    eng.spawn(wait_then_log(eng, gate, log, static_cast<double>(i)));
  }
  eng.run_until(1.0);
  EXPECT_EQ(gate.waiter_count(), 4u);
  eng.spawn(opener(eng, gate, 2.0));
  eng.run();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(gate.waiter_count(), 0u);
}

Task wait_recheck(Engine& eng, Gate& gate, int& wakeups) {
  while (!gate.is_open()) {
    co_await gate.wait();
    ++wakeups;
  }
  (void)eng;
}

Task open_close_open(Engine& eng, Gate& gate) {
  co_await eng.delay(1.0);
  gate.open();
  gate.close();  // close again before the waiter's re-check loop exits
  co_await eng.delay(1.0);
  gate.open();
}

TEST(GateTest, WaitersMustRecheckAfterWakeup) {
  Engine eng;
  Gate gate{eng};
  gate.close();
  int wakeups = 0;
  eng.spawn(wait_recheck(eng, gate, wakeups));
  eng.spawn(open_close_open(eng, gate));
  eng.run();
  EXPECT_EQ(wakeups, 2);
  EXPECT_TRUE(gate.is_open());
}

TEST(GateTest, StateQueries) {
  Engine eng;
  Gate gate{eng};
  EXPECT_TRUE(gate.is_open());
  gate.close();
  EXPECT_FALSE(gate.is_open());
  gate.open();
  EXPECT_TRUE(gate.is_open());
}

}  // namespace
}  // namespace omig::sim
