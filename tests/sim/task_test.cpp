#include "sim/task.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace omig::sim {
namespace {

Task immediate(int& out, int value) {
  out = value;
  co_return;
}

TEST(TaskTest, LazyStart) {
  int out = 0;
  Task t = immediate(out, 7);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
  EXPECT_EQ(out, 0);  // not started yet
  t.resume();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(out, 7);
}

TEST(TaskTest, MoveTransfersOwnership) {
  int out = 0;
  Task a = immediate(out, 1);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  b.resume();
  EXPECT_EQ(out, 1);
}

TEST(TaskTest, DestroyingUnstartedTaskIsSafe) {
  int out = 0;
  { Task t = immediate(out, 3); }
  EXPECT_EQ(out, 0);  // never ran, frame destroyed cleanly
}

Task parent(Engine& eng, int& out) {
  int inner = 0;
  co_await immediate(inner, 5);
  out = inner + 1;
  (void)eng;
}

TEST(TaskTest, AwaitChildTaskRunsSynchronously) {
  Engine eng;
  int out = 0;
  eng.spawn(parent(eng, out));
  eng.run();
  EXPECT_EQ(out, 6);
}

Task thrower() {
  throw std::logic_error{"child failed"};
  co_return;  // unreachable but makes this a coroutine
}

Task catcher(bool& caught) {
  try {
    co_await thrower();
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(TaskTest, AwaitPropagatesException) {
  Engine eng;
  bool caught = false;
  eng.spawn(catcher(caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, RethrowIfFailedOnDirectResume) {
  Task t = thrower();
  EXPECT_THROW(t.resume(), std::logic_error);
}

Task deep(Engine& eng, int levels, int& depth_reached) {
  if (levels > 0) {
    co_await deep(eng, levels - 1, depth_reached);
  } else {
    co_await eng.delay(1.0);
  }
  ++depth_reached;
}

TEST(TaskTest, DeeplyNestedAwaitChains) {
  Engine eng;
  int depth = 0;
  eng.spawn(deep(eng, 200, depth));
  eng.run();
  EXPECT_EQ(depth, 201);
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

}  // namespace
}  // namespace omig::sim
