#include "sim/when_all.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omig::sim {
namespace {

Task sleeper(Engine& eng, SimTime dt, int& done) {
  co_await eng.delay(dt);
  ++done;
}

Task join_and_stamp(Engine& eng, std::vector<Task> tasks, double& stamp) {
  co_await when_all(eng, std::move(tasks));
  stamp = eng.now();
}

TEST(WhenAllTest, CompletesAtTheLatestChild) {
  Engine eng;
  int done = 0;
  double stamp = -1.0;
  std::vector<Task> tasks;
  tasks.push_back(sleeper(eng, 3.0, done));
  tasks.push_back(sleeper(eng, 7.0, done));
  tasks.push_back(sleeper(eng, 1.0, done));
  eng.spawn(join_and_stamp(eng, std::move(tasks), stamp));
  eng.run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(stamp, 7.0);  // max, not sum (11.0)
}

TEST(WhenAllTest, EmptySetCompletesImmediately) {
  Engine eng;
  double stamp = -1.0;
  eng.spawn(join_and_stamp(eng, {}, stamp));
  eng.run();
  EXPECT_DOUBLE_EQ(stamp, 0.0);
}

TEST(WhenAllTest, SingleChild) {
  Engine eng;
  int done = 0;
  double stamp = -1.0;
  std::vector<Task> tasks;
  tasks.push_back(sleeper(eng, 5.0, done));
  eng.spawn(join_and_stamp(eng, std::move(tasks), stamp));
  eng.run();
  EXPECT_DOUBLE_EQ(stamp, 5.0);
}

Task nested_join(Engine& eng, double& stamp) {
  std::vector<Task> inner;
  int done = 0;
  inner.push_back(sleeper(eng, 2.0, done));
  inner.push_back(sleeper(eng, 4.0, done));
  co_await when_all(eng, std::move(inner));
  std::vector<Task> more;
  more.push_back(sleeper(eng, 3.0, done));
  co_await when_all(eng, std::move(more));
  stamp = eng.now();
}

TEST(WhenAllTest, SequentialJoinsCompose) {
  Engine eng;
  double stamp = -1.0;
  eng.spawn(nested_join(eng, stamp));
  eng.run();
  EXPECT_DOUBLE_EQ(stamp, 7.0);  // max(2,4) + 3
}

TEST(WhenAllTest, ManyChildren) {
  Engine eng;
  int done = 0;
  double stamp = -1.0;
  std::vector<Task> tasks;
  for (int i = 1; i <= 100; ++i) {
    tasks.push_back(sleeper(eng, static_cast<double>(i), done));
  }
  eng.spawn(join_and_stamp(eng, std::move(tasks), stamp));
  eng.run();
  EXPECT_EQ(done, 100);
  EXPECT_DOUBLE_EQ(stamp, 100.0);
}

}  // namespace
}  // namespace omig::sim
