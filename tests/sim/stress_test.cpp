// Randomised stress tests of the simulation kernel: many interleaved
// processes with random delays and gate traffic; structural invariants
// must hold for every seed.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/gate.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace omig::sim {
namespace {

Task random_walker(Engine& eng, Rng rng, int steps,
                   std::vector<double>& stamps) {
  for (int i = 0; i < steps; ++i) {
    co_await eng.delay(rng.exponential(1.0));
    stamps.push_back(eng.now());
  }
}

class EngineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStress, TimeIsMonotoneAcrossManyProcesses) {
  Engine eng;
  std::vector<double> stamps;
  for (int p = 0; p < 50; ++p) {
    eng.spawn(random_walker(eng, Rng{GetParam(), static_cast<std::uint64_t>(p)},
                            100, stamps));
  }
  eng.run();
  ASSERT_EQ(stamps.size(), 50u * 100u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    ASSERT_LE(stamps[i - 1], stamps[i]);
  }
}

Task ping_pong(Engine& eng, Gate& a, Gate& b, int rounds, int& count) {
  for (int i = 0; i < rounds; ++i) {
    while (!a.is_open()) co_await a.wait();
    a.close();
    b.open();
    ++count;
    co_await eng.delay(0.0);
  }
}

TEST_P(EngineStress, GatePingPongTerminates) {
  Engine eng;
  Gate a{eng}, b{eng};
  b.close();
  int count1 = 0, count2 = 0;
  eng.spawn(ping_pong(eng, a, b, 200, count1));
  eng.spawn(ping_pong(eng, b, a, 200, count2));
  eng.run();
  EXPECT_EQ(count1, 200);
  EXPECT_EQ(count2, 200);
}

Task spawn_tree(Engine& eng, Rng& rng, int depth, int& leaves) {
  if (depth == 0) {
    ++leaves;
    co_return;
  }
  co_await eng.delay(rng.exponential(0.5));
  // Children run as awaited sub-tasks (synchronous in the tree) plus one
  // detached sibling (spawned into the engine).
  co_await spawn_tree(eng, rng, depth - 1, leaves);
  eng.spawn(spawn_tree(eng, rng, depth - 1, leaves));
}

TEST_P(EngineStress, MixedAwaitAndSpawnTree) {
  Engine eng;
  Rng rng{GetParam(), 7};
  int leaves = 0;
  eng.spawn(spawn_tree(eng, rng, 10, leaves));
  eng.run();
  EXPECT_EQ(leaves, 1 << 10);  // every path reaches depth 0 exactly once
}

TEST_P(EngineStress, MidRunStopLeavesNoDanglingState) {
  Engine eng;
  std::vector<double> stamps;
  for (int p = 0; p < 20; ++p) {
    eng.spawn(random_walker(eng, Rng{GetParam(), static_cast<std::uint64_t>(p)},
                            1'000'000, stamps));  // effectively endless
  }
  eng.run_until(50.0);
  EXPECT_LE(eng.now(), 50.0);
  eng.clear();  // ASan/UBSan verify the frames unwind cleanly
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStress,
                         ::testing::Values(1ull, 42ull, 0xfeedfaceull));

}  // namespace
}  // namespace omig::sim
