#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/task.hpp"

namespace omig::sim {
namespace {

Task record_at(Engine& eng, SimTime dt, std::vector<double>& log,
               double value) {
  co_await eng.delay(dt);
  log.push_back(value);
}

TEST(EngineTest, StartsAtTimeZero) {
  Engine eng;
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(EngineTest, ProcessesEventsInTimeOrder) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 5.0, log, 5.0));
  eng.spawn(record_at(eng, 1.0, log, 1.0));
  eng.spawn(record_at(eng, 3.0, log, 3.0));
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 3.0);
  EXPECT_DOUBLE_EQ(log[2], 5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST(EngineTest, SimultaneousEventsRunInSpawnOrder) {
  Engine eng;
  std::vector<double> log;
  for (int i = 0; i < 5; ++i) {
    eng.spawn(record_at(eng, 2.0, log, static_cast<double>(i)));
  }
  eng.run();
  ASSERT_EQ(log.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(log[static_cast<std::size_t>(i)], i);
  }
}

Task chain(Engine& eng, std::vector<double>& log) {
  co_await eng.delay(1.0);
  log.push_back(eng.now());
  co_await eng.delay(2.0);
  log.push_back(eng.now());
  co_await eng.delay(0.0);
  log.push_back(eng.now());
}

TEST(EngineTest, DelaysAccumulate) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(chain(eng, log));
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  EXPECT_DOUBLE_EQ(log[1], 3.0);
  EXPECT_DOUBLE_EQ(log[2], 3.0);  // zero delay is allowed
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 1.0, log, 1.0));
  eng.spawn(record_at(eng, 10.0, log, 10.0));
  eng.run_until(5.0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 1.0);
  // The 10.0 event stays queued; a later run picks it up.
  eng.run();
  EXPECT_EQ(log.size(), 2u);
}

Task spawner(Engine& eng, std::vector<double>& log) {
  co_await eng.delay(1.0);
  eng.spawn(record_at(eng, 2.0, log, 42.0));
}

TEST(EngineTest, ProcessCanSpawnProcesses) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(spawner(eng, log));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 42.0);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

Task stopper(Engine& eng) {
  co_await eng.delay(2.0);
  eng.request_stop();
}

TEST(EngineTest, RequestStopHaltsTheLoop) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 10.0, log, 10.0));
  eng.spawn(stopper(eng));
  eng.run();
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(eng.stop_requested());
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
}

Task thrower(Engine& eng) {
  co_await eng.delay(1.0);
  throw std::runtime_error{"boom"};
}

TEST(EngineTest, RootExceptionIsRethrownFromRun) {
  Engine eng;
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

Task awaits_thrower(Engine& eng, bool& caught) {
  try {
    co_await thrower(eng);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(EngineTest, ChildExceptionPropagatesToAwaitingParent) {
  Engine eng;
  bool caught = false;
  eng.spawn(awaits_thrower(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(EngineTest, NegativeDelayIsRejected) {
  Engine eng;
  EXPECT_THROW((void)eng.delay(-1.0), AssertionError);
}

Task endless(Engine& eng) {
  for (;;) co_await eng.delay(1.0);
}

TEST(EngineTest, ClearTearsDownSuspendedProcesses) {
  Engine eng;
  eng.spawn(endless(eng));
  eng.run_until(100.0);
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);
  eng.clear();  // must not leak or crash (ASAN would flag it)
  eng.run();    // queue is empty now
  EXPECT_DOUBLE_EQ(eng.now(), 100.0);
}

TEST(EngineTest, EventsProcessedCounts) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 1.0, log, 1.0));
  eng.run();
  // Spawn wakeup + delay resume.
  EXPECT_GE(eng.events_processed(), 2u);
}

TEST(EngineTest, ManyProcessesRootPruning) {
  Engine eng;
  std::vector<double> log;
  // More than the lazy-prune threshold of roots, spawned over time.
  for (int i = 0; i < 500; ++i) {
    eng.spawn(record_at(eng, static_cast<double>(i), log, 1.0));
  }
  eng.run();
  EXPECT_EQ(log.size(), 500u);
}

}  // namespace
}  // namespace omig::sim
