#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/assert.hpp"

namespace omig::sim {
namespace {

TEST(RandomTest, UniformInUnitInterval) {
  Rng rng{42, 0};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, UniformMeanNearHalf) {
  Rng rng{42, 0};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RandomTest, SameSeedSameStream) {
  Rng a{7, 3};
  Rng b{7, 3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RandomTest, DifferentStreamsDiffer) {
  Rng a{7, 0};
  Rng b{7, 1};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, ExponentialMeanMatches) {
  Rng rng{123, 0};
  const double mean = 6.0;
  double sum = 0.0;
  const int n = 400'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(RandomTest, ExponentialIsNonNegative) {
  Rng rng{5, 0};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(RandomTest, ExponentialZeroMeanYieldsZero) {
  Rng rng{5, 0};
  EXPECT_DOUBLE_EQ(rng.exponential(0.0), 0.0);
}

TEST(RandomTest, ExponentialVarianceMatches) {
  // Var of exp(mean m) is m^2.
  Rng rng{99, 0};
  const double mean = 2.0;
  const int n = 400'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(mean);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(var, mean * mean, 0.1);
}

TEST(RandomTest, UniformIntInRange) {
  Rng rng{11, 0};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_int(7), 7u);
  }
}

TEST(RandomTest, UniformIntCoversAllValues) {
  Rng rng{11, 0};
  std::array<int, 5> counts{};
  for (int i = 0; i < 50'000; ++i) ++counts[rng.uniform_int(5)];
  for (int c : counts) EXPECT_GT(c, 9'000);
}

TEST(RandomTest, UniformIntRejectsEmptyRange) {
  Rng rng{11, 0};
  EXPECT_THROW(rng.uniform_int(0), AssertionError);
}

TEST(RandomTest, ExponentialCountAtLeastOne) {
  Rng rng{13, 0};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.exponential_count(8.0), 1);
  }
}

TEST(RandomTest, ExponentialCountMeanApproximatelyPreserved) {
  Rng rng{13, 0};
  const double mean = 8.0;
  long long sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_count(mean);
  // Rounding + clamping to >= 1 shifts the mean slightly upward.
  EXPECT_NEAR(static_cast<double>(sum) / n, mean, 0.35);
}

TEST(RandomTest, SplitMixIsDeterministic) {
  SplitMix64 a{1}, b{1};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, XoshiroKnownDistinctOutputs) {
  Xoshiro256ss gen{0};
  const auto x = gen.next();
  const auto y = gen.next();
  EXPECT_NE(x, y);
}

}  // namespace
}  // namespace omig::sim
