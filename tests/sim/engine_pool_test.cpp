// EventHeap and FramePool: the kernel overhaul's two new hot-path pieces.
//
// EventHeapTest pins the heap to its specification — the pop sequence is
// the fully (at, seq)-sorted order, replace_top is exactly pop+push, and
// the slab survives clear(). EnginePoolTest covers the coroutine frame
// pool: reuse actually happens under engine spawn churn, frames may be
// freed on a different thread than they were allocated on, and concurrent
// engines on distinct threads never share pool state (the TSan gate in
// scripts/check.sh runs this suite).
#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/event_heap.hpp"
#include "sim/frame_pool.hpp"
#include "sim/task.hpp"

namespace omig::sim {
namespace {

TEST(EventHeapTest, PopsInAtThenSeqOrder) {
  EventHeap heap;
  std::mt19937_64 rng{42};
  std::uniform_real_distribution<double> at_dist{0.0, 100.0};
  std::vector<Event> events;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    // Coarse times force plenty of (at) ties to exercise the seq
    // tie-break.
    const double at = std::floor(at_dist(rng));
    events.push_back(Event{at, seq, std::noop_coroutine()});
  }
  for (const Event& e : events) heap.push(e);

  std::vector<std::pair<double, std::uint64_t>> popped;
  while (!heap.empty()) {
    popped.emplace_back(heap.top().at, heap.top().seq);
    heap.pop();
  }
  auto sorted = popped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(popped, sorted);
  EXPECT_EQ(popped.size(), events.size());
}

TEST(EventHeapTest, ReplaceTopMatchesPopThenPush) {
  EventHeap fused;
  EventHeap reference;
  std::mt19937_64 rng{7};
  std::uniform_real_distribution<double> at_dist{0.0, 50.0};
  std::uint64_t seq = 0;
  for (; seq < 64; ++seq) {
    const Event e{at_dist(rng), seq, std::noop_coroutine()};
    fused.push(e);
    reference.push(e);
  }
  for (int round = 0; round < 500; ++round) {
    const double base = fused.top().at;
    const Event next{base + at_dist(rng), seq++, std::noop_coroutine()};
    fused.replace_top(next);
    reference.pop();
    reference.push(next);
    ASSERT_EQ(fused.top().at, reference.top().at);
    ASSERT_EQ(fused.top().seq, reference.top().seq);
    ASSERT_EQ(fused.size(), reference.size());
  }
}

TEST(EventHeapTest, ClearKeepsSlabCapacity) {
  EventHeap heap;
  for (std::uint64_t i = 0; i < 500; ++i) {
    heap.push(Event{static_cast<double>(i), i, std::noop_coroutine()});
  }
  const std::size_t cap = heap.capacity();
  EXPECT_GE(cap, 500u);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.capacity(), cap);
}

TEST(EventHeapTest, EngineClearKeepsEventSlab) {
  Engine engine;
  engine.reserve_events(256);
  const std::size_t cap = engine.event_capacity();
  EXPECT_GE(cap, 256u);
  engine.spawn([](Engine& e) -> Task {
    for (int i = 0; i < 10; ++i) co_await e.delay(1.0);
  }(engine));
  engine.run();
  engine.clear();
  EXPECT_EQ(engine.event_capacity(), cap);
}

Task churn_process(Engine& engine, int hops) {
  for (int i = 0; i < hops; ++i) co_await engine.delay(0.5);
}

TEST(EnginePoolTest, SpawnChurnReusesFrames) {
  FramePool& pool = FramePool::local();
  pool.release();
  Engine engine;
  // Wave after wave of short-lived processes: after the first wave warms
  // the free lists, later frames must come from the pool.
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 20; ++i) engine.spawn(churn_process(engine, 3));
    engine.run();
    engine.clear();
  }
  EXPECT_GT(pool.reuses(), 0u);
  // Steady state: far more frames were recycled than ever hit the heap.
  EXPECT_GT(pool.reuses(), pool.fresh_allocs());
}

TEST(EnginePoolTest, ReleaseReturnsParkedFrames) {
  FramePool& pool = FramePool::local();
  {
    Engine engine;
    for (int i = 0; i < 8; ++i) engine.spawn(churn_process(engine, 2));
    engine.run();
    engine.clear();
  }
  EXPECT_GT(pool.parked(), 0u);
  pool.release();
  EXPECT_EQ(pool.parked(), 0u);
}

TEST(EnginePoolTest, CrossThreadFreeMigratesToFreeingThreadsPool) {
  void* p = FramePool::local().allocate(128);
  std::uint64_t other_parked = 0;
  std::thread t{[&] {
    FramePool::local().deallocate(p, 128);
    other_parked = FramePool::local().parked();
    FramePool::local().release();
  }};
  t.join();
  EXPECT_EQ(other_parked, 1u);
}

TEST(EnginePoolTest, ConcurrentEnginesAreIndependent) {
  // One engine per thread, as the parallel sweep runs them. Identical
  // workloads must process identical event counts, and TSan must see no
  // shared pool state.
  constexpr int kThreads = 4;
  std::uint64_t events[kThreads] = {};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&events, i] {
      Engine engine;
      for (int wave = 0; wave < 10; ++wave) {
        for (int j = 0; j < 16; ++j) engine.spawn(churn_process(engine, 4));
        engine.run();
        engine.clear();
      }
      events[i] = engine.events_processed();
      FramePool::local().release();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(events[i], events[0]);
  EXPECT_GT(events[0], 0u);
}

}  // namespace
}  // namespace omig::sim
