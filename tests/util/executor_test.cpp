// Executor contract tests: results must never depend on scheduling, the
// single-thread path runs inline and in order, exceptions surface
// deterministically, and nested/empty submissions cannot deadlock. This
// suite runs under the TSan gate (scripts/check.sh).
#include "util/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace omig::util {
namespace {

TEST(ExecutorTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(Executor::default_thread_count(), 1u);
  Executor auto_sized{0};
  EXPECT_EQ(auto_sized.thread_count(), Executor::default_thread_count());
}

TEST(ExecutorTest, SingleThreadRunsInlineInIndexOrder) {
  Executor ex{1};
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  ex.parallel_for(64, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no synchronisation: must be the calling thread
  });
  std::vector<std::size_t> expected(64);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ExecutorTest, EveryIndexRunsExactlyOnce) {
  Executor ex{8};
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ExecutorTest, ResultIndependentOfCompletionOrder) {
  // Write through disjoint slots: the gathered result must match the
  // sequential computation no matter how tasks interleave.
  constexpr std::size_t kN = 2'000;
  std::vector<std::uint64_t> parallel_out(kN), serial_out(kN);
  const auto f = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17u;
  };
  Executor pool{6};
  pool.parallel_for(kN, [&](std::size_t i) { parallel_out[i] = f(i); });
  Executor inline_ex{1};
  inline_ex.parallel_for(kN, [&](std::size_t i) { serial_out[i] = f(i); });
  EXPECT_EQ(parallel_out, serial_out);
}

TEST(ExecutorTest, EmptySubmissionIsANoOp) {
  Executor ex{4};
  bool ran = false;
  ex.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ExecutorTest, IdleDestructionDoesNotHang) {
  { Executor ex{8}; }  // construct + destruct without any work
  SUCCEED();
}

TEST(ExecutorTest, PoolIsReusableAcrossBatches) {
  Executor ex{4};
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    ex.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1'000);
}

TEST(ExecutorTest, ExceptionPropagatesLowestIndexAndAllTasksRun) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Executor ex{threads};
    std::atomic<int> ran{0};
    try {
      ex.parallel_for(256, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 31 || i == 7 || i == 200) {
          throw std::runtime_error{"task " + std::to_string(i)};
        }
      });
      FAIL() << "parallel_for should rethrow";
    } catch (const std::runtime_error& e) {
      // Deterministic: the lowest failing index wins, on any thread count.
      EXPECT_STREQ(e.what(), "task 7");
    }
    // Failure of one task never cancels the others.
    EXPECT_EQ(ran.load(), 256);
  }
}

TEST(ExecutorTest, NestedParallelForDoesNotDeadlock) {
  Executor ex{2};  // worst case: one worker + the caller
  std::atomic<int> inner_runs{0};
  ex.parallel_for(4, [&](std::size_t) {
    ex.parallel_for(8, [&](std::size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ExecutorTest, NestedExceptionPropagatesThroughOuterTask) {
  Executor ex{4};
  EXPECT_THROW(ex.parallel_for(2,
                               [&](std::size_t) {
                                 ex.parallel_for(2, [](std::size_t j) {
                                   if (j == 1) throw std::logic_error{"inner"};
                                 });
                               }),
               std::logic_error);
}

TEST(ExecutorTest, ManyMoreTasksThanThreads) {
  Executor ex{3};
  std::atomic<std::uint64_t> sum{0};
  constexpr std::size_t kN = 5'000;
  ex.parallel_for(kN, [&](std::size_t i) {
    sum.fetch_add(static_cast<std::uint64_t>(i));
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace omig::util
