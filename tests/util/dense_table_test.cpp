#include "util/dense_table.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "objsys/ids.hpp"

namespace omig::util {
namespace {

using objsys::ObjectId;

TEST(DenseTableTest, StartsEmpty) {
  DenseTable<ObjectId, int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.contains(ObjectId{3}));
  EXPECT_EQ(table.find(ObjectId{3}), nullptr);
}

TEST(DenseTableTest, InsertFindErase) {
  DenseTable<ObjectId, std::string> table;
  auto [value, inserted] = table.try_emplace(ObjectId{5}, "five");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(value, "five");
  EXPECT_EQ(table.size(), 1u);

  auto [again, inserted2] = table.try_emplace(ObjectId{5}, "other");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(again, "five");  // existing value untouched

  ASSERT_NE(table.find(ObjectId{5}), nullptr);
  EXPECT_EQ(*table.find(ObjectId{5}), "five");
  EXPECT_FALSE(table.contains(ObjectId{4}));  // neighbour slot stays empty

  EXPECT_TRUE(table.erase(ObjectId{5}));
  EXPECT_FALSE(table.erase(ObjectId{5}));
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(ObjectId{5}), nullptr);
}

TEST(DenseTableTest, SubscriptDefaultConstructs) {
  DenseTable<ObjectId, int> table;
  ++table[ObjectId{7}];
  ++table[ObjectId{7}];
  EXPECT_EQ(*table.find(ObjectId{7}), 2);
  EXPECT_EQ(table.size(), 1u);
}

TEST(DenseTableTest, ForEachVisitsInAscendingIdOrder) {
  DenseTable<ObjectId, int> table;
  for (const std::uint32_t id : {9u, 2u, 40u, 0u}) {
    table[ObjectId{id}] = static_cast<int>(id * 10);
  }
  std::vector<std::pair<std::uint32_t, int>> seen;
  table.for_each([&](ObjectId id, const int& v) {
    seen.emplace_back(id.value(), v);
  });
  const std::vector<std::pair<std::uint32_t, int>> expected{
      {0, 0}, {2, 20}, {9, 90}, {40, 400}};
  EXPECT_EQ(seen, expected);
}

TEST(DenseTableTest, ClearEmptiesButReinsertSeesNoStaleState) {
  DenseTable<ObjectId, std::vector<int>> table;
  table[ObjectId{3}].assign(100, 1);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.find(ObjectId{3}), nullptr);
  // Re-insert after clear must produce a fresh value, never the erased
  // entry's leftover contents.
  auto [value, inserted] = table.try_emplace(ObjectId{3});
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(value.empty());
}

TEST(DenseTableTest, ReinsertAfterEraseIsFresh) {
  DenseTable<ObjectId, int> table;
  table[ObjectId{1}] = 42;
  table.erase(ObjectId{1});
  auto [value, inserted] = table.try_emplace(ObjectId{1}, 7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(value, 7);
}

}  // namespace
}  // namespace omig::util
