// Live-runtime backend for the scenario pack, in process: every scenario in
// the zoo replays against a threaded LiveSystem without a single failed
// operation, and the operation *counts* a run issues are invariant to the
// worker-thread count (the per-source streams are drawn independently of
// scheduling; see live_driver.hpp).
#include "scenario/live_driver.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "scenario/scenario.hpp"

namespace omig::scenario {
namespace {

ScenarioOptions tiny_options(const std::string& name) {
  ScenarioOptions opts;
  opts.name = name;
  opts.nodes = 3;
  opts.sources = 4;
  opts.objects = 12;
  return opts;
}

std::unique_ptr<runtime::LiveSystem> fresh_system() {
  runtime::LiveSystem::Options opts;
  opts.nodes = 3;
  auto sys = std::make_unique<runtime::LiveSystem>(opts);
  runtime::register_demo_types(*sys);
  sys->start();
  return sys;
}

LiveScenarioResult run_once(const std::string& name, int threads,
                            std::uint64_t seed = 1) {
  const auto scen = make_scenario(tiny_options(name));
  auto sys = fresh_system();
  LiveScenarioOptions lopts;
  lopts.bursts_per_source = 6;
  lopts.threads = threads;
  lopts.seed = seed;
  const LiveScenarioResult result = run_live_scenario(*sys, *scen, lopts);
  sys->stop();
  return result;
}

TEST(LiveScenarioTest, EveryScenarioRunsCleanOnTheLiveRuntime) {
  for (const ScenarioInfo& info : list_scenarios()) {
    SCOPED_TRACE(info.name);
    const LiveScenarioResult r = run_once(info.name, 2);
    EXPECT_EQ(r.bursts, 4u * 6u);  // sources × bursts_per_source
    EXPECT_GT(r.ops, 0u);
    EXPECT_EQ(r.failures, 0u);
    EXPECT_GT(r.ops_per_sec, 0.0);
  }
}

TEST(LiveScenarioTest, OpCountsAreWorkerCountInvariant) {
  // Wall-clock interleaving varies, but what each source *issues* is a pure
  // function of (seed, scenario, source) — so the aggregate op counts must
  // match across thread counts.
  for (const ScenarioInfo& info : list_scenarios()) {
    SCOPED_TRACE(info.name);
    const LiveScenarioResult one = run_once(info.name, 1);
    const LiveScenarioResult four = run_once(info.name, 4);
    EXPECT_EQ(one.bursts, four.bursts);
    EXPECT_EQ(one.ops, four.ops);
    EXPECT_EQ(one.moves, four.moves);
    EXPECT_EQ(one.visits, four.visits);
    EXPECT_EQ(one.failures, 0u);
    EXPECT_EQ(four.failures, 0u);
  }
}

TEST(LiveScenarioTest, SeedChangesTheIssuedTraffic) {
  const LiveScenarioResult a = run_once("iot", 2, 1);
  const LiveScenarioResult b = run_once("iot", 2, 99);
  EXPECT_NE(a.ops, b.ops);
}

}  // namespace
}  // namespace omig::scenario
