// Scenario traffic under fault injection: a fixed-seed fault schedule
// (drops, dups, a mid-run crash with restart) replayed under the cache and
// game scenarios must complete, observe the crash, and stay deterministic.
#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "fault/fault_plan.hpp"

namespace omig::scenario {
namespace {

core::ExperimentConfig chaotic_config(const std::string& name,
                                      std::uint64_t fault_seed) {
  core::ExperimentConfig cfg;
  cfg.scenario.name = name;
  cfg.scenario.nodes = 4;
  cfg.scenario.sources = 6;
  cfg.scenario.objects = 24;
  cfg.scenario.rate = 0.1;
  cfg.stopping.relative_target = 0.2;
  cfg.stopping.min_observations = 150;
  cfg.stopping.max_observations = 600;
  cfg.fault_plan = fault::parse_plan_text(
      "seed " + std::to_string(fault_seed) +
      "\ndrop * * 0.05\ndup * * 0.02\ncrash 2 80 40\n");
  return cfg;
}

TEST(ScenarioChaosTest, ScenariosSurviveCrashAndLinkFaults) {
  for (const char* name : {"cache", "game"}) {
    SCOPED_TRACE(name);
    const core::ExperimentResult r =
        core::run_experiment(chaotic_config(name, 11));
    EXPECT_GT(r.scenario_bursts, 0u);
    EXPECT_GT(r.scenario_ops, 0u);
    EXPECT_EQ(r.node_crashes, 1u);
    EXPECT_EQ(r.node_restarts, 1u);
    EXPECT_GT(r.fault_retries, 0u);
  }
}

TEST(ScenarioChaosTest, ChaoticRunsAreDeterministic) {
  const core::ExperimentConfig cfg = chaotic_config("cache", 23);
  const core::ExperimentResult a = core::run_experiment(cfg);
  const core::ExperimentResult b = core::run_experiment(cfg);
  EXPECT_EQ(a.scenario_ops, b.scenario_ops);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.total_per_call, b.total_per_call);
}

}  // namespace
}  // namespace omig::scenario
