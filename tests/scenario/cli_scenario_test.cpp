// CLI surface of the scenario pack: `omig_sim --list-scenarios`,
// `omig_sim --scenario <name> --json`, and the multi-process
// `omig_node --cluster N --scenario <name>` launcher. Binaries are located
// via $OMIG_SIM_BIN / $OMIG_NODE_BIN, falling back to the build-time paths
// compiled into this target.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace omig {
namespace {

std::string sim_binary() {
  if (const char* env = std::getenv("OMIG_SIM_BIN")) return env;
#ifdef OMIG_SIM_BIN_DEFAULT
  return OMIG_SIM_BIN_DEFAULT;
#else
  return "omig_sim";
#endif
}

std::string node_binary() {
  if (const char* env = std::getenv("OMIG_NODE_BIN")) return env;
#ifdef OMIG_NODE_BIN_DEFAULT
  return OMIG_NODE_BIN_DEFAULT;
#else
  return "omig_node";
#endif
}

/// Runs `cmd`, captures stdout, and reports the pclose status via `status`.
std::string capture(const std::string& cmd, int& status) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) {
    status = -1;
    return "";
  }
  std::string output;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) output += buffer;
  status = pclose(pipe);
  return output;
}

TEST(CliScenarioTest, ListScenariosShowsTheZoo) {
  ASSERT_TRUE(std::filesystem::exists(sim_binary()))
      << "omig_sim binary not found at " << sim_binary()
      << " (set OMIG_SIM_BIN)";
  int status = 0;
  const std::string out =
      capture(sim_binary() + " --list-scenarios 2>/dev/null", status);
  EXPECT_EQ(status, 0);
  for (const char* name : {"cache", "game", "iot", "social"}) {
    EXPECT_NE(out.find(name), std::string::npos) << out;
  }
}

TEST(CliScenarioTest, SimScenarioRunEmitsScenarioJson) {
  int status = 0;
  const std::string out = capture(
      sim_binary() +
          " --scenario cache sc-sources=4 sc-objects=16 max-blocks=300" +
          " ci=0.2 --json 2>/dev/null",
      status);
  EXPECT_EQ(status, 0);
  EXPECT_NE(out.find("\"scenario\": \"cache\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"scenario_bursts\":"), std::string::npos);
  EXPECT_NE(out.find("\"scenario_achieved\":"), std::string::npos);
  EXPECT_NE(out.find("\"omig_scenario_ops_total\":"), std::string::npos);
}

TEST(CliScenarioTest, SimRejectsUnknownScenario) {
  int status = 0;
  capture(sim_binary() + " --scenario warehouse max-blocks=100 2>/dev/null",
          status);
  EXPECT_NE(status, 0);
}

TEST(CliScenarioTest, ClusterReplaysAScenarioOverTcp) {
  ASSERT_TRUE(std::filesystem::exists(node_binary()))
      << "omig_node binary not found at " << node_binary()
      << " (set OMIG_NODE_BIN)";
  int status = 0;
  const std::string out = capture(
      node_binary() +
          " --cluster 2 --scenario cache --sources 4 --objects 12 --bursts 3"
          " 2>/dev/null",
      status);
  EXPECT_EQ(status, 0) << out;
  EXPECT_NE(out.find("cluster scenario cache:"), std::string::npos) << out;
  EXPECT_NE(out.find("failures=0"), std::string::npos) << out;
  EXPECT_NE(out.find("all node processes exited cleanly"), std::string::npos);
}

}  // namespace
}  // namespace omig
