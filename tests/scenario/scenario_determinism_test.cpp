// Determinism contract of the scenario pack on the simulator backend:
// repeated runs are bit-identical, different seeds diverge, and a sweep
// over scenario knobs is bit-identical whether the cell grid executes on
// one thread or eight (the per-source hashed seed streams are the
// mechanism — see scenario.hpp).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "scenario/scenario.hpp"

namespace omig::scenario {
namespace {

core::ExperimentConfig scenario_config(const std::string& name) {
  core::ExperimentConfig cfg;
  cfg.scenario.name = name;
  cfg.scenario.nodes = 4;
  cfg.scenario.sources = 6;
  cfg.scenario.objects = 24;
  cfg.scenario.rate = 0.1;
  cfg.stopping.relative_target = 0.2;
  cfg.stopping.min_observations = 100;
  cfg.stopping.max_observations = 400;
  return cfg;
}

void expect_identical(const core::ExperimentResult& a,
                      const core::ExperimentResult& b) {
  EXPECT_EQ(a.total_per_call, b.total_per_call);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.scenario_bursts, b.scenario_bursts);
  EXPECT_EQ(a.scenario_ops, b.scenario_ops);
  EXPECT_EQ(a.scenario_offered, b.scenario_offered);
  EXPECT_EQ(a.scenario_achieved, b.scenario_achieved);
  EXPECT_EQ(a.scenario_op_p50, b.scenario_op_p50);
  EXPECT_EQ(a.scenario_op_p99, b.scenario_op_p99);
}

TEST(ScenarioDeterminismTest, RepeatedRunsAreBitIdentical) {
  for (const ScenarioInfo& info : list_scenarios()) {
    SCOPED_TRACE(info.name);
    const core::ExperimentConfig cfg = scenario_config(info.name);
    expect_identical(core::run_experiment(cfg), core::run_experiment(cfg));
  }
}

TEST(ScenarioDeterminismTest, SeedChangesTheRun) {
  core::ExperimentConfig cfg = scenario_config("cache");
  const core::ExperimentResult a = core::run_experiment(cfg);
  cfg.seed ^= 0x5eed;
  const core::ExperimentResult b = core::run_experiment(cfg);
  EXPECT_NE(a.scenario_ops, b.scenario_ops);
}

TEST(ScenarioDeterminismTest, SweepIsThreadCountInvariant) {
  // One variant per scenario, x-axis = arrival rate. The 8-thread grid
  // must reproduce the sequential grid bit for bit.
  std::vector<core::SweepVariant> variants;
  for (const ScenarioInfo& info : list_scenarios()) {
    variants.push_back({info.name, [name = info.name](double x) {
                          core::ExperimentConfig cfg = scenario_config(name);
                          cfg.scenario.rate = x;
                          return cfg;
                        }});
  }
  const std::vector<double> xs{0.05, 0.15};

  core::SweepOptions seq;
  seq.threads = 1;
  seq.base_seed = 17;
  core::SweepOptions par;
  par.threads = 8;
  par.base_seed = 17;

  const auto a = core::run_sweep(xs, variants, seq);
  const auto b = core::run_sweep(xs, variants, par);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    ASSERT_EQ(a[i].results.size(), b[i].results.size());
    for (std::size_t v = 0; v < a[i].results.size(); ++v) {
      SCOPED_TRACE(variants[v].label);
      expect_identical(a[i].results[v], b[i].results[v]);
    }
  }
}

}  // namespace
}  // namespace omig::scenario
