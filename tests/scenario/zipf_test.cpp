// Statistical and determinism tests for the exact-CDF Zipf sampler that
// drives the cache scenario's hot-key skew (src/util/zipf.hpp).
//
// The chi-square tests draw ~200k samples and compare observed bucket
// counts against the sampler's own probability() table. The thresholds are
// generous (well above the 99.9th percentile of the chi-square
// distribution for the given degrees of freedom) because the draws are
// seeded and deterministic — a failure means the sampler is wrong, not
// unlucky.
#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.hpp"
#include "util/assert.hpp"

namespace omig::util {
namespace {

/// Chi-square statistic of `draws` samples against the sampler's own pmf.
double chi_square(const ZipfSampler& zipf, std::uint64_t draws,
                  std::uint64_t seed) {
  sim::Rng rng{seed, 0};
  std::vector<std::uint64_t> observed(zipf.size(), 0);
  for (std::uint64_t i = 0; i < draws; ++i) {
    const std::uint64_t k = zipf.sample(rng);
    EXPECT_LT(k, zipf.size());
    ++observed[k];
  }
  double stat = 0.0;
  for (std::uint64_t k = 0; k < zipf.size(); ++k) {
    const double expected = zipf.probability(k) * static_cast<double>(draws);
    EXPECT_GT(expected, 5.0) << "bucket " << k << " too thin for chi-square";
    const double diff = static_cast<double>(observed[k]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  // theta = 0 degenerates to the uniform distribution over n keys.
  const ZipfSampler zipf{20, 0.0};
  for (std::uint64_t k = 0; k < zipf.size(); ++k) {
    EXPECT_NEAR(zipf.probability(k), 1.0 / 20.0, 1e-12);
  }
  // 19 degrees of freedom: chi-square 99.9th percentile is ~43.8.
  EXPECT_LT(chi_square(zipf, 200'000, 0xa11ce), 50.0);
}

TEST(ZipfTest, SkewedDistributionMatchesPmf) {
  const ZipfSampler zipf{20, 0.99};
  // Rank-0 must dominate and the pmf must be monotone decreasing.
  EXPECT_GT(zipf.probability(0), zipf.probability(1));
  for (std::uint64_t k = 1; k < zipf.size(); ++k) {
    EXPECT_GE(zipf.probability(k - 1), zipf.probability(k));
  }
  EXPECT_LT(chi_square(zipf, 200'000, 0xbee5), 50.0);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (const double theta : {0.0, 0.5, 0.99, 1.2}) {
    const ZipfSampler zipf{64, theta};
    double sum = 0.0;
    for (std::uint64_t k = 0; k < zipf.size(); ++k) {
      sum += zipf.probability(k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "theta " << theta;
  }
}

TEST(ZipfTest, SamplesAreDeterministicPerSeed) {
  const ZipfSampler zipf{32, 0.99};
  sim::Rng a{42, 7};
  sim::Rng b{42, 7};
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b));
  }
  sim::Rng c{43, 7};
  int diffs = 0;
  sim::Rng a2{42, 7};
  for (int i = 0; i < 1'000; ++i) {
    diffs += zipf.sample(a2) != zipf.sample(c);
  }
  EXPECT_GT(diffs, 0);
}

TEST(ZipfTest, ConsumesExactlyOneUniformPerSample) {
  // The determinism contract of the scenario pack depends on a fixed
  // number of Rng draws per decision.
  const ZipfSampler zipf{16, 0.99};
  sim::Rng a{9, 1};
  sim::Rng b{9, 1};
  (void)zipf.sample(a);
  (void)b.uniform();
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(ZipfTest, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 0.99), AssertionError);
  EXPECT_THROW(ZipfSampler(8, -0.5), AssertionError);
}

}  // namespace
}  // namespace omig::util
