// Model-level tests for the scenario pack (docs/scenarios.md): every
// registered scenario must produce a well-formed population and an endless
// stream of well-formed bursts, and the simulator backend must run each of
// them end to end through run_experiment.
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "util/assert.hpp"

namespace omig::scenario {
namespace {

ScenarioOptions small_options(const std::string& name) {
  ScenarioOptions opts;
  opts.name = name;
  opts.nodes = 4;
  opts.sources = 6;
  opts.objects = 24;
  opts.rate = 0.1;
  return opts;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioInfo& info : list_scenarios()) names.push_back(info.name);
  return names;
}

TEST(ScenarioTest, CatalogueHasTheZooSortedByName) {
  const auto infos = list_scenarios();
  ASSERT_EQ(infos.size(), 4u);
  EXPECT_EQ(infos[0].name, "cache");
  EXPECT_EQ(infos[1].name, "game");
  EXPECT_EQ(infos[2].name, "iot");
  EXPECT_EQ(infos[3].name, "social");
  for (const ScenarioInfo& info : infos) EXPECT_FALSE(info.summary.empty());
}

TEST(ScenarioTest, UnknownNameAndBadKnobsAreRejected) {
  EXPECT_THROW(make_scenario(small_options("warehouse")), AssertionError);
  ScenarioOptions bad = small_options("cache");
  bad.rate = 0.0;
  EXPECT_THROW(make_scenario(bad), AssertionError);
  bad = small_options("cache");
  bad.read_fraction = 1.5;
  EXPECT_THROW(make_scenario(bad), AssertionError);
  bad = small_options("iot");
  bad.burst_alpha = 1.0;
  EXPECT_THROW(make_scenario(bad), AssertionError);
  bad = small_options("game");
  bad.nodes = 0;
  EXPECT_THROW(make_scenario(bad), AssertionError);
}

TEST(ScenarioTest, PopulationsAreWellFormed) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    const auto scen = make_scenario(small_options(name));
    EXPECT_EQ(scen->name(), name);
    const Population& pop = scen->population();
    EXPECT_EQ(pop.nodes, 4u);
    EXPECT_FALSE(pop.objects.empty());
    std::set<std::string> seen;
    for (const ObjectSpec& obj : pop.objects) {
      EXPECT_LT(obj.home, pop.nodes);
      EXPECT_GT(obj.size, 0.0);
      EXPECT_TRUE(seen.insert(obj.name).second) << "duplicate " << obj.name;
    }
    for (const AttachSpec& edge : pop.attachments) {
      EXPECT_LT(edge.a, pop.objects.size());
      EXPECT_LT(edge.b, pop.objects.size());
      EXPECT_NE(edge.a, edge.b);
      if (edge.alliance != kNone) {
        EXPECT_LT(edge.alliance, pop.alliances.size());
      }
    }
    for (std::size_t s = 0; s < scen->sources(); ++s) {
      EXPECT_LT(scen->source_node(s), pop.nodes);
    }
  }
}

TEST(ScenarioTest, BurstStreamsAreWellFormed) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    const auto scen = make_scenario(small_options(name));
    const Population& pop = scen->population();
    bool saw_block = false;
    bool saw_call = false;
    for (std::size_t s = 0; s < scen->sources(); ++s) {
      sim::Rng rng{source_stream(1, name, s), 0};
      Burst burst;
      for (int i = 0; i < 400; ++i) {
        EXPECT_GT(scen->next_arrival(s, rng), 0.0);
        scen->next_burst(s, rng, burst);
        if (burst.target != kNone) {
          saw_block = true;
          EXPECT_LT(burst.target, pop.objects.size());
        }
        if (burst.alliance != kNone) {
          EXPECT_LT(burst.alliance, pop.alliances.size());
        }
        if (burst.origin != kNone) {
          EXPECT_LT(burst.origin, pop.nodes);
        }
        for (const Burst::Call& call : burst.calls) {
          saw_call = true;
          EXPECT_LT(call.object, pop.objects.size());
          EXPECT_GE(call.gap, 0.0);
        }
      }
    }
    EXPECT_TRUE(saw_call) << "scenario never invoked anything";
    EXPECT_TRUE(saw_block) << "scenario never opened a move/visit block";
  }
}

TEST(ScenarioTest, SourceStreamsAreIndependent) {
  EXPECT_NE(source_stream(1, "cache", 0), source_stream(1, "cache", 1));
  EXPECT_NE(source_stream(1, "cache", 0), source_stream(2, "cache", 0));
  EXPECT_NE(source_stream(1, "cache", 0), source_stream(1, "game", 0));
  EXPECT_EQ(source_stream(7, "iot", 3), source_stream(7, "iot", 3));
}

TEST(ScenarioTest, EveryScenarioRunsOnTheSimulatorBackend) {
  for (const std::string& name : scenario_names()) {
    SCOPED_TRACE(name);
    core::ExperimentConfig cfg;
    cfg.scenario = small_options(name);
    cfg.stopping.relative_target = 0.2;
    cfg.stopping.min_observations = 100;
    cfg.stopping.max_observations = 400;
    const core::ExperimentResult r = core::run_experiment(cfg);
    EXPECT_GT(r.scenario_bursts, 0u);
    EXPECT_GT(r.scenario_ops, 0u);
    EXPECT_GT(r.scenario_offered, 0.0);
    EXPECT_GT(r.scenario_achieved, 0.0);
    EXPECT_GT(r.scenario_op_p99, 0.0);
    EXPECT_GE(r.scenario_op_p99, r.scenario_op_p50);
    EXPECT_GT(r.calls, 0u);
  }
}

TEST(ScenarioTest, ScenarioConfigKeysParse) {
  const core::ExperimentConfig cfg = core::parse_config(
      {"scenario=cache", "sc-nodes=4", "sc-sources=6", "sc-objects=32",
       "sc-rate=0.2", "sc-theta=0.8", "sc-read=0.5", "sc-move=0.1",
       "sc-fanout=2", "sc-groups=2", "sc-handoff=0.3", "sc-burst=4",
       "sc-alpha=2.0"});
  EXPECT_TRUE(cfg.scenario.enabled());
  EXPECT_EQ(cfg.scenario.name, "cache");
  EXPECT_EQ(cfg.scenario.nodes, 4);
  EXPECT_EQ(cfg.scenario.sources, 6);
  EXPECT_EQ(cfg.scenario.objects, 32);
  EXPECT_DOUBLE_EQ(cfg.scenario.rate, 0.2);
  EXPECT_DOUBLE_EQ(cfg.scenario.zipf_theta, 0.8);
  EXPECT_DOUBLE_EQ(cfg.scenario.read_fraction, 0.5);
  EXPECT_DOUBLE_EQ(cfg.scenario.move_fraction, 0.1);
  EXPECT_EQ(cfg.scenario.fanout, 2);
  EXPECT_EQ(cfg.scenario.groups, 2);
  EXPECT_DOUBLE_EQ(cfg.scenario.handoff_fraction, 0.3);
  EXPECT_DOUBLE_EQ(cfg.scenario.burst_mean, 4.0);
  EXPECT_DOUBLE_EQ(cfg.scenario.burst_alpha, 2.0);
}

}  // namespace
}  // namespace omig::scenario
