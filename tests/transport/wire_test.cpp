// Wire codec: round-trips for every frame type and an adversarial corpus —
// a peer feeding garbage must never crash the decoder, make it over-read,
// or get a malformed frame accepted.
#include "transport/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace omig::transport {
namespace {

runtime::ObjectState sample_state() {
  runtime::ObjectState state;
  state.type = "case-file";
  state.fields["log"] = "intake;billed";
  state.fields["owner"] = "node-2";
  return state;
}

std::vector<Frame> sample_frames() {
  std::vector<Frame> frames;
  frames.push_back(Frame{7, WireInvoke{42, "case-1", "append", "hello"}});
  frames.push_back(Frame{8, WireInstall{43, "case-1", sample_state()}});
  frames.push_back(Frame{9, WireEvict{44, "case-1"}});
  frames.push_back(Frame{10, WireShutdown{}});
  frames.push_back(
      Frame{11, WireInvokeReply{runtime::InvokeResult{true, "6"}}});
  frames.push_back(Frame{12, WireInstallReply{true}});
  frames.push_back(Frame{13, WireEvictReply{sample_state()}});
  return frames;
}

/// Payload bytes (after the u32 length prefix) of an encoded frame.
std::vector<std::uint8_t> payload_of(const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  return {bytes.begin() + 4, bytes.end()};
}

TEST(WireCodec, RoundTripsEveryFrameType) {
  for (const Frame& frame : sample_frames()) {
    const auto decoded = decode_payload(payload_of(frame));
    ASSERT_TRUE(decoded.has_value()) << to_string(frame.type());
    EXPECT_EQ(decoded->corr, frame.corr);
    EXPECT_EQ(decoded->payload, frame.payload) << to_string(frame.type());
  }
}

TEST(WireCodec, EmptyStringsAndEmptyStateSurvive) {
  Frame frame{1, WireInvoke{0, "", "", ""}};
  auto decoded = decode_payload(payload_of(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, frame.payload);

  Frame evicted{2, WireEvictReply{runtime::ObjectState{}}};
  decoded = decode_payload(payload_of(evicted));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, evicted.payload);
}

TEST(WireCodec, FrameTypeMatchesVariantAlternative) {
  const std::vector<FrameType> expected = {
      FrameType::Invoke,      FrameType::Install,      FrameType::Evict,
      FrameType::Shutdown,    FrameType::InvokeReply,  FrameType::InstallReply,
      FrameType::EvictReply,
  };
  const std::vector<Frame> frames = sample_frames();
  ASSERT_EQ(frames.size(), expected.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].type(), expected[i]);
  }
}

TEST(WireCodec, RejectsTruncatedHeader) {
  const std::vector<std::uint8_t> payload = payload_of(sample_frames()[0]);
  // Any prefix shorter than the 10-byte header must be rejected.
  for (std::size_t len = 0; len < 10; ++len) {
    EXPECT_FALSE(
        decode_payload({payload.data(), len}).has_value())
        << "accepted a " << len << "-byte header";
  }
}

TEST(WireCodec, RejectsUnknownVersion) {
  std::vector<std::uint8_t> payload = payload_of(sample_frames()[0]);
  payload[0] = kWireVersion + 1;
  EXPECT_FALSE(decode_payload(payload).has_value());
  payload[0] = 0;
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(WireCodec, RejectsUnknownFrameType) {
  std::vector<std::uint8_t> payload = payload_of(sample_frames()[0]);
  payload[1] = 0;
  EXPECT_FALSE(decode_payload(payload).has_value());
  payload[1] = 200;
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(WireCodec, RejectsTruncatedBody) {
  for (const Frame& frame : sample_frames()) {
    const std::vector<std::uint8_t> payload = payload_of(frame);
    // Chop anywhere inside the body: never accepted, never over-read.
    for (std::size_t len = 10; len < payload.size(); ++len) {
      EXPECT_FALSE(decode_payload({payload.data(), len}).has_value())
          << to_string(frame.type()) << " truncated to " << len;
    }
  }
}

TEST(WireCodec, RejectsTrailingGarbage) {
  for (const Frame& frame : sample_frames()) {
    std::vector<std::uint8_t> payload = payload_of(frame);
    payload.push_back(0xAB);
    EXPECT_FALSE(decode_payload(payload).has_value())
        << to_string(frame.type());
  }
}

TEST(WireCodec, RejectsOverlongInnerLength) {
  // A string length claiming more bytes than the payload holds.
  std::vector<std::uint8_t> payload =
      payload_of(Frame{1, WireInvoke{5, "obj", "m", "arg"}});
  // Header: version(1) type(1) corr(8) seq(8); then u32 len of "obj".
  payload[18] = 0xFF;
  payload[19] = 0xFF;
  payload[20] = 0xFF;
  payload[21] = 0x7F;
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(WireCodec, RejectsCorruptEmbeddedState) {
  std::vector<std::uint8_t> payload =
      payload_of(Frame{1, WireEvictReply{sample_state()}});
  // The state blob starts after version+type+corr plus its u32 length;
  // flipping bytes inside it must fail the inner serde decode, not crash.
  for (std::size_t i = 14; i < payload.size(); i += 3) {
    std::vector<std::uint8_t> corrupt = payload;
    corrupt[i] ^= 0xFF;
    (void)decode_payload(corrupt);  // must not crash; result may be either
  }
  // Truncating the embedded blob specifically must be rejected.
  payload.pop_back();
  EXPECT_FALSE(decode_payload(payload).has_value());
}

TEST(FrameBufferTest, ReassemblesSplitDeliveries) {
  const std::vector<Frame> frames = sample_frames();
  std::vector<std::uint8_t> stream;
  for (const Frame& frame : frames) {
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  // Feed the whole stream one byte at a time — the worst TCP segmentation.
  FrameBuffer buffer;
  std::vector<Frame> out;
  for (const std::uint8_t byte : stream) {
    buffer.feed({&byte, 1});
    while (auto frame = buffer.next()) out.push_back(std::move(*frame));
  }
  EXPECT_FALSE(buffer.error());
  ASSERT_EQ(out.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(out[i].corr, frames[i].corr);
    EXPECT_EQ(out[i].payload, frames[i].payload);
  }
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST(FrameBufferTest, HandlesCoalescedDeliveries) {
  // All frames in one read() — the other extreme.
  const std::vector<Frame> frames = sample_frames();
  std::vector<std::uint8_t> stream;
  for (const Frame& frame : frames) {
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameBuffer buffer;
  buffer.feed(stream);
  std::size_t count = 0;
  while (auto frame = buffer.next()) {
    EXPECT_EQ(frame->payload, frames[count].payload);
    ++count;
  }
  EXPECT_EQ(count, frames.size());
  EXPECT_FALSE(buffer.error());
}

TEST(FrameBufferTest, OversizedLengthPoisonsTheStream) {
  std::vector<std::uint8_t> evil(4);
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(evil.data(), &huge, 4);
  FrameBuffer buffer;
  buffer.feed(evil);
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());
  // Once poisoned, even valid frames are refused — the stream lost framing.
  buffer.feed(encode_frame(sample_frames()[0]));
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());
}

TEST(FrameBufferTest, MalformedPayloadPoisonsTheStream) {
  std::vector<std::uint8_t> bytes = encode_frame(sample_frames()[0]);
  bytes[4] = kWireVersion + 9;  // corrupt the version inside a valid frame
  FrameBuffer buffer;
  buffer.feed(bytes);
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_TRUE(buffer.error());
}

TEST(FrameBufferTest, PartialFrameIsNotAnError) {
  const std::vector<std::uint8_t> bytes = encode_frame(sample_frames()[1]);
  FrameBuffer buffer;
  buffer.feed({bytes.data(), bytes.size() / 2});
  EXPECT_FALSE(buffer.next().has_value());
  EXPECT_FALSE(buffer.error());  // just waiting for the rest
  buffer.feed({bytes.data() + bytes.size() / 2,
               bytes.size() - bytes.size() / 2});
  EXPECT_TRUE(buffer.next().has_value());
  EXPECT_FALSE(buffer.error());
}

// --- read-boundary fuzz -----------------------------------------------------
//
// The event-loop readers hand FrameBuffer whatever recv() returned, so
// frame boundaries land anywhere: mid length-prefix, mid payload, many
// frames coalesced into one read. Reassembly must be byte-exact under
// every split pattern. The sweep below drives a long multi-frame stream
// through 1-byte feeds, a boundary-targeted split set, and 64 seeded
// random chunkings; every run must reproduce the same frame sequence.

std::vector<Frame> fuzz_corpus() {
  std::vector<Frame> frames;
  std::uint64_t corr = 1;
  for (int round = 0; round < 8; ++round) {
    for (Frame& frame : sample_frames()) {
      frame.corr = corr++;
      frames.push_back(frame);
    }
    // A couple of bulky states so splits land deep inside payloads.
    runtime::ObjectState big = sample_state();
    big.fields["blob"] = std::string(1024 + 137 * round, 'x');
    frames.push_back(Frame{corr++, WireInstall{99, "bulk", std::move(big)}});
  }
  return frames;
}

void expect_reassembles(const std::vector<Frame>& expected,
                        const std::vector<std::uint8_t>& stream,
                        const std::vector<std::size_t>& cuts,
                        const std::string& label) {
  FrameBuffer buffer;
  std::vector<Frame> got;
  std::size_t offset = 0;
  auto drain = [&] {
    while (auto frame = buffer.next()) got.push_back(std::move(*frame));
  };
  for (const std::size_t cut : cuts) {
    ASSERT_LE(cut, stream.size()) << label;
    ASSERT_GE(cut, offset) << label;
    buffer.feed({stream.data() + offset, cut - offset});
    ASSERT_FALSE(buffer.error()) << label << " offset " << offset;
    drain();
    offset = cut;
  }
  buffer.feed({stream.data() + offset, stream.size() - offset});
  drain();
  ASSERT_FALSE(buffer.error()) << label;
  ASSERT_EQ(got.size(), expected.size()) << label;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].corr, expected[i].corr) << label << " frame " << i;
    EXPECT_EQ(got[i].payload, expected[i].payload) << label << " frame " << i;
  }
}

TEST(FrameBufferFuzz, OneByteFeedsReassembleExactly) {
  const std::vector<Frame> frames = fuzz_corpus();
  std::vector<std::uint8_t> stream;
  for (const Frame& frame : frames) {
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  std::vector<std::size_t> cuts;
  for (std::size_t i = 1; i < stream.size(); ++i) cuts.push_back(i);
  expect_reassembles(frames, stream, cuts, "1-byte feeds");
}

TEST(FrameBufferFuzz, SplitsInsideEveryLengthPrefixAndPayload) {
  const std::vector<Frame> frames = fuzz_corpus();
  std::vector<std::uint8_t> stream;
  std::vector<std::size_t> cuts;
  for (const Frame& frame : frames) {
    const std::size_t base = stream.size();
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    // One cut inside the 4-byte length prefix, one right after it, and
    // one mid-payload — the three places a recv() boundary hurts most.
    cuts.push_back(base + 2);
    cuts.push_back(base + 4);
    cuts.push_back(base + 4 + (bytes.size() - 4) / 2);
  }
  expect_reassembles(frames, stream, cuts, "boundary splits");
}

TEST(FrameBufferFuzz, SeededRandomChunkingsAllReassemble) {
  const std::vector<Frame> frames = fuzz_corpus();
  std::vector<std::uint8_t> stream;
  for (const Frame& frame : frames) {
    const auto bytes = encode_frame(frame);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    // Tiny deterministic LCG: chunk sizes 1..97 bytes, skewed small.
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
    auto next = [&x] {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      return x >> 33;
    };
    std::vector<std::size_t> cuts;
    std::size_t at = 0;
    while (at < stream.size()) {
      at += 1 + next() % 97;
      if (at >= stream.size()) break;
      cuts.push_back(at);
    }
    expect_reassembles(frames, stream, cuts,
                       "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace omig::transport
