// Multi-process integration: real omig_node OS processes coordinated over
// TCP by a remote LiveSystem. The headline scenario kills a node process
// with SIGKILL while its object is wanted elsewhere and verifies the
// migration recovers the object from its directory checkpoint, then
// restarts the process and moves the object back onto it.
//
// The omig_node binary is located through the OMIG_NODE_BIN environment
// variable, falling back to the build-time path the test target compiles
// in (OMIG_NODE_BIN_DEFAULT).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "transport/transport.hpp"

namespace omig::transport {
namespace {

std::string node_binary() {
  if (const char* env = std::getenv("OMIG_NODE_BIN")) return env;
#ifdef OMIG_NODE_BIN_DEFAULT
  return OMIG_NODE_BIN_DEFAULT;
#else
  return "omig_node";
#endif
}

/// One omig_node child process; knows how to (re)spawn itself and read the
/// ephemeral port it published.
struct NodeProcess {
  std::size_t id = 0;
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::string port_file;

  bool spawn() {
    std::error_code ec;
    std::filesystem::remove(port_file, ec);  // a fresh launch = a fresh port
    const std::string exe = node_binary();
    const std::string id_arg = std::to_string(id);
    pid = fork();
    if (pid == 0) {
      execl(exe.c_str(), exe.c_str(), "--serve", "--id", id_arg.c_str(),
            "--port-file", port_file.c_str(), static_cast<char*>(nullptr));
      _exit(127);
    }
    if (pid < 0) return false;
    // Wait (bounded) for the port file the child publishes via rename.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{10};
    port = 0;
    while (port == 0) {
      std::ifstream in{port_file};
      if (in >> port && port != 0) break;
      port = 0;
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    return true;
  }

  void kill_hard() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    pid = -1;
  }

  /// Reaps the child, expecting a clean exit (after a Shutdown frame).
  [[nodiscard]] bool reap_clean() {
    if (pid <= 0) return true;
    int status = 0;
    const bool ok = waitpid(pid, &status, 0) == pid && WIFEXITED(status) &&
                    WEXITSTATUS(status) == 0;
    pid = -1;
    return ok;
  }
};

class MultiProcess : public ::testing::Test {
protected:
  void SetUp() override {
    ASSERT_TRUE(std::filesystem::exists(node_binary()))
        << "omig_node binary not found at " << node_binary()
        << " (set OMIG_NODE_BIN)";
    char dir_template[] = "/tmp/omig-mp-test-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }

  void TearDown() override {
    for (NodeProcess& node : nodes_) node.kill_hard();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void spawn_cluster(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      NodeProcess node;
      node.id = i;
      node.port_file = dir_ + "/node-" + std::to_string(i) + ".port";
      ASSERT_TRUE(node.spawn()) << "node " << i << " did not come up";
      nodes_.push_back(std::move(node));
    }
  }

  [[nodiscard]] std::vector<Peer> peers() const {
    std::vector<Peer> result;
    for (const NodeProcess& node : nodes_) {
      result.push_back(Peer{"127.0.0.1", node.port});
    }
    return result;
  }

  std::string dir_;
  std::vector<NodeProcess> nodes_;
};

TEST_F(MultiProcess, OfficeWorkflowAcrossThreeProcesses) {
  spawn_cluster(3);
  runtime::LiveSystem::Options opts;
  opts.remote_nodes = peers();
  runtime::LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();

  ASSERT_TRUE(sys.create(
      "case-1", runtime::make_state("case-file", {{"log", ""}}), 0));
  ASSERT_TRUE(sys.create(
      "ledger", runtime::make_state("ledger", {{"total", "0"}}), 2));
  ASSERT_TRUE(sys.attach("case-1", "ledger", "billing"));

  auto intake = sys.visit("case-1", 1, "intake");
  ASSERT_TRUE(intake.granted);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sys.invoke_from(1, "case-1", "append", "intake").ok);
  }
  sys.end(intake);

  auto billing = sys.move("case-1", 2, "billing");
  ASSERT_TRUE(billing.granted);
  ASSERT_TRUE(sys.invoke_from(2, "ledger", "bill", "").ok);
  ASSERT_TRUE(sys.invoke_from(2, "case-1", "append", "billed").ok);
  sys.end(billing);

  EXPECT_EQ(sys.invoke("case-1", "entries", "").value, "4");
  EXPECT_EQ(sys.invoke("ledger", "total", "").value, "10");
  EXPECT_GE(sys.migrations(), 3u);  // visit there + back, move
  EXPECT_EQ(sys.send_rejections(), 0u);

  sys.shutdown_remote_nodes();
  for (NodeProcess& node : nodes_) EXPECT_TRUE(node.reap_clean());
  sys.stop();
}

TEST_F(MultiProcess, KilledNodeLosesLiveStateButMigrationRecoversCheckpoint) {
  spawn_cluster(2);
  runtime::LiveSystem::Options opts;
  opts.remote_nodes = peers();
  opts.max_retries = 2;
  opts.retry_backoff = std::chrono::milliseconds{1};
  runtime::LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();

  // The object lives on node 1 with post-checkpoint updates (+5).
  ASSERT_TRUE(sys.create(
      "c", runtime::make_state("counter", {{"count", "0"}}), 1));
  ASSERT_TRUE(sys.invoke("c", "add", "5").ok);
  ASSERT_EQ(sys.invoke("c", "get", "").value, "5");

  // SIGKILL the hosting process: live state is gone, the OS resets the
  // coordinator's connection. crash_node records the death in remote mode.
  nodes_[1].kill_hard();
  sys.crash_node(1);
  EXPECT_FALSE(sys.node_up(1));
  EXPECT_FALSE(sys.invoke("c", "get", "").ok);
  EXPECT_GE(sys.send_rejections(), 1u);

  // Migrate the object off the dead node: the evict cannot reach node 1,
  // so the migration recovers the creation checkpoint and installs it on
  // node 0 — degraded (the +5 is lost) but never lost entirely.
  ASSERT_TRUE(sys.migrate("c", 0));
  EXPECT_GE(sys.recoveries(), 1u);
  ASSERT_EQ(sys.location("c"), std::size_t{0});
  EXPECT_EQ(sys.invoke("c", "get", "").value, "0");
  ASSERT_TRUE(sys.invoke("c", "add", "7").ok);

  // Relaunch the node process (fresh port), re-point the transport, and
  // declare it restarted; then the object migrates back onto it with its
  // current state and keeps working.
  ASSERT_TRUE(nodes_[1].spawn());
  sys.set_remote_peer(1, Peer{"127.0.0.1", nodes_[1].port});
  sys.restart_node(1);
  EXPECT_TRUE(sys.node_up(1));

  ASSERT_TRUE(sys.migrate("c", 1));
  ASSERT_EQ(sys.location("c"), std::size_t{1});
  EXPECT_EQ(sys.invoke("c", "get", "").value, "7");
  EXPECT_GE(sys.transport_reconnects(), 0u);
  EXPECT_EQ(sys.crashes(), 1u);
  EXPECT_EQ(sys.restarts(), 1u);

  sys.shutdown_remote_nodes();
  for (NodeProcess& node : nodes_) EXPECT_TRUE(node.reap_clean());
  sys.stop();
}

TEST_F(MultiProcess, ShutdownFramesStopEveryProcess) {
  spawn_cluster(2);
  {
    runtime::LiveSystem::Options opts;
    opts.remote_nodes = peers();
    runtime::LiveSystem sys{opts};
    runtime::register_demo_types(sys);
    sys.start();
    ASSERT_TRUE(sys.create(
        "c", runtime::make_state("counter", {{"count", "1"}}), 0));
    EXPECT_EQ(sys.invoke("c", "get", "").value, "1");
    sys.shutdown_remote_nodes();
    sys.stop();
  }
  for (NodeProcess& node : nodes_) EXPECT_TRUE(node.reap_clean());
}

}  // namespace
}  // namespace omig::transport
