// Transport soak: one event-loop NodeServer versus 1k+ concurrent TCP
// connections (the `transport` CI shard).
//
// One AsyncTcpTransport with 1024 peers, every peer pointing at the same
// server, gives 1024 real kernel connections multiplexed onto one client
// loop thread — the configuration the thread-per-peer backend cannot
// reach without 1024 blocked reader threads. Every connection carries
// several request/reply round trips with a unique echo payload, and the
// suite asserts the strict delivery contract: every reply arrives (zero
// drops), every reply matches its request (zero cross-wiring), and the
// server handled exactly one frame per request (zero duplicates).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "transport/async_tcp_transport.hpp"
#include "transport/node_server.hpp"
#include "transport/wire.hpp"

namespace omig::transport {
namespace {

constexpr std::size_t kConns = 1024;
constexpr std::size_t kRoundsPerConn = 4;

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

TEST(TransportSoak, ThousandConcurrentConnectionsZeroDropZeroDup) {
  std::atomic<std::uint64_t> handled{0};
  NodeServer server(
      [&handled](Frame frame) -> std::optional<Frame> {
        const auto* invoke = std::get_if<WireInvoke>(&frame.payload);
        if (invoke == nullptr) return std::nullopt;
        handled.fetch_add(1, std::memory_order_relaxed);
        WireInvokeReply reply;
        reply.result.ok = true;
        reply.result.value = invoke->method + ":" + invoke->argument;
        return Frame{frame.corr, std::move(reply)};
      },
      /*loop=*/nullptr, /*handler_threads=*/2);
  const std::uint16_t port = server.start();
  ASSERT_NE(port, 0);

  AsyncTcpTransport::Options opts;
  opts.peers.assign(kConns, Peer{"127.0.0.1", port});
  opts.max_connect_attempts = 6;
  opts.connect_backoff = std::chrono::milliseconds{2};
  AsyncTcpTransport tcp(std::move(opts), /*injector=*/nullptr);

  const std::size_t fds_before_connect = open_fd_count();

  // Round 0 establishes all kConns links; later rounds reuse them, so a
  // link that silently died between rounds shows up as a broken future.
  std::uint64_t seq = 1;
  for (std::size_t round = 0; round < kRoundsPerConn; ++round) {
    std::vector<std::future<runtime::InvokeResult>> replies;
    replies.reserve(kConns);
    for (std::size_t conn = 0; conn < kConns; ++conn) {
      WireInvoke msg;
      msg.seq = seq++;
      msg.object = "soak";
      msg.method = "echo";
      msg.argument =
          "c" + std::to_string(conn) + "-r" + std::to_string(round);
      std::future<runtime::InvokeResult> reply;
      ASSERT_EQ(tcp.send_invoke(kConns + 1, conn, msg, reply),
                SendStatus::Ok)
          << "conn " << conn << " round " << round;
      replies.push_back(std::move(reply));
    }
    for (std::size_t conn = 0; conn < kConns; ++conn) {
      runtime::InvokeResult result;
      ASSERT_NO_THROW(result = replies[conn].get())
          << "dropped reply: conn " << conn << " round " << round;
      EXPECT_TRUE(result.ok);
      EXPECT_EQ(result.value, "echo:c" + std::to_string(conn) + "-r" +
                                  std::to_string(round))
          << "cross-wired reply: conn " << conn << " round " << round;
    }
    // All links stay up between rounds: 1024 client + 1024 server fds.
    EXPECT_GE(open_fd_count(), fds_before_connect + 2 * kConns)
        << "connections dropped after round " << round;
  }

  // Exactly one handled frame per request — a duplicate delivery (or a
  // retry the transport is not supposed to do) would overshoot.
  EXPECT_EQ(handled.load(), kConns * kRoundsPerConn);
  EXPECT_EQ(tcp.reconnects(), 0u) << "links flapped during the soak";

  server.stop();
}

}  // namespace
}  // namespace omig::transport
