// Transport backends: typed send errors, TCP reconnect after a reset, and
// the core equivalence property — the same workflow with the same
// FaultPlan produces the same protocol-event trace whether the traffic
// stays in-process or takes the full wire round trip.
#include "transport/transport.hpp"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>

#include "runtime/demo_types.hpp"
#include "runtime/live_node.hpp"
#include "runtime/live_system.hpp"
#include "trace/log.hpp"
#include "transport/async_tcp_transport.hpp"
#include "transport/bridge.hpp"
#include "transport/node_server.hpp"
#include "transport/tcp_transport.hpp"

namespace omig::transport {
namespace {

using runtime::LiveSystem;
using runtime::TransportKind;

constexpr std::size_t kSender = 99;

// --- standalone socket transports against one real node --------------------
//
// The same link-behaviour suite runs against both socket backends: the
// blocking thread-per-peer TcpTransport and the event-loop
// AsyncTcpTransport. Where failure *signals* legitimately differ (the
// async backend accepts the send and breaks the reply instead of
// returning a typed rejection), the test branches on async().

class TcpLink : public ::testing::TestWithParam<TransportKind> {
protected:
  void SetUp() override {
    factories_ = runtime::demo_factories();
    node_ = std::make_unique<runtime::LiveNode>(0, &factories_);
    node_->start();
    server_ = std::make_unique<NodeServer>([this](Frame frame) {
      return serve_on_mailbox(node_->mailbox(), std::move(frame));
    });
    port_ = server_->start();
    ASSERT_NE(port_, 0);
    if (async()) {
      AsyncTcpTransport::Options opts;
      opts.peers = {Peer{"127.0.0.1", port_}};
      opts.max_connect_attempts = 2;
      opts.connect_backoff = std::chrono::milliseconds{1};
      tcp_ = std::make_unique<AsyncTcpTransport>(std::move(opts), nullptr);
    } else {
      TcpTransport::Options opts;
      opts.peers = {Peer{"127.0.0.1", port_}};
      opts.max_connect_attempts = 2;
      opts.connect_backoff = std::chrono::milliseconds{1};
      tcp_ = std::make_unique<TcpTransport>(std::move(opts), nullptr);
    }
  }

  void TearDown() override {
    tcp_.reset();
    server_->stop();
    node_->stop();
  }

  [[nodiscard]] bool async() const {
    return GetParam() == TransportKind::AsyncTcp;
  }

  bool install(const std::string& name, runtime::ObjectState state) {
    WireInstall msg;
    msg.seq = next_seq_++;
    msg.name = name;
    msg.state = std::move(state);
    std::future<bool> done;
    if (tcp_->send_install(kSender, 0, msg, done) != SendStatus::Ok) {
      return false;
    }
    return done.get();
  }

  std::unordered_map<std::string, runtime::ObjectFactory> factories_;
  std::unique_ptr<runtime::LiveNode> node_;
  std::unique_ptr<NodeServer> server_;
  std::unique_ptr<SocketTransport> tcp_;
  std::uint16_t port_ = 0;
  std::uint64_t next_seq_ = 1;
};

INSTANTIATE_TEST_SUITE_P(Backends, TcpLink,
                         ::testing::Values(TransportKind::Tcp,
                                           TransportKind::AsyncTcp),
                         [](const auto& info) {
                           return info.param == TransportKind::AsyncTcp
                                      ? "AsyncTcp"
                                      : "Tcp";
                         });

TEST_P(TcpLink, RequestReplyRoundTrip) {
  ASSERT_TRUE(install("c", runtime::make_state("counter", {{"count", "5"}})));

  WireInvoke msg;
  msg.seq = next_seq_++;
  msg.object = "c";
  msg.method = "add";
  msg.argument = "3";
  std::future<runtime::InvokeResult> reply;
  ASSERT_EQ(tcp_->send_invoke(kSender, 0, msg, reply), SendStatus::Ok);
  const runtime::InvokeResult result = reply.get();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.value, "8");

  WireEvict evict;
  evict.seq = next_seq_++;
  evict.name = "c";
  std::future<runtime::ObjectState> state;
  ASSERT_EQ(tcp_->send_evict(kSender, 0, evict, state), SendStatus::Ok);
  const runtime::ObjectState evicted = state.get();
  EXPECT_EQ(evicted.type, "counter");
  EXPECT_EQ(evicted.fields.at("count"), "8");
}

TEST_P(TcpLink, ManyInFlightRequestsDemultiplexByCorrelation) {
  ASSERT_TRUE(install("c", runtime::make_state("counter", {{"count", "0"}})));
  // Issue a burst of invokes before reading any reply: every future must
  // get *its* answer back (correlation IDs, not ordering luck).
  constexpr int kBurst = 64;
  std::vector<std::future<runtime::InvokeResult>> replies(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    WireInvoke msg;
    msg.seq = next_seq_++;
    msg.object = "c";
    msg.method = "add";
    msg.argument = "1";
    ASSERT_EQ(tcp_->send_invoke(kSender, 0, msg, replies[i]), SendStatus::Ok);
  }
  std::vector<std::string> values;
  for (auto& reply : replies) {
    const runtime::InvokeResult result = reply.get();
    ASSERT_TRUE(result.ok);
    values.push_back(result.value);
  }
  // The node serves one connection in order, so the final count is exact.
  EXPECT_EQ(values.back(), std::to_string(kBurst));
}

TEST_P(TcpLink, UnknownPeerIsUnreachable) {
  WireInvoke msg;
  msg.object = "c";
  std::future<runtime::InvokeResult> reply;
  EXPECT_EQ(tcp_->send_invoke(kSender, 7, msg, reply),
            SendStatus::Unreachable);
}

TEST_P(TcpLink, DeadListenerIsUnreachableAndRecoversOnRestart) {
  ASSERT_TRUE(install("c", runtime::make_state("counter", {{"count", "1"}})));
  server_->stop();

  WireInvoke msg;
  msg.seq = next_seq_++;
  msg.object = "c";
  msg.method = "get";
  std::future<runtime::InvokeResult> reply;
  if (async()) {
    // The async backend accepts every send; a dead peer surfaces as the
    // broken-promise "lost in flight" signal once the connect budget is
    // exhausted — never as a hang.
    ASSERT_EQ(tcp_->send_invoke(kSender, 0, msg, reply), SendStatus::Ok);
    EXPECT_THROW(reply.get(), std::future_error);
  } else {
    // The first send may still ride the old connection (Closed when the
    // write hits the reset) or fail to reconnect (Unreachable); either way
    // it is a typed rejection, not a hang.
    SendStatus status = tcp_->send_invoke(kSender, 0, msg, reply);
    if (status == SendStatus::Ok) {
      // Accepted just before the reset was observed: the reply must break.
      EXPECT_THROW(reply.get(), std::future_error);
      status = tcp_->send_invoke(kSender, 0, msg, reply);
    }
    EXPECT_NE(status, SendStatus::Ok);
  }

  // Restart on the same port (the node itself kept running, so the object
  // is still there) — the transport reconnects transparently.
  ASSERT_EQ(server_->start(port_), port_);
  std::future<runtime::InvokeResult> after;
  ASSERT_EQ(tcp_->send_invoke(kSender, 0, msg, after), SendStatus::Ok);
  EXPECT_EQ(after.get().value, "1");
  EXPECT_GE(tcp_->reconnects(), 1u);
}

TEST_P(TcpLink, OversizedFrameIsRejectedWithoutKillingTheLink) {
  ASSERT_TRUE(install("c", runtime::make_state("counter", {{"count", "1"}})));
  WireInstall big;
  big.seq = next_seq_++;
  big.name = "blob";
  big.state.type = "counter";
  big.state.fields["payload"] = std::string(kMaxFramePayload + 1, 'x');
  std::future<bool> done;
  EXPECT_EQ(tcp_->send_install(kSender, 0, big, done), SendStatus::Oversized);
  EXPECT_THROW(done.get(), std::future_error);  // reply broke, typed status

  // The connection survived: normal traffic still flows.
  WireInvoke msg;
  msg.seq = next_seq_++;
  msg.object = "c";
  msg.method = "get";
  std::future<runtime::InvokeResult> reply;
  ASSERT_EQ(tcp_->send_invoke(kSender, 0, msg, reply), SendStatus::Ok);
  EXPECT_EQ(reply.get().value, "1");
}

// --- in-proc typed errors ---------------------------------------------------

TEST(InProcTransportTest, ClosedMailboxYieldsTypedError) {
  auto factories = runtime::demo_factories();
  runtime::LiveNode node{0, &factories};
  node.start();
  InProcTransport transport{
      [&](std::size_t to) {
        return to == 0 ? &node.mailbox() : nullptr;
      },
      nullptr};

  WireInvoke msg;
  msg.seq = 1;
  msg.object = "nothing";
  msg.method = "get";
  std::future<runtime::InvokeResult> reply;
  EXPECT_EQ(transport.send_invoke(kSender, 0, msg, reply), SendStatus::Ok);
  EXPECT_FALSE(reply.get().ok);  // unknown object, but delivered

  EXPECT_EQ(transport.send_invoke(kSender, 3, msg, reply),
            SendStatus::Closed);  // no such mailbox

  node.crash();
  EXPECT_EQ(transport.send_invoke(kSender, 0, msg, reply),
            SendStatus::Closed);  // crashed: mailbox rejects
  node.stop();
}

// --- LiveSystem over both backends ------------------------------------------

LiveSystem::Options system_options(TransportKind kind, std::size_t nodes,
                                   trace::TraceLog* trace = nullptr) {
  LiveSystem::Options opts;
  opts.nodes = nodes;
  opts.transport = kind;
  opts.trace = trace;
  opts.max_retries = 8;
  opts.retry_backoff = std::chrono::milliseconds{1};
  return opts;
}

/// The deterministic mini-workflow used for the equivalence checks: one
/// driver thread, so directory events are totally ordered.
void run_workflow(LiveSystem& sys) {
  runtime::register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(
      sys.create("case-1", runtime::make_state("case-file", {{"log", ""}}),
                 0));
  ASSERT_TRUE(sys.create(
      "ledger", runtime::make_state("ledger", {{"total", "0"}}), 2));
  ASSERT_TRUE(sys.attach("case-1", "ledger", "billing"));

  auto intake = sys.visit("case-1", 1, "intake");
  ASSERT_TRUE(intake.granted);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sys.invoke_from(1, "case-1", "append", "intake").ok);
  }
  sys.end(intake);

  auto billing = sys.move("case-1", 2, "billing");
  ASSERT_TRUE(billing.granted);
  ASSERT_TRUE(sys.invoke_from(2, "ledger", "bill", "").ok);
  ASSERT_TRUE(sys.invoke_from(2, "case-1", "append", "billed").ok);
  auto conflicting = sys.move("case-1", 0, "archive");
  EXPECT_FALSE(conflicting.granted);
  sys.end(conflicting);
  sys.end(billing);

  sys.fix("ledger");
  auto pinned = sys.move("case-1", 0, "billing");
  ASSERT_TRUE(pinned.granted);
  sys.end(pinned);
  sys.unfix("ledger");

  EXPECT_EQ(sys.invoke("case-1", "entries", "").value, "5");
  EXPECT_EQ(sys.invoke("ledger", "total", "").value, "10");
}

TEST(TransportEquivalence, TcpBackendRunsTheWorkflowIdentically) {
  for (const TransportKind kind :
       {TransportKind::InProc, TransportKind::Tcp, TransportKind::AsyncTcp}) {
    LiveSystem sys{system_options(kind, 3)};
    run_workflow(sys);
    EXPECT_EQ(sys.refused_moves(), 1u);
    EXPECT_EQ(sys.send_rejections(), 0u);
    sys.stop();
  }
}

TEST(TransportEquivalence, ProtocolTracesMatchAcrossBackends) {
  trace::TraceLog inproc_trace;
  trace::TraceLog tcp_trace;
  trace::TraceLog async_trace;
  {
    LiveSystem sys{system_options(TransportKind::InProc, 3, &inproc_trace)};
    run_workflow(sys);
    sys.stop();
  }
  {
    LiveSystem sys{system_options(TransportKind::Tcp, 3, &tcp_trace)};
    run_workflow(sys);
    sys.stop();
  }
  {
    LiveSystem sys{system_options(TransportKind::AsyncTcp, 3, &async_trace)};
    run_workflow(sys);
    sys.stop();
  }
  ASSERT_GT(inproc_trace.size(), 0u);
  // Identical protocol history, event for event, on the logical clock —
  // whether traffic stays in-process, blocks on sockets, or multiplexes
  // through the proactor loop.
  EXPECT_EQ(inproc_trace.render(10'000), tcp_trace.render(10'000));
  EXPECT_EQ(inproc_trace.render(10'000), async_trace.render(10'000));
  // And the history is not just equal but *valid*.
  EXPECT_EQ(trace::check::locks_balance(inproc_trace), "");
  EXPECT_EQ(trace::check::transits_alternate(inproc_trace), "");
  EXPECT_EQ(trace::check::refused_blocks_never_migrate(inproc_trace), "");
}

TEST(TransportEquivalence, TracesMatchUnderTheSameFaultPlan) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.links.push_back(fault::LinkFault{fault::kAnyNode, fault::kAnyNode,
                                        0.10, 0.10, 0.1});
  auto run = [&](TransportKind kind, trace::TraceLog* log) {
    LiveSystem::Options opts = system_options(kind, 3, log);
    opts.fault_plan = plan;
    LiveSystem sys{opts};
    run_workflow(sys);
    const std::uint64_t dropped = sys.dropped_messages();
    sys.stop();
    return dropped;
  };
  trace::TraceLog inproc_trace;
  trace::TraceLog tcp_trace;
  trace::TraceLog async_trace;
  const std::uint64_t inproc_dropped = run(TransportKind::InProc,
                                           &inproc_trace);
  const std::uint64_t tcp_dropped = run(TransportKind::Tcp, &tcp_trace);
  const std::uint64_t async_dropped = run(TransportKind::AsyncTcp,
                                          &async_trace);
  // Same seed, same delivery order, same injector stream: identical fault
  // sequences and identical protocol histories on every backend. The
  // async backend consumes the injector stream on the caller's thread
  // precisely so this holds.
  EXPECT_EQ(inproc_dropped, tcp_dropped);
  EXPECT_EQ(inproc_dropped, async_dropped);
  EXPECT_EQ(inproc_trace.render(10'000), tcp_trace.render(10'000));
  EXPECT_EQ(inproc_trace.render(10'000), async_trace.render(10'000));
  EXPECT_EQ(trace::check::locks_balance(tcp_trace), "");
  EXPECT_EQ(trace::check::transits_alternate(tcp_trace), "");
  EXPECT_EQ(trace::check::locks_balance(async_trace), "");
  EXPECT_EQ(trace::check::transits_alternate(async_trace), "");
}

TEST(TransportFaults, CrashedNodeCountsTypedRejections) {
  LiveSystem::Options opts = system_options(TransportKind::InProc, 2);
  opts.max_retries = 2;
  LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(
      sys.create("c", runtime::make_state("counter", {{"count", "0"}}), 1));
  sys.crash_node(1);
  const runtime::InvokeResult result = sys.invoke("c", "add", "1");
  EXPECT_FALSE(result.ok);
  // Every delivery attempt was rejected by the closed mailbox — counted,
  // not inferred from broken promises.
  EXPECT_GE(sys.send_rejections(), 3u);
  sys.stop();
}

TEST(TransportFaults, TcpCrashRestartRecoversObjects) {
  LiveSystem::Options opts = system_options(TransportKind::Tcp, 2);
  opts.max_retries = 4;
  LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(
      sys.create("c", runtime::make_state("counter", {{"count", "0"}}), 1));
  ASSERT_TRUE(sys.invoke("c", "add", "5").ok);

  sys.crash_node(1);
  EXPECT_FALSE(sys.node_up(1));
  EXPECT_FALSE(sys.invoke("c", "get", "").ok);
  EXPECT_GE(sys.send_rejections(), 1u);

  sys.restart_node(1);
  EXPECT_TRUE(sys.node_up(1));
  // Recovered from the creation checkpoint: post-checkpoint updates are
  // lost (degraded mode), the object itself survives.
  const runtime::InvokeResult result = sys.invoke("c", "get", "");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.value, "0");
  EXPECT_EQ(sys.recoveries(), 1u);
  sys.stop();
}

TEST(TransportFaults, AsyncTcpCrashRestartRecoversObjects) {
  LiveSystem::Options opts = system_options(TransportKind::AsyncTcp, 2);
  opts.max_retries = 4;
  LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(
      sys.create("c", runtime::make_state("counter", {{"count", "0"}}), 1));
  ASSERT_TRUE(sys.invoke("c", "add", "5").ok);

  sys.crash_node(1);
  EXPECT_FALSE(sys.node_up(1));
  // The async backend accepts the sends and breaks the replies once the
  // reconnect budget runs dry; the retry layer turns that into a failed
  // invoke, not a hang. (No typed-rejection count here: every send
  // returned Ok — the loss is asynchronous by design.)
  EXPECT_FALSE(sys.invoke("c", "get", "").ok);

  sys.restart_node(1);
  EXPECT_TRUE(sys.node_up(1));
  const runtime::InvokeResult result = sys.invoke("c", "get", "");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.value, "0");
  EXPECT_EQ(sys.recoveries(), 1u);
  EXPECT_GE(sys.transport_reconnects(), 1u);
  sys.stop();
}

}  // namespace
}  // namespace omig::transport
