// Golden determinism record for the simulation kernel.
//
// The canonicalized output of a small two-variant fig-8 sweep (3 target
// migration times x conventional/placement, 3 seeds, 1 and 8 worker
// threads), captured on the kernel BEFORE the performance overhaul
// (std::priority_queue event queue, heap-allocated coroutine frames,
// unordered_map id tables) and asserted byte-identical ever since.
//
// Every metric is rendered in hexfloat, so the comparison is exact to the
// last bit of every double: if any queue/pool/table change perturbs one
// event ordering or one RNG draw anywhere in a run, this test fails. The
// thread counts double-check the parallel-sweep invariant: results never
// depend on how cells are scheduled.
//
// If a FUNCTIONAL change legitimately alters simulation results, regenerate
// the record (see docs/performance.md) and say so in the commit; a
// performance-only change must never touch it.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/sweep.hpp"

namespace omig::core {
namespace {

stats::StoppingRule tiny_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 200;
  rule.max_observations = 500;
  return rule;
}

std::vector<SweepVariant> golden_variants() {
  return {
      {"conventional",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Conventional);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
      {"placement",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Placement);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
  };
}

const std::vector<double> kXs{5.0, 30.0, 80.0};

void canonicalise(std::ostream& os, const std::vector<SweepPoint>& points) {
  os << std::hexfloat;
  for (const auto& p : points) {
    os << "x=" << p.x << '\n';
    for (const auto& r : p.results) {
      os << "  tpc=" << r.total_per_call << " cd=" << r.call_duration
         << " mpc=" << r.migration_per_call << " hw=" << r.ci_half_width
         << " rel=" << r.ci_relative << " blocks=" << r.blocks
         << " calls=" << r.calls << " migr=" << r.migrations
         << " xfer=" << r.transfers << " ctrl=" << r.control_messages
         << " remote=" << r.remote_calls << " blocked=" << r.blocked_calls
         << " events=" << r.events << " t=" << r.sim_time
         << " p50=" << r.call_p50 << " p95=" << r.call_p95
         << " p99=" << r.call_p99 << '\n';
    }
  }
}

std::string golden_run(std::uint64_t base_seed, int threads) {
  const auto variants = golden_variants();
  SweepOptions opts;
  opts.threads = threads;
  opts.base_seed = base_seed;
  const auto points = run_sweep(kXs, variants, opts);
  std::ostringstream os;
  os << "seed=" << std::hex << base_seed << std::dec
     << " threads=" << threads << '\n';
  canonicalise(os, points);
  os << sweep_table("t_m", variants, points, Metric::TotalPerCall).to_text();
  return os.str();
}

struct GoldenCase {
  std::uint64_t seed;
  int threads;
  const char* expected;
};

// Captured at repo revision 8dd4ecf (pre-overhaul kernel); regenerated
// only on functional changes.
const GoldenCase kGolden[] = {
// seed=1 threads=1
{0x1ULL, 1, R"GOLD(seed=1 threads=1
x=0x1.4p+2
  tpc=0x1.597cb074a4b87p+0 cd=0x1.9bef221e53ca7p-1 mpc=0x1.170a3ecaf5a61p-1 hw=0x1.5695968ecdaa3p-3 rel=0x1.fbb2bfe12acc8p-4 blocks=500 calls=3812 migr=345 xfer=345 ctrl=568 remote=1271 blocked=187 events=8638 t=0x1.10afc96829f71p+12 p50=0x1.6a033722542acp-3 p95=0x1.3099999999998p+2 p99=0x1.f1a54d880bb37p+2
  tpc=0x1.c68788e58d021p-1 cd=0x1.165bd4e53411bp-1 mpc=0x1.60576800b1e0fp-2 hw=0x1.0ae3dcb2388ffp-3 rel=0x1.2ca2b6082383fp-3 blocks=500 calls=4200 migr=217 xfer=217 ctrl=568 remote=1112 blocked=70 events=8458 t=0x1.fced02197fe0dp+11 p50=0x1.4ce946b6be5fp-3 p95=0x1.9f9435e50d794p+1 p99=0x1.948253c8253d1p+2
x=0x1.ep+4
  tpc=0x1.0d9de9d28d84fp+0 cd=0x1.d909ca71a1cfcp-2 mpc=0x1.2eb6ee6c4a21bp-1 hw=0x1.ada6090ab7d8fp-3 rel=0x1.97f30cbab0e3dp-3 blocks=500 calls=4302 migr=376 xfer=377 ctrl=525 remote=779 blocked=103 events=7614 t=0x1.0bb7a60096dcp+13 p50=0x1.35592da26c923p-3 p95=0x1.957ee30f95259p+1 p99=0x1.d028f5c28f5c7p+2
  tpc=0x1.93c728a9ef748p-1 cd=0x1.3c04f08d1d2b5p-2 mpc=0x1.eb8960c6c1bc9p-2 hw=0x1.0d83eefbe6277p-3 rel=0x1.55c0795efac7fp-3 blocks=500 calls=4038 migr=291 xfer=291 ctrl=535 remote=643 blocked=25 events=6999 t=0x1.edf967ed957dep+12 p50=0x1.2bc1ee33ebb3dp-3 p95=0x1.382d82d82d82bp+1 p99=0x1.29fbe76c8b433p+2
x=0x1.4p+6
  tpc=0x1.93fe75e731ee3p-1 cd=0x1.71f6313c691d9p-3 mpc=0x1.3780e99817a67p-1 hw=0x1.1f08c58099fc8p-3 rel=0x1.6bc5883e64c0bp-3 blocks=500 calls=3860 migr=353 xfer=353 ctrl=524 remote=306 blocked=41 events=6119 t=0x1.f6a331d43e99fp+13 p50=0x1.13db6db6db6dbp-3 p95=0x1.2a5ca5ca5ca49p+0 p99=0x1.3cb17e4b17e55p+2
  tpc=0x1.6d13e87053a93p-1 cd=0x1.88ab9383c52cfp-3 mpc=0x1.0ae9038f625e3p-1 hw=0x1.9bfa19c1dae8dp-4 rel=0x1.20e2fcec182b7p-3 blocks=500 calls=4176 migr=318 xfer=318 ctrl=517 remote=389 blocked=15 events=6493 t=0x1.fd8b4ededb9b1p+13 p50=0x1.1871e5acb9e38p-3 p95=0x1.95b05b05b05abp+0 p99=0x1.027ae147ae14p+2
    t_m  conventional  placement
--------------------------------
 5.0000        1.3496     0.8878
30.0000        1.0532     0.7886
80.0000        0.7891     0.7130
)GOLD"},
// seed=1 threads=8
{0x1ULL, 8, R"GOLD(seed=1 threads=8
x=0x1.4p+2
  tpc=0x1.597cb074a4b87p+0 cd=0x1.9bef221e53ca7p-1 mpc=0x1.170a3ecaf5a61p-1 hw=0x1.5695968ecdaa3p-3 rel=0x1.fbb2bfe12acc8p-4 blocks=500 calls=3812 migr=345 xfer=345 ctrl=568 remote=1271 blocked=187 events=8638 t=0x1.10afc96829f71p+12 p50=0x1.6a033722542acp-3 p95=0x1.3099999999998p+2 p99=0x1.f1a54d880bb37p+2
  tpc=0x1.c68788e58d021p-1 cd=0x1.165bd4e53411bp-1 mpc=0x1.60576800b1e0fp-2 hw=0x1.0ae3dcb2388ffp-3 rel=0x1.2ca2b6082383fp-3 blocks=500 calls=4200 migr=217 xfer=217 ctrl=568 remote=1112 blocked=70 events=8458 t=0x1.fced02197fe0dp+11 p50=0x1.4ce946b6be5fp-3 p95=0x1.9f9435e50d794p+1 p99=0x1.948253c8253d1p+2
x=0x1.ep+4
  tpc=0x1.0d9de9d28d84fp+0 cd=0x1.d909ca71a1cfcp-2 mpc=0x1.2eb6ee6c4a21bp-1 hw=0x1.ada6090ab7d8fp-3 rel=0x1.97f30cbab0e3dp-3 blocks=500 calls=4302 migr=376 xfer=377 ctrl=525 remote=779 blocked=103 events=7614 t=0x1.0bb7a60096dcp+13 p50=0x1.35592da26c923p-3 p95=0x1.957ee30f95259p+1 p99=0x1.d028f5c28f5c7p+2
  tpc=0x1.93c728a9ef748p-1 cd=0x1.3c04f08d1d2b5p-2 mpc=0x1.eb8960c6c1bc9p-2 hw=0x1.0d83eefbe6277p-3 rel=0x1.55c0795efac7fp-3 blocks=500 calls=4038 migr=291 xfer=291 ctrl=535 remote=643 blocked=25 events=6999 t=0x1.edf967ed957dep+12 p50=0x1.2bc1ee33ebb3dp-3 p95=0x1.382d82d82d82bp+1 p99=0x1.29fbe76c8b433p+2
x=0x1.4p+6
  tpc=0x1.93fe75e731ee3p-1 cd=0x1.71f6313c691d9p-3 mpc=0x1.3780e99817a67p-1 hw=0x1.1f08c58099fc8p-3 rel=0x1.6bc5883e64c0bp-3 blocks=500 calls=3860 migr=353 xfer=353 ctrl=524 remote=306 blocked=41 events=6119 t=0x1.f6a331d43e99fp+13 p50=0x1.13db6db6db6dbp-3 p95=0x1.2a5ca5ca5ca49p+0 p99=0x1.3cb17e4b17e55p+2
  tpc=0x1.6d13e87053a93p-1 cd=0x1.88ab9383c52cfp-3 mpc=0x1.0ae9038f625e3p-1 hw=0x1.9bfa19c1dae8dp-4 rel=0x1.20e2fcec182b7p-3 blocks=500 calls=4176 migr=318 xfer=318 ctrl=517 remote=389 blocked=15 events=6493 t=0x1.fd8b4ededb9b1p+13 p50=0x1.1871e5acb9e38p-3 p95=0x1.95b05b05b05abp+0 p99=0x1.027ae147ae14p+2
    t_m  conventional  placement
--------------------------------
 5.0000        1.3496     0.8878
30.0000        1.0532     0.7886
80.0000        0.7891     0.7130
)GOLD"},
// seed=feedc0de threads=1
{0xfeedc0deULL, 1, R"GOLD(seed=feedc0de threads=1
x=0x1.4p+2
  tpc=0x1.47a46f3a17895p+0 cd=0x1.77847a00c803ep-1 mpc=0x1.17c46473670edp-1 hw=0x1.87ed99e04b1a9p-3 rel=0x1.323aa3d2ed9b3p-3 blocks=500 calls=4025 migr=363 xfer=363 ctrl=565 remote=1187 blocked=197 events=8605 t=0x1.12f79727a429bp+12 p50=0x1.590dff7c17b3cp-3 p95=0x1.3266666666665p+2 p99=0x1.fe489c6489c69p+2
  tpc=0x1.c98ea6508aa63p-1 cd=0x1.15d03c99af1d4p-1 mpc=0x1.677cd36db711fp-2 hw=0x1.b0cdbe424d3eep-4 rel=0x1.e44d179874a65p-4 blocks=500 calls=4039 migr=215 xfer=215 ctrl=569 remote=1189 blocked=71 events=8372 t=0x1.e94e3e3cf044cp+11 p50=0x1.5011625f1caadp-3 p95=0x1.9b82d82d82d8p+1 p99=0x1.7d3bfa2608c6ep+2
x=0x1.ep+4
  tpc=0x1.167e472410555p+0 cd=0x1.df0ce7530ddbdp-2 mpc=0x1.3d761a9e99bcep-1 hw=0x1.5ad7f8d875e14p-3 rel=0x1.3ed471e4e5ad5p-3 blocks=500 calls=3964 migr=379 xfer=379 ctrl=535 remote=686 blocked=101 events=7198 t=0x1.050f183b427adp+13 p50=0x1.338a5eb91cc9dp-3 p95=0x1.a5075075075p+1 p99=0x1.ce06d3a06d395p+2
  tpc=0x1.889c2672ed119p-1 cd=0x1.2202c4cc05dd5p-2 mpc=0x1.ef358819d4466p-2 hw=0x1.364073a2a735ap-3 rel=0x1.9498e4233c4abp-3 blocks=500 calls=4179 migr=294 xfer=294 ctrl=530 remote=613 blocked=23 events=7005 t=0x1.ea5cecf6d93bfp+12 p50=0x1.26cacb136e70fp-3 p95=0x1.1a581c93a5818p+1 p99=0x1.2e147ae147ad5p+2
x=0x1.4p+6
  tpc=0x1.8763d67b9e96p-1 cd=0x1.81ae7f33f9b5p-3 mpc=0x1.26f836aea0287p-1 hw=0x1.43ee662c1a2e6p-3 rel=0x1.a7c0d7e3c57fap-3 blocks=500 calls=4089 migr=351 xfer=351 ctrl=521 remote=320 blocked=42 events=6347 t=0x1.f5e2edfa8d9bfp+13 p50=0x1.13cfdb374fa75p-3 p95=0x1.487ca92ebf70bp+0 p99=0x1.51ae147ae148p+2
  tpc=0x1.652b4f5c1d05ap-1 cd=0x1.6a67c9d23aad6p-3 mpc=0x1.0a915ce78e5a8p-1 hw=0x1.0e3d3a0daa34fp-3 rel=0x1.8362e5c2355fep-3 blocks=500 calls=4317 migr=324 xfer=324 ctrl=513 remote=371 blocked=18 events=6519 t=0x1.e54892da58c08p+13 p50=0x1.16722a2ed3b04p-3 p95=0x1.840c0c0c0c0b5p+0 p99=0x1.dc4189374bc66p+1
    t_m  conventional  placement
--------------------------------
 5.0000        1.2799     0.8937
30.0000        1.0879     0.7668
80.0000        0.7644     0.6976
)GOLD"},
// seed=feedc0de threads=8
{0xfeedc0deULL, 8, R"GOLD(seed=feedc0de threads=8
x=0x1.4p+2
  tpc=0x1.47a46f3a17895p+0 cd=0x1.77847a00c803ep-1 mpc=0x1.17c46473670edp-1 hw=0x1.87ed99e04b1a9p-3 rel=0x1.323aa3d2ed9b3p-3 blocks=500 calls=4025 migr=363 xfer=363 ctrl=565 remote=1187 blocked=197 events=8605 t=0x1.12f79727a429bp+12 p50=0x1.590dff7c17b3cp-3 p95=0x1.3266666666665p+2 p99=0x1.fe489c6489c69p+2
  tpc=0x1.c98ea6508aa63p-1 cd=0x1.15d03c99af1d4p-1 mpc=0x1.677cd36db711fp-2 hw=0x1.b0cdbe424d3eep-4 rel=0x1.e44d179874a65p-4 blocks=500 calls=4039 migr=215 xfer=215 ctrl=569 remote=1189 blocked=71 events=8372 t=0x1.e94e3e3cf044cp+11 p50=0x1.5011625f1caadp-3 p95=0x1.9b82d82d82d8p+1 p99=0x1.7d3bfa2608c6ep+2
x=0x1.ep+4
  tpc=0x1.167e472410555p+0 cd=0x1.df0ce7530ddbdp-2 mpc=0x1.3d761a9e99bcep-1 hw=0x1.5ad7f8d875e14p-3 rel=0x1.3ed471e4e5ad5p-3 blocks=500 calls=3964 migr=379 xfer=379 ctrl=535 remote=686 blocked=101 events=7198 t=0x1.050f183b427adp+13 p50=0x1.338a5eb91cc9dp-3 p95=0x1.a5075075075p+1 p99=0x1.ce06d3a06d395p+2
  tpc=0x1.889c2672ed119p-1 cd=0x1.2202c4cc05dd5p-2 mpc=0x1.ef358819d4466p-2 hw=0x1.364073a2a735ap-3 rel=0x1.9498e4233c4abp-3 blocks=500 calls=4179 migr=294 xfer=294 ctrl=530 remote=613 blocked=23 events=7005 t=0x1.ea5cecf6d93bfp+12 p50=0x1.26cacb136e70fp-3 p95=0x1.1a581c93a5818p+1 p99=0x1.2e147ae147ad5p+2
x=0x1.4p+6
  tpc=0x1.8763d67b9e96p-1 cd=0x1.81ae7f33f9b5p-3 mpc=0x1.26f836aea0287p-1 hw=0x1.43ee662c1a2e6p-3 rel=0x1.a7c0d7e3c57fap-3 blocks=500 calls=4089 migr=351 xfer=351 ctrl=521 remote=320 blocked=42 events=6347 t=0x1.f5e2edfa8d9bfp+13 p50=0x1.13cfdb374fa75p-3 p95=0x1.487ca92ebf70bp+0 p99=0x1.51ae147ae148p+2
  tpc=0x1.652b4f5c1d05ap-1 cd=0x1.6a67c9d23aad6p-3 mpc=0x1.0a915ce78e5a8p-1 hw=0x1.0e3d3a0daa34fp-3 rel=0x1.8362e5c2355fep-3 blocks=500 calls=4317 migr=324 xfer=324 ctrl=513 remote=371 blocked=18 events=6519 t=0x1.e54892da58c08p+13 p50=0x1.16722a2ed3b04p-3 p95=0x1.840c0c0c0c0b5p+0 p99=0x1.dc4189374bc66p+1
    t_m  conventional  placement
--------------------------------
 5.0000        1.2799     0.8937
30.0000        1.0879     0.7668
80.0000        0.7644     0.6976
)GOLD"},
// seed=9e3779b97f4a7c15 threads=1
{0x9e3779b97f4a7c15ULL, 1, R"GOLD(seed=9e3779b97f4a7c15 threads=1
x=0x1.4p+2
  tpc=0x1.3cb5660241efcp+0 cd=0x1.69df8f65dd25cp-1 mpc=0x1.0f8b3c9ea6b98p-1 hw=0x1.6f7cd88917815p-3 rel=0x1.290ba2ca51d23p-3 blocks=500 calls=4059 migr=358 xfer=358 ctrl=567 remote=1196 blocked=196 events=8790 t=0x1.1664b456c01f9p+12 p50=0x1.59e6f86c4a93fp-3 p95=0x1.23ccccccccccbp+2 p99=0x1.f3cac083126e6p+2
  tpc=0x1.ffd8a6e72cd63p-1 cd=0x1.21c8ba72c5d83p-1 mpc=0x1.bc1fd8e8cdfb1p-2 hw=0x1.4fcd18a2ed688p-3 rel=0x1.4fe6e92d9d467p-3 blocks=500 calls=3908 migr=255 xfer=255 ctrl=577 remote=1172 blocked=78 events=8288 t=0x1.e7bb8e2614c3bp+11 p50=0x1.57eadb877ceabp-3 p95=0x1.a93e93e93e939p+1 p99=0x1.85eb851eb852p+2
x=0x1.ep+4
  tpc=0x1.0a61e588e23b6p+0 cd=0x1.d0a3434ffac43p-2 mpc=0x1.2c722969c714cp-1 hw=0x1.b05f3c3487e05p-3 rel=0x1.9f8522d5b5b5cp-3 blocks=500 calls=4204 migr=387 xfer=387 ctrl=536 remote=816 blocked=106 events=7722 t=0x1.079870467eae3p+13 p50=0x1.367c488c56d1fp-3 p95=0x1.8927d27d27d1cp+1 p99=0x1.bbf88d7f88d74p+2
  tpc=0x1.a6c2f24aff609p-1 cd=0x1.6cdc4b66e29adp-2 mpc=0x1.e0a9992f1c263p-2 hw=0x1.4be4b9588526ap-4 rel=0x1.91f37a63b7038p-4 blocks=384 calls=3178 migr=226 xfer=226 ctrl=419 remote=553 blocked=32 events=5633 t=0x1.6ec1558a50d63p+12 p50=0x1.31089b83d1f6fp-3 p95=0x1.4289b5d9289b1p+1 p99=0x1.4ec405d9f7392p+2
x=0x1.4p+6
  tpc=0x1.8a8bdc409356dp-1 cd=0x1.a8bb85ffbd7bap-3 mpc=0x1.205cfac0a3f8p-1 hw=0x1.688a92b10b0ccp-3 rel=0x1.d3df35b363107p-3 blocks=500 calls=4124 migr=351 xfer=351 ctrl=522 remote=332 blocked=43 events=6502 t=0x1.066c865053fa1p+14 p50=0x1.14b9dda28841dp-3 p95=0x1.6e353f7ced90ap+0 p99=0x1.78962fc962fabp+2
  tpc=0x1.742bc2df3409dp-1 cd=0x1.bf469dfb19efcp-3 mpc=0x1.045a1b606d8dep-1 hw=0x1.00c3cc2436328p-3 rel=0x1.613c04583ec22p-3 blocks=500 calls=4296 migr=319 xfer=319 ctrl=519 remote=457 blocked=16 events=6716 t=0x1.10dd7fbca55fbp+14 p50=0x1.1cebdc57f3d9bp-3 p95=0x1.cc8a60dd67c8ap+0 p99=0x1.0fb333333334p+2
    t_m  conventional  placement
--------------------------------
 5.0000        1.2371     0.9997
30.0000        1.0406     0.8257
80.0000        0.7706     0.7269
)GOLD"},
// seed=9e3779b97f4a7c15 threads=8
{0x9e3779b97f4a7c15ULL, 8, R"GOLD(seed=9e3779b97f4a7c15 threads=8
x=0x1.4p+2
  tpc=0x1.3cb5660241efcp+0 cd=0x1.69df8f65dd25cp-1 mpc=0x1.0f8b3c9ea6b98p-1 hw=0x1.6f7cd88917815p-3 rel=0x1.290ba2ca51d23p-3 blocks=500 calls=4059 migr=358 xfer=358 ctrl=567 remote=1196 blocked=196 events=8790 t=0x1.1664b456c01f9p+12 p50=0x1.59e6f86c4a93fp-3 p95=0x1.23ccccccccccbp+2 p99=0x1.f3cac083126e6p+2
  tpc=0x1.ffd8a6e72cd63p-1 cd=0x1.21c8ba72c5d83p-1 mpc=0x1.bc1fd8e8cdfb1p-2 hw=0x1.4fcd18a2ed688p-3 rel=0x1.4fe6e92d9d467p-3 blocks=500 calls=3908 migr=255 xfer=255 ctrl=577 remote=1172 blocked=78 events=8288 t=0x1.e7bb8e2614c3bp+11 p50=0x1.57eadb877ceabp-3 p95=0x1.a93e93e93e939p+1 p99=0x1.85eb851eb852p+2
x=0x1.ep+4
  tpc=0x1.0a61e588e23b6p+0 cd=0x1.d0a3434ffac43p-2 mpc=0x1.2c722969c714cp-1 hw=0x1.b05f3c3487e05p-3 rel=0x1.9f8522d5b5b5cp-3 blocks=500 calls=4204 migr=387 xfer=387 ctrl=536 remote=816 blocked=106 events=7722 t=0x1.079870467eae3p+13 p50=0x1.367c488c56d1fp-3 p95=0x1.8927d27d27d1cp+1 p99=0x1.bbf88d7f88d74p+2
  tpc=0x1.a6c2f24aff609p-1 cd=0x1.6cdc4b66e29adp-2 mpc=0x1.e0a9992f1c263p-2 hw=0x1.4be4b9588526ap-4 rel=0x1.91f37a63b7038p-4 blocks=384 calls=3178 migr=226 xfer=226 ctrl=419 remote=553 blocked=32 events=5633 t=0x1.6ec1558a50d63p+12 p50=0x1.31089b83d1f6fp-3 p95=0x1.4289b5d9289b1p+1 p99=0x1.4ec405d9f7392p+2
x=0x1.4p+6
  tpc=0x1.8a8bdc409356dp-1 cd=0x1.a8bb85ffbd7bap-3 mpc=0x1.205cfac0a3f8p-1 hw=0x1.688a92b10b0ccp-3 rel=0x1.d3df35b363107p-3 blocks=500 calls=4124 migr=351 xfer=351 ctrl=522 remote=332 blocked=43 events=6502 t=0x1.066c865053fa1p+14 p50=0x1.14b9dda28841dp-3 p95=0x1.6e353f7ced90ap+0 p99=0x1.78962fc962fabp+2
  tpc=0x1.742bc2df3409dp-1 cd=0x1.bf469dfb19efcp-3 mpc=0x1.045a1b606d8dep-1 hw=0x1.00c3cc2436328p-3 rel=0x1.613c04583ec22p-3 blocks=500 calls=4296 migr=319 xfer=319 ctrl=519 remote=457 blocked=16 events=6716 t=0x1.10dd7fbca55fbp+14 p50=0x1.1cebdc57f3d9bp-3 p95=0x1.cc8a60dd67c8ap+0 p99=0x1.0fb333333334p+2
    t_m  conventional  placement
--------------------------------
 5.0000        1.2371     0.9997
30.0000        1.0406     0.8257
80.0000        0.7706     0.7269
)GOLD"},
};

TEST(SweepGoldenTest, ResultsMatchPreOverhaulKernelBitForBit) {
  for (const GoldenCase& c : kGolden) {
    SCOPED_TRACE(testing::Message()
                 << "seed=0x" << std::hex << c.seed << std::dec
                 << " threads=" << c.threads);
    EXPECT_EQ(golden_run(c.seed, c.threads), c.expected);
  }
}

TEST(SweepGoldenTest, ThreadCountNeverChangesResults) {
  // The embedded records already pin 1 and 8 threads to the same values;
  // this asserts the invariant directly for a thread count not in the
  // record (and for whatever the hardware default resolves to).
  const std::string one = golden_run(0xabcdefULL, 1);
  const std::string three = golden_run(0xabcdefULL, 3);
  EXPECT_EQ(one.substr(one.find('\n')), three.substr(three.find('\n')));
}

}  // namespace
}  // namespace omig::core
