#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/presets.hpp"

namespace omig::core {
namespace {

stats::StoppingRule quick_rule(std::uint64_t max_blocks = 4'000) {
  stats::StoppingRule rule;
  rule.relative_target = 0.05;
  rule.min_observations = 500;
  rule.max_observations = max_blocks;
  return rule;
}

TEST(ExperimentTest, SedentaryBaselineMatchesAnalyticMean) {
  // D = C = S1 = 3, one client per node, servers round-robin: a call is
  // local with probability 1/3, remote calls cost two exp(1) messages —
  // the paper's "mean duration of a call for sedentary nodes is 4/3".
  ExperimentConfig cfg = fig8_config(30.0, migration::PolicyKind::Sedentary);
  cfg.stopping = quick_rule(8'000);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_NEAR(r.total_per_call, 4.0 / 3.0, 0.05);
  EXPECT_DOUBLE_EQ(r.migration_per_call, 0.0);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_GT(r.calls, 0u);
  EXPECT_GT(r.events, 0u);
}

TEST(ExperimentTest, MigrationBeatsSedentaryAtLowConcurrency) {
  // With t_m = 100 the blocks rarely overlap; migration amortises M = 6
  // over ~8 local calls and wins (the right side of Figure 8).
  ExperimentConfig sed = fig8_config(100.0, migration::PolicyKind::Sedentary);
  ExperimentConfig mig =
      fig8_config(100.0, migration::PolicyKind::Conventional);
  sed.stopping = quick_rule();
  mig.stopping = quick_rule();
  const double sed_cost = run_experiment(sed).total_per_call;
  const double mig_cost = run_experiment(mig).total_per_call;
  EXPECT_LT(mig_cost, sed_cost);
}

TEST(ExperimentTest, ResultsAreDeterministicPerSeed) {
  ExperimentConfig cfg = fig8_config(30.0, migration::PolicyKind::Placement);
  cfg.stopping = quick_rule(1'500);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.total_per_call, b.total_per_call);
  EXPECT_EQ(a.calls, b.calls);
  cfg.seed ^= 0xdeadbeef;
  const ExperimentResult c = run_experiment(cfg);
  EXPECT_NE(a.total_per_call, c.total_per_call);
}

TEST(ExperimentTest, PlacementLimitsMigrationsUnderContention) {
  // Hot-spot scenario: many clients, one popular server set. Conventional
  // migration thrashes; placement migrates far less.
  ExperimentConfig conv = fig12_config(15, migration::PolicyKind::Conventional);
  ExperimentConfig plac = fig12_config(15, migration::PolicyKind::Placement);
  conv.stopping = quick_rule(1'500);
  plac.stopping = quick_rule(1'500);
  const ExperimentResult a = run_experiment(conv);
  const ExperimentResult b = run_experiment(plac);
  EXPECT_GT(a.migrations, b.migrations);
  EXPECT_LT(b.total_per_call, a.total_per_call);
}

TEST(ExperimentTest, TwoLayerWorkloadRuns) {
  ExperimentConfig cfg =
      fig16_config(4, migration::PolicyKind::Placement,
                   migration::AttachTransitivity::ATransitive);
  cfg.stopping = quick_rule(1'000);
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.calls, 0u);
  EXPECT_GT(r.total_per_call, 0.0);
}

TEST(ExperimentTest, MaxTimeBoundsTheRun) {
  ExperimentConfig cfg = fig8_config(30.0, migration::PolicyKind::Sedentary);
  cfg.stopping.min_observations = 1'000'000;  // the rule never fires
  cfg.stopping.max_observations = 1'000'000;
  cfg.max_time = 2'000.0;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_LE(r.sim_time, 2'000.0);
  EXPECT_GT(r.blocks, 0u);
}

TEST(ExperimentTest, LocationSchemeAddsOverheadButKeepsOrdering) {
  ExperimentConfig none = fig8_config(60.0, migration::PolicyKind::Placement);
  ExperimentConfig ns = none;
  ns.location_scheme = objsys::LocationScheme::NameServer;
  none.stopping = quick_rule(1'500);
  ns.stopping = quick_rule(1'500);
  const double base = run_experiment(none).total_per_call;
  const double with_ns = run_experiment(ns).total_per_call;
  EXPECT_GE(with_ns, base * 0.98);  // lookups can only add cost (noise aside)
}

TEST(ExperimentTest, ReplicationHelpsReadHeavyHotSpots) {
  ExperimentConfig base = fig12_config(12, migration::PolicyKind::Sedentary);
  base.workload.read_fraction = 0.98;
  base.stopping = quick_rule(2'000);
  ExperimentConfig repl = base;
  repl.replication = objsys::ReplicationMode::ReplicateOnRead;
  const auto without = run_experiment(base);
  const auto with = run_experiment(repl);
  EXPECT_LT(with.total_per_call, without.total_per_call);
  EXPECT_GT(with.replica_hits, 0u);
  EXPECT_GT(with.replications, 0u);
}

TEST(ExperimentTest, ReplicationHurtsWriteHeavyHotSpots) {
  // The Section-5 conjecture: replication shows the same non-monolithic
  // degradation as migration once writes invalidate aggressively.
  ExperimentConfig base = fig12_config(12, migration::PolicyKind::Sedentary);
  base.workload.read_fraction = 0.5;
  base.stopping = quick_rule(2'000);
  ExperimentConfig repl = base;
  repl.replication = objsys::ReplicationMode::ReplicateOnRead;
  const auto without = run_experiment(base);
  const auto with = run_experiment(repl);
  EXPECT_GT(with.total_per_call, without.total_per_call);
  EXPECT_GT(with.invalidations, 0u);
}

TEST(ExperimentTest, ImmutableServersDissolveTheHotSpot) {
  ExperimentConfig cfg = fig12_config(12, migration::PolicyKind::Conventional);
  cfg.stopping = quick_rule(2'000);
  ExperimentConfig immutable = cfg;
  immutable.workload.immutable_servers = true;
  const auto hot = run_experiment(cfg);
  const auto cold = run_experiment(immutable);
  EXPECT_LT(cold.total_per_call, hot.total_per_call * 0.5);
  EXPECT_EQ(cold.migrations, 0u);
  EXPECT_GT(cold.replications, 0u);
}

TEST(ExperimentTest, StoppingRuleFromEnvDefaults) {
  const auto rule = stopping_rule_from_env();
  EXPECT_DOUBLE_EQ(rule.level, 0.99);
  EXPECT_GT(rule.relative_target, 0.0);
  EXPECT_GT(rule.max_observations, rule.min_observations);
}

}  // namespace
}  // namespace omig::core
