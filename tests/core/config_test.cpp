#include "core/config.hpp"

#include <gtest/gtest.h>

namespace omig::core {
namespace {

TEST(ConfigTest, ParsesWorkloadKeys) {
  const auto cfg = parse_config({"nodes=27", "clients=12", "servers1=3",
                                 "servers2=6", "ws=2", "m=4.5", "n=10",
                                 "ti=0.5", "tm=20", "visit=1"});
  EXPECT_EQ(cfg.workload.nodes, 27);
  EXPECT_EQ(cfg.workload.clients, 12);
  EXPECT_EQ(cfg.workload.servers1, 3);
  EXPECT_EQ(cfg.workload.servers2, 6);
  EXPECT_EQ(cfg.workload.working_set_size, 2);
  EXPECT_DOUBLE_EQ(cfg.workload.migration_duration, 4.5);
  EXPECT_DOUBLE_EQ(cfg.workload.mean_calls, 10.0);
  EXPECT_DOUBLE_EQ(cfg.workload.mean_intercall, 0.5);
  EXPECT_DOUBLE_EQ(cfg.workload.mean_interblock, 20.0);
  EXPECT_TRUE(cfg.workload.use_visit);
}

TEST(ConfigTest, ParsesSemanticsKeys) {
  const auto cfg = parse_config({"policy=compare-nodes", "attach=a-transitive",
                                 "exclusive=1", "transfer=serial"});
  EXPECT_EQ(cfg.policy, migration::PolicyKind::CompareNodes);
  EXPECT_EQ(cfg.transitivity, migration::AttachTransitivity::ATransitive);
  EXPECT_TRUE(cfg.exclusive_attachments);
  EXPECT_EQ(cfg.transfer, migration::ClusterTransfer::Serial);
}

TEST(ConfigTest, ParsesSubstrateKeys) {
  const auto cfg = parse_config(
      {"topology=grid", "latency=hop-scaled", "location=forwarding"});
  EXPECT_EQ(cfg.topology, net::TopologyKind::Grid);
  EXPECT_EQ(cfg.latency_mode, net::LatencyMode::HopScaled);
  EXPECT_EQ(cfg.location_scheme, objsys::LocationScheme::Forwarding);
}

TEST(ConfigTest, ParsesRunControl) {
  const auto cfg = parse_config({"ci=0.05", "min-blocks=100",
                                 "max-blocks=5000", "warmup=250",
                                 "max-time=1e6", "seed=42"});
  EXPECT_DOUBLE_EQ(cfg.stopping.relative_target, 0.05);
  EXPECT_EQ(cfg.stopping.min_observations, 100u);
  EXPECT_EQ(cfg.stopping.max_observations, 5000u);
  EXPECT_DOUBLE_EQ(cfg.warmup_time, 250.0);
  EXPECT_DOUBLE_EQ(cfg.max_time, 1e6);
  EXPECT_EQ(cfg.seed, 42u);
}

TEST(ConfigTest, ParsesEgoisticKeys) {
  const auto cfg = parse_config(
      {"egoistic-clients=3", "egoistic-policy=conventional",
       "policy=placement"});
  EXPECT_EQ(cfg.egoistic_clients, 3);
  EXPECT_EQ(cfg.egoistic_policy, migration::PolicyKind::Conventional);
  EXPECT_EQ(cfg.policy, migration::PolicyKind::Placement);
}

TEST(ConfigTest, LoadSharePolicyParses) {
  EXPECT_EQ(parse_config({"policy=load-share"}).policy,
            migration::PolicyKind::LoadShare);
}

TEST(ConfigTest, MigrationAliasForConventional) {
  EXPECT_EQ(policy_from_string("migration"),
            migration::PolicyKind::Conventional);
}

TEST(ConfigTest, RejectsUnknownKey) {
  EXPECT_THROW(parse_config({"bogus=1"}), ConfigError);
}

TEST(ConfigTest, RejectsMalformedToken) {
  EXPECT_THROW(parse_config({"clients"}), ConfigError);
  EXPECT_THROW(parse_config({"=5"}), ConfigError);
}

TEST(ConfigTest, RejectsBadValues) {
  EXPECT_THROW(parse_config({"clients=many"}), ConfigError);
  EXPECT_THROW(parse_config({"policy=teleport"}), ConfigError);
  EXPECT_THROW(parse_config({"visit=maybe"}), ConfigError);
  EXPECT_THROW(parse_config({"m=fast"}), ConfigError);
}

TEST(ConfigTest, LaterAssignmentsWin) {
  const auto cfg = parse_config({"clients=3", "clients=9"});
  EXPECT_EQ(cfg.workload.clients, 9);
}

TEST(ConfigTest, DescribeRoundTrips) {
  const auto cfg = parse_config(
      {"policy=placement", "clients=7", "nodes=12", "topology=ring",
       "attach=a-transitive", "servers2=4", "ws=2", "egoistic-clients=2"});
  const std::string text = describe(cfg);
  // Split the description back into tokens and re-parse.
  std::vector<std::string> tokens;
  std::istringstream is{text};
  for (std::string tok; is >> tok;) tokens.push_back(tok);
  const auto again = parse_config(tokens);
  EXPECT_EQ(again.workload.clients, 7);
  EXPECT_EQ(again.workload.nodes, 12);
  EXPECT_EQ(again.topology, net::TopologyKind::Ring);
  EXPECT_EQ(again.transitivity, migration::AttachTransitivity::ATransitive);
  EXPECT_EQ(again.egoistic_clients, 2);
  EXPECT_EQ(again.policy, migration::PolicyKind::Placement);
}

TEST(ConfigTest, HelpMentionsEveryKeyGroup) {
  const std::string help = config_help();
  for (const char* key : {"nodes", "policy", "attach", "topology",
                          "location", "egoistic-clients", "ci", "seed"}) {
    EXPECT_NE(help.find(key), std::string::npos) << key;
  }
}

TEST(ConfigTest, EnumToStringRoundTrip) {
  EXPECT_EQ(topology_from_string(to_string(net::TopologyKind::Star)),
            net::TopologyKind::Star);
  EXPECT_EQ(latency_from_string(to_string(net::LatencyMode::Fixed)),
            net::LatencyMode::Fixed);
  EXPECT_EQ(transfer_from_string(
                to_string(migration::ClusterTransfer::Serial)),
            migration::ClusterTransfer::Serial);
  EXPECT_EQ(transitivity_from_string(
                to_string(migration::AttachTransitivity::ATransitive)),
            migration::AttachTransitivity::ATransitive);
}

}  // namespace
}  // namespace omig::core
