// Determinism golden tests for the parallel sweep engine: a sweep executed
// on 8 threads must be *bit-identical* to the same sweep on 1 thread — every
// field of every SweepPoint, the rendered TextTable, and the ordered
// progress stream — across several base seeds. This is the contract that
// makes parallel figure reproduction trustworthy.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/presets.hpp"

namespace omig::core {
namespace {

stats::StoppingRule tiny_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 200;
  rule.max_observations = 500;
  return rule;
}

/// A representative grid: two policies of Figure 8 over three x values.
std::vector<SweepVariant> golden_variants() {
  return {
      {"conventional",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Conventional);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
      {"placement",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Placement);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
  };
}

const std::vector<double> kXs{10.0, 30.0, 60.0};

/// Field-by-field bitwise comparison (EXPECT_EQ on double is exact).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.total_per_call, b.total_per_call);
  EXPECT_EQ(a.call_duration, b.call_duration);
  EXPECT_EQ(a.migration_per_call, b.migration_per_call);
  EXPECT_EQ(a.ci_half_width, b.ci_half_width);
  EXPECT_EQ(a.ci_relative, b.ci_relative);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.remote_calls, b.remote_calls);
  EXPECT_EQ(a.blocked_calls, b.blocked_calls);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.call_p50, b.call_p50);
  EXPECT_EQ(a.call_p95, b.call_p95);
  EXPECT_EQ(a.call_p99, b.call_p99);
}

void expect_identical(const std::vector<SweepPoint>& a,
                      const std::vector<SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].x, b[p].x);
    ASSERT_EQ(a[p].results.size(), b[p].results.size());
    for (std::size_t v = 0; v < a[p].results.size(); ++v) {
      expect_identical(a[p].results[v], b[p].results[v]);
    }
  }
}

TEST(SweepParallelTest, EightThreadsBitIdenticalToOneAcrossSeeds) {
  const auto variants = golden_variants();
  for (const std::uint64_t base_seed :
       {0xdecafbadULL, 0x0123456789abcdefULL, 42ULL}) {
    SweepOptions seq;
    seq.threads = 1;
    seq.base_seed = base_seed;
    SweepOptions par;
    par.threads = 8;
    par.base_seed = base_seed;

    const auto a = run_sweep(kXs, variants, seq);
    const auto b = run_sweep(kXs, variants, par);
    expect_identical(a, b);

    const std::string ta =
        sweep_table("t_m", variants, a, Metric::TotalPerCall).to_text();
    const std::string tb =
        sweep_table("t_m", variants, b, Metric::TotalPerCall).to_text();
    EXPECT_EQ(ta, tb) << "rendered tables differ for seed " << base_seed;
  }
}

TEST(SweepParallelTest, ProgressStreamIsOrderedAndIdentical) {
  const auto variants = golden_variants();
  std::ostringstream seq_progress, par_progress;
  SweepOptions seq;
  seq.threads = 1;
  seq.progress = &seq_progress;
  SweepOptions par;
  par.threads = 8;
  par.progress = &par_progress;
  expect_identical(run_sweep(kXs, variants, seq),
                   run_sweep(kXs, variants, par));
  EXPECT_FALSE(seq_progress.str().empty());
  EXPECT_EQ(seq_progress.str(), par_progress.str());
}

TEST(SweepParallelTest, ReplicationsMergeIdenticallyOnAnyThreadCount) {
  const auto variants = golden_variants();
  SweepOptions seq;
  seq.threads = 1;
  seq.replications = 3;
  seq.base_seed = 7ULL;
  SweepOptions par = seq;
  par.threads = 8;
  const auto a = run_sweep({20.0, 50.0}, variants, seq);
  const auto b = run_sweep({20.0, 50.0}, variants, par);
  expect_identical(a, b);
  // Three replications of ~200+ observations each must be merged in.
  for (const auto& point : a) {
    for (const auto& r : point.results) EXPECT_GE(r.blocks, 600u);
  }
}

TEST(SweepParallelTest, LegacyOverloadUnchangedByDefaultOptions) {
  // The historical entry point and SweepOptions{threads=1} must agree with
  // a multi-threaded run when no reseeding is requested: the config's own
  // seed is the cell seed either way.
  const auto variants = golden_variants();
  const auto legacy = run_sweep(kXs, variants);
  SweepOptions par;
  par.threads = 8;
  expect_identical(legacy, run_sweep(kXs, variants, par));
}

TEST(SweepParallelTest, CellSeedIsIndexSensitiveAndStable) {
  // Stable across calls, distinct across every coordinate, and unequal to
  // the base (the hash must avalanche, not echo).
  const std::uint64_t s = cell_seed(99, 1, 2, 3);
  EXPECT_EQ(s, cell_seed(99, 1, 2, 3));
  EXPECT_NE(s, 99u);
  EXPECT_NE(cell_seed(99, 0, 2, 3), s);
  EXPECT_NE(cell_seed(99, 1, 0, 3), s);
  EXPECT_NE(cell_seed(99, 1, 2, 0), s);
  EXPECT_NE(cell_seed(98, 1, 2, 3), s);
  // Transposed coordinates must not collide.
  EXPECT_NE(cell_seed(99, 2, 1, 3), s);
}

TEST(SweepParallelTest, PartialFailureKeepsCompletedPoints) {
  std::vector<SweepVariant> variants{
      {"maybe-broken",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Conventional);
         cfg.stopping = tiny_rule();
         if (x > 25.0) cfg.workload.clients = -1;  // validation will throw
         return cfg;
       }},
  };
  for (const int threads : {1, 8}) {
    SweepOptions opts;
    opts.threads = threads;
    try {
      run_sweep({10.0, 20.0, 30.0}, variants, opts);
      FAIL() << "sweep with a broken cell must throw";
    } catch (const SweepError& e) {
      EXPECT_EQ(e.failed_cells(), 1u);
      ASSERT_EQ(e.completed().size(), 2u);
      EXPECT_EQ(e.completed()[0].x, 10.0);
      EXPECT_EQ(e.completed()[1].x, 20.0);
      for (const auto& p : e.completed()) {
        ASSERT_EQ(p.results.size(), 1u);
        EXPECT_GT(p.results[0].calls, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace omig::core
