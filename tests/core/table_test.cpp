#include "core/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"

namespace omig::core {
namespace {

TEST(TableTest, AlignedTextOutput) {
  TextTable t{{"x", "migration", "placement"}};
  t.add_numeric_row(10.0, {1.2345, 0.9876}, 2);
  t.add_numeric_row(100.0, {1.0, 0.5}, 2);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("migration"), std::string::npos);
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("100.00"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TextTable t{{"x", "y"}};
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TableTest, RowWidthChecked) {
  TextTable t{{"a", "b"}};
  EXPECT_THROW(t.add_row({"1"}), omig::AssertionError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), omig::AssertionError);
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable{{}}, omig::AssertionError);
}

TEST(TableTest, PrintWritesToStream) {
  TextTable t{{"only"}};
  t.add_row({"cell"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("cell"), std::string::npos);
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(1.5, 2), "1.50");
  EXPECT_EQ(format_double(-0.125, 3), "-0.125");
  EXPECT_EQ(format_double(3.0, 0), "3");
}

}  // namespace
}  // namespace omig::core
