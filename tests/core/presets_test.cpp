#include "core/presets.hpp"

#include <gtest/gtest.h>

namespace omig::core {
namespace {

TEST(PresetsTest, Table1Defaults) {
  const auto p = table1_defaults();
  EXPECT_EQ(p.nodes, 3);
  EXPECT_EQ(p.clients, 3);
  EXPECT_EQ(p.servers1, 3);
  EXPECT_EQ(p.servers2, 0);
  EXPECT_DOUBLE_EQ(p.migration_duration, 6.0);
  EXPECT_DOUBLE_EQ(p.mean_calls, 8.0);
}

TEST(PresetsTest, Fig8UsesFigure9Parameters) {
  const auto cfg = fig8_config(50.0, migration::PolicyKind::Placement);
  EXPECT_EQ(cfg.workload.nodes, 3);
  EXPECT_EQ(cfg.workload.clients, 3);
  EXPECT_EQ(cfg.workload.servers1, 3);
  EXPECT_EQ(cfg.workload.servers2, 0);
  EXPECT_DOUBLE_EQ(cfg.workload.mean_interblock, 50.0);
  EXPECT_EQ(cfg.policy, migration::PolicyKind::Placement);
}

TEST(PresetsTest, Fig12UsesFigure13Parameters) {
  const auto cfg = fig12_config(10, migration::PolicyKind::Conventional);
  EXPECT_EQ(cfg.workload.nodes, 27);
  EXPECT_EQ(cfg.workload.clients, 10);
  EXPECT_EQ(cfg.workload.servers1, 3);
  EXPECT_DOUBLE_EQ(cfg.workload.mean_interblock, 30.0);
}

TEST(PresetsTest, Fig14UsesFigure15Parameters) {
  const auto cfg = fig14_config(10, migration::PolicyKind::CompareNodes);
  EXPECT_EQ(cfg.workload.nodes, 3);  // the crowded-nodes setting
  EXPECT_EQ(cfg.workload.clients, 10);
}

TEST(PresetsTest, Fig16UsesFigure17Parameters) {
  const auto cfg = fig16_config(8, migration::PolicyKind::Placement,
                                migration::AttachTransitivity::ATransitive);
  EXPECT_EQ(cfg.workload.nodes, 24);
  EXPECT_EQ(cfg.workload.servers1, 6);
  EXPECT_EQ(cfg.workload.servers2, 6);
  EXPECT_DOUBLE_EQ(cfg.workload.mean_calls, 6.0);
  EXPECT_EQ(cfg.transitivity, migration::AttachTransitivity::ATransitive);
}

TEST(PresetsTest, AllPresetsValidate) {
  EXPECT_NO_THROW(workload::validate(
      fig8_config(1.0, migration::PolicyKind::Sedentary).workload));
  EXPECT_NO_THROW(workload::validate(
      fig12_config(25, migration::PolicyKind::Sedentary).workload));
  EXPECT_NO_THROW(workload::validate(
      fig14_config(25, migration::PolicyKind::Placement).workload));
  EXPECT_NO_THROW(workload::validate(
      fig16_config(12, migration::PolicyKind::Conventional,
                   migration::AttachTransitivity::Unrestricted)
          .workload));
}

}  // namespace
}  // namespace omig::core
