#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace omig::core {
namespace {

migration::MoveBlock block_with(int calls, double call_time,
                                double migration_cost) {
  migration::MoveBlock blk;
  blk.calls = calls;
  blk.call_time = call_time;
  blk.migration_cost = migration_cost;
  return blk;
}

stats::StoppingRule loose_rule() {
  stats::StoppingRule rule;
  rule.min_observations = 1'000'000;  // never auto-stop in unit tests
  return rule;
}

TEST(RecorderTest, MetricsAreRatioOfSums) {
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), /*warmup=*/0.0};
  rec.on_block(block_with(4, 8.0, 4.0));
  rec.on_block(block_with(6, 6.0, 0.0));
  EXPECT_DOUBLE_EQ(rec.call_duration_per_call(), 14.0 / 10.0);
  EXPECT_DOUBLE_EQ(rec.migration_per_call(), 4.0 / 10.0);
  EXPECT_DOUBLE_EQ(rec.total_per_call(), 18.0 / 10.0);
  EXPECT_EQ(rec.blocks(), 2u);
  EXPECT_EQ(rec.calls(), 10u);
}

TEST(RecorderTest, TotalSplitsIntoComponents) {
  // Figure 8 = Figure 10 + Figure 11: total = call + migration, exactly.
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), 0.0};
  for (int i = 0; i < 50; ++i) {
    rec.on_block(block_with(1 + i % 5, 1.5 * i, 0.3 * (i % 7)));
  }
  EXPECT_NEAR(rec.total_per_call(),
              rec.call_duration_per_call() + rec.migration_per_call(),
              1e-12);
}

TEST(RecorderTest, WarmupDiscardsEarlyBlocks) {
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), /*warmup=*/100.0};
  rec.on_block(block_with(4, 400.0, 0.0));  // engine.now() == 0 < warmup
  EXPECT_EQ(rec.blocks(), 0u);
  EXPECT_EQ(rec.discarded_blocks(), 1u);
  EXPECT_DOUBLE_EQ(rec.total_per_call(), 0.0);
}

TEST(RecorderTest, BackgroundMigrationRaisesTotalNotCalls) {
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), 0.0};
  rec.on_block(block_with(5, 5.0, 0.0));
  rec.on_background_migration(10.0);
  EXPECT_DOUBLE_EQ(rec.call_duration_per_call(), 1.0);
  EXPECT_DOUBLE_EQ(rec.migration_per_call(), 2.0);
  EXPECT_DOUBLE_EQ(rec.total_per_call(), 3.0);
  EXPECT_EQ(rec.calls(), 5u);
}

TEST(RecorderTest, StoppingRuleRequestsStop) {
  sim::Engine engine;
  stats::StoppingRule rule;
  rule.min_observations = 10;
  rule.min_batches = 2;
  Recorder rec{engine, rule, 0.0};
  // Constant observations converge instantly once the floors are met.
  for (int i = 0; i < 200 && !engine.stop_requested(); ++i) {
    rec.on_block(block_with(4, 8.0, 2.0));
  }
  EXPECT_TRUE(engine.stop_requested());
}

TEST(RecorderTest, CallQuantilesTrackTheDistribution) {
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), 0.0};
  // 90 fast calls, 10 slow ones (e.g. blocked on a migration).
  for (int i = 0; i < 90; ++i) rec.on_call(1.0);
  for (int i = 0; i < 10; ++i) rec.on_call(20.0);
  EXPECT_NEAR(rec.call_duration_quantile(0.5), 1.0, 0.5);
  EXPECT_NEAR(rec.call_duration_quantile(0.95), 20.0, 1.0);
  EXPECT_EQ(rec.call_histogram().count(), 100u);
}

TEST(RecorderTest, WarmupDiscardsEarlyCalls) {
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), /*warmup=*/100.0};
  rec.on_call(5.0);  // engine.now() == 0 < warmup
  EXPECT_EQ(rec.call_histogram().count(), 0u);
}

TEST(RecorderTest, IntervalReflectsRuleLevel) {
  sim::Engine engine;
  Recorder rec{engine, loose_rule(), 0.0};
  for (int i = 0; i < 500; ++i) {
    rec.on_block(block_with(2, 2.0 + (i % 3), 0.0));
  }
  const auto ci = rec.total_interval();
  EXPECT_GT(ci.batches, 2);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.relative(), 1.0);
}

}  // namespace
}  // namespace omig::core
