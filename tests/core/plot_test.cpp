#include "core/plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"

namespace omig::core {
namespace {

TEST(PlotTest, EmptyPlot) {
  AsciiPlot plot;
  EXPECT_NE(plot.render().find("(empty plot)"), std::string::npos);
}

TEST(PlotTest, SingleSeriesUsesFirstGlyph) {
  AsciiPlot plot{32, 8};
  plot.add_series("line", {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}});
  const std::string out = plot.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = line"), std::string::npos);
}

TEST(PlotTest, SeriesGetDistinctGlyphs) {
  AsciiPlot plot{32, 8};
  plot.add_series("a", {{0.0, 1.0}});
  plot.add_series("b", {{1.0, 2.0}});
  plot.add_series("c", {{2.0, 3.0}});
  const std::string out = plot.render();
  EXPECT_NE(out.find("* = a"), std::string::npos);
  EXPECT_NE(out.find("+ = b"), std::string::npos);
  EXPECT_NE(out.find("o = c"), std::string::npos);
}

TEST(PlotTest, AxisLabelsReflectRange) {
  AsciiPlot plot{32, 8};
  plot.add_series("s", {{10.0, 5.0}, {20.0, 15.0}});
  const std::string out = plot.render();
  EXPECT_NE(out.find("10.0"), std::string::npos);  // x start
  EXPECT_NE(out.find("20.0"), std::string::npos);  // x end
  EXPECT_NE(out.find("15.00"), std::string::npos);  // y max label
}

TEST(PlotTest, YAxisAnchorsAtZeroForSmallPositiveMinima) {
  AsciiPlot plot{32, 8};
  plot.add_series("s", {{0.0, 0.2}, {1.0, 10.0}});
  const std::string out = plot.render();
  EXPECT_NE(out.find("0.00"), std::string::npos);
}

TEST(PlotTest, DistinctValuesLandOnDistinctRows) {
  AsciiPlot plot{16, 6};
  plot.add_series("s", {{0.0, 0.0}, {1.0, 10.0}});
  const std::string out = plot.render();
  // Count canvas lines (before the x-axis ruler) carrying a marker.
  int marker_lines = 0;
  std::istringstream is{out};
  for (std::string line; std::getline(is, line);) {
    if (line.find('+') != std::string::npos &&
        line.find("--") != std::string::npos) {
      break;  // reached the axis
    }
    if (line.find('*') != std::string::npos) ++marker_lines;
  }
  EXPECT_EQ(marker_lines, 2);  // y=0 and y=10 on different rows
}

TEST(PlotTest, RejectsTinyCanvas) {
  EXPECT_THROW((AsciiPlot{4, 2}), omig::AssertionError);
}

TEST(PlotTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiPlot plot{32, 8};
  plot.add_series("flat", {{0.0, 3.0}, {1.0, 3.0}});
  EXPECT_FALSE(plot.render().empty());
}

}  // namespace
}  // namespace omig::core
