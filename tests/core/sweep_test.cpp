#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include "core/presets.hpp"

namespace omig::core {
namespace {

stats::StoppingRule tiny_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 200;
  rule.max_observations = 600;
  return rule;
}

TEST(SweepTest, LinspaceEndpoints) {
  const auto xs = linspace(0.0, 10.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 10.0);
  EXPECT_DOUBLE_EQ(xs[1], 2.5);
}

TEST(SweepTest, LinspaceSinglePoint) {
  const auto xs = linspace(3.0, 9.0, 1);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_DOUBLE_EQ(xs[0], 3.0);
}

TEST(SweepTest, RunsEveryVariantAtEveryX) {
  std::vector<SweepVariant> variants{
      {"sedentary",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Sedentary);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
      {"placement",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Placement);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
  };
  const auto points = run_sweep({20.0, 60.0}, variants);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& p : points) {
    ASSERT_EQ(p.results.size(), 2u);
    for (const auto& r : p.results) EXPECT_GT(r.calls, 0u);
  }
  const TextTable table = sweep_table("t_m", variants, points,
                                      Metric::TotalPerCall);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("sedentary"), std::string::npos);
  EXPECT_NE(text.find("placement"), std::string::npos);
  EXPECT_NE(text.find("60.0"), std::string::npos);
}

TEST(SweepTest, MetricSelectorsDiffer) {
  std::vector<SweepVariant> variants{
      {"conventional",
       [](double x) {
         auto cfg = fig8_config(x, migration::PolicyKind::Conventional);
         cfg.stopping = tiny_rule();
         return cfg;
       }},
  };
  const auto points = run_sweep({40.0}, variants);
  const auto total = sweep_table("x", variants, points,
                                 Metric::TotalPerCall);
  const auto call = sweep_table("x", variants, points,
                                Metric::CallDuration);
  const auto mig = sweep_table("x", variants, points,
                               Metric::MigrationPerCall);
  // total = call + migration, so the three tables cannot all agree.
  EXPECT_NE(total.to_csv(), call.to_csv());
  EXPECT_NE(call.to_csv(), mig.to_csv());
}

TEST(SweepTest, MetricNames) {
  EXPECT_STREQ(to_string(Metric::TotalPerCall),
               "mean communication-time per call");
  EXPECT_STREQ(to_string(Metric::CallDuration), "mean duration of one call");
  EXPECT_STREQ(to_string(Metric::MigrationPerCall),
               "mean migration-time per call");
}

}  // namespace
}  // namespace omig::core
