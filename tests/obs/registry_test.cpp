// Unit tests for the metrics registry: bucket math, idempotent
// registration, exact totals under concurrency, snapshots, and the
// snapshot-delta logger.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/delta_logger.hpp"
#include "obs/families.hpp"
#include "util/assert.hpp"

namespace omig::obs {
namespace {

TEST(ObsHistogram, BucketIndexIsPowerOfTwoCeiling) {
  // Bucket i covers (2^(i-1), 2^i]; bucket 0 takes 0 and 1.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(5), 3u);
  EXPECT_EQ(Histogram::bucket_index(1024), 10u);
  EXPECT_EQ(Histogram::bucket_index(1025), 11u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST(ObsHistogram, EveryValueFallsWithinItsBucketBound) {
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 17ull, 4096ull,
                          999'999ull, 1ull << 40}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_bound(i)) << "value " << v;
    if (i > 0) {
      EXPECT_GT(v, Histogram::bucket_bound(i - 1)) << "value " << v;
    }
  }
}

TEST(ObsHistogram, RecordTracksCountSumAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty histogram
  for (int i = 0; i < 90; ++i) h.record(10);   // bucket bound 16
  for (int i = 0; i < 10; ++i) h.record(900);  // bucket bound 1024
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 90u * 10 + 10u * 900);
  EXPECT_EQ(h.quantile(0.50), 16u);
  EXPECT_EQ(h.quantile(0.90), 16u);
  EXPECT_EQ(h.quantile(0.99), 1024u);
  EXPECT_EQ(h.quantile(1.00), 1024u);
}

TEST(ObsHistogram, ExactTotalsUnderConcurrentRecorders) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("omig_test_total", "help");
  Counter& b = reg.counter("omig_test_total", "help");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, LabelsDistinguishSeries) {
  MetricsRegistry reg;
  Counter& local = reg.counter("omig_test_total", "h", {{"kind", "local"}});
  Counter& remote = reg.counter("omig_test_total", "h", {{"kind", "remote"}});
  EXPECT_NE(&local, &remote);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, KindConflictIsRejected) {
  MetricsRegistry reg;
  reg.counter("omig_test_total", "h");
  EXPECT_THROW(reg.gauge("omig_test_total", "h"), AssertionError);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Every thread registers the same series and hammers it — the
      // shared-LiveSystem pattern.
      Counter& c = reg.counter("omig_shared_total", "h");
      Histogram& h = reg.histogram("omig_shared_us", "h");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(i % 100);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.counter("omig_shared_total", "h").value(),
            kThreads * kPerThread);
  EXPECT_EQ(reg.histogram("omig_shared_us", "h").count(),
            kThreads * kPerThread);
}

TEST(MetricsRegistry, SnapshotFlattensEveryKind) {
  MetricsRegistry reg;
  reg.counter("omig_a_total", "h").inc(5);
  reg.gauge("omig_b", "h").set(7);
  reg.histogram("omig_c_us", "h", {{"peer", "1"}}).record(100);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.at("omig_a_total"), 5u);
  EXPECT_EQ(snap.at("omig_b"), 7u);
  EXPECT_EQ(snap.at("omig_c_us{peer=\"1\"}_count"), 1u);
  EXPECT_EQ(snap.at("omig_c_us{peer=\"1\"}_sum"), 100u);
}

TEST(MetricsRegistry, ToJsonGroupsSeriesByFamily) {
  MetricsRegistry reg;
  reg.counter("omig_calls_total", "h", {{"kind", "local"}}).inc(2);
  reg.counter("omig_calls_total", "h", {{"kind", "remote"}}).inc(3);
  reg.histogram("omig_lat_us", "h").record(10);
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"omig_calls_total\":["
            "{\"labels\":{\"kind\":\"local\"},\"value\":2},"
            "{\"labels\":{\"kind\":\"remote\"},\"value\":3}],"
            "\"omig_lat_us\":[{\"labels\":{},\"count\":1,\"sum\":10,"
            "\"p50\":16,\"p95\":16,\"p99\":16,\"buckets\":[[16,1]]}]}");
}

TEST(MetricsRegistry, GlobalStandardFamiliesRegisterOnce) {
  // The accessor structs are function-local statics over the global
  // registry, so repeated calls hand back identical metric objects.
  register_standard_metrics();
  EXPECT_EQ(sim_metrics().invocations_local,
            sim_metrics().invocations_local);
  EXPECT_EQ(runtime_metrics().lease_acquisitions,
            runtime_metrics().lease_acquisitions);
  EXPECT_EQ(transport_metrics().frame_bytes_out,
            transport_metrics().frame_bytes_out);
  EXPECT_GE(MetricsRegistry::global().size(), 30u);
}

TEST(DeltaLogger, LogsOnlyWhatMovedSinceTheLastSnapshot) {
  MetricsRegistry reg;
  Counter& calls = reg.counter("omig_x_total", "h");
  Counter& idle = reg.counter("omig_y_total", "h");
  calls.inc(2);
  std::ostringstream out;
  DeltaLogger logger{reg, out};  // baseline taken here: x=2, y=0
  calls.inc(3);
  EXPECT_EQ(logger.log_once(), 1u);
  EXPECT_EQ(out.str(), "[metrics] omig_x_total+=3\n");
  // Nothing moved since: a quiet system logs nothing.
  out.str("");
  EXPECT_EQ(logger.log_once(), 0u);
  EXPECT_EQ(out.str(), "");
  idle.inc();
  EXPECT_EQ(logger.log_once(), 1u);
}

TEST(DeltaLogger, ReportsGaugeDecreases) {
  MetricsRegistry reg;
  Gauge& hosted = reg.gauge("omig_hosted", "h");
  hosted.set(10);
  std::ostringstream out;
  DeltaLogger logger{reg, out};
  hosted.set(4);
  EXPECT_EQ(logger.log_once(), 1u);
  EXPECT_EQ(out.str(), "[metrics] omig_hosted-=6\n");
}

TEST(DeltaLogger, BackgroundThreadStartsAndStopsCleanly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("omig_x_total", "h");
  std::ostringstream out;
  DeltaLogger logger{reg, out};
  logger.start(std::chrono::milliseconds{1});
  c.inc(5);
  // Give the thread a few intervals, then stop (also exercised by ~).
  std::this_thread::sleep_for(std::chrono::milliseconds{20});
  logger.stop();
  EXPECT_NE(out.str().find("omig_x_total+=5"), std::string::npos);
}

}  // namespace
}  // namespace omig::obs
