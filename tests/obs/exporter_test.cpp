// Prometheus text-format golden test and an end-to-end scrape of the
// HTTP exporter over a real loopback socket.
#include "transport/metrics_exporter.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "transport/tcp.hpp"

namespace omig::transport {
namespace {

/// One HTTP GET against 127.0.0.1:`port`, read to EOF.
std::string scrape(std::uint16_t port, const std::string& path = "/metrics") {
  const int fd = tcp_connect("127.0.0.1", port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(tcp_send_all(
      fd, reinterpret_cast<const std::uint8_t*>(request.data()),
      request.size()));
  std::string response;
  std::uint8_t buffer[4096];
  for (;;) {
    const long n = tcp_recv_some(fd, buffer, sizeof buffer);
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buffer),
                    static_cast<std::size_t>(n));
  }
  tcp_close(fd);
  return response;
}

TEST(PrometheusExporter, GoldenTextFormat) {
  obs::MetricsRegistry reg;
  reg.counter("omig_calls_total", "Calls by kind", {{"kind", "local"}})
      .inc(7);
  reg.counter("omig_calls_total", "Calls by kind", {{"kind", "remote"}})
      .inc(2);
  reg.gauge("omig_hosted_objects", "Objects hosted").set(3);
  obs::Histogram& h = reg.histogram("omig_rtt_us", "Round trip");
  h.record(1);    // bucket le=1
  h.record(3);    // bucket le=4
  h.record(900);  // bucket le=1024

  EXPECT_EQ(reg.to_prometheus(),
            "# HELP omig_calls_total Calls by kind\n"
            "# TYPE omig_calls_total counter\n"
            "omig_calls_total{kind=\"local\"} 7\n"
            "omig_calls_total{kind=\"remote\"} 2\n"
            "# HELP omig_hosted_objects Objects hosted\n"
            "# TYPE omig_hosted_objects gauge\n"
            "omig_hosted_objects 3\n"
            "# HELP omig_rtt_us Round trip\n"
            "# TYPE omig_rtt_us histogram\n"
            "omig_rtt_us_bucket{le=\"1\"} 1\n"
            "omig_rtt_us_bucket{le=\"2\"} 1\n"
            "omig_rtt_us_bucket{le=\"4\"} 2\n"
            "omig_rtt_us_bucket{le=\"8\"} 2\n"
            "omig_rtt_us_bucket{le=\"16\"} 2\n"
            "omig_rtt_us_bucket{le=\"32\"} 2\n"
            "omig_rtt_us_bucket{le=\"64\"} 2\n"
            "omig_rtt_us_bucket{le=\"128\"} 2\n"
            "omig_rtt_us_bucket{le=\"256\"} 2\n"
            "omig_rtt_us_bucket{le=\"512\"} 2\n"
            "omig_rtt_us_bucket{le=\"1024\"} 3\n"
            "omig_rtt_us_bucket{le=\"+Inf\"} 3\n"
            "omig_rtt_us_sum 904\n"
            "omig_rtt_us_count 3\n");
}

TEST(PrometheusExporter, LabelValuesAreEscaped) {
  obs::MetricsRegistry reg;
  reg.counter("omig_x_total", "h", {{"path", "a\"b\\c"}}).inc();
  EXPECT_NE(reg.to_prometheus().find(
                "omig_x_total{path=\"a\\\"b\\\\c\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusExporter, ServesScrapesOverTcp) {
  obs::MetricsRegistry reg;
  reg.counter("omig_scrape_total", "Scrape target").inc(42);
  MetricsExporter exporter{reg};
  const std::uint16_t port = exporter.start();
  ASSERT_NE(port, 0);
  EXPECT_TRUE(exporter.running());
  EXPECT_EQ(exporter.port(), port);

  const std::string response = scrape(port);
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(response.find("omig_scrape_total 42\n"), std::string::npos);

  // A second scrape sees updated values — the exporter reads live state.
  reg.counter("omig_scrape_total", "Scrape target").inc();
  EXPECT_NE(scrape(port).find("omig_scrape_total 43\n"), std::string::npos);

  exporter.stop();
  EXPECT_FALSE(exporter.running());
  exporter.stop();  // idempotent
}

TEST(PrometheusExporter, AnyPathAnswersWithMetrics) {
  // Prometheus scrapers default to /metrics, but the responder serves the
  // registry on every path — there is nothing else to route to.
  obs::MetricsRegistry reg;
  reg.counter("omig_y_total", "h").inc(5);
  MetricsExporter exporter{reg};
  const std::uint16_t port = exporter.start();
  ASSERT_NE(port, 0);
  EXPECT_NE(scrape(port, "/").find("omig_y_total 5\n"), std::string::npos);
  exporter.stop();
}

TEST(PrometheusExporter, RestartsOnAFreshPort) {
  obs::MetricsRegistry reg;
  MetricsExporter exporter{reg};
  const std::uint16_t first = exporter.start();
  ASSERT_NE(first, 0);
  exporter.stop();
  const std::uint16_t second = exporter.start();
  ASSERT_NE(second, 0);
  EXPECT_NE(scrape(second).find("HTTP/1.0 200 OK"), std::string::npos);
  exporter.stop();
}

}  // namespace
}  // namespace omig::transport
