// End-to-end CLI telemetry: a real `omig_node --serve --metrics-port`
// process is scraped over HTTP and must expose the full standard schema;
// after live traffic the node-layer counters must have moved. Also checks
// that `omig_sim --json` embeds the registry as its "metrics" member.
//
// Binaries are located via $OMIG_NODE_BIN / $OMIG_SIM_BIN, falling back to
// the build-time paths compiled into this target.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "transport/tcp.hpp"

namespace omig {
namespace {

std::string node_binary() {
  if (const char* env = std::getenv("OMIG_NODE_BIN")) return env;
#ifdef OMIG_NODE_BIN_DEFAULT
  return OMIG_NODE_BIN_DEFAULT;
#else
  return "omig_node";
#endif
}

std::string sim_binary() {
  if (const char* env = std::getenv("OMIG_SIM_BIN")) return env;
#ifdef OMIG_SIM_BIN_DEFAULT
  return OMIG_SIM_BIN_DEFAULT;
#else
  return "omig_sim";
#endif
}

std::uint16_t wait_for_port_file(const std::string& path) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  std::uint16_t port = 0;
  while (port == 0) {
    std::ifstream in{path};
    if (in >> port && port != 0) break;
    port = 0;
    if (std::chrono::steady_clock::now() > deadline) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  return port;
}

/// One HTTP GET /metrics against the exporter; returns the body only.
std::string scrape_body(std::uint16_t port) {
  const int fd = transport::tcp_connect("127.0.0.1", port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(transport::tcp_send_all(
      fd, reinterpret_cast<const std::uint8_t*>(request.data()),
      request.size()));
  std::string response;
  std::uint8_t buffer[4096];
  for (;;) {
    const long n = transport::tcp_recv_some(fd, buffer, sizeof buffer);
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buffer),
                    static_cast<std::size_t>(n));
  }
  transport::tcp_close(fd);
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Value of one exposition sample line, or -1 when the series is absent.
long long sample_value(const std::string& body, const std::string& series) {
  const auto pos = body.find("\n" + series + " ");
  if (pos == std::string::npos) return -1;
  return std::stoll(body.substr(pos + series.size() + 2));
}

/// Every non-comment exposition line must parse as `series value`.
void expect_parseable(const std::string& body) {
  std::istringstream lines{body};
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line.rfind("# ", 0) == 0) continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    std::size_t parsed = 0;
    (void)std::stoll(value, &parsed);
    EXPECT_EQ(parsed, value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 30u);  // the standard schema is substantial
}

class CliMetrics : public ::testing::Test {
protected:
  void SetUp() override {
    ASSERT_TRUE(std::filesystem::exists(node_binary()))
        << "omig_node binary not found at " << node_binary()
        << " (set OMIG_NODE_BIN)";
    char dir_template[] = "/tmp/omig-obs-test-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }

  void TearDown() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Spawns `omig_node --serve --metrics-port 0` and resolves both ports.
  void spawn_node() {
    const std::string exe = node_binary();
    const std::string port_file = dir_ + "/node.port";
    const std::string metrics_file = dir_ + "/metrics.port";
    pid_ = fork();
    if (pid_ == 0) {
      execl(exe.c_str(), exe.c_str(), "--serve", "--id", "0", "--port-file",
            port_file.c_str(), "--metrics-port", "0", "--metrics-port-file",
            metrics_file.c_str(), static_cast<char*>(nullptr));
      _exit(127);
    }
    ASSERT_GT(pid_, 0);
    node_port_ = wait_for_port_file(port_file);
    metrics_port_ = wait_for_port_file(metrics_file);
    ASSERT_NE(node_port_, 0);
    ASSERT_NE(metrics_port_, 0);
  }

  std::string dir_;
  pid_t pid_ = -1;
  std::uint16_t node_port_ = 0;
  std::uint16_t metrics_port_ = 0;
};

TEST_F(CliMetrics, FreshNodeExposesTheFullStandardSchema) {
  spawn_node();
  const std::string body = scrape_body(metrics_port_);
  // The four layers the tentpole instruments, present before any traffic.
  for (const char* family :
       {"omig_sim_invocations_total", "omig_runtime_invocations_total",
        "omig_runtime_migrations_total", "omig_runtime_lease_acquisitions_total",
        "omig_runtime_recoveries_total", "omig_transport_frames_out_total",
        "omig_transport_reconnects_total", "omig_node_messages_total",
        "omig_node_hosted_objects"}) {
    EXPECT_NE(body.find(std::string{"# TYPE "} + family), std::string::npos)
        << "missing family " << family;
  }
  expect_parseable(body);
}

TEST_F(CliMetrics, LiveTrafficMovesTheNodeCounters) {
  spawn_node();
  runtime::LiveSystem::Options opts;
  opts.remote_nodes = {transport::Peer{"127.0.0.1", node_port_}};
  runtime::LiveSystem sys{opts};
  runtime::register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(
      sys.create("c", runtime::make_state("counter", {{"count", "0"}}), 0));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sys.invoke("c", "add", "1").ok);
  }

  const std::string body = scrape_body(metrics_port_);
  // >= instead of == for the message counts: a retransmission under load
  // re-runs the handler (the dedup cache answers it) and still counts.
  EXPECT_GE(sample_value(body, "omig_node_messages_total{type=\"install\"}"),
            1)
      << body;
  EXPECT_GE(sample_value(body, "omig_node_messages_total{type=\"invoke\"}"),
            3)
      << body;
  EXPECT_EQ(sample_value(body, "omig_node_hosted_objects"), 1);
  // The frame server moved real bytes for those requests.
  EXPECT_GT(sample_value(body, "omig_node_server_bytes_in_total"), 0);
  EXPECT_GT(sample_value(body, "omig_node_server_bytes_out_total"), 0);

  sys.shutdown_remote_nodes();
  int status = 0;
  EXPECT_EQ(waitpid(pid_, &status, 0), pid_);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  pid_ = -1;
  sys.stop();
}

TEST(CliMetricsSim, SimJsonEmbedsTheRegistry) {
  ASSERT_TRUE(std::filesystem::exists(sim_binary()))
      << "omig_sim binary not found at " << sim_binary()
      << " (set OMIG_SIM_BIN)";
  const std::string cmd =
      sim_binary() +
      " policy=placement clients=2 max-blocks=500 --json 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[4096];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) output += buffer;
  EXPECT_EQ(pclose(pipe), 0);
  EXPECT_NE(output.find("\"metrics\": {"), std::string::npos) << output;
  EXPECT_NE(output.find("\"omig_sim_invocations_total\":"), std::string::npos);
  EXPECT_NE(output.find("\"omig_sim_call_remote_milli\":"), std::string::npos);
  // The per-policy fold-in labels the series with the run's policy.
  EXPECT_NE(output.find("\"policy\":\"placement\""), std::string::npos);
}

}  // namespace
}  // namespace omig
