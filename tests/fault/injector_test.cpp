#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace omig::fault {
namespace {

FaultPlan lossy_plan(std::uint64_t seed) {
  FaultPlan plan = parse_plan_text(R"(
drop * * 0.3
dup * * 0.2
delay 0 1 1.5
)");
  plan.seed = seed;
  return plan;
}

TEST(FaultInjectorTest, DeterministicPerSeed) {
  FaultInjector a{lossy_plan(7)};
  FaultInjector b{lossy_plan(7)};
  for (int i = 0; i < 500; ++i) {
    const Decision da = a.on_message(0, 1);
    const Decision db = b.on_message(0, 1);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_DOUBLE_EQ(da.delay, db.delay);
  }
}

TEST(FaultInjectorTest, SeedsDiverge) {
  FaultInjector a{lossy_plan(7)};
  FaultInjector b{lossy_plan(8)};
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.on_message(0, 1).drop != b.on_message(0, 1).drop) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, UnmatchedLinkIsUntouchedAndDrawsNothing) {
  // Rules pinned to link 0->1 must not consume randomness for other links:
  // the decision stream on 0->1 is identical whether or not unrelated
  // traffic is interleaved.
  FaultPlan plan = parse_plan_text("drop 0 1 0.5\n");
  plan.seed = 3;
  FaultInjector quiet{plan};
  FaultInjector busy{plan};
  std::vector<bool> quiet_drops;
  std::vector<bool> busy_drops;
  for (int i = 0; i < 200; ++i) {
    quiet_drops.push_back(quiet.on_message(0, 1).drop);
    const Decision other = busy.on_message(2, 3);  // unmatched
    EXPECT_FALSE(other.drop);
    EXPECT_FALSE(other.duplicate);
    EXPECT_DOUBLE_EQ(other.delay, 0.0);
    busy_drops.push_back(busy.on_message(0, 1).drop);
  }
  EXPECT_EQ(quiet_drops, busy_drops);
  EXPECT_EQ(busy.counters().dropped.load() , quiet.counters().dropped.load());
}

TEST(FaultInjectorTest, CountsDecisions) {
  FaultPlan plan = parse_plan_text("drop * * 1.0\n");
  plan.seed = 1;
  FaultInjector injector{plan};
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(injector.on_message(0, 1).drop);
  EXPECT_EQ(injector.counters().dropped.load(), 10u);

  FaultPlan delayed = parse_plan_text("delay * * 2.0\n");
  FaultInjector slow{delayed};
  EXPECT_DOUBLE_EQ(slow.on_message(1, 0).delay, 2.0);
  EXPECT_EQ(slow.counters().delayed.load(), 1u);
  EXPECT_EQ(slow.counters().dropped.load(), 0u);
}

TEST(NodeHealthTest, TracksUpDownTransitions) {
  sim::Engine engine;
  NodeHealth health{engine, 3};
  EXPECT_TRUE(health.up(0));
  EXPECT_TRUE(health.up(2));
  health.mark_down(1);
  EXPECT_FALSE(health.up(1));
  EXPECT_TRUE(health.up(0));
  health.mark_down(1);  // idempotent: still one crash
  EXPECT_EQ(health.crashes(), 1u);
  health.mark_up(1);
  EXPECT_TRUE(health.up(1));
  EXPECT_EQ(health.restarts(), 1u);
  health.mark_up(1);  // idempotent
  EXPECT_EQ(health.restarts(), 1u);
}

sim::Task note_when_up(NodeHealth& health, std::size_t node, sim::Engine& eng,
                       std::vector<double>& wake_times) {
  co_await health.wait_up(node);
  wake_times.push_back(eng.now());
}

TEST(NodeHealthTest, WaitUpResumesOnRestart) {
  sim::Engine engine;
  NodeHealth health{engine, 2};
  health.mark_down(1);
  std::vector<double> wake_times;
  engine.spawn(note_when_up(health, 1, engine, wake_times));
  engine.spawn([](sim::Engine& eng, NodeHealth& h) -> sim::Task {
    co_await eng.delay(10.0);
    h.mark_up(1);
  }(engine, health));
  engine.run();
  ASSERT_EQ(wake_times.size(), 1u);
  EXPECT_DOUBLE_EQ(wake_times[0], 10.0);
}

TEST(CrashDriverTest, ReplaysScheduleOnSimTime) {
  sim::Engine engine;
  NodeHealth health{engine, 3};
  const FaultPlan plan = parse_plan_text("crash 1 5\ncrash 2 8 4\n");
  spawn_crash_driver(engine, plan, health);

  engine.run_until(6.0);
  EXPECT_FALSE(health.up(1));
  EXPECT_TRUE(health.up(2));
  engine.run_until(9.0);
  EXPECT_FALSE(health.up(2));
  engine.run_until(13.0);
  EXPECT_TRUE(health.up(2));   // restarted at t = 12
  EXPECT_FALSE(health.up(1));  // never restarts
  EXPECT_EQ(health.crashes(), 2u);
  EXPECT_EQ(health.restarts(), 1u);
}

TEST(CrashDriverTest, RejectsOutOfRangeNode) {
  sim::Engine engine;
  NodeHealth health{engine, 2};
  const FaultPlan plan = parse_plan_text("crash 5 1\n");
  EXPECT_THROW(spawn_crash_driver(engine, plan, health), std::exception);
}

}  // namespace
}  // namespace omig::fault
