#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace omig::fault {
namespace {

TEST(FaultPlanTest, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_DOUBLE_EQ(plan.retry_timeout, 4.0);
}

TEST(FaultPlanTest, ParsesFullGrammar) {
  const FaultPlan plan = parse_plan_text(R"(
# chaos schedule
seed 42
retry-timeout 2.5

drop 0 1 0.25    # trailing comment
delay * 2 1.5
dup 3 * 0.1
crash 1 100
crash 2 50 25
)");
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.retry_timeout, 2.5);
  ASSERT_EQ(plan.links.size(), 3u);
  EXPECT_EQ(plan.links[0].from, 0u);
  EXPECT_EQ(plan.links[0].to, 1u);
  EXPECT_DOUBLE_EQ(plan.links[0].drop, 0.25);
  EXPECT_EQ(plan.links[1].from, kAnyNode);
  EXPECT_DOUBLE_EQ(plan.links[1].delay, 1.5);
  EXPECT_EQ(plan.links[2].to, kAnyNode);
  EXPECT_DOUBLE_EQ(plan.links[2].duplicate, 0.1);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_FALSE(plan.crashes[0].restarts());
  EXPECT_TRUE(plan.crashes[1].restarts());
  EXPECT_DOUBLE_EQ(plan.crashes[1].restart_after, 25.0);
}

TEST(FaultPlanTest, LinkMatching) {
  LinkFault any;  // defaults: * -> *
  EXPECT_TRUE(any.matches(0, 5));
  LinkFault pinned;
  pinned.from = 1;
  pinned.to = 2;
  EXPECT_TRUE(pinned.matches(1, 2));
  EXPECT_FALSE(pinned.matches(2, 1));
  LinkFault half;
  half.from = 1;  // to stays *
  EXPECT_TRUE(half.matches(1, 7));
  EXPECT_FALSE(half.matches(2, 7));
}

TEST(FaultPlanTest, EffectiveComposesMultiplicatively) {
  const FaultPlan plan = parse_plan_text(R"(
drop * * 0.5
drop 0 1 0.5
delay * 1 2
delay 0 * 3
)");
  const LinkFault both = plan.effective(0, 1);
  // Two independent 50% loss processes: P(dropped) = 1 - 0.5 * 0.5.
  EXPECT_DOUBLE_EQ(both.drop, 0.75);
  EXPECT_DOUBLE_EQ(both.delay, 5.0);
  const LinkFault one = plan.effective(2, 3);
  EXPECT_DOUBLE_EQ(one.drop, 0.5);
  EXPECT_DOUBLE_EQ(one.delay, 0.0);
}

TEST(FaultPlanTest, DescribeSummarises) {
  const FaultPlan plan = parse_plan_text("seed 9\ndrop * * 0.1\ncrash 0 5\n");
  EXPECT_EQ(plan.describe(), "1 link fault, 1 crash, seed 9");
}

TEST(FaultPlanTest, ParsesDiskDirectives) {
  const FaultPlan plan = parse_plan_text(R"(
seed 7
torn-write * 0.1
short-write 2 0.25
fsync-fail 1 0.5
wal-kill 1 3
wal-torn-kill 0 0
)");
  ASSERT_EQ(plan.disk.size(), 3u);
  EXPECT_EQ(plan.disk[0].node, kAnyNode);
  EXPECT_DOUBLE_EQ(plan.disk[0].torn_write, 0.1);
  EXPECT_EQ(plan.disk[1].node, 2u);
  EXPECT_DOUBLE_EQ(plan.disk[1].short_write, 0.25);
  EXPECT_DOUBLE_EQ(plan.disk[2].fsync_fail, 0.5);
  ASSERT_EQ(plan.wal_kills.size(), 2u);
  EXPECT_EQ(plan.wal_kills[0].node, 1u);
  EXPECT_EQ(plan.wal_kills[0].after_appends, 3u);
  EXPECT_FALSE(plan.wal_kills[0].torn);
  EXPECT_EQ(plan.wal_kills[1].after_appends, 0u);  // die on the 1st append
  EXPECT_TRUE(plan.wal_kills[1].torn);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, EffectiveDiskComposesMultiplicatively) {
  const FaultPlan plan = parse_plan_text(R"(
torn-write * 0.5
torn-write 0 0.5
fsync-fail 0 0.25
)");
  // Two independent 50% tear processes on node 0's store.
  const DiskFault both = plan.effective_disk(0);
  EXPECT_DOUBLE_EQ(both.torn_write, 0.75);
  EXPECT_DOUBLE_EQ(both.fsync_fail, 0.25);
  const DiskFault wildcard_only = plan.effective_disk(3);
  EXPECT_DOUBLE_EQ(wildcard_only.torn_write, 0.5);
  EXPECT_DOUBLE_EQ(wildcard_only.fsync_fail, 0.0);
}

TEST(FaultPlanTest, DescribeIncludesDiskAndWalKills) {
  const FaultPlan plan =
      parse_plan_text("seed 3\ntorn-write * 0.1\nwal-kill 0 2\n");
  EXPECT_EQ(plan.describe(), "0 link faults, 0 crashes, 1 disk fault,"
                             " 1 wal-kill, seed 3");
}

TEST(FaultPlanTest, RejectsMalformedDiskDirectives) {
  EXPECT_THROW(parse_plan_text("torn-write 0 1.5\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("short-write 0\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("fsync-fail x 0.5\n"), FaultPlanError);
  // wal-kill schedules target one specific store, never a wildcard.
  EXPECT_THROW(parse_plan_text("wal-kill * 2\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("wal-torn-kill 0 -1\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("wal-kill 0 2 3\n"), FaultPlanError);
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_plan_text("drop 0 1 1.5\n"), FaultPlanError);   // p > 1
  EXPECT_THROW(parse_plan_text("drop 0 1 -0.1\n"), FaultPlanError);  // p < 0
  EXPECT_THROW(parse_plan_text("delay 0 1 -2\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("drop 0 1\n"), FaultPlanError);  // missing arg
  EXPECT_THROW(parse_plan_text("drop x 1 0.5\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("crash * 10\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("crash 0 -1\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("retry-timeout -1\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("jitter 0 1 0.5\n"), FaultPlanError);
}

TEST(FaultPlanTest, ErrorsCarryLineNumbers) {
  try {
    parse_plan_text("seed 1\n\ndrop 0 1 2.0\n");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(FaultPlanTest, LoadPlanRejectsMissingFile) {
  EXPECT_THROW(load_plan("/nonexistent/fault.plan"), FaultPlanError);
}

}  // namespace
}  // namespace omig::fault
