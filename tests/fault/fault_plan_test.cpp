#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

namespace omig::fault {
namespace {

TEST(FaultPlanTest, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed, 1u);
  EXPECT_DOUBLE_EQ(plan.retry_timeout, 4.0);
}

TEST(FaultPlanTest, ParsesFullGrammar) {
  const FaultPlan plan = parse_plan_text(R"(
# chaos schedule
seed 42
retry-timeout 2.5

drop 0 1 0.25    # trailing comment
delay * 2 1.5
dup 3 * 0.1
crash 1 100
crash 2 50 25
)");
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.retry_timeout, 2.5);
  ASSERT_EQ(plan.links.size(), 3u);
  EXPECT_EQ(plan.links[0].from, 0u);
  EXPECT_EQ(plan.links[0].to, 1u);
  EXPECT_DOUBLE_EQ(plan.links[0].drop, 0.25);
  EXPECT_EQ(plan.links[1].from, kAnyNode);
  EXPECT_DOUBLE_EQ(plan.links[1].delay, 1.5);
  EXPECT_EQ(plan.links[2].to, kAnyNode);
  EXPECT_DOUBLE_EQ(plan.links[2].duplicate, 0.1);
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_FALSE(plan.crashes[0].restarts());
  EXPECT_TRUE(plan.crashes[1].restarts());
  EXPECT_DOUBLE_EQ(plan.crashes[1].restart_after, 25.0);
}

TEST(FaultPlanTest, LinkMatching) {
  LinkFault any;  // defaults: * -> *
  EXPECT_TRUE(any.matches(0, 5));
  LinkFault pinned;
  pinned.from = 1;
  pinned.to = 2;
  EXPECT_TRUE(pinned.matches(1, 2));
  EXPECT_FALSE(pinned.matches(2, 1));
  LinkFault half;
  half.from = 1;  // to stays *
  EXPECT_TRUE(half.matches(1, 7));
  EXPECT_FALSE(half.matches(2, 7));
}

TEST(FaultPlanTest, EffectiveComposesMultiplicatively) {
  const FaultPlan plan = parse_plan_text(R"(
drop * * 0.5
drop 0 1 0.5
delay * 1 2
delay 0 * 3
)");
  const LinkFault both = plan.effective(0, 1);
  // Two independent 50% loss processes: P(dropped) = 1 - 0.5 * 0.5.
  EXPECT_DOUBLE_EQ(both.drop, 0.75);
  EXPECT_DOUBLE_EQ(both.delay, 5.0);
  const LinkFault one = plan.effective(2, 3);
  EXPECT_DOUBLE_EQ(one.drop, 0.5);
  EXPECT_DOUBLE_EQ(one.delay, 0.0);
}

TEST(FaultPlanTest, DescribeSummarises) {
  const FaultPlan plan = parse_plan_text("seed 9\ndrop * * 0.1\ncrash 0 5\n");
  EXPECT_EQ(plan.describe(), "1 link fault, 1 crash, seed 9");
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_plan_text("drop 0 1 1.5\n"), FaultPlanError);   // p > 1
  EXPECT_THROW(parse_plan_text("drop 0 1 -0.1\n"), FaultPlanError);  // p < 0
  EXPECT_THROW(parse_plan_text("delay 0 1 -2\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("drop 0 1\n"), FaultPlanError);  // missing arg
  EXPECT_THROW(parse_plan_text("drop x 1 0.5\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("crash * 10\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("crash 0 -1\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("retry-timeout -1\n"), FaultPlanError);
  EXPECT_THROW(parse_plan_text("jitter 0 1 0.5\n"), FaultPlanError);
}

TEST(FaultPlanTest, ErrorsCarryLineNumbers) {
  try {
    parse_plan_text("seed 1\n\ndrop 0 1 2.0\n");
    FAIL() << "expected FaultPlanError";
  } catch (const FaultPlanError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(FaultPlanTest, LoadPlanRejectsMissingFile) {
  EXPECT_THROW(load_plan("/nonexistent/fault.plan"), FaultPlanError);
}

}  // namespace
}  // namespace omig::fault
