// Fault tolerance of the live threaded runtime: lossy links, duplicate
// suppression, crash/restart checkpoint recovery, and lock leases.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "fault/fault_plan.hpp"
#include "runtime/live_system.hpp"

namespace omig::runtime {
namespace {

ObjectFactory counter_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("inc", [](ObjectState& self, const std::string&) {
      self.fields["value"] =
          std::to_string(std::stoi(self.fields["value"]) + 1);
      return self.fields["value"];
    });
    obj->register_method("get", [](ObjectState& self, const std::string&) {
      return self.fields["value"];
    });
    return obj;
  };
}

ObjectState counter_state() {
  ObjectState s;
  s.type = "counter";
  s.fields["value"] = "0";
  return s;
}

std::unique_ptr<LiveSystem> make_system(LiveSystem::Options opts) {
  auto sys = std::make_unique<LiveSystem>(std::move(opts));
  sys->register_type("counter", counter_factory());
  sys->start();
  return sys;
}

/// Polls `pred` until it holds or `limit` passes.
bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  return pred();
}

TEST(LiveFaultTest, LossyLinksEveryInvokeStillSucceeds) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  opts.fault_plan = fault::parse_plan_text("seed 7\ndrop * * 0.25\n");
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 1));
  constexpr int kCalls = 60;
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_TRUE(sys->invoke("c", "inc", "").ok);
  }
  // At-most-once delivery: despite retransmissions the method ran exactly
  // once per logical request.
  EXPECT_EQ(sys->invoke("c", "get", "").value, std::to_string(kCalls));
  EXPECT_GT(sys->dropped_messages(), 0u);
  EXPECT_GT(sys->retries(), 0u);
}

TEST(LiveFaultTest, DuplicatesAreDeduplicated) {
  LiveSystem::Options opts;
  opts.nodes = 2;
  opts.fault_plan = fault::parse_plan_text("seed 3\ndup * * 1.0\n");
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 1));
  constexpr int kCalls = 20;
  for (int i = 0; i < kCalls; ++i) {
    EXPECT_TRUE(sys->invoke("c", "inc", "").ok);
  }
  // Every message was delivered twice, yet each increment applied once.
  EXPECT_EQ(sys->invoke("c", "get", "").value, std::to_string(kCalls));
  EXPECT_GT(sys->duplicated_messages(),
            static_cast<std::uint64_t>(kCalls) - 1);
  EXPECT_GT(sys->deduplicated_messages(), 0u);
}

TEST(LiveFaultTest, DelaysSlowDeliveryWithoutBreakingIt) {
  LiveSystem::Options opts;
  opts.nodes = 2;
  opts.fault_plan = fault::parse_plan_text("delay * * 5\n");
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 1));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(sys->invoke("c", "inc", "").ok);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Five deliveries at >= 5 ms of injected latency each.
  EXPECT_GE(elapsed, std::chrono::milliseconds{25});
  EXPECT_EQ(sys->invoke("c", "get", "").value, "5");
}

TEST(LiveFaultTest, CrashLosesUpdatesRestartRecoversCheckpoint) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 1));
  for (int i = 0; i < 3; ++i) sys->invoke("c", "inc", "");
  sys->crash_node(1);
  EXPECT_FALSE(sys->node_up(1));
  sys->restart_node(1);
  EXPECT_TRUE(sys->node_up(1));
  // Degraded mode: the creation-time checkpoint comes back — updates since
  // are lost, but the object itself survives the crash.
  const auto r = sys->invoke("c", "get", "");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, "0");
  EXPECT_EQ(sys->crashes(), 1u);
  EXPECT_EQ(sys->restarts(), 1u);
  EXPECT_EQ(sys->recoveries(), 1u);
}

TEST(LiveFaultTest, MigrationRefreshesTheCheckpoint) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  sys->invoke("c", "inc", "");
  sys->invoke("c", "inc", "");
  ASSERT_TRUE(sys->migrate("c", 1));  // checkpoint now carries value = 2
  sys->invoke("c", "inc", "");        // post-checkpoint update, will be lost
  sys->crash_node(1);
  sys->restart_node(1);
  EXPECT_EQ(sys->invoke("c", "get", "").value, "2");
}

TEST(LiveFaultTest, MigrationPullsCheckpointOffDeadNode) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  opts.max_retries = 2;
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 1));
  sys->invoke("c", "inc", "");
  sys->crash_node(1);
  // The source is dead: eviction fails, the move falls back to the last
  // checkpoint and the object lands at the destination anyway.
  ASSERT_TRUE(sys->migrate("c", 0));
  EXPECT_EQ(sys->location("c"), 0u);
  const auto r = sys->invoke("c", "get", "");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, "0");  // checkpoint state; the inc was lost
  EXPECT_GE(sys->recoveries(), 1u);
}

TEST(LiveFaultTest, CrashedNodeWithoutRestartFailsBounded) {
  LiveSystem::Options opts;
  opts.nodes = 2;
  opts.max_retries = 2;
  opts.retry_backoff = std::chrono::milliseconds{1};
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 1));
  sys->crash_node(1);
  // No hang: the retry budget runs out and the failure is reported.
  const auto r = sys->invoke("c", "inc", "");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.value.find("unreachable"), std::string::npos);
  // After a restart the object is reachable again.
  sys->restart_node(1);
  EXPECT_TRUE(sys->invoke("c", "get", "").ok);
}

TEST(LiveFaultTest, LeaseExpiryReleasesLocksOfADeadBlock) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  opts.lock_lease = std::chrono::milliseconds{60};
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  auto holder = sys->move("c", 1);
  ASSERT_TRUE(holder.granted);
  // While the lease is fresh the lock refuses a conflicting move.
  auto early = sys->move("c", 2);
  EXPECT_FALSE(early.granted);
  EXPECT_EQ(sys->refused_moves(), 1u);
  // The holding block never ends (it "died"); once the lease runs out the
  // lock expires and the object is movable again.
  std::this_thread::sleep_for(std::chrono::milliseconds{150});
  auto late = sys->move("c", 2);
  EXPECT_TRUE(late.granted);
  EXPECT_EQ(sys->location("c"), 2u);
  EXPECT_EQ(sys->lease_expiries(), 1u);
  sys->end(late);
  sys->end(holder);  // stale token: releases nothing, must not throw
}

TEST(LiveFaultTest, InfiniteLeaseKeepsPaperSemantics) {
  LiveSystem::Options opts;
  opts.nodes = 3;  // lock_lease stays 0: locks never expire
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  auto holder = sys->move("c", 1);
  ASSERT_TRUE(holder.granted);
  std::this_thread::sleep_for(std::chrono::milliseconds{50});
  auto second = sys->move("c", 2);
  EXPECT_FALSE(second.granted);  // still refused, no matter how long ago
  EXPECT_EQ(sys->lease_expiries(), 0u);
  sys->end(holder);
}

TEST(LiveFaultTest, PlanDrivenCrashScheduleRuns) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  opts.fault_plan = fault::parse_plan_text("crash 1 20 60\n");  // millis
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  EXPECT_TRUE(eventually([&] { return !sys->node_up(1); },
                         std::chrono::seconds{5}));
  EXPECT_TRUE(eventually([&] { return sys->node_up(1); },
                         std::chrono::seconds{5}));
  EXPECT_EQ(sys->crashes(), 1u);
  EXPECT_EQ(sys->restarts(), 1u);
  // The untouched node kept serving throughout.
  EXPECT_TRUE(sys->invoke("c", "get", "").ok);
}

TEST(LiveFaultTest, StopMidScheduleDoesNotHang) {
  LiveSystem::Options opts;
  opts.nodes = 2;
  // A crash scheduled far in the future: stop() must not wait for it.
  opts.fault_plan = fault::parse_plan_text("crash 1 600000\n");
  auto sys = make_system(std::move(opts));
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  sys->stop();  // returns promptly; destructor's second stop() is a no-op
}

TEST(LiveFaultTest, CrashScheduleOutsideNodeRangeIsRejected) {
  LiveSystem::Options opts;
  opts.nodes = 2;
  opts.fault_plan = fault::parse_plan_text("crash 7 10\n");
  LiveSystem sys{opts};
  sys.register_type("counter", counter_factory());
  EXPECT_THROW(sys.start(), std::exception);
}

}  // namespace
}  // namespace omig::runtime
