// EventLoop: the live runtime's single-threaded proactor
// (src/net/event_loop.hpp). Exercises the cross-thread post seam (the
// one place two threads meet — TSan covers these suites via
// scripts/check.sh), the timer wheel, fd readiness awaiters on real
// pipes/socketpairs under both poller backends, cancellation, and
// shutdown semantics.
#include "net/event_loop.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace omig::net {
namespace {

using namespace std::chrono_literals;

TEST(EventLoopTest, PostRunsInOrderOnLoopThread) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  std::promise<std::thread::id> done;
  loop.post([&] { order.push_back(1); });
  loop.post([&] { order.push_back(2); });
  loop.post([&] {
    order.push_back(3);
    done.set_value(std::this_thread::get_id());
  });
  std::thread::id loop_tid = done.get_future().get();
  EXPECT_NE(loop_tid, std::this_thread::get_id());
  loop.stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, CrossThreadPostsFromManyThreadsAllRun) {
  EventLoop loop;
  loop.start();
  constexpr int kThreads = 8;
  constexpr int kPostsPerThread = 200;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPostsPerThread; ++i) {
        loop.post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : threads) t.join();
  std::promise<void> flushed;
  loop.post([&] { flushed.set_value(); });
  flushed.get_future().get();
  EXPECT_EQ(ran.load(), kThreads * kPostsPerThread);
  loop.stop();
}

sim::Task count_task(std::atomic<int>* counter) {
  counter->fetch_add(1);
  co_return;
}

sim::Task flush_task(std::promise<void>* p) {
  p->set_value();
  co_return;
}

TEST(EventLoopTest, SpawnRunsTaskOnLoop) {
  EventLoop loop;
  loop.start();
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) loop.spawn(count_task(&counter));
  // Spawns start in FIFO order, so a flush task spawned last observes
  // every earlier task's first step.
  std::promise<void> flushed;
  loop.spawn(flush_task(&flushed));
  flushed.get_future().get();
  EXPECT_EQ(counter.load(), 10);
  loop.stop();
}

sim::Task sleeping_task(EventLoop* loop, std::chrono::milliseconds d,
                        std::vector<int>* order, int tag) {
  co_await loop->sleep_for(d);
  order->push_back(tag);
}

TEST(EventLoopTest, SleepersWakeInDeadlineOrder) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  loop.spawn(sleeping_task(&loop, 30ms, &order, 3));
  loop.spawn(sleeping_task(&loop, 1ms, &order, 1));
  loop.spawn(sleeping_task(&loop, 15ms, &order, 2));
  std::this_thread::sleep_for(120ms);
  loop.stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoopTest, TimerBeyondOneWheelRotationStillFires) {
  // 600ms > 512 slots × 1ms tick: the entry must ride the wheel around.
  EventLoop loop;
  loop.start();
  std::promise<void> fired;
  auto armed_at = std::chrono::steady_clock::now();
  loop.post([&] {
    loop.run_after(600ms, [&] { fired.set_value(); });
  });
  fired.get_future().get();
  EXPECT_GE(std::chrono::steady_clock::now() - armed_at, 590ms);
  loop.stop();
}

TEST(EventLoopTest, CancelTimerPreventsCallback) {
  EventLoop loop;
  loop.start();
  std::atomic<bool> ran{false};
  std::promise<void> after;
  loop.post([&] {
    std::uint64_t id = loop.run_after(20ms, [&] { ran = true; });
    EXPECT_TRUE(loop.cancel_timer(id));
    EXPECT_FALSE(loop.cancel_timer(id));  // already gone
    loop.run_after(60ms, [&] { after.set_value(); });
  });
  after.get_future().get();
  EXPECT_FALSE(ran.load());
  loop.stop();
}

sim::Task echo_reader(EventLoop* loop, int fd, std::string* out,
                      std::promise<bool>* done) {
  bool ok = co_await loop->readable(fd);
  if (ok) {
    char buf[64];
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) out->assign(buf, static_cast<std::size_t>(n));
  }
  done->set_value(ok);
}

void run_fd_readiness_roundtrip(PollBackend backend) {
  EventLoop loop{EventLoop::Options{backend}};
  loop.start();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string got;
  std::promise<bool> done;
  loop.spawn(echo_reader(&loop, sv[0], &got, &done));
  std::this_thread::sleep_for(10ms);  // reader parks before data arrives
  ASSERT_EQ(::write(sv[1], "ping", 4), 4);
  EXPECT_TRUE(done.get_future().get());
  EXPECT_EQ(got, "ping");
  loop.stop();
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(EventLoopTest, ReadableWakesWhenDataArrivesEpoll) {
  run_fd_readiness_roundtrip(PollBackend::Epoll);
}

TEST(EventLoopTest, ReadableWakesWhenDataArrivesIoUring) {
  if (!io_uring_available()) {
    GTEST_SKIP() << "io_uring_setup rejected on this kernel/sandbox";
  }
  run_fd_readiness_roundtrip(PollBackend::IoUring);
}

TEST(EventLoopTest, WritableIsImmediateOnFreshSocket) {
  EventLoop loop;
  loop.start();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::promise<bool> done;
  loop.spawn([](EventLoop* l, int fd, std::promise<bool>* p) -> sim::Task {
    p->set_value(co_await l->writable(fd));
  }(&loop, sv[0], &done));
  EXPECT_TRUE(done.get_future().get());
  loop.stop();
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(EventLoopTest, CancelFdResumesWaiterWithFalse) {
  EventLoop loop;
  loop.start();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string got;
  std::promise<bool> done;
  loop.spawn(echo_reader(&loop, sv[0], &got, &done));
  std::this_thread::sleep_for(10ms);
  loop.post([&] { loop.cancel_fd(sv[0]); });
  EXPECT_FALSE(done.get_future().get());
  EXPECT_TRUE(got.empty());
  loop.stop();
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(EventLoopTest, StopCancelsParkedWaiters) {
  EventLoop loop;
  loop.start();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string got;
  std::promise<bool> done;
  loop.spawn(echo_reader(&loop, sv[0], &got, &done));
  std::this_thread::sleep_for(10ms);
  loop.stop();  // shutdown pass resumes the waiter with false
  EXPECT_FALSE(done.get_future().get());
  ::close(sv[0]);
  ::close(sv[1]);
}

sim::Task event_waiter(Event* ev, std::vector<bool>* results,
                       std::promise<void>* done) {
  results->push_back(co_await ev->wait());
  results->push_back(co_await ev->wait());
  done->set_value();
}

TEST(EventLoopTest, EventLatchesAndWakes) {
  EventLoop loop;
  loop.start();
  Event ev{loop};
  std::vector<bool> results;
  std::promise<void> done;
  loop.post([&] {
    ev.set();  // latched: first wait completes immediately
    loop.spawn(event_waiter(&ev, &results, &done));
    loop.run_after(5ms, [&] { ev.set(); });  // wakes the parked second wait
  });
  done.get_future().get();
  EXPECT_EQ(results, (std::vector<bool>{true, true}));
  loop.stop();
}

TEST(EventLoopTest, EventCancelWakesWithFalse) {
  EventLoop loop;
  loop.start();
  Event ev{loop};
  std::vector<bool> results;
  std::promise<void> done;
  loop.post([&] {
    loop.spawn([](Event* e, std::vector<bool>* r,
                  std::promise<void>* p) -> sim::Task {
      r->push_back(co_await e->wait());
      p->set_value();
    }(&ev, &results, &done));
    loop.run_after(5ms, [&] { ev.cancel(); });
  });
  done.get_future().get();
  EXPECT_EQ(results, (std::vector<bool>{false}));
  loop.stop();
}

TEST(EventLoopTest, BackendReportsName) {
  EventLoop epoll_loop{EventLoop::Options{PollBackend::Epoll}};
  EXPECT_STREQ(epoll_loop.backend_name(), "epoll");
  EventLoop auto_loop;
  if (io_uring_available()) {
    EXPECT_STREQ(auto_loop.backend_name(), "io_uring");
  } else {
    EXPECT_STREQ(auto_loop.backend_name(), "epoll");
  }
}

TEST(EventLoopTest, StopIsIdempotentAndLoopIsSingleUse) {
  EventLoop loop;
  loop.start();
  loop.stop();
  loop.stop();
  loop.start();  // no-op: stopped loops do not restart
  EXPECT_FALSE(loop.running());
}

TEST(EventLoopTest, ThrowingTaskIsCountedNotFatal) {
  EventLoop loop;
  loop.start();
  loop.spawn([]() -> sim::Task {
    co_await std::suspend_never{};
    throw std::runtime_error{"boom"};
  }());
  std::promise<void> flushed;
  loop.spawn(flush_task(&flushed));
  flushed.get_future().get();
  EXPECT_EQ(loop.tasks_failed(), 1u);
  loop.stop();
}

}  // namespace
}  // namespace omig::net
