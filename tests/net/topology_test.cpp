#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::net {
namespace {

TEST(FullMeshTest, OneHopEverywhere) {
  FullMesh mesh{5};
  EXPECT_EQ(mesh.node_count(), 5u);
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      EXPECT_EQ(mesh.hops(a, b), a == b ? 0 : 1);
    }
  }
  EXPECT_EQ(mesh.diameter(), 1);
}

TEST(RingTest, ShortestWayAround) {
  Ring ring{6};
  EXPECT_EQ(ring.hops(0, 1), 1);
  EXPECT_EQ(ring.hops(0, 3), 3);
  EXPECT_EQ(ring.hops(0, 5), 1);  // wraps
  EXPECT_EQ(ring.hops(1, 5), 2);
  EXPECT_EQ(ring.hops(2, 2), 0);
  EXPECT_EQ(ring.diameter(), 3);
}

TEST(StarTest, HubAndLeaves) {
  Star star{5};
  EXPECT_EQ(star.hops(0, 3), 1);
  EXPECT_EQ(star.hops(3, 0), 1);
  EXPECT_EQ(star.hops(1, 4), 2);
  EXPECT_EQ(star.hops(2, 2), 0);
  EXPECT_EQ(star.diameter(), 2);
}

TEST(GridTest, ManhattanDistance) {
  Grid grid{3, 4};
  EXPECT_EQ(grid.node_count(), 12u);
  EXPECT_EQ(grid.hops(0, 0), 0);
  EXPECT_EQ(grid.hops(0, 3), 3);   // same row
  EXPECT_EQ(grid.hops(0, 8), 2);   // same column (rows 0 → 2)
  EXPECT_EQ(grid.hops(0, 11), 5);  // corner to corner
  EXPECT_EQ(grid.diameter(), 5);
}

TEST(GraphTest, BfsDistances) {
  // 0 - 1 - 2
  //     |
  //     3
  Graph g{4, {{0, 1}, {1, 2}, {1, 3}}};
  EXPECT_EQ(g.hops(0, 2), 2);
  EXPECT_EQ(g.hops(0, 3), 2);
  EXPECT_EQ(g.hops(2, 3), 2);
  EXPECT_EQ(g.hops(1, 1), 0);
  EXPECT_EQ(g.diameter(), 2);
}

TEST(GraphTest, DisconnectedRejected) {
  EXPECT_THROW((Graph{3, {{0, 1}}}), omig::AssertionError);
}

TEST(TopologyTest, OutOfRangeRejected) {
  FullMesh mesh{3};
  EXPECT_THROW((void)mesh.hops(0, 3), omig::AssertionError);
}

TEST(TopologyFactoryTest, MakesEveryKind) {
  for (auto kind : {TopologyKind::FullMesh, TopologyKind::Ring,
                    TopologyKind::Star, TopologyKind::Grid}) {
    auto topo = make_topology(kind, 9);
    ASSERT_NE(topo, nullptr);
    EXPECT_GE(topo->node_count(), 9u);
    EXPECT_EQ(topo->hops(0, 0), 0);
  }
}

TEST(TopologyFactoryTest, GridCoversRequestedNodes) {
  auto topo = make_topology(TopologyKind::Grid, 7);
  EXPECT_GE(topo->node_count(), 7u);
  // All requested indices must be addressable.
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_GE(topo->hops(0, i), 0);
  }
}

}  // namespace
}  // namespace omig::net
