#include "net/latency.hpp"

#include <gtest/gtest.h>

namespace omig::net {
namespace {

TEST(LatencyTest, LocalIsFree) {
  FullMesh mesh{3};
  LatencyModel model{mesh, LatencyMode::Uniform, 1.0};
  sim::Rng rng{1, 0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model.sample(rng, 2, 2), 0.0);
  }
}

TEST(LatencyTest, UniformModeMeanIsOne) {
  FullMesh mesh{3};
  LatencyModel model{mesh, LatencyMode::Uniform, 1.0};
  sim::Rng rng{2, 0};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += model.sample(rng, 0, 1);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(LatencyTest, UniformModeIgnoresHopCount) {
  // The paper's normalisation: remote is remote, distance does not matter.
  Ring ring{8};
  LatencyModel model{ring, LatencyMode::Uniform, 1.0};
  sim::Rng rng{3, 0};
  double near = 0.0, far = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) near += model.sample(rng, 0, 1);   // 1 hop
  for (int i = 0; i < n; ++i) far += model.sample(rng, 0, 4);    // 4 hops
  EXPECT_NEAR(near / n, far / n, 0.03);
}

TEST(LatencyTest, HopScaledModeScalesWithDistance) {
  Ring ring{8};
  LatencyModel model{ring, LatencyMode::HopScaled, 1.0};
  sim::Rng rng{4, 0};
  double near = 0.0, far = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) near += model.sample(rng, 0, 1);
  for (int i = 0; i < n; ++i) far += model.sample(rng, 0, 4);
  EXPECT_NEAR(far / near, 4.0, 0.15);
}

TEST(LatencyTest, CustomMean) {
  FullMesh mesh{2};
  LatencyModel model{mesh, LatencyMode::Uniform, 2.5};
  sim::Rng rng{5, 0};
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += model.sample(rng, 0, 1);
  EXPECT_NEAR(sum / n, 2.5, 0.03);
}

}  // namespace
}  // namespace omig::net
