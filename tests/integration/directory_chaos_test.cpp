// Chaos coverage for the sharded directory in the live runtime: a crashed
// shard owner must not strand lookups — resolution falls back to the
// coordinator map (counted), retries ride the existing backoff discipline,
// and after the owner recovers its slice is re-seeded and serves again. A
// lookup never settles on a dead host as its final answer.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "fault/fault_plan.hpp"
#include "objsys/sharded_directory.hpp"
#include "runtime/live_system.hpp"

namespace omig::runtime {
namespace {

ObjectFactory counter_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("inc", [](ObjectState& self, const std::string&) {
      self.fields["value"] =
          std::to_string(std::stoi(self.fields["value"]) + 1);
      return self.fields["value"];
    });
    obj->register_method("get", [](ObjectState& self, const std::string&) {
      return self.fields["value"];
    });
    return obj;
  };
}

ObjectState counter_state() {
  ObjectState s;
  s.type = "counter";
  s.fields["value"] = "0";
  return s;
}

LiveSystem::Options sharded_options(std::size_t nodes) {
  LiveSystem::Options opts;
  opts.nodes = nodes;
  opts.directory = objsys::DirectoryKind::Sharded;
  opts.dir_strategy = objsys::ConsistencyStrategy::LazyForward;
  opts.max_retries = 6;
  opts.retry_backoff = std::chrono::milliseconds{1};
  return opts;
}

TEST(DirectoryChaosTest, OwnerCrashFallsBackThenRecoveredOwnerServes) {
  auto sys = std::make_unique<LiveSystem>(sharded_options(6));
  sys->register_type("counter", counter_factory());
  sys->start();

  // Host the object away from its shard owner, so crashing the owner
  // kills the directory slice but not the object.
  const std::size_t owner = sys->directory_shard_owner("obj");
  const std::size_t host = (owner + 1) % 6;
  ASSERT_TRUE(sys->create("obj", counter_state(), host));

  sys->crash_node(owner);
  // Cold lookup with the owner down: the chase has nowhere to start and
  // the slice is gone — resolution must fall back, never hang or settle
  // on the dead owner.
  const auto r = sys->invoke("obj", "inc", "");
  ASSERT_TRUE(r.ok) << r.value;
  EXPECT_GE(sys->dir_fallbacks(), 1u);
  ASSERT_TRUE(sys->location("obj").has_value());
  EXPECT_TRUE(sys->node_up(*sys->location("obj")));

  // Recovery re-seeds the slice; the owner serves lookups again and a
  // fresh caller (no warm cache for this name) resolves through it.
  sys->restart_node(owner);
  const std::uint64_t fallbacks_after_restart = sys->dir_fallbacks();
  const std::size_t host2 = (owner + 2) % 6;
  ASSERT_TRUE(sys->migrate("obj", host2));
  const auto r2 = sys->invoke("obj", "get", "");
  ASSERT_TRUE(r2.ok) << r2.value;
  EXPECT_EQ(r2.value, "1");
  EXPECT_EQ(sys->dir_fallbacks(), fallbacks_after_restart);
}

TEST(DirectoryChaosTest, StaleCacheHealsThroughForwardingAfterMigrations) {
  auto sys = std::make_unique<LiveSystem>(sharded_options(5));
  sys->register_type("counter", counter_factory());
  sys->start();
  ASSERT_TRUE(sys->create("c", counter_state(), 0));
  ASSERT_TRUE(sys->invoke("c", "inc", "").ok);  // warm the external cache
  const std::uint64_t hits = sys->dir_cache_hits();
  ASSERT_TRUE(sys->invoke("c", "inc", "").ok);
  EXPECT_GT(sys->dir_cache_hits(), hits);  // served from the cache

  // Two hops behind: 0 -> 1 -> 2. The stale cached location bounces, the
  // forwarding hints heal the cache, and the call still lands.
  ASSERT_TRUE(sys->migrate("c", 1));
  ASSERT_TRUE(sys->migrate("c", 2));
  const auto r = sys->invoke("c", "get", "");
  ASSERT_TRUE(r.ok) << r.value;
  EXPECT_EQ(r.value, "2");
  EXPECT_GE(sys->dir_stale_hits() + sys->dir_invalidations(), 1u);
}

TEST(DirectoryChaosTest, FaultPlanOwnerCrashResolvesAfterRecovery) {
  // Same owner-crash scenario, but driven by a declarative FaultPlan with
  // message drops on every link: lookups and updates retry with backoff
  // under loss, and once the scheduled restart lands every call resolves.
  // The shard mapping is deterministic, so a probe system (same node
  // count) reveals the owner before the faulty run is configured.
  std::size_t owner = 0;
  {
    auto probe = std::make_unique<LiveSystem>(sharded_options(4));
    probe->register_type("counter", counter_factory());
    probe->start();
    owner = probe->directory_shard_owner("hot");
  }

  LiveSystem::Options opts = sharded_options(4);
  opts.fault_plan = fault::parse_plan_text(
      "seed 11\n"
      "drop * * 0.10\n"
      "crash " + std::to_string(owner) + " 30 60\n");
  opts.reply_timeout = std::chrono::milliseconds{200};
  auto sys = std::make_unique<LiveSystem>(std::move(opts));
  sys->register_type("counter", counter_factory());
  sys->start();

  const std::size_t host = (owner + 1) % 4;
  ASSERT_TRUE(sys->create("hot", counter_state(), host));
  // Keep traffic flowing across the crash window; under faults an invoke
  // may report the node unreachable — what must never happen is a hang or
  // a success against a dead host.
  for (int i = 0; i < 10; ++i) {
    (void)sys->invoke("hot", "inc", "");
    std::this_thread::sleep_for(std::chrono::milliseconds{15});
  }
  // Past the restart: the system must have healed completely.
  InvokeResult r;
  for (int attempt = 0; attempt < 50; ++attempt) {
    r = sys->invoke("hot", "get", "");
    if (r.ok) break;
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }
  ASSERT_TRUE(r.ok) << r.value;
  EXPECT_EQ(sys->crashes(), 1u);
  EXPECT_EQ(sys->restarts(), 1u);
  ASSERT_TRUE(sys->location("hot").has_value());
  EXPECT_TRUE(sys->node_up(*sys->location("hot")));
}

}  // namespace
}  // namespace omig::runtime
