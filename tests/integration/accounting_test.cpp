// Global accounting identities over full experiment runs: the counters the
// driver reports must be mutually consistent for every policy.
#include <gtest/gtest.h>

#include "core/presets.hpp"

namespace omig::core {
namespace {

using migration::PolicyKind;

stats::StoppingRule rule() {
  stats::StoppingRule r;
  r.relative_target = 0.10;
  r.min_observations = 400;
  r.max_observations = 1'000;
  return r;
}

class Accounting : public ::testing::TestWithParam<PolicyKind> {
protected:
  ExperimentResult run(double tm = 10.0) {
    ExperimentConfig cfg = fig8_config(tm, GetParam());
    cfg.stopping = rule();
    return run_experiment(cfg);
  }
};

TEST_P(Accounting, SedentaryIsCompletelyQuiet) {
  const auto r = run();
  if (GetParam() != PolicyKind::Sedentary) GTEST_SKIP();
  EXPECT_EQ(r.control_messages, 0u);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_EQ(r.transfers, 0u);
  EXPECT_EQ(r.blocked_calls, 0u);
  EXPECT_DOUBLE_EQ(r.migration_per_call, 0.0);
}

TEST_P(Accounting, EveryTransferRelocatesSomething) {
  // Transfers that find nothing to move return before being counted, so
  // with single-object clusters migrations >= transfers, and both are
  // nonzero together.
  const auto r = run();
  if (GetParam() == PolicyKind::Sedentary) GTEST_SKIP();
  EXPECT_EQ(r.migrations > 0, r.transfers > 0);
  EXPECT_GE(r.migrations, r.transfers);
}

TEST_P(Accounting, EveryMeasuredBlockSentOneRequest) {
  // Non-sedentary begin_block always dispatches exactly one move request;
  // the control counter covers warm-up blocks too, so it dominates the
  // recorder's block count.
  const auto r = run();
  if (GetParam() == PolicyKind::Sedentary) GTEST_SKIP();
  EXPECT_GE(r.control_messages, r.blocks);
}

TEST_P(Accounting, MigrationCostComesWithMigrations) {
  const auto r = run(60.0);  // low contention: clean attribution
  if (GetParam() == PolicyKind::Sedentary) GTEST_SKIP();
  EXPECT_GT(r.migration_per_call, 0.0);
  EXPECT_GT(r.migrations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, Accounting,
                         ::testing::Values(PolicyKind::Sedentary,
                                           PolicyKind::Conventional,
                                           PolicyKind::Placement,
                                           PolicyKind::CompareNodes,
                                           PolicyKind::CompareReinstantiate));

}  // namespace
}  // namespace omig::core
