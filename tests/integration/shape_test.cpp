// Statistical "shape" tests: the qualitative claims of the paper's figures
// must hold on coarse (fast) runs. Absolute values are checked loosely —
// EXPERIMENTS.md tracks the precise numbers from the full bench runs.
#include <gtest/gtest.h>

#include "core/presets.hpp"

namespace omig::core {
namespace {

using migration::AttachTransitivity;
using migration::PolicyKind;

stats::StoppingRule shape_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.03;
  rule.min_observations = 1'000;
  rule.max_observations = 12'000;
  return rule;
}

double total(ExperimentConfig cfg) {
  cfg.stopping = shape_rule();
  return run_experiment(cfg).total_per_call;
}

TEST(Fig8Shape, MigrationWinsAtLowConcurrency) {
  // Right-hand side of Figure 8 (t_m large): both migrating policies beat
  // the sedentary baseline of 4/3.
  const double sed = total(fig8_config(90.0, PolicyKind::Sedentary));
  const double mig = total(fig8_config(90.0, PolicyKind::Conventional));
  const double pla = total(fig8_config(90.0, PolicyKind::Placement));
  EXPECT_NEAR(sed, 4.0 / 3.0, 0.07);
  EXPECT_LT(mig, sed);
  EXPECT_LT(pla, sed);
}

TEST(Fig8Shape, PlacementNeverWorseThanMigrationUnderConcurrency) {
  // Left-hand side (t_m small, heavy conflicts): placement outperforms the
  // conventional move.
  const double mig = total(fig8_config(4.0, PolicyKind::Conventional));
  const double pla = total(fig8_config(4.0, PolicyKind::Placement));
  EXPECT_LT(pla, mig);
}

TEST(Fig8Shape, ConcurrencyDegradesMigration) {
  // Communication time per call rises as t_m shrinks (mid-range).
  const double relaxed = total(fig8_config(90.0, PolicyKind::Conventional));
  const double contended = total(fig8_config(15.0, PolicyKind::Conventional));
  EXPECT_GT(contended, relaxed);
}

TEST(Fig12Shape, HotSpotBreakEven) {
  // Figure 12: migration crosses the sedentary line at a small client
  // count; placement is still ahead at 15 clients.
  const double sed = total(fig12_config(15, PolicyKind::Sedentary));
  const double mig = total(fig12_config(15, PolicyKind::Conventional));
  const double pla = total(fig12_config(15, PolicyKind::Placement));
  EXPECT_GT(mig, sed);  // past the ~6-client break-even
  EXPECT_LT(pla, sed);  // placement's break-even is far later (~20)
}

TEST(Fig12Shape, MigrationGrowsWithClients) {
  const double few = total(fig12_config(4, PolicyKind::Conventional));
  const double many = total(fig12_config(20, PolicyKind::Conventional));
  EXPECT_GT(many, few * 1.5);
}

TEST(Fig14Shape, DynamicPoliciesAreNoWorseButClose) {
  // Figure 14: the intelligent policies bring only marginal gains over
  // conservative placement.
  const double pla = total(fig14_config(12, PolicyKind::Placement));
  const double cmp = total(fig14_config(12, PolicyKind::CompareNodes));
  const double rei = total(fig14_config(12, PolicyKind::CompareReinstantiate));
  EXPECT_LT(cmp, pla * 1.15);
  EXPECT_LT(rei, pla * 1.15);
  EXPECT_GT(cmp, pla * 0.5);  // ...but no miracle either
  EXPECT_GT(rei, pla * 0.5);
}

TEST(Fig16Shape, UnrestrictedAttachmentIsDevastating) {
  // Figure 16's headline: conventional migration + unrestricted attachment
  // is by far the worst variant.
  const double sed = total(fig16_config(8, PolicyKind::Sedentary,
                                        AttachTransitivity::Unrestricted));
  const double mig_unres = total(fig16_config(
      8, PolicyKind::Conventional, AttachTransitivity::Unrestricted));
  EXPECT_GT(mig_unres, sed);
}

TEST(Fig16Shape, ATransitivityRescuesMigration) {
  const double mig_unres = total(fig16_config(
      8, PolicyKind::Conventional, AttachTransitivity::Unrestricted));
  const double mig_atrans = total(fig16_config(
      8, PolicyKind::Conventional, AttachTransitivity::ATransitive));
  EXPECT_LT(mig_atrans, mig_unres);
}

TEST(Fig16Shape, PlacementPlusATransitiveIsBest) {
  // "The best performance is achieved when one combines the place-policy
  // with attachment-reduction" (Section 3.4).
  const double best = total(fig16_config(8, PolicyKind::Placement,
                                         AttachTransitivity::ATransitive));
  const double sed = total(fig16_config(8, PolicyKind::Sedentary,
                                        AttachTransitivity::Unrestricted));
  const double mig_unres = total(fig16_config(
      8, PolicyKind::Conventional, AttachTransitivity::Unrestricted));
  const double pla_unres = total(fig16_config(
      8, PolicyKind::Placement, AttachTransitivity::Unrestricted));
  EXPECT_LT(best, sed);
  EXPECT_LT(best, mig_unres);
  EXPECT_LE(best, pla_unres * 1.05);
}

TEST(TopologyInsensitivity, RingMatchesFullMesh) {
  // Section 4.1: "we also performed simulations for other structures, but
  // this had no effects on the results" — under the paper's uniform
  // latency model the topology cannot matter.
  ExperimentConfig mesh_cfg = fig8_config(30.0, PolicyKind::Placement);
  ExperimentConfig ring_cfg = mesh_cfg;
  ring_cfg.topology = net::TopologyKind::Ring;
  EXPECT_NEAR(total(mesh_cfg), total(ring_cfg), total(mesh_cfg) * 0.08);
}

}  // namespace
}  // namespace omig::core
