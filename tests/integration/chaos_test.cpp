// Chaos tests: fixed-seed fault schedules replayed over the paper's
// office-automation workload, against both execution backends.
//
// The headline scenario (live runtime): a node crashes while it hosts a
// move-block's objects and holds their placement locks. The lease expires,
// the locks are released in place, a later move pulls the objects off the
// dead node from their checkpoints — nothing hangs and no object is lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault_plan.hpp"
#include "runtime/live_system.hpp"

namespace omig {
namespace {

// --- live-runtime chaos ------------------------------------------------------

runtime::ObjectFactory case_file_factory() {
  return [](std::string name, runtime::ObjectState state) {
    auto obj = std::make_unique<runtime::LiveObject>(std::move(name),
                                                     std::move(state));
    obj->register_method(
        "append", [](runtime::ObjectState& self, const std::string& entry) {
          auto& log = self.fields["log"];
          log += log.empty() ? entry : ";" + entry;
          return log;
        });
    obj->register_method(
        "entries", [](runtime::ObjectState& self, const std::string&) {
          const auto& log = self.fields["log"];
          return std::to_string(
              log.empty() ? 0
                          : 1 + std::count(log.begin(), log.end(), ';'));
        });
    return obj;
  };
}

runtime::ObjectState case_file_state() {
  runtime::ObjectState s;
  s.type = "case-file";
  s.fields["log"] = "";
  return s;
}

std::unique_ptr<runtime::LiveSystem> office_system(
    runtime::LiveSystem::Options opts) {
  opts.nodes = 4;
  opts.policy = runtime::MovePolicy::Placement;
  opts.a_transitive_attachments = true;
  auto sys = std::make_unique<runtime::LiveSystem>(std::move(opts));
  sys->register_type("case-file", case_file_factory());
  sys->start();
  return sys;
}

TEST(ChaosLiveTest, CrashedLockHolderLeaseExpiresObjectsRecover) {
  // The acceptance scenario, replayed under three fixed fault seeds.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    runtime::LiveSystem::Options opts;
    opts.lock_lease = std::chrono::milliseconds{60};
    opts.max_retries = 4;
    opts.retry_backoff = std::chrono::milliseconds{1};
    opts.fault_plan = fault::parse_plan_text(
        "seed " + std::to_string(seed) + "\ndrop * * 0.1\ndup * * 0.1\n");
    auto sys = office_system(std::move(opts));
    ASSERT_TRUE(sys->create("case-1", case_file_state(), 0));
    ASSERT_TRUE(sys->create("ledger", case_file_state(), 3));
    sys->attach("case-1", "ledger", "billing");

    // Billing takes the whole cluster to node 2 and holds the locks...
    auto billing = sys->move("case-1", 2, "billing");
    ASSERT_TRUE(billing.granted);
    ASSERT_EQ(sys->location("case-1"), 2u);
    ASSERT_EQ(sys->location("ledger"), 2u);
    ASSERT_TRUE(sys->invoke_from(2, "case-1", "append", "billed").ok);

    // ...then its node dies mid-block. The locks are orphaned, the hosted
    // state is gone.
    sys->crash_node(2);

    // Bounded failure, not a hang: the retry budget runs out.
    const auto down = sys->invoke("case-1", "entries", "");
    EXPECT_FALSE(down.ok);

    // A competing move while the lease is fresh is still refused.
    EXPECT_FALSE(sys->move("case-1", 1, "archive").granted);

    // Once the lease expires the dead block's locks are released in place
    // and archive's move succeeds, recovering both objects from their
    // checkpoints (the dead source cannot be evicted).
    std::this_thread::sleep_for(std::chrono::milliseconds{150});
    auto archive = sys->move("case-1", 1, "billing");
    ASSERT_TRUE(archive.granted);
    EXPECT_EQ(sys->location("case-1"), 1u);
    EXPECT_EQ(sys->location("ledger"), 1u);

    // Invocable again; no object was lost (degraded mode: the un-
    // checkpointed "billed" append died with the node).
    const auto recovered = sys->invoke("case-1", "entries", "");
    EXPECT_TRUE(recovered.ok);
    const auto ledger = sys->invoke("ledger", "entries", "");
    EXPECT_TRUE(ledger.ok);
    EXPECT_GE(sys->lease_expiries(), 1u);
    EXPECT_GE(sys->recoveries(), 2u);
    EXPECT_EQ(sys->crashes(), 1u);
    sys->end(archive);
    sys->end(billing);  // stale token from the dead block: harmless
    sys->stop();        // clean shutdown, no hang
  }
}

TEST(ChaosLiveTest, LossyOfficeWorkloadLosesNoWork) {
  // Without crashes, retransmission + dedup give exactly-once effects even
  // on heavily lossy, duplicating links — for every seed.
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    runtime::LiveSystem::Options opts;
    opts.fault_plan = fault::parse_plan_text(
        "seed " + std::to_string(seed) + "\ndrop * * 0.15\ndup * * 0.15\n");
    auto sys = office_system(std::move(opts));
    ASSERT_TRUE(sys->create("case-1", case_file_state(), 0));
    ASSERT_TRUE(sys->create("case-2", case_file_state(), 0));

    constexpr int kRounds = 10;
    std::atomic<int> failures{0};
    auto component = [&](std::size_t home, const char* tag,
                         const char* case_name) {
      for (int i = 0; i < kRounds; ++i) {
        auto token = sys->move(case_name, home, tag);
        if (!sys->invoke_from(home, case_name, "append", tag).ok) {
          failures.fetch_add(1);
        }
        sys->end(token);
      }
    };
    std::thread intake{component, 1, "intake", "case-1"};
    std::thread billing{component, 2, "billing", "case-1"};
    std::thread archive{component, 3, "archive", "case-2"};
    intake.join();
    billing.join();
    archive.join();

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(sys->invoke("case-1", "entries", "").value,
              std::to_string(2 * kRounds));
    EXPECT_EQ(sys->invoke("case-2", "entries", "").value,
              std::to_string(kRounds));
    EXPECT_GT(sys->dropped_messages() + sys->duplicated_messages(), 0u);
  }
}

// --- simulator chaos ---------------------------------------------------------

stats::StoppingRule small_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 400;
  rule.max_observations = 1'200;
  return rule;
}

core::ExperimentConfig sim_base_config() {
  core::ExperimentConfig cfg;
  cfg.workload.nodes = 6;
  cfg.workload.clients = 3;
  cfg.policy = migration::PolicyKind::Placement;
  cfg.stopping = small_rule();
  return cfg;
}

void expect_same_result(const core::ExperimentResult& a,
                        const core::ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.total_per_call, b.total_per_call);
  EXPECT_DOUBLE_EQ(a.call_duration, b.call_duration);
  EXPECT_DOUBLE_EQ(a.migration_per_call, b.migration_per_call);
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.duplicated_messages, b.duplicated_messages);
  EXPECT_EQ(a.delayed_messages, b.delayed_messages);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.lease_expiries, b.lease_expiries);
  EXPECT_EQ(a.node_crashes, b.node_crashes);
  EXPECT_EQ(a.node_restarts, b.node_restarts);
  EXPECT_EQ(a.recoveries, b.recoveries);
}

TEST(ChaosSimTest, FaultScheduleReplaysDeterministically) {
  // Same plan + same seed => byte-identical results, for each of three
  // fixed chaos seeds.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    core::ExperimentConfig cfg = sim_base_config();
    cfg.fault_plan = fault::parse_plan_text(
        "seed " + std::to_string(seed) +
        "\ndrop * * 0.1\ndup * * 0.05\ndelay 0 * 0.5\ncrash 2 50 30\n");
    cfg.lock_lease = 40.0;
    const auto a = core::run_experiment(cfg);
    const auto b = core::run_experiment(cfg);
    expect_same_result(a, b);
    EXPECT_GT(a.dropped_messages, 0u);
    EXPECT_GT(a.fault_retries, 0u);
    EXPECT_EQ(a.node_crashes, 1u);
    EXPECT_EQ(a.node_restarts, 1u);
    EXPECT_GT(a.calls, 0u);  // the workload survived the chaos
  }
}

TEST(ChaosSimTest, DifferentFaultSeedsDiverge) {
  core::ExperimentConfig cfg = sim_base_config();
  cfg.fault_plan = fault::parse_plan_text("seed 1\ndrop * * 0.2\n");
  const auto a = core::run_experiment(cfg);
  cfg.fault_plan.seed = 99;
  const auto b = core::run_experiment(cfg);
  EXPECT_TRUE(a.dropped_messages != b.dropped_messages ||
              a.events != b.events ||
              a.total_per_call != b.total_per_call);
}

TEST(ChaosSimTest, UnmatchedPlanLeavesTrajectoryUntouched) {
  // A plan whose rules match no link that ever carries traffic must not
  // perturb the run at all: the fault machinery is installed but consumes
  // no randomness and adds no cost. (The empty-plan case is stronger still
  // — no machinery is instantiated — so this bounds both.)
  const core::ExperimentConfig base = sim_base_config();
  const auto before = core::run_experiment(base);

  core::ExperimentConfig with_plan = base;
  with_plan.fault_plan =
      fault::parse_plan_text("drop 100 101 0.9\ndelay 100 101 5\n");
  const auto after = core::run_experiment(with_plan);

  expect_same_result(before, after);
  EXPECT_EQ(after.dropped_messages, 0u);
  EXPECT_EQ(after.fault_retries, 0u);
}

TEST(ChaosSimTest, PermanentCrashDegradesButCompletes) {
  // A node that never comes back: calls to its objects poll until a
  // migration relocates them or the retry cap is hit — the run must still
  // terminate and keep serving the surviving nodes.
  core::ExperimentConfig cfg = sim_base_config();
  cfg.fault_plan = fault::parse_plan_text("crash 4 100\n");
  cfg.lock_lease = 40.0;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.node_crashes, 1u);
  EXPECT_EQ(r.node_restarts, 0u);
  EXPECT_GT(r.calls, 0u);
}

}  // namespace
}  // namespace omig
