// Deterministic re-enactments of the paper's worked examples.
#include <gtest/gtest.h>

#include "../migration/fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;
using objsys::ObjectId;

struct MoverResult {
  MoveBlock blk;
  double total() const { return blk.call_time + blk.migration_cost; }
};

sim::Task mover(MigrationFixture& f, MigrationPolicy& policy, MoveBlock& blk,
                sim::SimTime start_at, int calls, sim::SimTime call_after) {
  co_await f.engine.delay(start_at);
  co_await policy.begin_block(blk);
  if (call_after > f.engine.now()) {
    co_await f.engine.delay(call_after - f.engine.now());
  }
  for (int i = 0; i < calls; ++i) {
    const sim::SimTime t0 = f.engine.now();
    co_await f.invoker.invoke(blk.origin, blk.target);
    blk.call_time += f.engine.now() - t0;
    ++blk.calls;
  }
  policy.end_block(blk);
}

// Section 3.2, Figure 4 — the concurrency example with deterministic
// message cost C = 1, M = 6, N = 4 calls per block.
//
// Place-policy: one migration happens; the loser pays its request message
// and invokes remotely:   total = M + (2N+2)·C.
// (The paper states M + (2N+1)·C — it folds the winner's request message
// into the move; our accounting itemises it. The comparison is unaffected.)
//
// Conventional worst case: the second move steals the object before the
// first mover performed any call: total = 2M + (2N+2)·C.
class Section32Scenario : public ::testing::Test {
protected:
  static constexpr double kM = 6.0;
  static constexpr int kN = 4;
};

TEST_F(Section32Scenario, PlacementCostMatchesAnalyticFormula) {
  MigrationFixture f{3};
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  MoveBlock b = f.manager.new_block(f.node(2), o);
  // A moves at t=0 (request lands t=1, migration done t=7). B's request
  // lands at t=2, mid-transit, and is refused.
  // B only starts invoking at t=8, once the object is operational again —
  // otherwise its first call would also include blocked-on-transit time.
  f.engine.spawn(mover(f, *policy, a, 0.0, kN, 0.0));
  f.engine.spawn(mover(f, *policy, b, 1.0, kN, 8.0));
  f.engine.run();

  EXPECT_EQ(a.moved.size(), 1u);  // A won the object
  EXPECT_DOUBLE_EQ(a.migration_cost, 1.0 + kM);      // request + M
  EXPECT_DOUBLE_EQ(a.call_time, 0.0);                // local calls
  EXPECT_DOUBLE_EQ(b.migration_cost, 1.0);           // request message only
  EXPECT_DOUBLE_EQ(b.call_time, 2.0 * kN);           // N remote round trips

  const double place_total =
      a.call_time + a.migration_cost + b.call_time + b.migration_cost;
  EXPECT_DOUBLE_EQ(place_total, kM + (2.0 * kN + 2.0));
  EXPECT_EQ(f.registry.migrations(), 1u);  // "instead of transferring twice"
}

TEST_F(Section32Scenario, ConventionalWorstCaseMatchesAnalyticFormula) {
  MigrationFixture f{3};
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  MoveBlock b = f.manager.new_block(f.node(2), o);
  // A's move completes at t=7; B steals at t=7.5 (request t=8.5, done
  // t=14.5) before A performed any call; A calls only from t=20.
  f.engine.spawn(mover(f, *policy, a, 0.0, kN, 20.0));
  f.engine.spawn(mover(f, *policy, b, 7.5, kN, 20.0));
  f.engine.run();

  EXPECT_DOUBLE_EQ(a.migration_cost, 1.0 + kM);
  EXPECT_DOUBLE_EQ(b.migration_cost, 1.0 + kM);
  EXPECT_DOUBLE_EQ(a.call_time, 2.0 * kN);  // stolen: all remote
  EXPECT_DOUBLE_EQ(b.call_time, 0.0);       // thief calls locally

  const double conv_total =
      a.call_time + a.migration_cost + b.call_time + b.migration_cost;
  EXPECT_DOUBLE_EQ(conv_total, 2.0 * kM + (2.0 * kN + 2.0));
  EXPECT_EQ(f.registry.migrations(), 2u);

  // The paper's conclusion: under conflict, placement is cheaper than the
  // conventional move as long as M > C.
  EXPECT_LT(kM + (2.0 * kN + 2.0), conv_total);
}

// Figure 2's visit() example: a list visits the processing node for the
// duration of a block and migrates back afterwards.
TEST(VisitScenario, ListVisitsAndReturns) {
  MigrationFixture f{3};
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId list = f.registry.create("list", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(1), list, AllianceId::invalid(),
                                      /*visit=*/true);
  f.engine.spawn(mover(f, *policy, blk, 0.0, 8, 0.0));
  f.engine.run();
  EXPECT_EQ(f.registry.location(list), f.node(0));  // back home
  EXPECT_DOUBLE_EQ(blk.call_time, 0.0);             // processed locally
  EXPECT_EQ(f.registry.migrations(), 2u);
}

// Section 2.4: an egoistic component's attach() inflates everyone else's
// working set — the cost of a move is underestimated.
TEST(UnderestimationScenario, ForeignAttachmentsInflateTheMove) {
  MigrationFixture f{4};
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId server = f.registry.create("server", f.node(0));
  // The mover believes it moves one object. A foreign component attached
  // its own 5-object working set to the shared server.
  std::vector<ObjectId> foreign;
  for (int i = 0; i < 5; ++i) {
    foreign.push_back(
        f.registry.create("foreign-" + std::to_string(i), f.node(3)));
    f.attachments.attach(server, foreign.back());
  }
  MoveBlock blk = f.manager.new_block(f.node(1), server);
  f.engine.spawn(mover(f, *policy, blk, 0.0, 4, 0.0));
  f.engine.run();
  // All six objects moved — five of them invisibly to the mover.
  EXPECT_EQ(blk.moved.size(), 6u);
  for (const ObjectId o : foreign) {
    EXPECT_EQ(f.registry.location(o), f.node(1));
  }
}

// Same scenario under A-transitive attachment: the mover's alliance does
// not contain the foreign attachments, so only the server moves.
TEST(UnderestimationScenario, AlliancesRestoreTheEstimate) {
  ManagerOptions opts;
  opts.transitivity = AttachTransitivity::ATransitive;
  MigrationFixture f{4, opts};
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId server = f.registry.create("server", f.node(0));
  const AllianceId mine = f.alliances.create("mine");
  f.alliances.add_member(mine, server);
  for (int i = 0; i < 5; ++i) {
    const ObjectId o =
        f.registry.create("foreign-" + std::to_string(i), f.node(3));
    f.attachments.attach(server, o);  // issued outside my alliance
  }
  MoveBlock blk = f.manager.new_block(f.node(1), server, mine);
  f.engine.spawn(mover(f, *policy, blk, 0.0, 4, 0.0));
  f.engine.run();
  EXPECT_EQ(blk.moved.size(), 1u);  // exactly what the mover predicted
}

}  // namespace
}  // namespace omig::migration
