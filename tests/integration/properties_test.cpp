// Property-based sweeps: invariants that must hold for every policy,
// transitivity mode and seed (parameterised gtest), plus seed-fuzz loops
// that draw fresh base seeds instead of pinning a handful of magic ones.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/presets.hpp"
#include "sim/random.hpp"

namespace omig::core {
namespace {

using migration::AttachTransitivity;
using migration::PolicyKind;

stats::StoppingRule prop_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 300;
  rule.max_observations = 900;
  return rule;
}

// ---------------------------------------------------------------------------
// One-layer invariants over (policy × seed).
// ---------------------------------------------------------------------------

class OneLayerProperty
    : public ::testing::TestWithParam<std::tuple<PolicyKind, std::uint64_t>> {
protected:
  ExperimentResult run() {
    ExperimentConfig cfg = fig8_config(20.0, std::get<0>(GetParam()));
    cfg.stopping = prop_rule();
    cfg.seed = std::get<1>(GetParam());
    return run_experiment(cfg);
  }
};

TEST_P(OneLayerProperty, TotalDecomposesIntoCallPlusMigration) {
  const ExperimentResult r = run();
  EXPECT_NEAR(r.total_per_call, r.call_duration + r.migration_per_call,
              1e-9);
}

TEST_P(OneLayerProperty, MetricsAreFiniteAndNonNegative) {
  const ExperimentResult r = run();
  EXPECT_GE(r.call_duration, 0.0);
  EXPECT_GE(r.migration_per_call, 0.0);
  EXPECT_GT(r.total_per_call, 0.0);
  EXPECT_GT(r.calls, 0u);
  EXPECT_GT(r.blocks, 0u);
  EXPECT_GT(r.sim_time, 0.0);
}

TEST_P(OneLayerProperty, SedentaryNeverMigrates) {
  const ExperimentResult r = run();
  if (std::get<0>(GetParam()) == PolicyKind::Sedentary) {
    EXPECT_EQ(r.migrations, 0u);
    EXPECT_DOUBLE_EQ(r.migration_per_call, 0.0);
    EXPECT_EQ(r.control_messages, 0u);
  } else {
    // Every non-sedentary policy sends move requests.
    EXPECT_GT(r.control_messages, 0u);
  }
}

TEST_P(OneLayerProperty, DeterministicPerSeed) {
  const ExperimentResult a = run();
  const ExperimentResult b = run();
  EXPECT_DOUBLE_EQ(a.total_per_call, b.total_per_call);
  EXPECT_EQ(a.events, b.events);
}

TEST_P(OneLayerProperty, CallDurationAtLeastLocalShare) {
  // A call costs at least 0; remote calls dominate, so the mean must stay
  // below the theoretical remote ceiling plus blocking and above zero.
  const ExperimentResult r = run();
  EXPECT_LT(r.call_duration, 50.0);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, OneLayerProperty,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Sedentary, PolicyKind::Conventional,
                          PolicyKind::Placement, PolicyKind::CompareNodes,
                          PolicyKind::CompareReinstantiate),
        ::testing::Values(1ull, 99ull, 31337ull)));

// ---------------------------------------------------------------------------
// Two-layer invariants over (policy × transitivity).
// ---------------------------------------------------------------------------

class TwoLayerProperty
    : public ::testing::TestWithParam<
          std::tuple<PolicyKind, AttachTransitivity>> {
protected:
  ExperimentResult run(std::uint64_t seed = 7) {
    ExperimentConfig cfg =
        fig16_config(6, std::get<0>(GetParam()), std::get<1>(GetParam()));
    cfg.stopping = prop_rule();
    cfg.seed = seed;
    return run_experiment(cfg);
  }
};

TEST_P(TwoLayerProperty, Decomposition) {
  const ExperimentResult r = run();
  EXPECT_NEAR(r.total_per_call, r.call_duration + r.migration_per_call,
              1e-9);
}

TEST_P(TwoLayerProperty, RunsToCompletion) {
  const ExperimentResult r = run();
  EXPECT_GT(r.blocks, 0u);
  EXPECT_GT(r.calls, r.blocks);  // ~6 calls per block
}

TEST_P(TwoLayerProperty, TransfersNeverExceedMigrationsByComponent) {
  const ExperimentResult r = run();
  if (std::get<0>(GetParam()) == PolicyKind::Sedentary) {
    EXPECT_EQ(r.migrations, 0u);
  } else {
    // Each transfer relocates at most the whole 12-object component.
    EXPECT_LE(r.migrations, r.transfers * 12u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndTransitivity, TwoLayerProperty,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Sedentary, PolicyKind::Conventional,
                          PolicyKind::Placement),
        ::testing::Values(AttachTransitivity::Unrestricted,
                          AttachTransitivity::ATransitive)));

// ---------------------------------------------------------------------------
// Location-scheme invariants: the normalisation ablation must not change
// which policy wins.
// ---------------------------------------------------------------------------

class LocationProperty
    : public ::testing::TestWithParam<objsys::LocationScheme> {};

TEST_P(LocationProperty, PlacementStillBeatsConventionalUnderConflict) {
  ExperimentConfig conv = fig8_config(5.0, PolicyKind::Conventional);
  ExperimentConfig plac = fig8_config(5.0, PolicyKind::Placement);
  conv.location_scheme = GetParam();
  plac.location_scheme = GetParam();
  conv.stopping = prop_rule();
  plac.stopping = prop_rule();
  conv.stopping.max_observations = 3'000;
  plac.stopping.max_observations = 3'000;
  EXPECT_LT(run_experiment(plac).total_per_call,
            run_experiment(conv).total_per_call);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, LocationProperty,
    ::testing::Values(objsys::LocationScheme::None,
                      objsys::LocationScheme::NameServer,
                      objsys::LocationScheme::Forwarding,
                      objsys::LocationScheme::Broadcast,
                      objsys::LocationScheme::ImmediateUpdate));

// ---------------------------------------------------------------------------
// Seed fuzzing: the paper's invariants must hold for *every* seed, not just
// the hard-coded ones above. 32 base seeds are drawn from a splitmix64
// stream (fixed fuzz seed, so failures reproduce); each reported failure
// names the seed that broke the property.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> fuzz_seeds(std::size_t count) {
  sim::SplitMix64 gen{0x5eedf0ccacc1a1edULL};
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(gen.next());
  return seeds;
}

stats::StoppingRule fuzz_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 250;
  rule.max_observations = 600;
  return rule;
}

TEST(SeedFuzzProperty, PlacementNeverExceedsConventionalUnderGoalConflict) {
  // Figure 8 at t_m = 5: usages follow each other closely, every client
  // wants the server nearby, and the conventional move policy thrashes.
  // The paper's claim — transient placement beats unrestricted migration
  // under goal conflict — must hold for every base seed.
  for (const std::uint64_t seed : fuzz_seeds(32)) {
    ExperimentConfig conv =
        fig8_config(5.0, migration::PolicyKind::Conventional);
    ExperimentConfig plac = fig8_config(5.0, migration::PolicyKind::Placement);
    conv.stopping = fuzz_rule();
    plac.stopping = fuzz_rule();
    conv.seed = seed;
    plac.seed = seed;
    const ExperimentResult rc = run_experiment(conv);
    const ExperimentResult rp = run_experiment(plac);
    EXPECT_LE(rp.total_per_call, rc.total_per_call)
        << "placement worse than conventional for seed " << seed;
  }
}

TEST(SeedFuzzProperty, ATransitiveClustersBoundedByAllianceSize) {
  // Section 3.4: with A-transitive attachments a migration's closure only
  // follows edges of the alliance the move was invoked in, so one transfer
  // relocates at most the alliance's objects — the S1 server plus its
  // working set — instead of the whole attachment component.
  const int alliance_size =
      1 + fig16_config(6, migration::PolicyKind::Conventional,
                       migration::AttachTransitivity::ATransitive)
              .workload.working_set_size;
  for (const std::uint64_t seed : fuzz_seeds(32)) {
    ExperimentConfig cfg =
        fig16_config(6, migration::PolicyKind::Conventional,
                     migration::AttachTransitivity::ATransitive);
    cfg.stopping = fuzz_rule();
    cfg.seed = seed;
    const ExperimentResult r = run_experiment(cfg);
    ASSERT_GT(r.transfers, 0u) << "seed " << seed;
    EXPECT_LE(r.migrations,
              r.transfers * static_cast<std::uint64_t>(alliance_size))
        << "cluster exceeded alliance size for seed " << seed;
  }
}

TEST(SeedFuzzProperty, DecompositionHoldsForEveryFuzzedSeed) {
  // total = call + migration is an exact accounting identity, not a
  // statistical one — it may never drift no matter the seed.
  for (const std::uint64_t seed : fuzz_seeds(32)) {
    ExperimentConfig cfg = fig8_config(20.0, migration::PolicyKind::Placement);
    cfg.stopping = fuzz_rule();
    cfg.seed = seed;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_NEAR(r.total_per_call, r.call_duration + r.migration_per_call,
                1e-9)
        << "decomposition broke for seed " << seed;
  }
}

}  // namespace
}  // namespace omig::core
