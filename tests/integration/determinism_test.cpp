// Determinism and normalisation identities that hold *exactly* (not just
// statistically) thanks to per-entity RNG streams.
#include <gtest/gtest.h>

#include "core/presets.hpp"

namespace omig::core {
namespace {

using migration::PolicyKind;

stats::StoppingRule small_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 400;
  rule.max_observations = 1'200;
  return rule;
}

TEST(DeterminismTest, TopologyIsInvisibleUnderUniformLatency) {
  // The paper's "other structures had no effects" claim is *exact* in our
  // implementation: under uniform latency the hop count is never sampled,
  // so every topology produces the identical event trajectory.
  ExperimentConfig base = fig8_config(10.0, PolicyKind::Placement);
  base.stopping = small_rule();
  ExperimentResult reference{};
  bool first = true;
  for (const auto kind :
       {net::TopologyKind::FullMesh, net::TopologyKind::Ring,
        net::TopologyKind::Star, net::TopologyKind::Grid}) {
    ExperimentConfig cfg = base;
    cfg.topology = kind;
    const ExperimentResult r = run_experiment(cfg);
    if (first) {
      reference = r;
      first = false;
      continue;
    }
    EXPECT_DOUBLE_EQ(r.total_per_call, reference.total_per_call);
    EXPECT_EQ(r.events, reference.events);
    EXPECT_EQ(r.migrations, reference.migrations);
  }
}

TEST(DeterminismTest, AddingAClientDoesNotPerturbExistingStreams) {
  // Per-client RNG streams: with C+1 clients, the first C clients draw the
  // identical random numbers. The *system* differs (more contention), but
  // the variance-reduction property shows as strong correlation; here we
  // verify the cheap structural part — per-seed reproducibility at both
  // populations.
  for (int clients : {3, 4}) {
    ExperimentConfig cfg = fig12_config(clients, PolicyKind::Conventional);
    cfg.stopping = small_rule();
    const auto a = run_experiment(cfg);
    const auto b = run_experiment(cfg);
    EXPECT_DOUBLE_EQ(a.total_per_call, b.total_per_call);
    EXPECT_EQ(a.events, b.events);
  }
}

TEST(DeterminismTest, FragmentedWorkloadDecomposesAndReproduces) {
  ExperimentConfig cfg;
  cfg.workload.nodes = 8;
  cfg.workload.clients = 4;
  cfg.workload.fragments = 6;
  cfg.workload.fragment_view = 2;
  cfg.policy = PolicyKind::Placement;
  cfg.transitivity = migration::AttachTransitivity::ATransitive;
  cfg.stopping = small_rule();
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.total_per_call, b.total_per_call);
  EXPECT_NEAR(a.total_per_call, a.call_duration + a.migration_per_call,
              1e-9);
}

TEST(DeterminismTest, TraceInvariantsHoldForLoadShareAndFragments) {
  ExperimentConfig cfg;
  cfg.workload.nodes = 8;
  cfg.workload.clients = 4;
  cfg.workload.fragments = 6;
  cfg.workload.fragment_view = 2;
  cfg.policy = PolicyKind::LoadShare;
  cfg.stopping = small_rule();
  trace::TraceLog log{1 << 20};
  run_experiment(cfg, &log);
  EXPECT_EQ(trace::check::transits_alternate(log), "");
  EXPECT_EQ(trace::check::locks_balance(log), "");
}

TEST(DeterminismTest, ParallelScanKeepsDecomposition) {
  ExperimentConfig cfg;
  cfg.workload.nodes = 8;
  cfg.workload.clients = 4;
  cfg.workload.fragments = 6;
  cfg.workload.fragment_view = 3;
  cfg.workload.parallel_scan = true;
  cfg.policy = PolicyKind::Sedentary;
  cfg.stopping = small_rule();
  const auto r = run_experiment(cfg);
  EXPECT_NEAR(r.total_per_call, r.call_duration + r.migration_per_call,
              1e-9);
  EXPECT_GT(r.calls, 0u);
}

}  // namespace
}  // namespace omig::core
