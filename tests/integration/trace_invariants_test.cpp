// End-to-end protocol-invariant tests: run real experiments with the trace
// attached and verify the recorded histories.
#include <gtest/gtest.h>

#include <tuple>

#include "core/presets.hpp"
#include "trace/log.hpp"

namespace omig::core {
namespace {

using migration::PolicyKind;

stats::StoppingRule short_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.10;
  rule.min_observations = 300;
  rule.max_observations = 800;
  return rule;
}

class TraceInvariants : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(TraceInvariants, OneLayerHistoryIsWellFormed) {
  ExperimentConfig cfg = fig8_config(10.0, GetParam());
  cfg.stopping = short_rule();
  trace::TraceLog log{1 << 20};
  run_experiment(cfg, &log);
  ASSERT_GT(log.size(), 0u);
  EXPECT_EQ(trace::check::locks_balance(log), "");
  EXPECT_EQ(trace::check::transits_alternate(log), "");
  EXPECT_EQ(trace::check::refused_blocks_never_migrate(log), "");
}

TEST_P(TraceInvariants, BlocksBeginBeforeTheyEnd) {
  ExperimentConfig cfg = fig8_config(10.0, GetParam());
  cfg.stopping = short_rule();
  trace::TraceLog log{1 << 20};
  run_experiment(cfg, &log);
  std::size_t open = 0;
  for (const auto& e : log.events()) {
    if (e.kind == trace::EventKind::BlockBegin) ++open;
    if (e.kind == trace::EventKind::BlockEnd) {
      ASSERT_GT(open, 0u);
      --open;
    }
  }
}

TEST_P(TraceInvariants, RequestsOnlyFromMigratingPolicies) {
  ExperimentConfig cfg = fig8_config(10.0, GetParam());
  cfg.stopping = short_rule();
  trace::TraceLog log{1 << 20};
  run_experiment(cfg, &log);
  const std::size_t requests = log.count(trace::EventKind::MoveRequest);
  if (GetParam() == PolicyKind::Sedentary) {
    EXPECT_EQ(requests, 0u);
  } else {
    EXPECT_GT(requests, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TraceInvariants,
    ::testing::Values(PolicyKind::Sedentary, PolicyKind::Conventional,
                      PolicyKind::Placement, PolicyKind::CompareNodes,
                      PolicyKind::CompareReinstantiate));

TEST(TraceInvariantsTwoLayer, PlacementWithAlliances) {
  ExperimentConfig cfg =
      fig16_config(6, PolicyKind::Placement,
                   migration::AttachTransitivity::ATransitive);
  cfg.stopping = short_rule();
  trace::TraceLog log{1 << 20};
  run_experiment(cfg, &log);
  EXPECT_EQ(trace::check::locks_balance(log), "");
  EXPECT_EQ(trace::check::transits_alternate(log), "");
  EXPECT_EQ(trace::check::refused_blocks_never_migrate(log), "");
  // Placement must actually refuse some moves under 6-way contention.
  EXPECT_GT(log.count(trace::EventKind::MoveRefused), 0u);
}

TEST(EgoisticMix, EgoisticClientsHurtEveryone) {
  // Section 2.4: one egoistic conventional component in an otherwise
  // placement-disciplined system degrades the shared metric.
  ExperimentConfig clean = fig8_config(8.0, PolicyKind::Placement);
  clean.stopping = short_rule();
  clean.stopping.max_observations = 4'000;
  ExperimentConfig mixed = clean;
  mixed.egoistic_clients = 1;
  mixed.egoistic_policy = PolicyKind::Conventional;
  const double clean_total = run_experiment(clean).total_per_call;
  const double mixed_total = run_experiment(mixed).total_per_call;
  EXPECT_GT(mixed_total, clean_total);
}

TEST(EgoisticMix, AllEgoisticEqualsConventional) {
  // Degenerate check: every client egoistic-conventional == plain
  // conventional (same seeds, same draws).
  ExperimentConfig conv = fig8_config(10.0, PolicyKind::Conventional);
  conv.stopping = short_rule();
  ExperimentConfig mixed = fig8_config(10.0, PolicyKind::Placement);
  mixed.stopping = short_rule();
  mixed.egoistic_clients = mixed.workload.clients;
  mixed.egoistic_policy = PolicyKind::Conventional;
  EXPECT_DOUBLE_EQ(run_experiment(conv).total_per_call,
                   run_experiment(mixed).total_per_call);
}

TEST(EgoisticMix, RejectsBadCounts) {
  ExperimentConfig cfg = fig8_config(10.0, PolicyKind::Placement);
  cfg.egoistic_clients = 99;
  EXPECT_THROW(run_experiment(cfg), omig::AssertionError);
}

}  // namespace
}  // namespace omig::core
