#include "workload/fragmented.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omig::workload {
namespace {

using migration::MoveBlock;

class CountingObserver final : public BlockObserver {
public:
  CountingObserver(sim::Engine& engine, std::size_t quota)
      : engine_{&engine}, quota_{quota} {}
  void on_block(const MoveBlock& blk) override {
    blocks.push_back(blk);
    if (blocks.size() >= quota_) engine_->request_stop();
  }
  void on_background_migration(double cost) override { background += cost; }
  std::vector<MoveBlock> blocks;
  double background = 0.0;

private:
  sim::Engine* engine_;
  std::size_t quota_;
};

WorkloadParams fragment_params(bool monolithic, int clients = 4) {
  WorkloadParams p;
  p.nodes = 8;
  p.clients = clients;
  p.fragments = 6;
  p.fragment_view = 2;
  p.monolithic = monolithic;
  p.mean_calls = 6.0;
  return p;
}

struct Fixture {
  Fixture(migration::PolicyKind kind, migration::AttachTransitivity trans,
          bool monolithic)
      : params{fragment_params(monolithic)},
        mesh{static_cast<std::size_t>(params.nodes)},
        latency{mesh, net::LatencyMode::Uniform, 1.0},
        registry{engine, static_cast<std::size_t>(params.nodes)},
        invoker{engine, registry, latency, net_rng},
        manager{engine, registry, latency, mgr_rng, attachments, alliances,
                migration::ManagerOptions{params.migration_duration, trans,
                                          migration::ClusterTransfer::
                                              Parallel}},
        policy{migration::make_policy(kind, manager)},
        observer{engine, 120} {}

  WorkloadParams params;
  sim::Engine engine;
  net::FullMesh mesh;
  net::LatencyModel latency;
  objsys::ObjectRegistry registry;
  sim::Rng net_rng{29, 0};
  sim::Rng mgr_rng{29, 1};
  objsys::Invoker invoker;
  migration::AttachmentGraph attachments;
  migration::AllianceRegistry alliances;
  migration::MigrationManager manager;
  std::unique_ptr<migration::MigrationPolicy> policy;
  CountingObserver observer;
};

TEST(FragmentedTest, BuildCreatesFragmentsAndViews) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::ATransitive, false};
  const FragmentedWorkload w = build_fragmented(f.registry, f.attachments,
                                                f.alliances, f.params);
  EXPECT_EQ(w.fragments.size(), 6u);
  ASSERT_EQ(w.views.size(), 4u);
  for (const auto& view : w.views) EXPECT_EQ(view.size(), 2u);
  // Ring overlap: consecutive views share a fragment.
  EXPECT_EQ(w.views[0][1], w.views[1][0]);
  // A view's chain is its own alliance context.
  EXPECT_EQ(f.attachments.closure_in(w.views[0][0], w.alliances[0]).size(),
            2u);
}

TEST(FragmentedTest, MonolithIsOneHeavyObject) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::ATransitive, true};
  const FragmentedWorkload w = build_fragmented(f.registry, f.attachments,
                                                f.alliances, f.params);
  ASSERT_EQ(w.fragments.size(), 1u);
  EXPECT_DOUBLE_EQ(f.registry.descriptor(w.fragments[0]).size, 6.0);
  for (const auto& view : w.views) {
    ASSERT_EQ(view.size(), 1u);
    EXPECT_EQ(view[0], w.fragments[0]);
  }
}

TEST(FragmentedTest, MonolithMigrationIsSlow) {
  // Moving the monolith costs F·M — the whole point of fragmenting.
  Fixture f{migration::PolicyKind::Conventional,
            migration::AttachTransitivity::ATransitive, true};
  const FragmentedWorkload w = build_fragmented(f.registry, f.attachments,
                                                f.alliances, f.params);
  MoveBlock blk = f.manager.new_block(objsys::NodeId{3}, w.fragments[0]);
  f.engine.spawn(f.policy->begin_block(blk));
  f.engine.run();
  EXPECT_GE(blk.migration_cost, 36.0);  // 6 fragments × M=6 (+ request)
}

TEST(FragmentedTest, ClientsScanTheirViews) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::ATransitive, false};
  spawn_fragmented(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                   f.observer, f.params, 5);
  f.engine.run_until(1e7);
  ASSERT_GE(f.observer.blocks.size(), 120u);
  // Each logical call scans 2 fragments: invocation count ≈ 2 × calls.
  std::uint64_t calls = 0;
  for (const auto& blk : f.observer.blocks) {
    calls += static_cast<std::uint64_t>(blk.calls);
  }
  EXPECT_GE(f.invoker.invocations(), 2 * calls);
}

TEST(FragmentedTest, ATransitiveMovesOnlyTheView) {
  Fixture f{migration::PolicyKind::Conventional,
            migration::AttachTransitivity::ATransitive, false};
  spawn_fragmented(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                   f.observer, f.params, 5);
  f.engine.run_until(1e7);
  for (const auto& blk : f.observer.blocks) {
    EXPECT_LE(blk.moved.size(), 2u);  // never more than the view
  }
}

TEST(FragmentedTest, UnrestrictedDragsTheWholeChain) {
  Fixture f{migration::PolicyKind::Conventional,
            migration::AttachTransitivity::Unrestricted, false};
  spawn_fragmented(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                   f.observer, f.params, 5);
  f.engine.run_until(1e7);
  std::size_t biggest = 0;
  for (const auto& blk : f.observer.blocks) {
    biggest = std::max(biggest, blk.moved.size());
  }
  // The 4 overlapping views chain fragments 0..4 into one component.
  EXPECT_GE(biggest, 3u);
}

TEST(FragmentedTest, ParallelScanIsNeverSlowerThanSequential) {
  auto run = [](bool parallel) {
    Fixture f{migration::PolicyKind::Sedentary,
              migration::AttachTransitivity::ATransitive, false};
    WorkloadParams p = f.params;
    // Views of 3: every client sees its local fragment plus two remote
    // ones — with a view of 2 (one remote round trip) max == sum and the
    // two scan modes are indistinguishable.
    p.fragment_view = 3;
    p.parallel_scan = parallel;
    spawn_fragmented(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                     f.observer, p, 5);
    f.engine.run_until(1e7);
    double calls = 0.0, time = 0.0;
    for (const auto& blk : f.observer.blocks) {
      calls += blk.calls;
      time += blk.call_time;
    }
    return time / calls;
  };
  const double sequential = run(false);
  const double parallel = run(true);
  // Parallel: max of the two fragment round trips; sequential: their sum.
  EXPECT_LT(parallel, sequential);
  EXPECT_GT(parallel, sequential * 0.5);
}

TEST(FragmentedTest, ValidationCatchesBadViews) {
  WorkloadParams p = fragment_params(false);
  p.fragment_view = 7;  // > fragments
  EXPECT_THROW(validate(p), omig::AssertionError);
  p = fragment_params(false);
  p.servers2 = 2;  // mutually exclusive
  EXPECT_THROW(validate(p), omig::AssertionError);
}

}  // namespace
}  // namespace omig::workload
