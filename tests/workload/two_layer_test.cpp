#include "workload/two_layer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace omig::workload {
namespace {

using migration::MoveBlock;

class CountingObserver final : public BlockObserver {
public:
  CountingObserver(sim::Engine& engine, std::size_t quota)
      : engine_{&engine}, quota_{quota} {}
  void on_block(const MoveBlock& blk) override {
    blocks.push_back(blk);
    if (blocks.size() >= quota_) engine_->request_stop();
  }
  void on_background_migration(double cost) override { background += cost; }
  std::vector<MoveBlock> blocks;
  double background = 0.0;

private:
  sim::Engine* engine_;
  std::size_t quota_;
};

WorkloadParams fig17_params(int clients) {
  WorkloadParams p;
  p.nodes = 24;
  p.clients = clients;
  p.servers1 = 6;
  p.servers2 = 6;
  p.mean_calls = 6.0;
  p.working_set_size = 2;
  return p;
}

struct Fixture {
  Fixture(migration::PolicyKind kind, migration::AttachTransitivity trans,
          int clients = 4)
      : params{fig17_params(clients)},
        mesh{static_cast<std::size_t>(params.nodes)},
        latency{mesh, net::LatencyMode::Uniform, 1.0},
        registry{engine, static_cast<std::size_t>(params.nodes)},
        invoker{engine, registry, latency, net_rng},
        manager{engine, registry, latency, mgr_rng, attachments, alliances,
                migration::ManagerOptions{params.migration_duration, trans,
                                          migration::ClusterTransfer::
                                              Parallel}},
        policy{migration::make_policy(kind, manager)},
        observer{engine, 150} {}

  WorkloadParams params;
  sim::Engine engine;
  net::FullMesh mesh;
  net::LatencyModel latency;
  objsys::ObjectRegistry registry;
  sim::Rng net_rng{23, 0};
  sim::Rng mgr_rng{23, 1};
  objsys::Invoker invoker;
  migration::AttachmentGraph attachments;
  migration::AllianceRegistry alliances;
  migration::MigrationManager manager;
  std::unique_ptr<migration::MigrationPolicy> policy;
  CountingObserver observer;
};

TEST(TwoLayerTest, BuildCreatesBothLayersAndAlliances) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::Unrestricted};
  const TwoLayerWorkload w = build_two_layer(f.registry, f.attachments,
                                             f.alliances, f.params);
  EXPECT_EQ(w.servers1.size(), 6u);
  EXPECT_EQ(w.servers2.size(), 6u);
  EXPECT_EQ(w.alliances.size(), 6u);
  EXPECT_EQ(f.alliances.count(), 6u);
  // Each alliance holds its S1 server plus its working set.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(f.alliances.members(w.alliances[i]).size(), 3u);
    EXPECT_TRUE(f.alliances.is_member(w.alliances[i], w.servers1[i]));
  }
}

TEST(TwoLayerTest, RingOverlapMakesOneComponent) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::Unrestricted};
  const TwoLayerWorkload w = build_two_layer(f.registry, f.attachments,
                                             f.alliances, f.params);
  // The Figure-7 worst case: the unrestricted closure of any first-layer
  // server is the whole 12-object population.
  EXPECT_EQ(f.attachments.closure(w.servers1[0]).size(), 12u);
  // The A-transitive closure is just the alliance's working set.
  EXPECT_EQ(f.attachments.closure_in(w.servers1[0], w.alliances[0]).size(),
            3u);
}

TEST(TwoLayerTest, WorkingSetsOverlapByOne) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::Unrestricted};
  const TwoLayerWorkload w = build_two_layer(f.registry, f.attachments,
                                             f.alliances, f.params);
  // WS_i = {S2_i, S2_{i+1}}: consecutive working sets share one member.
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& a = w.working_sets[i];
    const auto& b = w.working_sets[(i + 1) % 6];
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a[1], b[0]);
  }
}

TEST(TwoLayerTest, BuildRejectsOneLayerParams) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::Unrestricted};
  WorkloadParams p = f.params;
  p.servers2 = 0;
  EXPECT_THROW(build_two_layer(f.registry, f.attachments, f.alliances, p),
               omig::AssertionError);
}

TEST(TwoLayerTest, SedentaryBaselineRuns) {
  Fixture f{migration::PolicyKind::Sedentary,
            migration::AttachTransitivity::Unrestricted};
  spawn_two_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 7);
  f.engine.run_until(1e7);
  ASSERT_GE(f.observer.blocks.size(), 150u);
  EXPECT_EQ(f.registry.migrations(), 0u);
  // Two remote hops per call: durations are strictly positive on average.
  double calls = 0.0, time = 0.0;
  for (const auto& blk : f.observer.blocks) {
    calls += blk.calls;
    time += blk.call_time;
  }
  EXPECT_GT(time / calls, 1.0);
}

TEST(TwoLayerTest, UnrestrictedMigrationDragsWholeComponent) {
  Fixture f{migration::PolicyKind::Conventional,
            migration::AttachTransitivity::Unrestricted};
  spawn_two_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 7);
  f.engine.run_until(1e7);
  ASSERT_FALSE(f.observer.blocks.empty());
  // At least one block must have dragged the full 12-object component.
  std::size_t biggest = 0;
  for (const auto& blk : f.observer.blocks) {
    biggest = std::max(biggest, blk.moved.size());
  }
  EXPECT_EQ(biggest, 12u);
}

TEST(TwoLayerTest, ATransitiveMigrationMovesOnlyWorkingSet) {
  Fixture f{migration::PolicyKind::Conventional,
            migration::AttachTransitivity::ATransitive};
  spawn_two_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 7);
  f.engine.run_until(1e7);
  ASSERT_FALSE(f.observer.blocks.empty());
  for (const auto& blk : f.observer.blocks) {
    EXPECT_LE(blk.moved.size(), 3u);  // S1 + its two S2 servers at most
  }
}

TEST(TwoLayerTest, PlacementKeepsClustersDisjoint) {
  Fixture f{migration::PolicyKind::Placement,
            migration::AttachTransitivity::ATransitive};
  spawn_two_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 7);
  f.engine.run_until(1e7);
  ASSERT_FALSE(f.observer.blocks.empty());
  for (const auto& blk : f.observer.blocks) {
    EXPECT_LE(blk.locked.size(), 3u);
  }
  // Only blocks still open when the engine stopped may hold locks: at most
  // one cluster (3 objects) per client.
  EXPECT_LE(f.manager.locked_count(), 3u * 4u);
}

}  // namespace
}  // namespace omig::workload
