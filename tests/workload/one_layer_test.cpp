#include "workload/one_layer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace omig::workload {
namespace {

using migration::MoveBlock;

/// Captures completed blocks and stops the engine after a quota.
class CapturingObserver final : public BlockObserver {
public:
  CapturingObserver(sim::Engine& engine, std::size_t quota)
      : engine_{&engine}, quota_{quota} {}

  void on_block(const MoveBlock& blk) override {
    blocks.push_back(blk);
    if (blocks.size() >= quota_) engine_->request_stop();
  }
  void on_background_migration(double cost) override {
    background += cost;
  }

  std::vector<MoveBlock> blocks;
  double background = 0.0;

private:
  sim::Engine* engine_;
  std::size_t quota_;
};

struct Fixture {
  explicit Fixture(migration::PolicyKind kind, WorkloadParams p = {})
      : params{p},
        mesh{static_cast<std::size_t>(p.nodes)},
        latency{mesh, net::LatencyMode::Uniform, 1.0},
        registry{engine, static_cast<std::size_t>(p.nodes)},
        invoker{engine, registry, latency, net_rng},
        manager{engine, registry, latency, mgr_rng, attachments, alliances,
                migration::ManagerOptions{p.migration_duration,
                                          migration::AttachTransitivity::
                                              Unrestricted,
                                          migration::ClusterTransfer::
                                              Parallel}},
        policy{migration::make_policy(kind, manager)},
        observer{engine, 200} {}

  WorkloadParams params;
  sim::Engine engine;
  net::FullMesh mesh;
  net::LatencyModel latency;
  objsys::ObjectRegistry registry;
  sim::Rng net_rng{17, 0};
  sim::Rng mgr_rng{17, 1};
  objsys::Invoker invoker;
  migration::AttachmentGraph attachments;
  migration::AllianceRegistry alliances;
  migration::MigrationManager manager;
  std::unique_ptr<migration::MigrationPolicy> policy;
  CapturingObserver observer;
};

TEST(OneLayerTest, BuildCreatesServersRoundRobin) {
  Fixture f{migration::PolicyKind::Sedentary};
  const OneLayerWorkload w = build_one_layer(f.registry, f.params);
  ASSERT_EQ(w.servers.size(), 3u);
  EXPECT_EQ(f.registry.location(w.servers[0]).value(), 0u);
  EXPECT_EQ(f.registry.location(w.servers[1]).value(), 1u);
  EXPECT_EQ(f.registry.location(w.servers[2]).value(), 2u);
}

TEST(OneLayerTest, BuildRejectsTwoLayerParams) {
  Fixture f{migration::PolicyKind::Sedentary};
  WorkloadParams p = f.params;
  p.servers2 = 2;
  EXPECT_THROW(build_one_layer(f.registry, p), omig::AssertionError);
}

TEST(OneLayerTest, ClientsProduceBlocks) {
  Fixture f{migration::PolicyKind::Sedentary};
  spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 99);
  f.engine.run_until(1e7);
  ASSERT_GE(f.observer.blocks.size(), 200u);
  for (const auto& blk : f.observer.blocks) {
    EXPECT_GE(blk.calls, 1);
    EXPECT_GE(blk.call_time, 0.0);
    EXPECT_DOUBLE_EQ(blk.migration_cost, 0.0);  // sedentary: never
  }
}

TEST(OneLayerTest, SedentaryServersNeverMove) {
  Fixture f{migration::PolicyKind::Sedentary};
  spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 99);
  f.engine.run_until(1e7);
  EXPECT_EQ(f.registry.migrations(), 0u);
}

TEST(OneLayerTest, ConventionalPolicyMigrates) {
  Fixture f{migration::PolicyKind::Conventional};
  spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 99);
  f.engine.run_until(1e7);
  EXPECT_GT(f.registry.migrations(), 0u);
  // Every block's migration cost must be bounded by request + M + waits.
  for (const auto& blk : f.observer.blocks) {
    EXPECT_GE(blk.migration_cost, 0.0);
  }
}

TEST(OneLayerTest, MeanCallsApproximatelyEight) {
  Fixture f{migration::PolicyKind::Sedentary};
  spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 99);
  f.engine.run_until(1e7);
  double calls = 0.0;
  for (const auto& blk : f.observer.blocks) calls += blk.calls;
  EXPECT_NEAR(calls / static_cast<double>(f.observer.blocks.size()), 8.0,
              1.5);
}

TEST(OneLayerTest, VisitBlocksReturnObjects) {
  WorkloadParams p;
  p.use_visit = true;
  Fixture f{migration::PolicyKind::Conventional, p};
  f.manager.set_background_cost_sink(
      [&f](double c) { f.observer.on_background_migration(c); });
  spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 99);
  f.engine.run_until(1e7);
  // Visits migrate back: completed round trips leave every server at its
  // home node once the engine drains the return transfers.
  f.engine.run_until(1e7 + 100.0);
  EXPECT_GT(f.registry.migrations(), 0u);
  // Roughly two migrations per block that moved something.
  EXPECT_GT(f.observer.background, 0.0);  // return trips are background cost
}

TEST(OneLayerTest, ReadFractionProducesReads) {
  WorkloadParams p;
  p.read_fraction = 1.0;  // all calls are reads
  Fixture f{migration::PolicyKind::Sedentary, p};
  spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                  f.observer, f.params, 99);
  f.engine.run_until(1e7);
  // With replication off, reads behave like the paper's opaque calls.
  EXPECT_GT(f.invoker.invocations(), 0u);
  EXPECT_EQ(f.registry.replications(), 0u);
}

TEST(OneLayerTest, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    Fixture f{migration::PolicyKind::Placement};
    spawn_one_layer(f.engine, f.registry, f.manager, *f.policy, f.invoker,
                    f.observer, f.params, seed);
    f.engine.run_until(1e7);
    double total = 0.0;
    for (const auto& blk : f.observer.blocks) total += blk.total_cost();
    return total;
  };
  EXPECT_DOUBLE_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace omig::workload
