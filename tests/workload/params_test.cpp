#include "workload/params.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::workload {
namespace {

TEST(ParamsTest, DefaultsAreTable1) {
  const WorkloadParams p;
  EXPECT_EQ(p.nodes, 3);
  EXPECT_EQ(p.clients, 3);
  EXPECT_EQ(p.servers1, 3);
  EXPECT_EQ(p.servers2, 0);
  EXPECT_DOUBLE_EQ(p.migration_duration, 6.0);
  EXPECT_DOUBLE_EQ(p.mean_calls, 8.0);
  EXPECT_DOUBLE_EQ(p.mean_intercall, 1.0);
  EXPECT_DOUBLE_EQ(p.mean_interblock, 30.0);
  EXPECT_NO_THROW(validate(p));
}

TEST(ParamsTest, ValidationCatchesBadValues) {
  WorkloadParams p;
  p.clients = 0;
  EXPECT_THROW(validate(p), omig::AssertionError);
  p = WorkloadParams{};
  p.mean_calls = 0.5;
  EXPECT_THROW(validate(p), omig::AssertionError);
  p = WorkloadParams{};
  p.servers2 = 4;
  p.working_set_size = 5;
  EXPECT_THROW(validate(p), omig::AssertionError);
}

TEST(ParamsTest, ClientPlacementRoundRobin) {
  WorkloadParams p;
  p.nodes = 3;
  p.clients = 7;
  EXPECT_EQ(client_node(p, 0).value(), 0u);
  EXPECT_EQ(client_node(p, 2).value(), 2u);
  EXPECT_EQ(client_node(p, 3).value(), 0u);
  EXPECT_EQ(client_node(p, 6).value(), 0u);
  EXPECT_THROW(client_node(p, 7), omig::AssertionError);
}

TEST(ParamsTest, ServerPlacement) {
  WorkloadParams p;
  p.nodes = 24;
  p.servers1 = 6;
  p.servers2 = 6;
  EXPECT_EQ(server1_node(p, 0).value(), 0u);
  EXPECT_EQ(server1_node(p, 5).value(), 5u);
  // Second layer starts after the first layer's nodes.
  EXPECT_EQ(server2_node(p, 0).value(), 6u);
  EXPECT_EQ(server2_node(p, 5).value(), 11u);
}

TEST(ParamsTest, ServerPlacementWrapsAroundSmallSystems) {
  WorkloadParams p;
  p.nodes = 3;
  p.servers1 = 3;
  p.servers2 = 3;
  EXPECT_EQ(server2_node(p, 0).value(), 0u);  // (3 + 0) mod 3
  EXPECT_EQ(server2_node(p, 2).value(), 2u);
}

}  // namespace
}  // namespace omig::workload
