#include "objsys/location_service.hpp"

#include <gtest/gtest.h>

namespace omig::objsys {
namespace {

struct Fixture {
  sim::Engine engine;
  net::FullMesh mesh{4};
  net::LatencyModel latency{mesh, net::LatencyMode::Uniform, 1.0};
  ObjectRegistry registry{engine, 4};
  sim::Rng rng{7, 0};
};

sim::Task resolve_once(Fixture& f, LocationService& svc, NodeId from,
                       ObjectId obj, double& duration) {
  const sim::SimTime start = f.engine.now();
  co_await svc.resolve(from, obj);
  duration = f.engine.now() - start;
}

TEST(LocationServiceTest, NoneIsFree) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::None};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{0}, obj, d));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_EQ(svc.messages(), 0u);
}

TEST(LocationServiceTest, NameServerRoundTrip) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::NameServer, NodeId{0}};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{2}, obj, d));
  f.engine.run();
  EXPECT_GT(d, 0.0);
  EXPECT_EQ(svc.messages(), 2u);
}

TEST(LocationServiceTest, NameServerLocalLookupFree) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::NameServer, NodeId{0}};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{0}, obj, d));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(LocationServiceTest, ForwardingFreeWhenCurrent) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::Forwarding};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{0}, obj, d));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 0.0);  // no migrations yet: cache index 0 is current
}

TEST(LocationServiceTest, ForwardingChasesChain) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::Forwarding};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  // Prime the cache at index 0.
  double d0 = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{0}, obj, d0));
  f.engine.run();
  // Two migrations behind: resolving costs two chain messages.
  f.registry.begin_transit(obj);
  f.registry.finish_transit(obj, NodeId{2});
  f.registry.begin_transit(obj);
  f.registry.finish_transit(obj, NodeId{3});
  double d1 = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{0}, obj, d1));
  f.engine.run();
  EXPECT_GT(d1, 0.0);
  EXPECT_EQ(svc.messages(), 2u);
  // Cache updated: immediately resolving again is free.
  double d2 = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{0}, obj, d2));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d2, 0.0);
}

TEST(LocationServiceTest, BroadcastCostsQueryAndAnswer) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::Broadcast};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{2}, obj, d));
  f.engine.run();
  EXPECT_GT(d, 0.0);
  EXPECT_EQ(svc.messages(), 2u);
}

TEST(LocationServiceTest, ImmediateUpdatePaysOnMigration) {
  Fixture f;
  LocationService svc{f.engine, f.registry, f.latency, f.rng,
                      LocationScheme::ImmediateUpdate};
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(resolve_once(f, svc, NodeId{2}, obj, d));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 0.0);  // resolve is free
  const double overhead =
      svc.migration_overhead(obj, NodeId{1}, NodeId{2}, true);
  EXPECT_GT(overhead, 0.0);  // fan-out to the other nodes
  EXPECT_EQ(svc.messages(), 3u);
}

TEST(LocationServiceTest, ToStringCoversAllSchemes) {
  EXPECT_STREQ(to_string(LocationScheme::None), "none");
  EXPECT_STREQ(to_string(LocationScheme::NameServer), "name-server");
  EXPECT_STREQ(to_string(LocationScheme::Forwarding), "forwarding");
  EXPECT_STREQ(to_string(LocationScheme::Broadcast), "broadcast");
  EXPECT_STREQ(to_string(LocationScheme::ImmediateUpdate),
               "immediate-update");
}

}  // namespace
}  // namespace omig::objsys
