// Sharded location directory: unit coverage of the model, a randomized
// linearizability-style property sweep (64 seeds), and a Central-vs-Sharded
// trace-parity check on a 100-node live system (docs/directory.md).
#include "objsys/sharded_directory.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "runtime/live_system.hpp"
#include "trace/log.hpp"

namespace omig {
namespace {

using objsys::ConsistencyStrategy;
using objsys::DirectoryKind;
using objsys::DirectoryLookup;
using objsys::NodeId;
using objsys::ObjectId;
using objsys::ShardedDirectory;
using objsys::ShardedDirectoryOptions;

ShardedDirectoryOptions opts_for(std::size_t nodes,
                                 ConsistencyStrategy strategy) {
  ShardedDirectoryOptions o;
  o.nodes = nodes;
  o.strategy = strategy;
  return o;
}

TEST(ShardedDirectoryTest, StringRoundTrips) {
  EXPECT_EQ(objsys::to_string(DirectoryKind::Central), "central");
  EXPECT_EQ(objsys::to_string(DirectoryKind::Sharded), "sharded");
  EXPECT_EQ(objsys::directory_from_string("sharded"), DirectoryKind::Sharded);
  EXPECT_EQ(objsys::directory_from_string("nope"), std::nullopt);
  EXPECT_EQ(objsys::to_string(ConsistencyStrategy::LazyForward),
            "lazy-forward");
  EXPECT_EQ(objsys::strategy_from_string("eager-invalidate"),
            ConsistencyStrategy::EagerInvalidate);
  EXPECT_EQ(objsys::strategy_from_string("lease-ttl"),
            ConsistencyStrategy::LeaseTtl);
  EXPECT_EQ(objsys::strategy_from_string("bogus"), std::nullopt);
}

TEST(ShardedDirectoryTest, InsertThenLookupResolvesHost) {
  ShardedDirectory dir{opts_for(4, ConsistencyStrategy::LazyForward)};
  dir.insert(ObjectId{0}, NodeId{2});
  const DirectoryLookup r = dir.lookup(NodeId{1}, ObjectId{0});
  ASSERT_TRUE(r.resolved);
  EXPECT_EQ(r.host, NodeId{2});
  EXPECT_TRUE(r.owner_consulted);  // nothing cached yet
  EXPECT_FALSE(r.cache_hit);
}

TEST(ShardedDirectoryTest, SecondLookupHitsTheCache) {
  ShardedDirectory dir{opts_for(4, ConsistencyStrategy::LazyForward)};
  dir.insert(ObjectId{0}, NodeId{2});
  (void)dir.lookup(NodeId{1}, ObjectId{0});
  const DirectoryLookup r = dir.lookup(NodeId{1}, ObjectId{0});
  ASSERT_TRUE(r.resolved);
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.hops, 0u);
  EXPECT_EQ(dir.stats().cache_hits, 1u);
}

TEST(ShardedDirectoryTest, MoveLeavesForwardingPointerForLazyChase) {
  ShardedDirectory dir{opts_for(4, ConsistencyStrategy::LazyForward)};
  dir.insert(ObjectId{0}, NodeId{2});
  (void)dir.lookup(NodeId{1}, ObjectId{0});  // cache: object at 2
  (void)dir.record_move(ObjectId{0}, NodeId{3});
  const DirectoryLookup r = dir.lookup(NodeId{1}, ObjectId{0});
  ASSERT_TRUE(r.resolved);
  EXPECT_TRUE(r.stale);
  EXPECT_EQ(r.host, NodeId{3});
  EXPECT_GE(r.hops, 1u);  // chased 2 -> 3 through the forwarding pointer
  EXPECT_LE(r.hops, dir.hop_limit());
  // The chase healed the cache: next lookup is a clean hit.
  EXPECT_TRUE(dir.lookup(NodeId{1}, ObjectId{0}).cache_hit);
}

TEST(ShardedDirectoryTest, EagerInvalidateNeverServesStaleEntries) {
  ShardedDirectory dir{opts_for(4, ConsistencyStrategy::EagerInvalidate)};
  dir.insert(ObjectId{0}, NodeId{0});
  for (std::uint32_t round = 0; round < 8; ++round) {
    for (std::uint32_t n = 0; n < 4; ++n) {
      const DirectoryLookup r = dir.lookup(NodeId{n}, ObjectId{0});
      ASSERT_TRUE(r.resolved);
      EXPECT_EQ(r.host, dir.current_host(ObjectId{0}));
    }
    (void)dir.record_move(ObjectId{0}, NodeId{(round + 1) % 4});
  }
  EXPECT_EQ(dir.stats().stale_hits, 0u);
}

TEST(ShardedDirectoryTest, LeaseTtlExpiresCacheEntries) {
  ShardedDirectoryOptions o = opts_for(4, ConsistencyStrategy::LeaseTtl);
  o.lease_ttl = 2;
  ShardedDirectory dir{o};
  dir.insert(ObjectId{0}, NodeId{2});
  (void)dir.lookup(NodeId{1}, ObjectId{0});
  EXPECT_TRUE(dir.lookup(NodeId{1}, ObjectId{0}).cache_hit);
  dir.tick(10);  // age past the lease
  const DirectoryLookup r = dir.lookup(NodeId{1}, ObjectId{0});
  ASSERT_TRUE(r.resolved);
  EXPECT_FALSE(r.cache_hit);
  EXPECT_TRUE(r.owner_consulted);
}

TEST(ShardedDirectoryTest, NeverResolvesToADeadHost) {
  ShardedDirectory dir{opts_for(4, ConsistencyStrategy::LazyForward)};
  dir.insert(ObjectId{0}, NodeId{2});
  dir.crash_node(NodeId{2});
  const DirectoryLookup r = dir.lookup(NodeId{1}, ObjectId{0});
  EXPECT_FALSE(r.resolved);
  EXPECT_GE(dir.stats().unresolved, 1u);
  dir.recover_node(NodeId{2});
  const DirectoryLookup after = dir.lookup(NodeId{1}, ObjectId{0});
  ASSERT_TRUE(after.resolved);
  EXPECT_EQ(after.host, NodeId{2});
}

TEST(ShardedDirectoryTest, CrashedOwnerIsUnresolvedUntilRecovery) {
  ShardedDirectory dir{opts_for(4, ConsistencyStrategy::LazyForward)};
  const ObjectId obj{7};
  const NodeId owner = dir.owner_of(obj);
  // Host the object away from its shard owner so only the slice is lost.
  const NodeId home{static_cast<NodeId::value_type>(
      (owner.value() + 1) % 4)};
  dir.insert(obj, home);
  dir.crash_node(owner);
  EXPECT_FALSE(dir.lookup(NodeId{(owner.value() + 2) % 4}, obj).resolved);
  dir.recover_node(owner);  // re-seeds the slice from the authoritative map
  const DirectoryLookup r = dir.lookup(NodeId{(owner.value() + 2) % 4}, obj);
  ASSERT_TRUE(r.resolved);
  EXPECT_EQ(r.host, home);
}

TEST(ShardedDirectoryTest, ShardMappingIsStableAndOwnerBounded) {
  ShardedDirectoryOptions o = opts_for(5, ConsistencyStrategy::LazyForward);
  o.shards = 12;
  ShardedDirectory dir{o};
  EXPECT_EQ(dir.shards(), 12u);
  EXPECT_EQ(dir.hop_limit(), 12u);  // defaults to the shard count
  for (std::uint32_t id = 0; id < 64; ++id) {
    const std::size_t shard = dir.shard_of(ObjectId{id});
    EXPECT_EQ(shard, dir.shard_of(ObjectId{id}));  // deterministic
    EXPECT_LT(shard, 12u);
    EXPECT_LT(dir.shard_owner(shard).value(), 5u);
    EXPECT_EQ(dir.owner_of(ObjectId{id}), dir.shard_owner(shard));
  }
}

// ---------------------------------------------------------------------------
// Property sweep: random move/lookup/crash/recover interleavings, 64 seeds.
// The contract (ISSUE): every resolved lookup returns the current host via a
// forwarding chain of at most hop_limit (= shard count) hops, a lookup never
// settles on a dead host, unresolved only ever happens while the owner or
// the host is down, and after quiescence (everything recovered) every
// lookup from every node resolves — zero misses.
// ---------------------------------------------------------------------------

TEST(ShardedDirectoryPropertyTest, RandomHistoriesKeepTheContract) {
  constexpr std::uint64_t kSeeds = 64;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng{seed};
    const std::size_t nodes = 3 + rng() % 14;
    ShardedDirectoryOptions o;
    o.nodes = nodes;
    o.strategy = static_cast<ConsistencyStrategy>(seed % 3);
    o.shards = (seed % 2 == 0) ? 0 : 1 + rng() % (2 * nodes);
    o.lease_ttl = 1 + rng() % 32;
    ShardedDirectory dir{o};

    const std::uint32_t objects =
        1 + static_cast<std::uint32_t>(rng() % 24);
    std::vector<bool> up(nodes, true);
    for (std::uint32_t id = 0; id < objects; ++id) {
      dir.insert(ObjectId{id},
                 NodeId{static_cast<NodeId::value_type>(rng() % nodes)});
    }
    auto random_node = [&] {
      return NodeId{static_cast<NodeId::value_type>(rng() % nodes)};
    };
    auto random_obj = [&] {
      return ObjectId{static_cast<ObjectId::value_type>(rng() % objects)};
    };

    for (int op = 0; op < 300; ++op) {
      const std::uint64_t dice = rng() % 100;
      if (dice < 45) {
        const ObjectId obj = random_obj();
        const DirectoryLookup r = dir.lookup(random_node(), obj);
        ASSERT_LE(r.hops, dir.hop_limit()) << "seed " << seed;
        const NodeId truth = dir.current_host(obj);
        if (r.resolved) {
          ASSERT_EQ(r.host, truth) << "seed " << seed << " op " << op;
          ASSERT_TRUE(dir.node_up(r.host)) << "seed " << seed;
        } else {
          // Only a dead owner or a dead host leaves a lookup unresolved.
          ASSERT_TRUE(!dir.node_up(dir.owner_of(obj)) ||
                      !dir.node_up(truth))
              << "seed " << seed << " op " << op;
        }
      } else if (dice < 75) {
        // Migrate to a live node (migrations never target dead hosts).
        const NodeId dest = random_node();
        if (up[dest.value()]) (void)dir.record_move(random_obj(), dest);
      } else if (dice < 83) {
        const NodeId victim = random_node();
        up[victim.value()] = false;
        dir.crash_node(victim);
      } else if (dice < 93) {
        const NodeId back = random_node();
        if (!up[back.value()]) {
          up[back.value()] = true;
          dir.recover_node(back);
        }
      } else {
        dir.tick(rng() % 8);
      }
    }

    // Quiescence: recover everything, then every lookup must resolve to
    // the current host within the hop bound — zero misses.
    for (std::size_t n = 0; n < nodes; ++n) {
      if (!up[n]) {
        dir.recover_node(NodeId{static_cast<NodeId::value_type>(n)});
      }
    }
    const std::uint64_t unresolved_before = dir.stats().unresolved;
    for (std::uint32_t id = 0; id < objects; ++id) {
      for (std::size_t n = 0; n < nodes; ++n) {
        const DirectoryLookup r = dir.lookup(
            NodeId{static_cast<NodeId::value_type>(n)}, ObjectId{id});
        ASSERT_TRUE(r.resolved) << "seed " << seed;
        ASSERT_EQ(r.host, dir.current_host(ObjectId{id})) << "seed " << seed;
        ASSERT_LE(r.hops, dir.hop_limit());
      }
    }
    EXPECT_EQ(dir.stats().unresolved, unresolved_before) << "seed " << seed;
  }
}

TEST(ShardedDirectoryPropertyTest, EagerInvalidateStaleFreeWithoutCrashes) {
  // Crash-free runs under EagerInvalidate must never serve a stale cache
  // entry: every migration synchronously drops the entry everywhere.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    std::mt19937_64 rng{seed};
    const std::size_t nodes = 2 + rng() % 10;
    ShardedDirectory dir{
        opts_for(nodes, ConsistencyStrategy::EagerInvalidate)};
    const std::uint32_t objects =
        1 + static_cast<std::uint32_t>(rng() % 12);
    for (std::uint32_t id = 0; id < objects; ++id) {
      dir.insert(ObjectId{id},
                 NodeId{static_cast<NodeId::value_type>(rng() % nodes)});
    }
    for (int op = 0; op < 200; ++op) {
      const ObjectId obj{static_cast<ObjectId::value_type>(rng() % objects)};
      const NodeId node{static_cast<NodeId::value_type>(rng() % nodes)};
      if (rng() % 2 == 0) {
        const DirectoryLookup r = dir.lookup(node, obj);
        ASSERT_TRUE(r.resolved);
        ASSERT_EQ(r.host, dir.current_host(obj));
      } else {
        (void)dir.record_move(obj, node);
      }
    }
    EXPECT_EQ(dir.stats().stale_hits, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Cross-backend parity: the same office-style workflow on a 100-node live
// system must record the identical logical trace under Central and Sharded
// directories — sharding changes where lookups go, never what the protocol
// decides.
// ---------------------------------------------------------------------------

runtime::ObjectFactory doc_factory() {
  return [](std::string name, runtime::ObjectState state) {
    auto obj = std::make_unique<runtime::LiveObject>(std::move(name),
                                                     std::move(state));
    obj->register_method(
        "edit", [](runtime::ObjectState& self, const std::string& text) {
          self.fields["body"] += text;
          return self.fields["body"];
        });
    obj->register_method(
        "read", [](runtime::ObjectState& self, const std::string&) {
          return self.fields["body"];
        });
    return obj;
  };
}

runtime::ObjectState doc_state() {
  runtime::ObjectState s;
  s.type = "document";
  s.fields["body"] = "";
  return s;
}

std::vector<trace::Event> run_office_workflow(
    DirectoryKind kind,
    runtime::TransportKind transport = runtime::TransportKind::InProc) {
  trace::TraceLog log;
  runtime::LiveSystem::Options opts;
  opts.nodes = 100;
  opts.trace = &log;
  opts.directory = kind;
  opts.transport = transport;
  runtime::LiveSystem sys{opts};
  sys.register_type("document", doc_factory());
  sys.start();

  for (int i = 0; i < 20; ++i) {
    const std::string name = "doc" + std::to_string(i);
    EXPECT_TRUE(sys.create(name, doc_state(), (i * 7) % 100));
  }
  for (int i = 0; i + 1 < 20; i += 2) {
    sys.attach("doc" + std::to_string(i), "doc" + std::to_string(i + 1),
               "office");
  }
  sys.fix("doc0");
  for (int i = 0; i < 20; ++i) {
    (void)sys.invoke("doc" + std::to_string(i), "edit", "a");
  }
  auto token = sys.move("doc2", 50, "office");
  (void)sys.invoke("doc2", "edit", "b");
  sys.end(token);
  auto visiting = sys.visit("doc4", 60, "office");
  (void)sys.invoke("doc4", "read", "");
  sys.end(visiting);
  (void)sys.migrate("doc6", 70);
  sys.unfix("doc0");
  (void)sys.migrate("doc0", 80);
  for (int i = 0; i < 20; ++i) {
    const auto r = sys.invoke("doc" + std::to_string(i), "read", "");
    EXPECT_TRUE(r.ok) << "doc" << i << " under " << objsys::to_string(kind);
  }
  sys.stop();
  return log.events();
}

TEST(ShardedDirectoryParityTest, CentralAndShardedTracesMatchAt100Nodes) {
  const auto central = run_office_workflow(DirectoryKind::Central);
  const auto sharded = run_office_workflow(DirectoryKind::Sharded);
  ASSERT_EQ(central.size(), sharded.size());
  ASSERT_GT(central.size(), 0u);
  for (std::size_t i = 0; i < central.size(); ++i) {
    EXPECT_EQ(central[i].time, sharded[i].time) << "event " << i;
    EXPECT_EQ(central[i].kind, sharded[i].kind) << "event " << i;
    EXPECT_EQ(central[i].object, sharded[i].object) << "event " << i;
    EXPECT_EQ(central[i].node, sharded[i].node) << "event " << i;
    EXPECT_EQ(central[i].block, sharded[i].block) << "event " << i;
  }
}

// The same parity contract must survive the wire: Central vs Sharded over
// the event-loop TCP backend (100 nodes = 100 NodeServers plus the client
// transport's 100 links, all on one shared loop) produces the identical
// protocol trace — and the identical trace to the in-process run, so the
// directory choice and the transport choice are independently invisible.
TEST(ShardedDirectoryParityTest, CentralAndShardedTracesMatchOverAsyncTcp) {
  const auto inproc = run_office_workflow(DirectoryKind::Central);
  const auto central = run_office_workflow(DirectoryKind::Central,
                                           runtime::TransportKind::AsyncTcp);
  const auto sharded = run_office_workflow(DirectoryKind::Sharded,
                                           runtime::TransportKind::AsyncTcp);
  ASSERT_EQ(central.size(), sharded.size());
  ASSERT_EQ(central.size(), inproc.size());
  ASSERT_GT(central.size(), 0u);
  for (std::size_t i = 0; i < central.size(); ++i) {
    EXPECT_EQ(central[i].time, sharded[i].time) << "event " << i;
    EXPECT_EQ(central[i].kind, sharded[i].kind) << "event " << i;
    EXPECT_EQ(central[i].object, sharded[i].object) << "event " << i;
    EXPECT_EQ(central[i].node, sharded[i].node) << "event " << i;
    EXPECT_EQ(central[i].block, sharded[i].block) << "event " << i;
    EXPECT_EQ(central[i].kind, inproc[i].kind) << "event " << i;
    EXPECT_EQ(central[i].object, inproc[i].object) << "event " << i;
    EXPECT_EQ(central[i].node, inproc[i].node) << "event " << i;
  }
}

}  // namespace
}  // namespace omig
