// Property fuzz for the LocationService history cursors (Forwarding
// scheme): random migration histories interleaved with resolves from
// random nodes, 32 seeds. Invariants: a resolve chases at most the
// migrations it has not yet seen (cursors are monotonic — no forwarding
// cycle can re-charge old hops), an immediate second resolve is free (the
// cursor caught up: no lookup miss), and after quiescence every node
// resolves every object for free.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "objsys/location_service.hpp"

namespace omig::objsys {
namespace {

struct Fixture {
  explicit Fixture(std::size_t nodes)
      : mesh{nodes}, latency{mesh, net::LatencyMode::Uniform, 1.0},
        registry{engine, nodes}, rng{99, 1} {}
  sim::Engine engine;
  net::FullMesh mesh;
  net::LatencyModel latency;
  ObjectRegistry registry;
  sim::Rng rng;
};

sim::Task resolve_once(Fixture& f, LocationService& svc, NodeId from,
                       ObjectId obj, double& duration) {
  const sim::SimTime start = f.engine.now();
  co_await svc.resolve(from, obj);
  duration = f.engine.now() - start;
}

/// Runs one resolve to completion and returns (messages charged, duration).
std::pair<std::uint64_t, double> resolve_cost(Fixture& f,
                                              LocationService& svc,
                                              NodeId from, ObjectId obj) {
  const std::uint64_t before = svc.messages();
  double duration = -1.0;
  f.engine.spawn(resolve_once(f, svc, from, obj, duration));
  f.engine.run();
  EXPECT_GE(duration, 0.0);  // the coroutine completed — no cycle, no hang
  return {svc.messages() - before, duration};
}

TEST(LocationFuzzTest, ForwardingCursorsStayMonotoneAcrossRandomHistories) {
  constexpr std::uint64_t kSeeds = 32;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng{seed};
    const std::size_t nodes = 3 + rng() % 8;
    Fixture f{nodes};
    LocationService svc{f.engine, f.registry, f.latency, f.rng,
                        LocationScheme::Forwarding};

    const std::uint32_t objects = 1 + static_cast<std::uint32_t>(rng() % 6);
    std::vector<ObjectId> ids;
    for (std::uint32_t i = 0; i < objects; ++i) {
      ids.push_back(f.registry.create(
          "o" + std::to_string(i),
          NodeId{static_cast<NodeId::value_type>(rng() % nodes)}));
    }

    for (int round = 0; round < 24; ++round) {
      // A burst of migrations extends some histories...
      const int moves = static_cast<int>(rng() % 4);
      for (int m = 0; m < moves; ++m) {
        const ObjectId obj = ids[rng() % ids.size()];
        f.registry.begin_transit(obj);
        f.registry.finish_transit(
            obj, NodeId{static_cast<NodeId::value_type>(rng() % nodes)});
      }
      // ...then a random node resolves a random object.
      const ObjectId obj = ids[rng() % ids.size()];
      const NodeId from{static_cast<NodeId::value_type>(rng() % nodes)};
      const std::size_t history = f.registry.history(obj).size();
      const auto [msgs, duration] = resolve_cost(f, svc, from, obj);
      // The chase is bounded by the entire history — a cycle would charge
      // more hops than migrations ever happened.
      ASSERT_LT(msgs, history) << "seed " << seed << " round " << round;
      // The cursor advanced to the head: resolving again is free.
      const auto [again, dup_duration] = resolve_cost(f, svc, from, obj);
      ASSERT_EQ(again, 0u) << "seed " << seed << " round " << round;
      ASSERT_DOUBLE_EQ(dup_duration, 0.0);
    }

    // Quiescence: everyone resolves everything once; afterwards every
    // cursor is at head, so a full re-sweep charges zero messages.
    for (std::size_t n = 0; n < nodes; ++n) {
      for (const ObjectId obj : ids) {
        (void)resolve_cost(f, svc, NodeId{static_cast<NodeId::value_type>(n)},
                           obj);
      }
    }
    const std::uint64_t settled = svc.messages();
    for (std::size_t n = 0; n < nodes; ++n) {
      for (const ObjectId obj : ids) {
        (void)resolve_cost(f, svc, NodeId{static_cast<NodeId::value_type>(n)},
                           obj);
      }
    }
    EXPECT_EQ(svc.messages(), settled) << "seed " << seed;
  }
}

TEST(LocationFuzzTest, ShardedModelMatchesRegistryUnderRandomTraffic) {
  // The sharded directory inside a LocationService must track the
  // registry: after any interleaving of migrations and resolves, the
  // model's authoritative host equals the registry's location.
  constexpr std::uint64_t kSeeds = 32;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng{seed};
    const std::size_t nodes = 3 + rng() % 8;
    Fixture f{nodes};
    LocationService svc{f.engine, f.registry, f.latency, f.rng,
                        LocationScheme::None};
    ShardedDirectoryOptions opts;
    opts.strategy = static_cast<ConsistencyStrategy>(seed % 3);
    svc.enable_sharded(opts);
    ASSERT_EQ(svc.directory(), DirectoryKind::Sharded);

    std::vector<ObjectId> ids;
    for (std::uint32_t i = 0; i < 4; ++i) {
      ids.push_back(f.registry.create(
          "s" + std::to_string(i),
          NodeId{static_cast<NodeId::value_type>(rng() % nodes)}));
    }
    for (int op = 0; op < 60; ++op) {
      const ObjectId obj = ids[rng() % ids.size()];
      if (rng() % 2 == 0) {
        const NodeId dest{static_cast<NodeId::value_type>(rng() % nodes)};
        const NodeId from = f.registry.location(obj);
        f.registry.begin_transit(obj);
        f.registry.finish_transit(obj, dest);
        (void)svc.migration_overhead(obj, from, dest, true);
      } else {
        const NodeId from{static_cast<NodeId::value_type>(rng() % nodes)};
        (void)resolve_cost(f, svc, from, obj);
      }
    }
    ASSERT_NE(svc.sharded(), nullptr);
    for (const ObjectId obj : ids) {
      if (!svc.sharded()->contains(obj)) continue;  // never touched
      EXPECT_EQ(svc.sharded()->current_host(obj), f.registry.location(obj))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace omig::objsys
