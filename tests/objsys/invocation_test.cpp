#include "objsys/invocation.hpp"

#include <gtest/gtest.h>

namespace omig::objsys {
namespace {

struct Fixture {
  sim::Engine engine;
  net::FullMesh mesh{4};
  net::LatencyModel latency{mesh, net::LatencyMode::Uniform, 1.0};
  ObjectRegistry registry{engine, 4};
  sim::Rng rng{42, 0};
  Invoker invoker{engine, registry, latency, rng};
};

sim::Task call_once(Fixture& f, NodeId from, ObjectId obj, double& duration) {
  const sim::SimTime start = f.engine.now();
  co_await f.invoker.invoke(from, obj);
  duration = f.engine.now() - start;
}

TEST(InvocationTest, LocalCallIsFree) {
  Fixture f;
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double duration = -1.0;
  f.engine.spawn(call_once(f, NodeId{1}, obj, duration));
  f.engine.run();
  EXPECT_DOUBLE_EQ(duration, 0.0);
  EXPECT_EQ(f.invoker.invocations(), 1u);
  EXPECT_EQ(f.invoker.remote_invocations(), 0u);
}

TEST(InvocationTest, RemoteCallTakesTwoMessages) {
  Fixture f;
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double duration = -1.0;
  f.engine.spawn(call_once(f, NodeId{0}, obj, duration));
  f.engine.run();
  EXPECT_GT(duration, 0.0);
  EXPECT_EQ(f.invoker.remote_invocations(), 1u);
}

sim::Task call_many(Fixture& f, NodeId from, ObjectId obj, int n,
                    double& total) {
  for (int i = 0; i < n; ++i) {
    const sim::SimTime start = f.engine.now();
    co_await f.invoker.invoke(from, obj);
    total += f.engine.now() - start;
  }
}

TEST(InvocationTest, RemoteCallMeanIsTwo) {
  Fixture f;
  const ObjectId obj = f.registry.create("o", NodeId{1});
  double total = 0.0;
  const int n = 100'000;
  f.engine.spawn(call_many(f, NodeId{0}, obj, n, total));
  f.engine.run();
  EXPECT_NEAR(total / n, 2.0, 0.03);
}

sim::Task release_later(Fixture& f, ObjectId obj, NodeId dest,
                        sim::SimTime at) {
  co_await f.engine.delay(at);
  f.registry.finish_transit(obj, dest);
}

TEST(InvocationTest, CallBlocksDuringTransit) {
  Fixture f;
  const ObjectId obj = f.registry.create("o", NodeId{1});
  f.registry.begin_transit(obj);
  double duration = -1.0;
  // The call starts at t=0 but the object only lands (at the caller's own
  // node) at t=9 — so the measured duration is the blocked wait.
  f.engine.spawn(call_once(f, NodeId{0}, obj, duration));
  f.engine.spawn(release_later(f, obj, NodeId{0}, 9.0));
  f.engine.run();
  EXPECT_DOUBLE_EQ(duration, 9.0);
  EXPECT_EQ(f.invoker.blocked_invocations(), 1u);
}

TEST(InvocationTest, BlockedCallSeesNewLocation) {
  Fixture f;
  const ObjectId obj = f.registry.create("o", NodeId{1});
  f.registry.begin_transit(obj);
  double duration = -1.0;
  f.engine.spawn(call_once(f, NodeId{0}, obj, duration));
  f.engine.spawn(release_later(f, obj, NodeId{2}, 4.0));
  f.engine.run();
  // 4.0 of blocking plus a remote round trip to node 2.
  EXPECT_GT(duration, 4.0);
}

sim::Task nested_call(Fixture& f, ObjectId from, ObjectId to,
                      double& duration) {
  const sim::SimTime start = f.engine.now();
  co_await f.invoker.invoke_from_object(from, to);
  duration = f.engine.now() - start;
}

TEST(InvocationTest, ObjectToObjectUsesCallerLocation) {
  Fixture f;
  const ObjectId a = f.registry.create("a", NodeId{2});
  const ObjectId b = f.registry.create("b", NodeId{2});
  double duration = -1.0;
  f.engine.spawn(nested_call(f, a, b, duration));
  f.engine.run();
  EXPECT_DOUBLE_EQ(duration, 0.0);  // collocated: free
}

TEST(InvocationTest, ObjectCallerWaitsForOwnTransit) {
  Fixture f;
  const ObjectId a = f.registry.create("a", NodeId{2});
  const ObjectId b = f.registry.create("b", NodeId{0});
  f.registry.begin_transit(a);
  double duration = -1.0;
  f.engine.spawn(nested_call(f, a, b, duration));
  f.engine.spawn(release_later(f, a, NodeId{0}, 5.0));
  f.engine.run();
  // a lands next to b at t=5; the call is then local.
  EXPECT_DOUBLE_EQ(duration, 5.0);
}

}  // namespace
}  // namespace omig::objsys
