// Immutable ("static") objects: "moving a static object simply creates a
// copy" (paper Section 1).
#include <gtest/gtest.h>

#include "objsys/invocation.hpp"
#include "util/assert.hpp"

namespace omig::objsys {
namespace {

struct Fixture {
  sim::Engine engine;
  net::FullMesh mesh{4};
  net::LatencyModel latency{mesh, net::LatencyMode::Fixed, 1.0};
  ObjectRegistry registry{engine, 4};
  sim::Rng rng{31, 0};
  Invoker invoker{engine, registry, latency, rng};
};

TEST(ReplicationTest, PrimaryCountsAsReplica) {
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1}, 1.0, true, true);
  EXPECT_TRUE(f.registry.has_replica(o, NodeId{1}));
  EXPECT_FALSE(f.registry.has_replica(o, NodeId{0}));
  EXPECT_TRUE(f.registry.replicas(o).empty());
}

TEST(ReplicationTest, AddReplicaIsIdempotent) {
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1}, 1.0, true, true);
  f.registry.add_replica(o, NodeId{2});
  f.registry.add_replica(o, NodeId{2});
  f.registry.add_replica(o, NodeId{1});  // primary: no-op
  EXPECT_EQ(f.registry.replicas(o).size(), 1u);
  EXPECT_EQ(f.registry.replications(), 1u);
  EXPECT_TRUE(f.registry.has_replica(o, NodeId{2}));
}

TEST(ReplicationTest, MutableReplicasAreDroppedOnDemand) {
  // Mutable objects may carry read replicas (Section-5 outlook); they are
  // invalidated wholesale.
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1});
  f.registry.add_replica(o, NodeId{2});
  f.registry.add_replica(o, NodeId{3});
  EXPECT_EQ(f.registry.replicas(o).size(), 2u);
  EXPECT_EQ(f.registry.drop_replicas(o), 2u);
  EXPECT_TRUE(f.registry.replicas(o).empty());
  EXPECT_EQ(f.registry.invalidations(), 2u);
}

TEST(ReplicationTest, MigrationInvalidatesMutableReplicas) {
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1});
  f.registry.add_replica(o, NodeId{2});
  f.registry.begin_transit(o);
  f.registry.finish_transit(o, NodeId{3});
  EXPECT_TRUE(f.registry.replicas(o).empty());
  EXPECT_EQ(f.registry.invalidations(), 1u);
}

TEST(ReplicationTest, ImmutableObjectsNeverTransit) {
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1}, 1.0, true, true);
  EXPECT_THROW(f.registry.begin_transit(o), AssertionError);
}

sim::Task call_once(Fixture& f, NodeId from, ObjectId obj, double& dur,
                    InvocationKind kind = InvocationKind::Write) {
  const sim::SimTime t0 = f.engine.now();
  co_await f.invoker.invoke(from, obj, kind);
  dur = f.engine.now() - t0;
}

TEST(ReplicationTest, LocalCopyServesCallsForFree) {
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1}, 1.0, true, true);
  double remote = -1.0, local = -1.0;
  f.engine.spawn(call_once(f, NodeId{3}, o, remote));
  f.engine.run();
  EXPECT_DOUBLE_EQ(remote, 2.0);  // no copy yet: remote round trip
  f.registry.add_replica(o, NodeId{3});
  f.engine.spawn(call_once(f, NodeId{3}, o, local));
  f.engine.run();
  EXPECT_DOUBLE_EQ(local, 0.0);  // copy serves the call
}

TEST(ReplicationTest, ReplicateOnReadInstallsACopy) {
  Fixture f;
  f.invoker.set_replication(ReplicationMode::ReplicateOnRead, 6.0);
  const ObjectId o = f.registry.create("o", NodeId{1});
  double first = -1.0, second = -1.0;
  f.engine.spawn(call_once(f, NodeId{3}, o, first, InvocationKind::Read));
  f.engine.run();
  EXPECT_DOUBLE_EQ(first, 8.0);  // round trip 2 + state transfer 6
  EXPECT_TRUE(f.registry.has_replica(o, NodeId{3}));
  f.engine.spawn(call_once(f, NodeId{3}, o, second, InvocationKind::Read));
  f.engine.run();
  EXPECT_DOUBLE_EQ(second, 0.0);  // served by the copy
  EXPECT_EQ(f.invoker.replica_hits(), 1u);
}

TEST(ReplicationTest, WriteInvalidatesReadReplicas) {
  Fixture f;
  f.invoker.set_replication(ReplicationMode::ReplicateOnRead, 6.0);
  const ObjectId o = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(call_once(f, NodeId{3}, o, d, InvocationKind::Read));
  f.engine.run();
  ASSERT_TRUE(f.registry.has_replica(o, NodeId{3}));
  f.engine.spawn(call_once(f, NodeId{2}, o, d, InvocationKind::Write));
  f.engine.run();
  EXPECT_FALSE(f.registry.has_replica(o, NodeId{3}));
  EXPECT_EQ(f.invoker.invalidation_messages(), 1u);
  // The next read pays the full price again.
  f.engine.spawn(call_once(f, NodeId{3}, o, d, InvocationKind::Read));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 8.0);
}

TEST(ReplicationTest, WritesNeverUseReplicas) {
  Fixture f;
  const ObjectId o = f.registry.create("o", NodeId{1});
  f.registry.add_replica(o, NodeId{3});
  double d = -1.0;
  f.engine.spawn(call_once(f, NodeId{3}, o, d, InvocationKind::Write));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 2.0);  // write goes to the primary, remote
}

TEST(ReplicationTest, NoReplicationModeNeverCopiesMutables) {
  Fixture f;  // default: ReplicationMode::None
  const ObjectId o = f.registry.create("o", NodeId{1});
  double d = -1.0;
  f.engine.spawn(call_once(f, NodeId{3}, o, d, InvocationKind::Read));
  f.engine.run();
  EXPECT_DOUBLE_EQ(d, 2.0);
  EXPECT_FALSE(f.registry.has_replica(o, NodeId{3}));
}

}  // namespace
}  // namespace omig::objsys
