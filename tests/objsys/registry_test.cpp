#include "objsys/registry.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::objsys {
namespace {

class RegistryTest : public ::testing::Test {
protected:
  sim::Engine engine;
  ObjectRegistry registry{engine, 4};
};

TEST_F(RegistryTest, CreatePlacesAtHome) {
  const ObjectId id = registry.create("a", NodeId{2});
  EXPECT_EQ(registry.location(id), NodeId{2});
  EXPECT_TRUE(registry.is_resident(id, NodeId{2}));
  EXPECT_FALSE(registry.is_resident(id, NodeId{0}));
  EXPECT_EQ(registry.descriptor(id).name, "a");
  EXPECT_EQ(registry.object_count(), 1u);
}

TEST_F(RegistryTest, IdsAreSequential) {
  const ObjectId a = registry.create("a", NodeId{0});
  const ObjectId b = registry.create("b", NodeId{1});
  EXPECT_NE(a, b);
  EXPECT_EQ(b.value(), a.value() + 1);
}

TEST_F(RegistryTest, HomeOutOfRangeRejected) {
  EXPECT_THROW(registry.create("x", NodeId{4}), AssertionError);
  EXPECT_THROW(registry.create("x", NodeId::invalid()), AssertionError);
}

TEST_F(RegistryTest, FixUnfixRefix) {
  const ObjectId id = registry.create("a", NodeId{0});
  EXPECT_FALSE(registry.is_fixed(id));
  EXPECT_TRUE(registry.is_movable(id));
  registry.fix(id);
  EXPECT_TRUE(registry.is_fixed(id));
  EXPECT_FALSE(registry.is_movable(id));
  registry.unfix(id);
  EXPECT_TRUE(registry.is_movable(id));
  registry.refix(id);
  EXPECT_TRUE(registry.is_fixed(id));
}

TEST_F(RegistryTest, SedentaryTypeNeverMovable) {
  const ObjectId id = registry.create("pinned", NodeId{0}, 1.0,
                                      /*mobile=*/false);
  EXPECT_FALSE(registry.is_movable(id));
  EXPECT_THROW(registry.begin_transit(id), AssertionError);
}

TEST_F(RegistryTest, TransitLifecycle) {
  const ObjectId id = registry.create("a", NodeId{0});
  EXPECT_FALSE(registry.in_transit(id));
  registry.begin_transit(id);
  EXPECT_TRUE(registry.in_transit(id));
  EXPECT_FALSE(registry.is_movable(id));
  EXPECT_FALSE(registry.transit_gate(id).is_open());
  registry.finish_transit(id, NodeId{3});
  EXPECT_FALSE(registry.in_transit(id));
  EXPECT_EQ(registry.location(id), NodeId{3});
  EXPECT_TRUE(registry.transit_gate(id).is_open());
  EXPECT_EQ(registry.migrations(), 1u);
}

TEST_F(RegistryTest, DoubleTransitRejected) {
  const ObjectId id = registry.create("a", NodeId{0});
  registry.begin_transit(id);
  EXPECT_THROW(registry.begin_transit(id), AssertionError);
}

TEST_F(RegistryTest, FinishWithoutBeginRejected) {
  const ObjectId id = registry.create("a", NodeId{0});
  EXPECT_THROW(registry.finish_transit(id, NodeId{1}), AssertionError);
}

TEST_F(RegistryTest, TransitToSameNodeCountsNoMigration) {
  const ObjectId id = registry.create("a", NodeId{0});
  registry.begin_transit(id);
  registry.finish_transit(id, NodeId{0});
  EXPECT_EQ(registry.migrations(), 0u);
  EXPECT_EQ(registry.history(id).size(), 1u);
}

TEST_F(RegistryTest, HistoryRecordsPath) {
  const ObjectId id = registry.create("a", NodeId{0});
  registry.begin_transit(id);
  registry.finish_transit(id, NodeId{1});
  registry.begin_transit(id);
  registry.finish_transit(id, NodeId{2});
  const auto& hist = registry.history(id);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], NodeId{0});
  EXPECT_EQ(hist[1], NodeId{1});
  EXPECT_EQ(hist[2], NodeId{2});
}

TEST_F(RegistryTest, RefixInTransitRejected) {
  const ObjectId id = registry.create("a", NodeId{0});
  registry.begin_transit(id);
  EXPECT_THROW(registry.refix(id), AssertionError);
}

TEST_F(RegistryTest, UnknownIdRejected) {
  EXPECT_THROW((void)registry.location(ObjectId{9}), AssertionError);
  EXPECT_THROW((void)registry.location(ObjectId::invalid()), AssertionError);
}

}  // namespace
}  // namespace omig::objsys
