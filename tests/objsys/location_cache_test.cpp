// LocationCache: unit behaviour plus the concurrent invalidate/lookup
// race the live runtime produces (migrations invalidate while invocation
// threads resolve) — the scenario scripts/check.sh pins under TSan.
#include "objsys/location_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace omig::objsys {
namespace {

TEST(LocationCacheTest, PutGetInvalidate) {
  NamedLocationCache cache;
  EXPECT_EQ(cache.get("a"), std::nullopt);
  cache.put("a", 3, 17);
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->node, 3u);
  EXPECT_EQ(hit->stamp, 17u);
  EXPECT_TRUE(cache.invalidate("a"));
  EXPECT_FALSE(cache.invalidate("a"));  // already gone
  EXPECT_EQ(cache.get("a"), std::nullopt);
}

TEST(LocationCacheTest, PutOverwritesAndSizeTracks) {
  LocationCache cache;
  cache.put(ObjectId{1}, 0, 1);
  cache.put(ObjectId{1}, 5, 2);  // overwrite, not a second entry
  cache.put(ObjectId{2}, 7, 3);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(ObjectId{1})->node, 5u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LocationCacheTest, CountersAccount) {
  NamedLocationCache cache;
  (void)cache.get("missing");
  cache.put("x", 1, 0);
  (void)cache.get("x");
  (void)cache.get("x");
  (void)cache.invalidate("x");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(LocationCacheTest, ConcurrentInvalidateAndLookup) {
  // Readers resolve while writers migrate (put) and invalidate the same
  // small key space concurrently. The assertion is the absence of a data
  // race (TSan) plus counter coherence afterwards.
  NamedLocationCache cache;
  constexpr int kKeys = 8;
  constexpr int kOpsPerThread = 20'000;
  std::atomic<std::uint64_t> observed_gets{0};
  auto key_of = [](int i) { return "obj" + std::to_string(i % kKeys); };

  std::vector<std::thread> threads;
  for (int reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        (void)cache.get(key_of(i));
        observed_gets.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kOpsPerThread; ++i) {
      cache.put(key_of(i), static_cast<std::uint64_t>(i), 0);
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < kOpsPerThread; ++i) {
      (void)cache.invalidate(key_of(i));
      if (i % 1024 == 0) cache.clear();
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_EQ(cache.hits() + cache.misses(), observed_gets.load());
  EXPECT_LE(cache.size(), static_cast<std::size_t>(kKeys));
}

}  // namespace
}  // namespace omig::objsys
