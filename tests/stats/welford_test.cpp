#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace omig::stats {
namespace {

TEST(WelfordTest, EmptyAccumulator) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(WelfordTest, SingleValue) {
  Welford w;
  w.add(3.5);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.5);
  EXPECT_DOUBLE_EQ(w.max(), 3.5);
}

TEST(WelfordTest, KnownMeanAndVariance) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  // Sample variance with n−1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
}

TEST(WelfordTest, MergeMatchesSequential) {
  Welford all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(WelfordTest, MergeWithEmpty) {
  Welford a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  Welford b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(WelfordTest, NumericallyStableForLargeOffsets) {
  Welford w;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) w.add(x);
  EXPECT_NEAR(w.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(w.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace omig::stats
