// Statistical validation of the confidence machinery itself: across many
// independent replications, the nominal-99% batch-means interval must
// cover the true mean in (at least roughly) the advertised fraction of
// runs. Deterministic seeds keep this reproducible.
#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "stats/batch_means.hpp"

namespace omig::stats {
namespace {

TEST(CoverageTest, BatchMeansIntervalCoversTrueMean) {
  const double true_mean = 2.0;
  int covered = 0;
  const int replications = 60;
  for (int r = 0; r < replications; ++r) {
    sim::Rng rng{1000 + static_cast<std::uint64_t>(r), 0};
    BatchMeans bm{64, 32};
    for (int i = 0; i < 20'000; ++i) bm.add(rng.exponential(true_mean));
    const auto ci = bm.interval(0.99);
    if (std::abs(ci.mean - true_mean) <= ci.half_width) ++covered;
  }
  // Nominal coverage 99%; batch-means on i.i.d. data is close to nominal.
  // Allow generous slack for the finite replication count.
  EXPECT_GE(covered, replications * 90 / 100);
}

TEST(CoverageTest, RatioIntervalCoversTrueRatio) {
  // cost ~ exp(3) per call, weight = calls ~ 1..4 uniform: true per-call
  // ratio is E[sum cost]/E[weight] with cost drawn per call => ratio 3.
  int covered = 0;
  const int replications = 60;
  for (int r = 0; r < replications; ++r) {
    sim::Rng rng{5000 + static_cast<std::uint64_t>(r), 0};
    RatioBatchMeans rbm{32, 32};
    for (int i = 0; i < 8'000; ++i) {
      const auto calls = 1 + rng.uniform_int(4);
      double cost = 0.0;
      for (std::uint64_t c = 0; c < calls; ++c) cost += rng.exponential(3.0);
      rbm.add(cost, static_cast<double>(calls));
    }
    const auto ci = rbm.interval(0.99);
    if (std::abs(ci.mean - 3.0) <= ci.half_width) ++covered;
  }
  EXPECT_GE(covered, replications * 90 / 100);
}

TEST(CoverageTest, StoppingRuleDeliversRequestedPrecision) {
  // Feed observations until the rule fires, then check the achieved CI.
  StoppingRule rule;
  rule.relative_target = 0.02;
  rule.min_observations = 256;
  rule.max_observations = 2'000'000;
  sim::Rng rng{77, 0};
  RatioBatchMeans rbm{32, 64};
  while (!rule.satisfied_by(rbm)) {
    rbm.add(rng.exponential(5.0), 1.0);
  }
  const auto ci = rbm.interval(rule.level);
  EXPECT_LE(ci.relative(), rule.relative_target * 1.0001);
  EXPECT_NEAR(ci.mean, 5.0, 5.0 * 0.05);
}

}  // namespace
}  // namespace omig::stats
