#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::stats {
namespace {

TEST(HistogramTest, BinningBoundaries) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.0);   // first bin
  h.add(0.99);  // first bin
  h.add(1.0);   // second bin
  h.add(9.99);  // last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.count(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h{0.0, 1.0, 4};
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h{2.0, 4.0, 4};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(HistogramTest, QuantileOfUniformData) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{1.0, 1.0, 4}), omig::AssertionError);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), omig::AssertionError);
}

TEST(HistogramTest, QuantileRangeChecked) {
  Histogram h{0.0, 1.0, 2};
  EXPECT_THROW((void)h.quantile(-0.1), omig::AssertionError);
  EXPECT_THROW((void)h.quantile(1.1), omig::AssertionError);
}

}  // namespace
}  // namespace omig::stats
