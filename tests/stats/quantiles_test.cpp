#include "stats/quantiles.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::stats {
namespace {

TEST(QuantilesTest, NormalMedianIsZero) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
}

TEST(QuantilesTest, NormalKnownValues) {
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normal_quantile(0.84134), 0.9999, 2e-3);
}

TEST(QuantilesTest, NormalSymmetry) {
  for (double p : {0.6, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-8);
  }
}

TEST(QuantilesTest, NormalTails) {
  EXPECT_NEAR(normal_quantile(1e-6), -4.753424, 1e-4);
  EXPECT_NEAR(normal_quantile(1.0 - 1e-6), 4.753424, 1e-4);
}

TEST(QuantilesTest, NormalRejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), omig::AssertionError);
  EXPECT_THROW(normal_quantile(1.0), omig::AssertionError);
}

TEST(QuantilesTest, StudentTKnownValues) {
  // Reference values from standard t tables (two-sided 99% → p = 0.995).
  EXPECT_NEAR(student_t_quantile(0.995, 10), 3.169, 0.02);
  EXPECT_NEAR(student_t_quantile(0.995, 30), 2.750, 0.01);
  EXPECT_NEAR(student_t_quantile(0.975, 20), 2.086, 0.01);
  EXPECT_NEAR(student_t_quantile(0.975, 60), 2.000, 0.005);
}

TEST(QuantilesTest, StudentTApproachesNormal) {
  EXPECT_NEAR(student_t_quantile(0.995, 100000), normal_quantile(0.995),
              1e-6);
}

TEST(QuantilesTest, StudentTIsWiderThanNormal) {
  for (int df : {3, 5, 10, 30}) {
    EXPECT_GT(student_t_quantile(0.995, df), normal_quantile(0.995));
  }
}

TEST(QuantilesTest, StudentTRejectsBadDf) {
  EXPECT_THROW(student_t_quantile(0.995, 0), omig::AssertionError);
}

}  // namespace
}  // namespace omig::stats
