#include "stats/batch_means.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace omig::stats {
namespace {

TEST(BatchMeansTest, GrandMeanMatchesStream) {
  BatchMeans bm{8, 16};
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(i % 10);
    bm.add(x);
    sum += x;
  }
  EXPECT_NEAR(bm.grand_mean(), sum / 1000.0, 1e-9);
}

TEST(BatchMeansTest, IntervalNeedsTwoBatches) {
  BatchMeans bm{100, 16};
  bm.add(1.0);
  const auto ci = bm.interval(0.99);
  EXPECT_TRUE(std::isinf(ci.half_width));
}

TEST(BatchMeansTest, IntervalShrinksWithData) {
  sim::Rng rng{1, 0};
  BatchMeans bm{32, 32};
  for (int i = 0; i < 2'000; ++i) bm.add(rng.exponential(1.0));
  const double early = bm.interval(0.99).half_width;
  for (int i = 0; i < 60'000; ++i) bm.add(rng.exponential(1.0));
  const double late = bm.interval(0.99).half_width;
  EXPECT_LT(late, early);
}

TEST(BatchMeansTest, CoalescingKeepsBatchCountBounded) {
  BatchMeans bm{1, 8};
  for (int i = 0; i < 10'000; ++i) bm.add(1.0);
  EXPECT_LE(bm.closed_batches(), 9u);
  EXPECT_EQ(bm.observations(), 10'000u);
}

TEST(BatchMeansTest, IntervalCoversTrueMean) {
  // 99% CI over exp(3) data should contain 3 (statistical, generous seed).
  sim::Rng rng{77, 0};
  BatchMeans bm{64, 32};
  for (int i = 0; i < 100'000; ++i) bm.add(rng.exponential(3.0));
  const auto ci = bm.interval(0.99);
  EXPECT_NEAR(ci.mean, 3.0, ci.half_width * 2.0);
}

TEST(RatioBatchMeansTest, OverallRatioIsSumOverSum) {
  RatioBatchMeans rbm{4, 16};
  rbm.add(10.0, 5.0);
  rbm.add(20.0, 5.0);
  rbm.add(0.0, 10.0);
  EXPECT_DOUBLE_EQ(rbm.overall_ratio(), 30.0 / 20.0);
  EXPECT_DOUBLE_EQ(rbm.total_cost(), 30.0);
  EXPECT_DOUBLE_EQ(rbm.total_weight(), 20.0);
}

TEST(RatioBatchMeansTest, ZeroWeightObservationsCountTowardCost) {
  // Background migrations: cost with no calls attached.
  RatioBatchMeans rbm{4, 16};
  rbm.add(8.0, 4.0);
  rbm.add(2.0, 0.0);
  EXPECT_DOUBLE_EQ(rbm.overall_ratio(), 10.0 / 4.0);
}

TEST(RatioBatchMeansTest, ConstantRatioHasTinyInterval) {
  RatioBatchMeans rbm{4, 64};
  for (int i = 0; i < 1'000; ++i) rbm.add(2.0, 1.0);
  const auto ci = rbm.interval(0.99);
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_NEAR(ci.half_width, 0.0, 1e-12);
}

TEST(RatioBatchMeansTest, CoalescingPreservesOverallRatio) {
  sim::Rng rng{5, 0};
  RatioBatchMeans rbm{2, 8};
  double cost = 0.0, weight = 0.0;
  for (int i = 0; i < 5'000; ++i) {
    const double c = rng.exponential(4.0);
    const double w = 1.0 + rng.uniform_int(9);
    rbm.add(c, w);
    cost += c;
    weight += w;
  }
  EXPECT_NEAR(rbm.overall_ratio(), cost / weight, 1e-9);
  EXPECT_LE(rbm.closed_batches(), 9u);
}

TEST(StoppingRuleTest, NotSatisfiedBeforeFloors) {
  StoppingRule rule;
  rule.min_observations = 100;
  RatioBatchMeans rbm{4, 16};
  for (int i = 0; i < 50; ++i) rbm.add(2.0, 1.0);
  EXPECT_FALSE(rule.satisfied_by(rbm));
}

TEST(StoppingRuleTest, SatisfiedByTightData) {
  StoppingRule rule;
  rule.min_observations = 100;
  rule.min_batches = 4;
  RatioBatchMeans rbm{4, 64};
  for (int i = 0; i < 200; ++i) rbm.add(2.0, 1.0);
  EXPECT_TRUE(rule.satisfied_by(rbm));
}

TEST(StoppingRuleTest, CeilingForcesStop) {
  StoppingRule rule;
  rule.max_observations = 100;
  sim::Rng rng{3, 0};
  RatioBatchMeans rbm{4, 16};
  for (int i = 0; i < 100; ++i) rbm.add(rng.exponential(10.0), 1.0);
  EXPECT_TRUE(rule.satisfied_by(rbm));
}

TEST(StoppingRuleTest, NoisyDataNotSatisfiedEarly) {
  StoppingRule rule;  // 1% at 99%
  rule.min_observations = 16;
  rule.min_batches = 4;
  sim::Rng rng{9, 0};
  RatioBatchMeans rbm{4, 16};
  for (int i = 0; i < 64; ++i) rbm.add(rng.exponential(10.0), 1.0);
  EXPECT_FALSE(rule.satisfied_by(rbm));
}

}  // namespace
}  // namespace omig::stats
