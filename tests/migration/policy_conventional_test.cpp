#include <gtest/gtest.h>

#include "fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

TEST(ConventionalPolicyTest, MoveAlwaysMigrates) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  // Request message (1) + migration (6).
  EXPECT_DOUBLE_EQ(blk.migration_cost, 7.0);
  EXPECT_DOUBLE_EQ(f.engine.now(), 7.0);
}

TEST(ConventionalPolicyTest, MoveOfLocalObjectOnlyPaysNothing) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = f.registry.create("o", f.node(2));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  // Request is local (free), object already there: no cost at all.
  EXPECT_DOUBLE_EQ(blk.migration_cost, 0.0);
}

TEST(ConventionalPolicyTest, FixedObjectStays) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  f.registry.fix(o);
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_DOUBLE_EQ(blk.migration_cost, 1.0);  // just the request message
}

TEST(ConventionalPolicyTest, MoveDragsAttachmentCluster) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(1));
  f.attachments.attach(a, b);
  MoveBlock blk = f.manager.new_block(f.node(3), a);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(a), f.node(3));
  EXPECT_EQ(f.registry.location(b), f.node(3));
  EXPECT_EQ(blk.moved.size(), 2u);
}

sim::Task run_steal(MigrationFixture& f, MigrationPolicy& policy,
                    sim::SimTime at, MoveBlock& blk) {
  co_await f.engine.delay(at);
  co_await policy.begin_block(blk);
}

TEST(ConventionalPolicyTest, ConcurrentMoveStealsTheObject) {
  // The degradation scenario of Section 2.4/3.2: the second mover takes the
  // object away while the first block is still open.
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock first = f.manager.new_block(f.node(1), o);
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, first));
  f.engine.spawn(run_steal(f, *policy, 8.0, second));
  f.engine.run();
  // First block completed its move at t = 7; the second stole the object.
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_EQ(f.registry.migrations(), 2u);
}

TEST(ConventionalPolicyTest, VisitMigratesBack) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  double background = 0.0;
  f.manager.set_background_cost_sink([&](double c) { background += c; });
  MoveBlock blk = f.manager.new_block(f.node(2), o, AllianceId::invalid(),
                                      /*visit=*/true);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  policy->end_block(blk);
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));  // migrated home
  EXPECT_DOUBLE_EQ(background, 6.0);
}

TEST(ConventionalPolicyTest, KindAndName) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  EXPECT_EQ(policy->kind(), PolicyKind::Conventional);
  EXPECT_EQ(to_string(policy->kind()), "conventional");
}

}  // namespace
}  // namespace omig::migration
