#include "migration/alliance.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::migration {
namespace {

ObjectId obj(std::uint32_t v) { return ObjectId{v}; }

TEST(AllianceTest, CreateAndName) {
  AllianceRegistry reg;
  const AllianceId a = reg.create("invoice-processing");
  EXPECT_EQ(reg.count(), 1u);
  EXPECT_EQ(reg.name(a), "invoice-processing");
}

TEST(AllianceTest, MembershipLifecycle) {
  AllianceRegistry reg;
  const AllianceId a = reg.create("a");
  EXPECT_FALSE(reg.is_member(a, obj(1)));
  reg.add_member(a, obj(1));
  EXPECT_TRUE(reg.is_member(a, obj(1)));
  reg.remove_member(a, obj(1));
  EXPECT_FALSE(reg.is_member(a, obj(1)));
}

TEST(AllianceTest, AddIsIdempotent) {
  AllianceRegistry reg;
  const AllianceId a = reg.create("a");
  reg.add_member(a, obj(1));
  reg.add_member(a, obj(1));
  EXPECT_EQ(reg.members(a).size(), 1u);
}

TEST(AllianceTest, ObjectsCanJoinSeveralAlliances) {
  // "Objects can be members of different alliances" (Section 3.4).
  AllianceRegistry reg;
  const AllianceId a = reg.create("a");
  const AllianceId b = reg.create("b");
  reg.add_member(a, obj(5));
  reg.add_member(b, obj(5));
  const auto list = reg.alliances_of(obj(5));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], a);
  EXPECT_EQ(list[1], b);
}

TEST(AllianceTest, UnknownIdRejected) {
  AllianceRegistry reg;
  EXPECT_THROW(reg.members(AllianceId{3}), omig::AssertionError);
  EXPECT_THROW(reg.name(AllianceId::invalid()), omig::AssertionError);
}

TEST(AllianceTest, RemoveAbsentIsNoop) {
  AllianceRegistry reg;
  const AllianceId a = reg.create("a");
  reg.remove_member(a, obj(9));
  EXPECT_TRUE(reg.members(a).empty());
}

}  // namespace
}  // namespace omig::migration
