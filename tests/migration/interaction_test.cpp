// Cross-feature interaction tests: combinations of primitives that no
// single-module test exercises together.
#include <gtest/gtest.h>

#include "fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

sim::Task run_block_after(MigrationFixture& f, MigrationPolicy& policy,
                          sim::SimTime at, MoveBlock& blk) {
  co_await f.engine.delay(at);
  co_await policy.begin_block(blk);
}

TEST(InteractionTest, PlacementVisitLocksUntilReturnStarts) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock visit = f.manager.new_block(f.node(2), o, AllianceId::invalid(),
                                        /*visit=*/true);
  MoveBlock rival = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, visit));
  f.engine.spawn(run_block_after(f, *policy, 8.0, rival));
  f.engine.run();
  // The rival arrived mid-visit and was refused.
  EXPECT_FALSE(rival.lock_held);
  EXPECT_EQ(f.registry.location(o), f.node(2));
  policy->end_block(visit);
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));  // went home afterwards
}

TEST(InteractionTest, FixDuringBlockBlocksTheNextMover) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock first = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, first));
  f.engine.run();
  policy->end_block(first);
  f.registry.fix(o);  // operator pins it where it ended up
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, second));
  f.engine.run();
  EXPECT_FALSE(second.lock_held);
  EXPECT_EQ(f.registry.location(o), f.node(1));
  f.registry.unfix(o);
  MoveBlock third = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, third));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
}

TEST(InteractionTest, DetachMidLifeShrinksLaterClusters) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  f.attachments.attach(a, b);
  MoveBlock first = f.manager.new_block(f.node(1), a);
  f.engine.spawn(run_block(*policy, first));
  f.engine.run();
  EXPECT_EQ(first.moved.size(), 2u);
  f.attachments.detach(a, b);
  MoveBlock second = f.manager.new_block(f.node(2), a);
  f.engine.spawn(run_block(*policy, second));
  f.engine.run();
  EXPECT_EQ(second.moved.size(), 1u);
  EXPECT_EQ(f.registry.location(b), f.node(1));  // left behind after detach
}

TEST(InteractionTest, CompareNodesWithAlliancesMovesScopedClusters) {
  ManagerOptions opts;
  opts.transitivity = AttachTransitivity::ATransitive;
  MigrationFixture f{4, opts};
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId s = f.registry.create("s", f.node(0));
  const ObjectId mine = f.registry.create("mine", f.node(0));
  const ObjectId foreign = f.registry.create("foreign", f.node(0));
  const AllianceId a = f.alliances.create("a");
  f.attachments.attach(s, mine, a);
  f.attachments.attach(s, foreign, AllianceId::invalid());
  MoveBlock blk = f.manager.new_block(f.node(2), s, a);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(s), f.node(2));
  EXPECT_EQ(f.registry.location(mine), f.node(2));
  EXPECT_EQ(f.registry.location(foreign), f.node(0));
  policy->end_block(blk);
}

TEST(InteractionTest, ExclusiveAttachmentsCapPlacementClusters) {
  MigrationFixture f;  // graph mode set below
  AttachmentGraph exclusive{AttachmentGraph::Mode::Exclusive};
  // Use the fixture's manager but a fresh exclusive graph via Primitives-
  // style direct attach calls on the manager's graph: rebuild fixture-like
  // state by attaching through the fixture graph in exclusive order.
  // (Simpler: verify on the graph itself + a direct transfer.)
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  const ObjectId c = f.registry.create("c", f.node(0));
  EXPECT_TRUE(exclusive.attach(a, b));
  EXPECT_FALSE(exclusive.attach(b, c));  // b is taken
  EXPECT_EQ(exclusive.closure(a).size(), 2u);
}

TEST(InteractionTest, LoadShareVersusPlacementLocks) {
  // A placement client holds the object; a load-sharing component issues a
  // move. LoadShare ignores locks (it is conventional-style) — the object
  // is scattered away mid-block, exactly the egoistic hazard.
  MigrationFixture f{4};
  auto placement = make_policy(PolicyKind::Placement, f.manager);
  auto sharer = make_policy(PolicyKind::LoadShare, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock holder = f.manager.new_block(f.node(1), o);
  MoveBlock scatter = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*placement, holder));
  f.engine.spawn(run_block_after(f, *sharer, 8.0, scatter));
  f.engine.run();
  EXPECT_TRUE(holder.lock_held);
  // The sharer moved it despite the lock: the holder's "local" calls are
  // remote now. (Least-loaded node at that point is 2 or 3.)
  EXPECT_NE(f.registry.location(o), f.node(1));
}

TEST(InteractionTest, SizeScalesMigrationCostInsidePolicies) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId heavy = f.registry.create("heavy", f.node(0), /*size=*/3.0);
  MoveBlock blk = f.manager.new_block(f.node(2), heavy);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_DOUBLE_EQ(blk.migration_cost, 1.0 + 18.0);  // request + 3·M
}

}  // namespace
}  // namespace omig::migration
