#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

TEST(LoadShareTest, MovesToLeastLoadedNode) {
  MigrationFixture f{4};
  auto policy = make_policy(PolicyKind::LoadShare, f.manager);
  // Pile objects onto nodes 0..2; node 3 is empty.
  const ObjectId o = f.registry.create("o", f.node(0));
  f.registry.create("x1", f.node(0));
  f.registry.create("x2", f.node(1));
  f.registry.create("x3", f.node(2));
  MoveBlock blk = f.manager.new_block(f.node(1), o);  // caller on node 1
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  // The object went to the lightly used node, NOT to the caller.
  EXPECT_EQ(f.registry.location(o), f.node(3));
}

TEST(LoadShareTest, DragsAttachmentsLikeAnyMove) {
  MigrationFixture f{4};
  auto policy = make_policy(PolicyKind::LoadShare, f.manager);
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  f.attachments.attach(a, b);
  MoveBlock blk = f.manager.new_block(f.node(1), a);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(a), f.registry.location(b));
}

TEST(RegistryLoadTest, CountersTrackCreationAndMigration) {
  MigrationFixture f{3};
  EXPECT_EQ(f.registry.objects_at(f.node(0)), 0u);
  const ObjectId a = f.registry.create("a", f.node(0));
  f.registry.create("b", f.node(0));
  f.registry.create("c", f.node(2));
  EXPECT_EQ(f.registry.objects_at(f.node(0)), 2u);
  EXPECT_EQ(f.registry.objects_at(f.node(1)), 0u);
  EXPECT_EQ(f.registry.objects_at(f.node(2)), 1u);
  EXPECT_EQ(f.registry.least_loaded_node(), f.node(1));
  EXPECT_EQ(f.registry.most_loaded_node(), f.node(0));
  f.registry.begin_transit(a);
  f.registry.finish_transit(a, f.node(1));
  EXPECT_EQ(f.registry.objects_at(f.node(0)), 1u);
  EXPECT_EQ(f.registry.objects_at(f.node(1)), 1u);
}

TEST(RegistryLoadTest, TiesResolveToLowestIndex) {
  MigrationFixture f{3};
  EXPECT_EQ(f.registry.least_loaded_node(), f.node(0));
  EXPECT_EQ(f.registry.most_loaded_node(), f.node(0));
}

TEST(GoalConflictTest, LoadSharersDegradeTheCommunicationMetric) {
  // Section 2.2: the goals are incompatible — a component pursuing
  // load-sharing scatters objects away from their callers.
  auto cfg = core::fig8_config(10.0, PolicyKind::Placement);
  cfg.workload.nodes = 6;
  cfg.workload.clients = 6;
  cfg.stopping.relative_target = 0.05;
  cfg.stopping.min_observations = 600;
  cfg.stopping.max_observations = 4'000;
  const double pure = core::run_experiment(cfg).total_per_call;
  cfg.egoistic_clients = 3;
  cfg.egoistic_policy = PolicyKind::LoadShare;
  const double mixed = core::run_experiment(cfg).total_per_call;
  EXPECT_GT(mixed, pure);
}

TEST(LoadShareTest, FactoryAndName) {
  MigrationFixture f{3};
  auto policy = make_policy(PolicyKind::LoadShare, f.manager);
  EXPECT_EQ(policy->kind(), PolicyKind::LoadShare);
  EXPECT_EQ(to_string(PolicyKind::LoadShare), "load-share");
}

}  // namespace
}  // namespace omig::migration
