// Policy behaviour on immutable targets: moves copy, copies commute,
// nothing conflicts, nobody blocks.
#include <gtest/gtest.h>

#include "fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

ObjectId make_static(MigrationFixture& f, NodeId home) {
  return f.registry.create("static", home, 1.0, /*mobile=*/true,
                           /*immutable=*/true);
}

TEST(ImmutablePolicyTest, ConventionalMoveCreatesCopy) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = make_static(f, f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  // Primary stays, a copy appears at the caller.
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_TRUE(f.registry.has_replica(o, f.node(2)));
  EXPECT_EQ(f.registry.migrations(), 0u);
  EXPECT_EQ(f.registry.replications(), 1u);
  EXPECT_DOUBLE_EQ(blk.migration_cost, 7.0);  // request + copy transfer
}

TEST(ImmutablePolicyTest, PlacementNeverRefusesStaticObjects) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = make_static(f, f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  MoveBlock b = f.manager.new_block(f.node(2), o);
  // Both start immediately: copies commute, nobody is refused or locked.
  f.engine.spawn(run_block(*policy, a));
  f.engine.spawn(run_block(*policy, b));
  f.engine.run();
  EXPECT_TRUE(f.registry.has_replica(o, f.node(1)));
  EXPECT_TRUE(f.registry.has_replica(o, f.node(2)));
  EXPECT_FALSE(f.manager.is_locked(o));
  policy->end_block(a);
  policy->end_block(b);  // no lock bookkeeping to trip over
}

TEST(ImmutablePolicyTest, SecondCopyToSameNodeIsFree) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = make_static(f, f.node(0));
  MoveBlock first = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, first));
  f.engine.run();
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, second));
  f.engine.run();
  EXPECT_DOUBLE_EQ(second.migration_cost, 1.0);  // request only: copy exists
  EXPECT_EQ(f.registry.replications(), 1u);
}

TEST(ImmutablePolicyTest, CompareNodesCopiesWithoutBookkeeping) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId o = make_static(f, f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_TRUE(f.registry.has_replica(o, f.node(2)));
  EXPECT_EQ(f.manager.open_moves(o, f.node(2)), 0);  // not counted
  policy->end_block(blk);                            // must not throw
}

TEST(ImmutablePolicyTest, FixedStaticObjectIsNotCopied) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId o = make_static(f, f.node(0));
  f.registry.fix(o);
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_FALSE(f.registry.has_replica(o, f.node(2)));
  EXPECT_EQ(f.registry.replications(), 0u);
}

TEST(ImmutablePolicyTest, MixedClusterMovesAndCopies) {
  // An immutable manual attached to a mutable index: the move() relocates
  // the index and copies the manual.
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Conventional, f.manager);
  const ObjectId manual = make_static(f, f.node(0));
  const ObjectId index = f.registry.create("index", f.node(0));
  f.attachments.attach(index, manual);
  MoveBlock blk = f.manager.new_block(f.node(3), index);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(index), f.node(3));
  EXPECT_EQ(f.registry.location(manual), f.node(0));  // primary unmoved
  EXPECT_TRUE(f.registry.has_replica(manual, f.node(3)));
}

}  // namespace
}  // namespace omig::migration
