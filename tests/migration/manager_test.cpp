#include "migration/manager.hpp"

#include <gtest/gtest.h>

#include "fixture.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

TEST(ManagerTest, NewBlocksGetFreshIds) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  const MoveBlock a = f.manager.new_block(f.node(1), o);
  const MoveBlock b = f.manager.new_block(f.node(2), o);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(a.origin, f.node(1));
  EXPECT_EQ(a.target, o);
}

TEST(ManagerTest, SingleObjectTransfer) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(f.manager.transfer({o}, f.node(2), &blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  // Default M = 6 per unit size.
  EXPECT_DOUBLE_EQ(blk.migration_cost, 6.0);
  EXPECT_DOUBLE_EQ(f.engine.now(), 6.0);
  ASSERT_EQ(blk.moved.size(), 1u);
  EXPECT_EQ(blk.moved[0], o);
  EXPECT_EQ(blk.origins_of_moved[0], f.node(0));
}

TEST(ManagerTest, TransferSkipsObjectsAlreadyThere) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(2));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(f.manager.transfer({o}, f.node(2), &blk));
  f.engine.run();
  EXPECT_DOUBLE_EQ(blk.migration_cost, 0.0);
  EXPECT_TRUE(blk.moved.empty());
  EXPECT_EQ(f.manager.transfers_started(), 0u);
}

TEST(ManagerTest, TransferSkipsFixedObjects) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  f.registry.fix(o);
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(f.manager.transfer({o}, f.node(2), &blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_TRUE(blk.moved.empty());
}

TEST(ManagerTest, ParallelClusterTransferTakesMaxDuration) {
  MigrationFixture f;
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(1), /*size=*/2.0);
  MoveBlock blk = f.manager.new_block(f.node(3), a);
  f.engine.spawn(f.manager.transfer({a, b}, f.node(3), &blk));
  f.engine.run();
  // Parallel: duration = max(6, 12) = 12.
  EXPECT_DOUBLE_EQ(f.engine.now(), 12.0);
  EXPECT_DOUBLE_EQ(blk.migration_cost, 12.0);
  EXPECT_EQ(f.registry.location(a), f.node(3));
  EXPECT_EQ(f.registry.location(b), f.node(3));
}

TEST(ManagerTest, SerialClusterTransferSumsDurations) {
  ManagerOptions opts;
  opts.transfer = ClusterTransfer::Serial;
  MigrationFixture f{4, opts};
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(1));
  MoveBlock blk = f.manager.new_block(f.node(3), a);
  f.engine.spawn(f.manager.transfer({a, b}, f.node(3), &blk));
  f.engine.run();
  EXPECT_DOUBLE_EQ(f.engine.now(), 12.0);  // 6 + 6
}

sim::Task second_transfer_after(MigrationFixture& f, sim::SimTime at,
                                ObjectId o, NodeId dest, MoveBlock* blk) {
  co_await f.engine.delay(at);
  std::vector<ObjectId> objs{o};  // built outside the braced co_await (GCC)
  co_await f.manager.transfer(std::move(objs), dest, blk);
}

TEST(ManagerTest, TransferWaitsForInTransitObjects) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock first = f.manager.new_block(f.node(1), o);
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(f.manager.transfer({o}, f.node(1), &first));
  // Starts at t = 3 while the first transfer (ends t = 6) is in flight; it
  // must wait and then run from t = 6 to t = 12.
  f.engine.spawn(second_transfer_after(f, 3.0, o, f.node(2), &second));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_DOUBLE_EQ(f.engine.now(), 12.0);
  EXPECT_EQ(f.registry.migrations(), 2u);
}

TEST(ManagerTest, MigrationClusterUnrestrictedFollowsAllEdges) {
  MigrationFixture f;
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  const ObjectId c = f.registry.create("c", f.node(0));
  const AllianceId ally = f.alliances.create("x");
  f.attachments.attach(a, b, ally);
  f.attachments.attach(b, c, AllianceId::invalid());
  const auto cluster = f.manager.migration_cluster(a, ally);
  EXPECT_EQ(cluster.size(), 3u);  // unrestricted by default
}

TEST(ManagerTest, MigrationClusterATransitiveRespectsContext) {
  ManagerOptions opts;
  opts.transitivity = AttachTransitivity::ATransitive;
  MigrationFixture f{4, opts};
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  const ObjectId c = f.registry.create("c", f.node(0));
  const AllianceId ally = f.alliances.create("x");
  f.attachments.attach(a, b, ally);
  f.attachments.attach(b, c, AllianceId::invalid());
  EXPECT_EQ(f.manager.migration_cluster(a, ally).size(), 2u);
  // Without an alliance context even the A-transitive mode falls back to
  // the full closure (there is nothing to restrict to).
  EXPECT_EQ(f.manager.migration_cluster(a, AllianceId::invalid()).size(), 3u);
}

TEST(ManagerTest, LockLifecycle) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  const MoveBlock a = f.manager.new_block(f.node(1), o);
  const MoveBlock b = f.manager.new_block(f.node(2), o);
  EXPECT_FALSE(f.manager.is_locked(o));
  EXPECT_TRUE(f.manager.try_lock(o, a.id));
  EXPECT_TRUE(f.manager.is_locked(o));
  EXPECT_EQ(f.manager.lock_owner(o), a.id);
  EXPECT_TRUE(f.manager.try_lock(o, a.id));   // re-entrant for the holder
  EXPECT_FALSE(f.manager.try_lock(o, b.id));  // conflicting block refused
  f.manager.unlock(o, b.id);                  // non-owner unlock is a no-op
  EXPECT_TRUE(f.manager.is_locked(o));
  f.manager.unlock(o, a.id);
  EXPECT_FALSE(f.manager.is_locked(o));
  EXPECT_TRUE(f.manager.try_lock(o, b.id));
}

TEST(ManagerTest, OpenMoveBookkeeping) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  EXPECT_EQ(f.manager.open_moves(o, f.node(1)), 0);
  f.manager.note_move(o, f.node(1));
  f.manager.note_move(o, f.node(1));
  f.manager.note_move(o, f.node(2));
  EXPECT_EQ(f.manager.open_moves(o, f.node(1)), 2);
  EXPECT_EQ(f.manager.open_moves(o, f.node(2)), 1);
  f.manager.note_end(o, f.node(1));
  EXPECT_EQ(f.manager.open_moves(o, f.node(1)), 1);
  EXPECT_THROW(f.manager.note_end(o, f.node(3)), omig::AssertionError);
}

TEST(ManagerTest, StrictMajorityNode) {
  MigrationFixture f;  // default clear_majority_minimum = 2
  const ObjectId o = f.registry.create("o", f.node(0));
  EXPECT_FALSE(f.manager.strict_majority_node(o).valid());
  f.manager.note_move(o, f.node(1));
  // A single open move is not a *clear* majority under the default.
  EXPECT_FALSE(f.manager.strict_majority_node(o).valid());
  f.manager.note_move(o, f.node(2));
  f.manager.note_move(o, f.node(2));
  EXPECT_EQ(f.manager.strict_majority_node(o), f.node(2));
  f.manager.note_move(o, f.node(1));
  EXPECT_FALSE(f.manager.strict_majority_node(o).valid());  // tie at 2
}

TEST(ManagerTest, StrictMajorityNodeWithMinimumOne) {
  ManagerOptions opts;
  opts.clear_majority_minimum = 1;
  MigrationFixture f{4, opts};
  const ObjectId o = f.registry.create("o", f.node(0));
  f.manager.note_move(o, f.node(1));
  EXPECT_EQ(f.manager.strict_majority_node(o), f.node(1));
}

TEST(ManagerTest, BackgroundCostSinkReceivesUnattributedCost) {
  MigrationFixture f;
  double background = 0.0;
  f.manager.set_background_cost_sink([&](double c) { background += c; });
  const ObjectId o = f.registry.create("o", f.node(0));
  f.engine.spawn(f.manager.transfer({o}, f.node(1), nullptr));
  f.engine.run();
  EXPECT_DOUBLE_EQ(background, 6.0);
}

TEST(ManagerTest, ControlMessageChargesBlock) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(1), o);
  f.engine.spawn(f.manager.control_message(f.node(1), o, &blk));
  f.engine.run();
  EXPECT_DOUBLE_EQ(blk.migration_cost, 1.0);  // Fixed latency, mean 1
  EXPECT_EQ(f.manager.control_messages(), 1u);
}

TEST(ManagerTest, ControlMessageToLocalObjectIsFree) {
  MigrationFixture f;
  const ObjectId o = f.registry.create("o", f.node(1));
  MoveBlock blk = f.manager.new_block(f.node(1), o);
  f.engine.spawn(f.manager.control_message(f.node(1), o, &blk));
  f.engine.run();
  EXPECT_DOUBLE_EQ(blk.migration_cost, 0.0);
}

}  // namespace
}  // namespace omig::migration
