#include "migration/attachment.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace omig::migration {
namespace {

ObjectId obj(std::uint32_t v) { return ObjectId{v}; }
AllianceId ally(std::uint32_t v) { return AllianceId{v}; }

TEST(AttachmentTest, AttachAndQuery) {
  AttachmentGraph g;
  EXPECT_TRUE(g.attach(obj(0), obj(1)));
  EXPECT_TRUE(g.attached(obj(0), obj(1)));
  EXPECT_TRUE(g.attached(obj(1), obj(0)));
  EXPECT_FALSE(g.attached(obj(0), obj(2)));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.degree(obj(0)), 1u);
}

TEST(AttachmentTest, SelfAttachIgnored) {
  AttachmentGraph g;
  EXPECT_FALSE(g.attach(obj(0), obj(0)));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(AttachmentTest, DuplicateIgnored) {
  AttachmentGraph g;
  EXPECT_TRUE(g.attach(obj(0), obj(1)));
  EXPECT_FALSE(g.attach(obj(0), obj(1)));
  EXPECT_FALSE(g.attach(obj(1), obj(0)));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AttachmentTest, SamePairDifferentContextAllowed) {
  AttachmentGraph g;
  EXPECT_TRUE(g.attach(obj(0), obj(1), ally(0)));
  EXPECT_TRUE(g.attach(obj(0), obj(1), ally(1)));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(AttachmentTest, DetachRemovesAllContexts) {
  AttachmentGraph g;
  g.attach(obj(0), obj(1), ally(0));
  g.attach(obj(0), obj(1), ally(1));
  EXPECT_TRUE(g.detach(obj(0), obj(1)));
  EXPECT_FALSE(g.attached(obj(0), obj(1)));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.detach(obj(0), obj(1)));
}

TEST(AttachmentTest, DetachSingleContext) {
  AttachmentGraph g;
  g.attach(obj(0), obj(1), ally(0));
  g.attach(obj(0), obj(1), ally(1));
  EXPECT_TRUE(g.detach(obj(0), obj(1), ally(0)));
  EXPECT_TRUE(g.attached(obj(0), obj(1)));  // ally(1) edge remains
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.detach(obj(0), obj(1), ally(0)));
}

TEST(AttachmentTest, ClosureIsTransitive) {
  AttachmentGraph g;
  g.attach(obj(0), obj(1));
  g.attach(obj(1), obj(2));
  g.attach(obj(3), obj(4));  // separate component
  const auto c = g.closure(obj(0));
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], obj(0));
  EXPECT_EQ(c[1], obj(1));
  EXPECT_EQ(c[2], obj(2));
}

TEST(AttachmentTest, ClosureOfIsolatedObjectIsItself) {
  AttachmentGraph g;
  const auto c = g.closure(obj(7));
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], obj(7));
}

TEST(AttachmentTest, ATransitiveClosureFollowsOnlyContextEdges) {
  // The core of Section 3.4: alliance-restricted transitiveness.
  AttachmentGraph g;
  g.attach(obj(0), obj(1), ally(0));
  g.attach(obj(1), obj(2), ally(1));  // different context: not followed
  g.attach(obj(0), obj(3), ally(0));
  const auto restricted = g.closure_in(obj(0), ally(0));
  ASSERT_EQ(restricted.size(), 3u);
  EXPECT_EQ(restricted[0], obj(0));
  EXPECT_EQ(restricted[1], obj(1));
  EXPECT_EQ(restricted[2], obj(3));
  // Unrestricted closure still sees everything.
  EXPECT_EQ(g.closure(obj(0)).size(), 4u);
}

TEST(AttachmentTest, RingOverlapConnectsEverything) {
  // The Figure-7 worst case: working sets overlapping in a ring make the
  // unrestricted closure the whole population.
  AttachmentGraph g;
  const int s = 6;
  for (int i = 0; i < s; ++i) {
    // S1_i (ids 0..5) attached to S2_i and S2_{i+1} (ids 6..11).
    g.attach(obj(static_cast<std::uint32_t>(i)),
             obj(static_cast<std::uint32_t>(6 + i)),
             ally(static_cast<std::uint32_t>(i)));
    g.attach(obj(static_cast<std::uint32_t>(i)),
             obj(static_cast<std::uint32_t>(6 + (i + 1) % s)),
             ally(static_cast<std::uint32_t>(i)));
  }
  EXPECT_EQ(g.closure(obj(0)).size(), 12u);
  EXPECT_EQ(g.closure_in(obj(0), ally(0)).size(), 3u);
}

TEST(ExclusiveAttachmentTest, FirstComeFirstServed) {
  AttachmentGraph g{AttachmentGraph::Mode::Exclusive};
  EXPECT_TRUE(g.attach(obj(0), obj(1)));
  // Both endpoints are now taken: every further attachment involving them
  // is ignored (Section 3.4).
  EXPECT_FALSE(g.attach(obj(0), obj(2)));
  EXPECT_FALSE(g.attach(obj(2), obj(1)));
  EXPECT_TRUE(g.attach(obj(2), obj(3)));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(ExclusiveAttachmentTest, DetachFreesTheSlot) {
  AttachmentGraph g{AttachmentGraph::Mode::Exclusive};
  g.attach(obj(0), obj(1));
  g.detach(obj(0), obj(1));
  EXPECT_TRUE(g.attach(obj(0), obj(2)));
}

TEST(AttachmentTest, InvalidIdsRejected) {
  AttachmentGraph g;
  EXPECT_THROW(g.attach(ObjectId::invalid(), obj(1)), omig::AssertionError);
}

}  // namespace
}  // namespace omig::migration
