// Shared fixture wiring a small object system for migration tests.
#pragma once

#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "net/latency.hpp"
#include "objsys/invocation.hpp"

namespace omig::migration::testing {

/// A D-node system with deterministic (Fixed, mean 1) message latency so
/// tests can assert exact costs: one remote message = 1, migration = M.
struct MigrationFixture {
  explicit MigrationFixture(std::size_t nodes = 4, ManagerOptions opts = {},
                            net::LatencyMode mode = net::LatencyMode::Fixed)
      : mesh{nodes},
        latency{mesh, mode, 1.0},
        registry{engine, nodes},
        invoker{engine, registry, latency, net_rng},
        manager{engine,      registry,  latency, mgr_rng,
                attachments, alliances, opts} {}

  sim::Engine engine;
  net::FullMesh mesh;
  net::LatencyModel latency;
  objsys::ObjectRegistry registry;
  sim::Rng net_rng{11, 0};
  sim::Rng mgr_rng{11, 1};
  objsys::Invoker invoker;
  AttachmentGraph attachments;
  AllianceRegistry alliances;
  MigrationManager manager;

  objsys::NodeId node(std::uint32_t i) const { return objsys::NodeId{i}; }
};

}  // namespace omig::migration::testing
