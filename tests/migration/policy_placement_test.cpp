#include <gtest/gtest.h>

#include "fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

sim::Task run_block_after(MigrationFixture& f, MigrationPolicy& policy,
                          sim::SimTime at, MoveBlock& blk) {
  co_await f.engine.delay(at);
  co_await policy.begin_block(blk);
}

TEST(PlacementPolicyTest, UncontestedMoveBehavesConventionally) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_TRUE(blk.lock_held);
  EXPECT_TRUE(f.manager.is_locked(o));
  EXPECT_DOUBLE_EQ(blk.migration_cost, 7.0);  // request + M
}

TEST(PlacementPolicyTest, EndUnlocks) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  policy->end_block(blk);
  EXPECT_FALSE(f.manager.is_locked(o));
  EXPECT_FALSE(blk.lock_held);
  // The object stays where it is — placement never migrates on end.
  EXPECT_EQ(f.registry.location(o), f.node(2));
}

TEST(PlacementPolicyTest, ConflictingMoveIsRefused) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock first = f.manager.new_block(f.node(1), o);
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, first));
  f.engine.spawn(run_block_after(f, *policy, 8.0, second));
  f.engine.run();
  // The object stays with the first mover; the second got an indication.
  EXPECT_EQ(f.registry.location(o), f.node(1));
  EXPECT_TRUE(first.lock_held);
  EXPECT_FALSE(second.lock_held);
  EXPECT_TRUE(second.moved.empty());
  // Second block paid only its request message, no migration.
  EXPECT_DOUBLE_EQ(second.migration_cost, 1.0);
  EXPECT_EQ(f.registry.migrations(), 1u);
}

TEST(PlacementPolicyTest, IgnoredEndOfRefusedMoveIsHarmless) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock first = f.manager.new_block(f.node(1), o);
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, first));
  f.engine.spawn(run_block_after(f, *policy, 8.0, second));
  f.engine.run();
  policy->end_block(second);           // "the end-request is simply ignored"
  EXPECT_TRUE(f.manager.is_locked(o));  // first's lock is untouched
  policy->end_block(first);
  EXPECT_FALSE(f.manager.is_locked(o));
}

TEST(PlacementPolicyTest, NextMoverWinsAfterUnlock) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock first = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, first));
  f.engine.run();
  policy->end_block(first);
  MoveBlock second = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, second));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_TRUE(second.lock_held);
}

TEST(PlacementPolicyTest, FixedObjectRefused) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  f.registry.fix(o);
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_FALSE(blk.lock_held);
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_DOUBLE_EQ(blk.migration_cost, 1.0);  // request message only
}

TEST(PlacementPolicyTest, SedentaryTypeRefused) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId o =
      f.registry.create("o", f.node(0), /*size=*/1.0, /*mobile=*/false);
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_FALSE(blk.lock_held);
  EXPECT_EQ(f.registry.location(o), f.node(0));
}

TEST(PlacementPolicyTest, PartialClusterMoveOnContestedMembers) {
  // Two alliances share a second-layer object; the second mover moves its
  // cluster minus the member the first mover holds.
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId s1a = f.registry.create("s1a", f.node(0));
  const ObjectId s1b = f.registry.create("s1b", f.node(0));
  const ObjectId shared = f.registry.create("shared", f.node(0));
  f.attachments.attach(s1a, shared);
  f.attachments.attach(s1b, shared);
  // First mover locks the closure of s1a — which, unrestricted, includes
  // everything; use disjoint targets to exercise partial locking instead.
  MoveBlock first = f.manager.new_block(f.node(1), s1a);
  f.engine.spawn(run_block(*policy, first));
  f.engine.run();
  // Everything (s1a, s1b, shared) is at node 1 and locked by `first`.
  EXPECT_EQ(f.registry.location(s1b), f.node(1));
  // Second mover targets s1b: the primary is locked, so it is refused
  // outright — even though it "owns" s1b in its own mental model. This is
  // exactly the paper's conflicting-policies situation.
  MoveBlock second = f.manager.new_block(f.node(2), s1b);
  f.engine.spawn(run_block(*policy, second));
  f.engine.run();
  EXPECT_FALSE(second.lock_held);
  EXPECT_EQ(f.registry.location(s1b), f.node(1));
}

TEST(PlacementPolicyTest, LockedPrimaryButFreeMembersPartialMove) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Placement, f.manager);
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  const ObjectId c = f.registry.create("c", f.node(0));
  f.attachments.attach(a, b);
  // Pre-lock b under an unrelated block: a's move locks a and c only... but
  // b is in a's closure, so the move of a still happens with b left behind.
  f.attachments.attach(a, c);
  const MoveBlock other = f.manager.new_block(f.node(3), b);
  ASSERT_TRUE(f.manager.try_lock(b, other.id));
  MoveBlock blk = f.manager.new_block(f.node(2), a);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_TRUE(blk.lock_held);
  EXPECT_EQ(f.registry.location(a), f.node(2));
  EXPECT_EQ(f.registry.location(c), f.node(2));
  EXPECT_EQ(f.registry.location(b), f.node(0));  // left behind
  ASSERT_EQ(blk.locked.size(), 2u);
}

}  // namespace
}  // namespace omig::migration
