#include <gtest/gtest.h>

#include "fixture.hpp"
#include "migration/policy.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

sim::Task run_block(MigrationPolicy& policy, MoveBlock& blk) {
  co_await policy.begin_block(blk);
}

sim::Task run_block_after(MigrationFixture& f, MigrationPolicy& policy,
                          sim::SimTime at, MoveBlock& blk) {
  co_await f.engine.delay(at);
  co_await policy.begin_block(blk);
}

TEST(CompareNodesTest, FirstMoveMigrates) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  // Requester has 1 open move, host node has 0: migrate.
  EXPECT_EQ(f.registry.location(o), f.node(2));
  EXPECT_EQ(f.manager.open_moves(o, f.node(2)), 1);
}

TEST(CompareNodesTest, TiedCountsDoNotMigrate) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  MoveBlock b = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, a));
  f.engine.spawn(run_block_after(f, *policy, 8.0, b));
  f.engine.run();
  // After a's move the host (node 1) has count 1; b's node also reaches 1 —
  // not strictly greater, so the object stays.
  EXPECT_EQ(f.registry.location(o), f.node(1));
}

TEST(CompareNodesTest, MajorityStealsMidBlock) {
  // "…may lead to a migration at some point later if further move-requests
  // are issued at the same node."
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  MoveBlock b1 = f.manager.new_block(f.node(2), o);
  MoveBlock b2 = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, a));
  f.engine.spawn(run_block_after(f, *policy, 8.0, b1));
  f.engine.spawn(run_block_after(f, *policy, 9.0, b2));
  f.engine.run();
  // Node 2 reaches 2 open moves > node 1's single one: the object moved
  // even though a's block is still open.
  EXPECT_EQ(f.registry.location(o), f.node(2));
}

TEST(CompareNodesTest, EndDecrementsCounts) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  policy->end_block(blk);
  EXPECT_EQ(f.manager.open_moves(o, f.node(2)), 0);
  // No reinstantiation in the plain comparing policy: stays at node 2.
  EXPECT_EQ(f.registry.location(o), f.node(2));
}

TEST(CompareNodesTest, FixedObjectRefused) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::CompareNodes, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  f.registry.fix(o);
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  policy->end_block(blk);  // count bookkeeping must still balance
  EXPECT_EQ(f.manager.open_moves(o, f.node(2)), 0);
}

TEST(CompareReinstantiateTest, EndMigratesToMajorityHolder) {
  ManagerOptions opts;
  opts.clear_majority_minimum = 1;  // make a single open move decisive
  MigrationFixture f{4, opts};
  auto policy = make_policy(PolicyKind::CompareReinstantiate, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  // a wins the object to node 1.
  MoveBlock a = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, a));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(1));
  // One open move from node 2 (refused: tie).
  MoveBlock b = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, b));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(1));
  // a ends: node 2 now holds a clear majority (1 vs 0) → reinstantiate.
  policy->end_block(a);
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(2));
}

TEST(CompareReinstantiateTest, NoMigrationWithoutClearMajority) {
  ManagerOptions opts;
  opts.clear_majority_minimum = 1;
  MigrationFixture f{4, opts};
  auto policy = make_policy(PolicyKind::CompareReinstantiate, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, a));
  f.engine.run();
  policy->end_block(a);  // no other open moves at all
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(1));
  EXPECT_EQ(f.registry.migrations(), 1u);
}

TEST(CompareReinstantiateTest, BackgroundCostIsAccounted) {
  ManagerOptions opts;
  opts.clear_majority_minimum = 1;
  MigrationFixture f{4, opts};
  double background = 0.0;
  f.manager.set_background_cost_sink([&](double c) { background += c; });
  auto policy = make_policy(PolicyKind::CompareReinstantiate, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock a = f.manager.new_block(f.node(1), o);
  f.engine.spawn(run_block(*policy, a));
  f.engine.run();
  MoveBlock b = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, b));
  f.engine.run();
  policy->end_block(a);
  f.engine.run();
  EXPECT_DOUBLE_EQ(background, 6.0);  // the reinstantiation migration
}

TEST(SedentaryPolicyTest, NothingHappens) {
  MigrationFixture f;
  auto policy = make_policy(PolicyKind::Sedentary, f.manager);
  const ObjectId o = f.registry.create("o", f.node(0));
  MoveBlock blk = f.manager.new_block(f.node(2), o);
  f.engine.spawn(run_block(*policy, blk));
  f.engine.run();
  EXPECT_EQ(f.registry.location(o), f.node(0));
  EXPECT_DOUBLE_EQ(blk.migration_cost, 0.0);
  EXPECT_DOUBLE_EQ(f.engine.now(), 0.0);
  policy->end_block(blk);
  EXPECT_EQ(f.registry.migrations(), 0u);
}

TEST(PolicyFactoryTest, CoversAllKinds) {
  MigrationFixture f;
  for (auto kind :
       {PolicyKind::Sedentary, PolicyKind::Conventional,
        PolicyKind::Placement, PolicyKind::CompareNodes,
        PolicyKind::CompareReinstantiate, PolicyKind::LoadShare}) {
    auto policy = make_policy(kind, f.manager);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_FALSE(to_string(kind).empty());
  }
}

}  // namespace
}  // namespace omig::migration
