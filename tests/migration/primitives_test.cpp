#include "migration/primitives.hpp"

#include <gtest/gtest.h>

#include "fixture.hpp"

namespace omig::migration {
namespace {

using testing::MigrationFixture;
using objsys::NodeId;

struct PrimFixture : MigrationFixture {
  PrimFixture() : MigrationFixture{4} {
    policy = make_policy(PolicyKind::Placement, manager);
    prims.emplace(manager, *policy, invoker);
  }
  std::unique_ptr<MigrationPolicy> policy;
  std::optional<Primitives> prims;
};

TEST(PrimitivesTest, FixUnfixRefixRoundTrip) {
  PrimFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  EXPECT_FALSE(f.prims->is_fixed(o));
  f.prims->fix(o);
  EXPECT_TRUE(f.prims->is_fixed(o));
  f.prims->unfix(o);
  f.prims->refix(o);
  EXPECT_TRUE(f.prims->is_fixed(o));
}

TEST(PrimitivesTest, LocationInterrogation) {
  PrimFixture f;
  const ObjectId o = f.registry.create("o", f.node(3));
  EXPECT_EQ(f.prims->location_of(o), f.node(3));
  EXPECT_TRUE(f.prims->is_resident(o, f.node(3)));
  EXPECT_FALSE(f.prims->is_resident(o, f.node(0)));
}

TEST(PrimitivesTest, RawMigrate) {
  PrimFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  f.engine.spawn(f.prims->migrate(o, f.node(1)));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(o), f.node(1));
}

TEST(PrimitivesTest, MigrateToObjectCollocates) {
  PrimFixture f;
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(2));
  f.engine.spawn(f.prims->migrate_to_object(a, b));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(a), f.node(2));
}

TEST(PrimitivesTest, MigrateDragsAttachments) {
  PrimFixture f;
  const ObjectId a = f.registry.create("a", f.node(0));
  const ObjectId b = f.registry.create("b", f.node(0));
  EXPECT_TRUE(f.prims->attach(a, b));
  f.engine.spawn(f.prims->migrate(a, f.node(1)));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(b), f.node(1));
  EXPECT_TRUE(f.prims->detach(a, b));
  f.engine.spawn(f.prims->migrate(a, f.node(2)));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(a), f.node(2));
  EXPECT_EQ(f.prims->location_of(b), f.node(1));  // detached: stays
}

sim::Task move_call_end(PrimFixture& f, ObjectId target, NodeId me,
                        int calls, double& elapsed) {
  MoveBlock blk = f.prims->move(me, target);
  const sim::SimTime start = f.engine.now();
  co_await f.prims->begin(blk);
  for (int i = 0; i < calls; ++i) co_await f.prims->call(me, target);
  f.prims->end(blk);
  elapsed = f.engine.now() - start;
}

TEST(PrimitivesTest, MoveBlockRoundTrip) {
  PrimFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  double elapsed = -1.0;
  f.engine.spawn(move_call_end(f, o, f.node(2), 5, elapsed));
  f.engine.run();
  // Request (1) + migration (6); the 5 calls are local and free.
  EXPECT_DOUBLE_EQ(elapsed, 7.0);
  EXPECT_EQ(f.prims->location_of(o), f.node(2));
  EXPECT_FALSE(f.manager.is_locked(o));  // end released the lock
}

sim::Task visit_block(PrimFixture& f, ObjectId target, NodeId me) {
  MoveBlock blk = f.prims->visit(me, target);
  co_await f.prims->begin(blk);
  co_await f.prims->call(me, target);
  f.prims->end(blk);
}

TEST(PrimitivesTest, VisitReturnsObject) {
  PrimFixture f;
  const ObjectId o = f.registry.create("o", f.node(0));
  f.engine.spawn(visit_block(f, o, f.node(2)));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(o), f.node(0));
  EXPECT_EQ(f.registry.migrations(), 2u);  // there and back
}

sim::Task do_call_by_move(PrimFixture& f, NodeId caller, ObjectId callee,
                          ObjectId param, bool visit) {
  if (visit) {
    co_await f.prims->call_by_visit(caller, callee, param);
  } else {
    co_await f.prims->call_by_move(caller, callee, param);
  }
}

TEST(PrimitivesTest, CallByMoveBringsParameterToCallee) {
  // Figure 1: "declare assign: … move schedule" — the schedule migrates to
  // the tool for the call and stays there.
  PrimFixture f;
  const ObjectId tool = f.registry.create("tool", f.node(2));
  const ObjectId schedule = f.registry.create("schedule", f.node(0));
  f.engine.spawn(do_call_by_move(f, f.node(1), tool, schedule, false));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(schedule), f.node(2));  // with the callee
  EXPECT_EQ(f.registry.migrations(), 1u);
}

TEST(PrimitivesTest, CallByVisitReturnsParameter) {
  // Figure 1: "visit job" — the job comes to the tool and goes back.
  PrimFixture f;
  const ObjectId tool = f.registry.create("tool", f.node(2));
  const ObjectId job = f.registry.create("job", f.node(0));
  f.engine.spawn(do_call_by_move(f, f.node(1), tool, job, true));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(job), f.node(0));  // back home
  EXPECT_EQ(f.registry.migrations(), 2u);
}

TEST(PrimitivesTest, CallByMoveRespectsThePolicy) {
  // A conflicting placement lock on the parameter: the implicit move is
  // refused, the call still runs, the parameter stays put.
  PrimFixture f;
  const ObjectId tool = f.registry.create("tool", f.node(2));
  const ObjectId param = f.registry.create("param", f.node(0));
  const MoveBlock holder = f.manager.new_block(f.node(3), param);
  ASSERT_TRUE(f.manager.try_lock(param, holder.id));
  f.engine.spawn(do_call_by_move(f, f.node(1), tool, param, false));
  f.engine.run();
  EXPECT_EQ(f.prims->location_of(param), f.node(0));  // refused: stayed
  EXPECT_EQ(f.registry.migrations(), 0u);
}

TEST(PrimitivesTest, CallFromObject) {
  PrimFixture f;
  const ObjectId a = f.registry.create("a", f.node(1));
  const ObjectId b = f.registry.create("b", f.node(1));
  bool done = false;
  struct Helper {
    static sim::Task run(PrimFixture& f, ObjectId a, ObjectId b,
                         bool& done) {
      co_await f.prims->call_from_object(a, b);
      done = true;
    }
  };
  f.engine.spawn(Helper::run(f, a, b, done));
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.engine.now(), 0.0);  // collocated: free
}

}  // namespace
}  // namespace omig::migration
