// DurableStore: materialized view semantics, snapshot compaction with
// atomic install, idempotent recovery across the snapshot/WAL-truncation
// window, and the injected power-loss cases (docs/durability.md).
#include "store/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "store/env.hpp"
#include "store/snapshot.hpp"

namespace omig::store {
namespace {

class StoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    char dir_template[] = "/tmp/omig-store-test-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  [[nodiscard]] DurableStore::OpenOptions options() const {
    DurableStore::OpenOptions o;
    o.dir = dir_;
    return o;
  }

  static std::vector<std::uint8_t> blob(std::uint8_t tag) {
    return {tag, tag, tag};
  }

  std::string dir_;
};

TEST_F(StoreTest, ViewFoldsCheckpointMigrationAndEvict) {
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).durable);
  ASSERT_TRUE(store.checkpoint("b", 1, 0, blob(2)).durable);
  ASSERT_TRUE(store.migration("a", 0, 2).durable);
  ASSERT_TRUE(store.evict("b").durable);

  const auto view = store.view();
  ASSERT_EQ(view.size(), 1u);
  const StoredObject& a = view.at("a");
  EXPECT_EQ(a.node, 2u);        // migration moved it
  EXPECT_EQ(a.cursor, 1u);      // one completed move
  EXPECT_EQ(a.state, blob(1));  // state from the checkpoint
}

TEST_F(StoreTest, ReopenRecoversTheViewFromTheWal) {
  {
    DurableStore store;
    ASSERT_TRUE(store.open(options()));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);
    ASSERT_TRUE(store.migration("a", 0, 1).applied);
    ASSERT_TRUE(store.lease("a", 99).applied);  // audit only
  }
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto info = store.recovery();
  EXPECT_FALSE(info.snapshot_loaded);
  EXPECT_EQ(info.replayed_records, 3u);
  EXPECT_EQ(info.truncations, 0u);
  const auto view = store.view();
  ASSERT_TRUE(view.contains("a"));
  EXPECT_EQ(view.at("a").node, 1u);
  EXPECT_EQ(view.at("a").cursor, 1u);
}

TEST_F(StoreTest, CompactionInstallsSnapshotAndTruncatesWal) {
  {
    DurableStore store;
    ASSERT_TRUE(store.open(options()));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);
    ASSERT_TRUE(store.migration("a", 0, 1).applied);
    ASSERT_TRUE(store.compact());
    EXPECT_TRUE(file_exists(store.snapshot_path()));
    // Post-compaction appends land in the (now empty) WAL.
    ASSERT_TRUE(store.migration("a", 1, 2).applied);
  }
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto info = store.recovery();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_objects, 1u);
  EXPECT_EQ(info.replayed_records, 1u);  // only the post-compaction record
  const auto view = store.view();
  EXPECT_EQ(view.at("a").node, 2u);
  EXPECT_EQ(view.at("a").cursor, 2u);
}

// Compaction truncates the WAL, so a reopened store's log no longer
// carries the sequence history — next_seq must come from the snapshot's
// last_seq, not the (empty) WAL. If sequence numbers restarted at 1, the
// next incarnation's acked records would sit at or below the snapshot's
// coverage and the `seq <= covered` replay filter would discard them on
// the following recovery: open → append → compact → close → open →
// append (acked) → kill → open must recover the second-incarnation
// records.
TEST_F(StoreTest, SequenceNumbersStayMonotonicAcrossCompactedReopen) {
  {
    DurableStore store;
    ASSERT_TRUE(store.open(options()));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).durable);  // seq 1
    ASSERT_TRUE(store.compact());  // snapshot last_seq=1, WAL now empty
  }
  // Second incarnation: one acked append, then an injected power loss.
  fault::FaultPlan plan;
  plan.wal_kills.push_back(fault::WalKill{5, 1, /*torn=*/false});
  fault::FaultInjector injector{plan};
  {
    auto opts = options();
    opts.injector = &injector;
    opts.node = 5;
    DurableStore store;
    ASSERT_TRUE(store.open(std::move(opts)));
    ASSERT_TRUE(store.migration("a", 0, 1).durable);  // acked — must survive
    EXPECT_FALSE(store.checkpoint("b", 0, 0, blob(2)).applied);  // killed
    EXPECT_TRUE(store.dead());
  }
  // Third incarnation: the acked migration replays — its seq is above the
  // snapshot's coverage, so the skip filter must not swallow it.
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto info = store.recovery();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_GE(info.replayed_records, 1u);
  const auto view = store.view();
  ASSERT_TRUE(view.contains("a"));
  EXPECT_EQ(view.at("a").node, 1u);    // the migration was applied...
  EXPECT_EQ(view.at("a").cursor, 1u);  // ...exactly once
  EXPECT_EQ(view.at("a").state, blob(1));
}

TEST_F(StoreTest, AutoCompactionKicksInAtTheConfiguredCadence) {
  auto opts = options();
  opts.compact_every = 3;
  DurableStore store;
  ASSERT_TRUE(store.open(std::move(opts)));
  ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);
  ASSERT_TRUE(store.migration("a", 0, 1).applied);
  EXPECT_FALSE(file_exists(store.snapshot_path()));
  ASSERT_TRUE(store.migration("a", 1, 0).applied);  // third append compacts
  EXPECT_TRUE(file_exists(store.snapshot_path()));
}

// A crash can land between snapshot install and WAL truncation, leaving a
// WAL whose records the snapshot already covers. Replay must skip them —
// otherwise a migration record replayed twice double-advances the cursor.
TEST_F(StoreTest, RecoveryIsIdempotentAcrossTheSnapshotInstallWindow) {
  std::string snapshot_path;
  {
    DurableStore store;
    ASSERT_TRUE(store.open(options()));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);  // seq 1
    ASSERT_TRUE(store.migration("a", 0, 1).applied);            // seq 2
    ASSERT_TRUE(store.migration("a", 1, 2).applied);            // seq 3
    snapshot_path = store.snapshot_path();
  }
  // Hand-install a snapshot covering seq 1..2 WITHOUT truncating the WAL —
  // exactly the on-disk image a crash in that window leaves behind.
  Snapshot snap;
  snap.last_seq = 2;
  snap.objects["a"] = StoredObject{1, 1, blob(1)};
  ASSERT_TRUE(install_snapshot(snapshot_path, snap));

  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto info = store.recovery();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.replayed_records, 1u);  // only seq 3; 1..2 were skipped
  const auto view = store.view();
  EXPECT_EQ(view.at("a").node, 2u);
  EXPECT_EQ(view.at("a").cursor, 2u);  // NOT 3 — no double apply
}

TEST_F(StoreTest, CorruptSnapshotIsIgnoredAndWalAloneRecovers) {
  {
    DurableStore store;
    ASSERT_TRUE(store.open(options()));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);
    ASSERT_TRUE(store.compact());
    ASSERT_TRUE(store.migration("a", 0, 1).applied);
  }
  // Flip a byte inside the snapshot: its whole-file CRC must reject it.
  const std::string snapshot_path = dir_ + "/snapshot.bin";
  auto bytes = read_file(snapshot_path);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] ^= 0x01;
  {
    std::ofstream out{snapshot_path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(bytes->data()),
              static_cast<std::streamsize>(bytes->size()));
  }
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto info = store.recovery();
  EXPECT_FALSE(info.snapshot_loaded);  // treated as absent
  // The WAL after compaction holds only the migration; the checkpoint
  // record was folded into the (now unreadable) snapshot. The migration
  // still yields location knowledge — a state-less entry.
  const auto view = store.view();
  ASSERT_TRUE(view.contains("a"));
  EXPECT_EQ(view.at("a").node, 1u);
  EXPECT_TRUE(view.at("a").state.empty());
}

TEST_F(StoreTest, SnapshotRoundTripsAndRejectsTruncation) {
  Snapshot snap;
  snap.last_seq = 17;
  snap.objects["x"] = StoredObject{3, 2, blob(7)};
  snap.objects["y"] = StoredObject{0, 0, {}};
  const auto bytes = encode_snapshot(snap);
  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, snap);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        decode_snapshot(std::span{bytes.data(), len}).has_value())
        << "accepted a " << len << "-byte prefix";
  }
}

TEST_F(StoreTest, ScheduledWalKillMakesStoreDeadAndReopenRecovers) {
  fault::FaultPlan plan;
  plan.wal_kills.push_back(fault::WalKill{5, 2, /*torn=*/false});
  fault::FaultInjector injector{plan};
  auto opts = options();
  opts.injector = &injector;
  opts.node = 5;
  {
    DurableStore store;
    ASSERT_TRUE(store.open(std::move(opts)));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);
    ASSERT_TRUE(store.checkpoint("b", 0, 0, blob(2)).applied);
    // The scheduled kill fires between the write and the fsync: the store
    // is dead (in-process stand-in for SIGKILL) and the append unacked.
    const auto outcome = store.checkpoint("c", 0, 0, blob(3));
    EXPECT_FALSE(outcome.applied);
    EXPECT_TRUE(store.dead());
    EXPECT_FALSE(store.migration("a", 0, 1).applied);  // refuses writes
  }
  EXPECT_EQ(injector.counters().wal_kills.load(), 1u);
  // Reboot: the two acked records recover. The killed record was fully
  // written (just not fsynced) — with the page cache intact it may also
  // survive, but it was never acked, so either way the contract holds.
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto view = store.view();
  EXPECT_TRUE(view.contains("a"));
  EXPECT_TRUE(view.contains("b"));
}

TEST_F(StoreTest, TornKillNeverAppliesTheTornRecord) {
  fault::FaultPlan plan;
  plan.wal_kills.push_back(fault::WalKill{5, 1, /*torn=*/true});
  fault::FaultInjector injector{plan};
  auto opts = options();
  opts.injector = &injector;
  opts.node = 5;
  {
    DurableStore store;
    ASSERT_TRUE(store.open(std::move(opts)));
    ASSERT_TRUE(store.checkpoint("a", 0, 0, blob(1)).applied);
    EXPECT_FALSE(store.checkpoint("b", 0, 0, blob(2)).applied);  // torn
    EXPECT_TRUE(store.dead());
  }
  DurableStore store;
  ASSERT_TRUE(store.open(options()));
  const auto info = store.recovery();
  EXPECT_EQ(info.truncations, 1u);  // the torn tail was detected + cut
  const auto view = store.view();
  EXPECT_TRUE(view.contains("a"));
  EXPECT_FALSE(view.contains("b"));  // never applied, never will be
}

}  // namespace
}  // namespace omig::store
