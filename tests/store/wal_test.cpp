// WAL framing, strict decode, and the torn-tail fuzz: truncate or corrupt
// the log at every byte offset of the tail record and require clean
// recovery of the untouched prefix — the durability contract's "no torn
// record is ever applied" half, exhaustively.
#include "store/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "store/crc32.hpp"
#include "store/env.hpp"

namespace omig::store {
namespace {

class WalTest : public ::testing::Test {
protected:
  void SetUp() override {
    char dir_template[] = "/tmp/omig-wal-test-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  static void write_bytes(const std::string& path,
                          const std::vector<std::uint8_t>& bytes) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  static WalRecord sample(std::uint8_t i) {
    WalRecord r;
    r.kind = static_cast<RecordKind>(1 + i % 4);
    r.name = "object-" + std::to_string(i);
    r.a = 10u + i;
    r.b = 100u + i;
    if (i % 2 == 0) r.blob = {i, 1, 2, 3};
    return r;
  }

  std::string dir_;
};

TEST_F(WalTest, RecordRoundTripsThroughFrame) {
  WalRecord r = sample(3);
  r.seq = 42;
  const std::vector<std::uint8_t> frame = encode_record(r);
  // Frame = 8-byte header + payload; the CRC covers the payload.
  ASSERT_GT(frame.size(), 8u);
  const auto decoded = decode_record_payload(
      std::span{frame}.subspan(8));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
}

TEST_F(WalTest, StrictDecodeRejectsMalformedPayloads) {
  WalRecord r = sample(1);
  r.seq = 7;
  const std::vector<std::uint8_t> frame = encode_record(r);
  std::vector<std::uint8_t> payload{frame.begin() + 8, frame.end()};

  // Truncation at every inner offset rejects (never reads past the end).
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        decode_record_payload(std::span{payload.data(), len}).has_value())
        << "accepted a " << len << "-byte prefix";
  }
  // Trailing garbage rejects.
  std::vector<std::uint8_t> longer = payload;
  longer.push_back(0);
  EXPECT_FALSE(decode_record_payload(longer).has_value());
  // Unknown version and kind reject.
  std::vector<std::uint8_t> bad_version = payload;
  bad_version[0] = kWalVersion + 1;
  EXPECT_FALSE(decode_record_payload(bad_version).has_value());
  std::vector<std::uint8_t> bad_kind = payload;
  bad_kind[1] = 99;
  EXPECT_FALSE(decode_record_payload(bad_kind).has_value());
}

TEST_F(WalTest, AppendsReplayInOrderAcrossReopen) {
  const std::string wal_path = path("wal.log");
  std::vector<WalRecord> written;
  {
    Wal wal;
    ASSERT_TRUE(wal.open(wal_path, nullptr));
    for (std::uint8_t i = 0; i < 5; ++i) {
      WalRecord r = sample(i);
      const auto result = wal.append(r, /*sync=*/true);
      ASSERT_EQ(result.status, Wal::AppendStatus::Ok);
      EXPECT_TRUE(result.durable);
      EXPECT_EQ(r.seq, i + 1u);  // monotonic, assigned by the log
      written.push_back(r);
    }
  }
  Wal wal;
  std::vector<WalRecord> replayed;
  ASSERT_TRUE(
      wal.open(wal_path, [&](const WalRecord& r) { replayed.push_back(r); }));
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(wal.recovery().records, 5u);
  EXPECT_EQ(wal.recovery().truncations, 0u);
  EXPECT_EQ(wal.next_seq(), 6u);
}

// The fuzz matrix: a 5-record log whose tail record is cut at EVERY byte
// boundary. Each cut must recover exactly the 4-record prefix, count one
// truncation, and leave the log appendable.
TEST_F(WalTest, TornTailTruncatedAtEveryByteRecoversPrefix) {
  const std::string base_path = path("base.log");
  std::uint64_t prefix_end = 0;
  {
    Wal wal;
    ASSERT_TRUE(wal.open(base_path, nullptr));
    for (std::uint8_t i = 0; i < 5; ++i) {
      WalRecord r = sample(i);
      ASSERT_EQ(wal.append(r, true).status, Wal::AppendStatus::Ok);
      if (i == 3) prefix_end = wal.size();  // end of the 4-record prefix
    }
  }
  const auto base = read_file(base_path);
  ASSERT_TRUE(base.has_value());
  ASSERT_GT(base->size(), prefix_end);

  for (std::size_t cut = prefix_end; cut < base->size(); ++cut) {
    const std::string case_path = path("torn-" + std::to_string(cut));
    write_bytes(case_path,
                std::vector<std::uint8_t>{base->begin(),
                                          base->begin() + cut});
    Wal wal;
    std::size_t replayed = 0;
    ASSERT_TRUE(wal.open(case_path, [&](const WalRecord&) { ++replayed; }))
        << "cut at " << cut;
    EXPECT_EQ(replayed, 4u) << "cut at " << cut;
    EXPECT_EQ(wal.recovery().records, 4u) << "cut at " << cut;
    if (cut == prefix_end) {
      EXPECT_EQ(wal.recovery().truncations, 0u);  // clean end, no tail
    } else {
      EXPECT_EQ(wal.recovery().truncations, 1u) << "cut at " << cut;
      EXPECT_EQ(wal.recovery().discarded_bytes, cut - prefix_end);
    }
    // The torn tail is physically gone; the log accepts new records.
    EXPECT_EQ(wal.size(), prefix_end);
    WalRecord next = sample(9);
    ASSERT_EQ(wal.append(next, true).status, Wal::AppendStatus::Ok);
    EXPECT_EQ(next.seq, 5u);  // continues after the valid prefix
    std::filesystem::remove(case_path);
  }
}

// Corrupt (bit-flip) the tail record at every byte offset: the CRC must
// catch every single-byte corruption and recovery must keep the prefix.
TEST_F(WalTest, CorruptTailAtEveryByteIsDetectedByCrc) {
  const std::string base_path = path("base.log");
  std::uint64_t prefix_end = 0;
  {
    Wal wal;
    ASSERT_TRUE(wal.open(base_path, nullptr));
    for (std::uint8_t i = 0; i < 5; ++i) {
      WalRecord r = sample(i);
      ASSERT_EQ(wal.append(r, true).status, Wal::AppendStatus::Ok);
      if (i == 3) prefix_end = wal.size();
    }
  }
  const auto base = read_file(base_path);
  ASSERT_TRUE(base.has_value());

  for (std::size_t at = prefix_end; at < base->size(); ++at) {
    std::vector<std::uint8_t> corrupted = *base;
    corrupted[at] ^= 0x40;
    const std::string case_path = path("corrupt-" + std::to_string(at));
    write_bytes(case_path, corrupted);
    Wal wal;
    std::size_t replayed = 0;
    ASSERT_TRUE(wal.open(case_path, [&](const WalRecord&) { ++replayed; }))
        << "corruption at " << at;
    EXPECT_EQ(replayed, 4u) << "corruption at " << at;
    EXPECT_EQ(wal.recovery().truncations, 1u) << "corruption at " << at;
    EXPECT_EQ(wal.size(), prefix_end) << "corruption at " << at;
    std::filesystem::remove(case_path);
  }
}

TEST_F(WalTest, InjectedTornWriteKillsStoreAndRecoveryDiscardsTail) {
  fault::FaultPlan plan;
  plan.wal_kills.push_back(fault::WalKill{7, 2, /*torn=*/true});
  fault::FaultInjector injector{plan};
  const std::string wal_path = path("wal.log");
  {
    Wal wal;
    ASSERT_TRUE(wal.open(wal_path, nullptr, &injector, 7));
    WalRecord a = sample(0);
    WalRecord b = sample(1);
    ASSERT_EQ(wal.append(a, true).status, Wal::AppendStatus::Ok);
    ASSERT_EQ(wal.append(b, true).status, Wal::AppendStatus::Ok);
    // Third append hits the schedule: a prefix lands on disk, store dies.
    WalRecord c = sample(2);
    EXPECT_EQ(wal.append(c, true).status, Wal::AppendStatus::Dead);
    EXPECT_TRUE(wal.dead());
    // A dead store refuses everything until reopened.
    WalRecord d = sample(3);
    EXPECT_EQ(wal.append(d, true).status, Wal::AppendStatus::Dead);
  }
  EXPECT_EQ(injector.counters().torn_writes.load(), 1u);
  EXPECT_EQ(injector.counters().wal_kills.load(), 1u);

  Wal wal;
  std::size_t replayed = 0;
  ASSERT_TRUE(wal.open(wal_path, [&](const WalRecord&) { ++replayed; }));
  EXPECT_EQ(replayed, 2u);  // the torn third record was never applied
  EXPECT_EQ(wal.recovery().truncations, 1u);
}

TEST_F(WalTest, InjectedShortWriteIsRetriedAndRecordSurvives) {
  fault::FaultPlan plan;
  fault::DiskFault f;
  f.node = 3;
  f.short_write = 1.0;  // every append suffers a partial write first
  plan.disk.push_back(f);
  fault::FaultInjector injector{plan};
  const std::string wal_path = path("wal.log");
  {
    Wal wal;
    ASSERT_TRUE(wal.open(wal_path, nullptr, &injector, 3));
    WalRecord r = sample(0);
    const auto result = wal.append(r, true);
    EXPECT_EQ(result.status, Wal::AppendStatus::Ok);
    EXPECT_TRUE(result.durable);
  }
  EXPECT_EQ(injector.counters().short_writes.load(), 1u);
  Wal wal;
  std::size_t replayed = 0;
  ASSERT_TRUE(wal.open(wal_path, [&](const WalRecord&) { ++replayed; }));
  EXPECT_EQ(replayed, 1u);  // the rewrite left exactly one intact record
  EXPECT_EQ(wal.recovery().truncations, 0u);
}

TEST_F(WalTest, InjectedFsyncFailureDemotesDurability) {
  fault::FaultPlan plan;
  fault::DiskFault f;
  f.fsync_fail = 1.0;
  plan.disk.push_back(f);
  fault::FaultInjector injector{plan};
  Wal wal;
  ASSERT_TRUE(wal.open(path("wal.log"), nullptr, &injector, 0));
  WalRecord r = sample(0);
  const auto result = wal.append(r, true);
  EXPECT_EQ(result.status, Wal::AppendStatus::Ok);  // applied...
  EXPECT_FALSE(result.durable);                     // ...but not promised
  EXPECT_GE(injector.counters().fsync_failures.load(), 1u);
}

TEST_F(WalTest, OversizedLengthPrefixIsTreatedAsCorruption) {
  // A length prefix beyond the cap must be rejected before allocation.
  std::vector<std::uint8_t> bogus(12, 0xFF);  // len = 0xFFFFFFFF
  const std::string wal_path = path("wal.log");
  write_bytes(wal_path, bogus);
  Wal wal;
  std::size_t replayed = 0;
  ASSERT_TRUE(wal.open(wal_path, [&](const WalRecord&) { ++replayed; }));
  EXPECT_EQ(replayed, 0u);
  EXPECT_EQ(wal.recovery().truncations, 1u);
  EXPECT_EQ(wal.size(), 0u);
}

// Replay rejects any frame whose length prefix exceeds kMaxWalPayload, so
// appending one would ack a record that the next recovery is guaranteed to
// discard — together with every record after it. The write side must
// refuse it up front, consuming neither disk bytes nor a sequence number.
TEST_F(WalTest, OversizedRecordIsRejectedBeforeAnyWrite) {
  Wal wal;
  ASSERT_TRUE(wal.open(path("wal.log"), nullptr));
  WalRecord first = sample(0);
  ASSERT_EQ(wal.append(first, true).status, Wal::AppendStatus::Ok);
  const std::uint64_t size_before = wal.size();
  const std::uint64_t seq_before = wal.next_seq();

  WalRecord big = sample(1);
  big.blob.assign(kMaxWalPayload, 0xAB);  // fixed fields push it over
  EXPECT_EQ(wal.append(big, true).status, Wal::AppendStatus::TooLarge);
  EXPECT_EQ(wal.size(), size_before);     // nothing reached the file
  EXPECT_EQ(wal.next_seq(), seq_before);  // no sequence number consumed

  // The log stays healthy: later records append and replay cleanly.
  WalRecord next = sample(2);
  ASSERT_EQ(wal.append(next, true).status, Wal::AppendStatus::Ok);
  EXPECT_EQ(next.seq, 2u);

  Wal reopened;
  std::size_t replayed = 0;
  ASSERT_TRUE(reopened.open(path("wal.log"),
                            [&](const WalRecord&) { ++replayed; }));
  EXPECT_EQ(replayed, 2u);
  EXPECT_EQ(reopened.recovery().truncations, 0u);
}

TEST_F(WalTest, Crc32MatchesKnownVector) {
  // IEEE CRC32 of "123456789" — the standard check value.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(std::span{
                reinterpret_cast<const std::uint8_t*>(check.data()),
                check.size()}),
            0xCBF43926u);
}

}  // namespace
}  // namespace omig::store
