// LiveSystem + DurableStore: the coordinator's directory survives a full
// process restart (stop, destroy, reopen on the same data_dir), and the
// recovery counters distinguish disk-backed recoveries from in-memory
// checkpoint reinstalls (docs/durability.md).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"

namespace omig::runtime {
namespace {

class DurableRecovery : public ::testing::Test {
protected:
  void SetUp() override {
    char dir_template[] = "/tmp/omig-durable-test-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  [[nodiscard]] LiveSystem::Options options() const {
    LiveSystem::Options opts;
    opts.nodes = 3;
    opts.data_dir = dir_ + "/coord";
    return opts;
  }

  std::string dir_;
};

TEST_F(DurableRecovery, DirectoryAndStateSurviveACoordinatorRestart) {
  {
    LiveSystem sys{options()};
    register_demo_types(sys);
    sys.start();
    ASSERT_TRUE(sys.create(
        "case-1", make_state("case-file", {{"log", ""}}), 0));
    ASSERT_TRUE(sys.create(
        "ledger", make_state("ledger", {{"total", "0"}}), 2));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(sys.invoke("case-1", "append", "note").ok);
    }
    // The migration checkpoints the object's CURRENT state (with the
    // three appends) — that is what the durability contract preserves.
    ASSERT_TRUE(sys.migrate("case-1", 1));
    sys.stop();
  }

  // A brand-new system on the same data_dir: the store replays the WAL /
  // snapshot, rebuilds the directory, and reinstalls the objects.
  LiveSystem sys{options()};
  register_demo_types(sys);
  sys.start();
  EXPECT_EQ(sys.replayed_objects(), 2u);
  ASSERT_EQ(sys.location("case-1"), std::size_t{1});
  ASSERT_EQ(sys.location("ledger"), std::size_t{2});
  EXPECT_EQ(sys.invoke("case-1", "entries", "").value, "3");
  EXPECT_EQ(sys.invoke("ledger", "total", "").value, "0");
  // Recovered objects stay fully operational, migrations included.
  ASSERT_TRUE(sys.migrate("case-1", 0));
  EXPECT_EQ(sys.invoke("case-1", "entries", "").value, "3");
  sys.stop();
}

TEST_F(DurableRecovery, AckedMigrationLocationSurvivesRestart) {
  {
    LiveSystem sys{options()};
    register_demo_types(sys);
    sys.start();
    ASSERT_TRUE(sys.create("c", make_state("counter", {{"count", "4"}}), 0));
    ASSERT_TRUE(sys.migrate("c", 2));  // acked once migrate() returns
    sys.stop();
  }
  LiveSystem sys{options()};
  register_demo_types(sys);
  sys.start();
  ASSERT_EQ(sys.location("c"), std::size_t{2});  // not the creation node
  EXPECT_EQ(sys.invoke("c", "get", "").value, "4");
  sys.stop();
}

TEST_F(DurableRecovery, RestartCountsDurableRecoveriesSeparately) {
  LiveSystem sys{options()};
  register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(sys.create("c", make_state("counter", {{"count", "1"}}), 0));
  sys.crash_node(0);
  sys.restart_node(0);
  EXPECT_EQ(sys.recoveries(), 1u);
  // The creation checkpoint was a fsynced WAL append, so the reinstall is
  // a durable recovery, not just an in-memory one.
  EXPECT_EQ(sys.durable_recoveries(), 1u);
  EXPECT_EQ(sys.invoke("c", "get", "").value, "1");
  sys.stop();
}

TEST_F(DurableRecovery, WithoutDataDirRecoveriesAreInMemoryOnly) {
  LiveSystem::Options opts;
  opts.nodes = 2;  // no data_dir
  LiveSystem sys{opts};
  register_demo_types(sys);
  sys.start();
  EXPECT_EQ(sys.store(), nullptr);
  ASSERT_TRUE(sys.create("c", make_state("counter", {{"count", "1"}}), 0));
  sys.crash_node(0);
  sys.restart_node(0);
  EXPECT_EQ(sys.recoveries(), 1u);
  EXPECT_EQ(sys.durable_recoveries(), 0u);  // memory-backed checkpoint
  sys.stop();
}

TEST_F(DurableRecovery, LeaseGrantsAreLoggedButNeverRestored) {
  {
    LiveSystem sys{options()};
    register_demo_types(sys);
    sys.start();
    ASSERT_TRUE(sys.create("c", make_state("counter", {{"count", "0"}}), 0));
    auto token = sys.move("c", 1);
    ASSERT_TRUE(token.granted);
    // Deliberately NOT ending the block: the lease record is in the WAL,
    // but a restart must not resurrect a lock nobody holds.
    sys.stop();
  }
  LiveSystem sys{options()};
  register_demo_types(sys);
  sys.start();
  ASSERT_EQ(sys.location("c"), std::size_t{1});
  auto token = sys.move("c", 2);  // would be refused if the lock survived
  EXPECT_TRUE(token.granted);
  sys.end(token);
  sys.stop();
}

}  // namespace
}  // namespace omig::runtime
