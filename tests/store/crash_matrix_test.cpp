// The crash matrix: real omig_node processes with --data-dir, SIGKILLed
// by a scheduled wal-kill at a seed-chosen append, relaunched on the same
// directory — the acceptance scenario of docs/durability.md. After every
// kill/relaunch: zero acked-migration loss, and every torn WAL tail is
// detected via CRC, counted, and never applied.
//
// Binaries via $OMIG_NODE_BIN, falling back to OMIG_NODE_BIN_DEFAULT.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "sim/random.hpp"
#include "transport/tcp.hpp"
#include "transport/transport.hpp"

namespace omig::store {
namespace {

std::string node_binary() {
  if (const char* env = std::getenv("OMIG_NODE_BIN")) return env;
#ifdef OMIG_NODE_BIN_DEFAULT
  return OMIG_NODE_BIN_DEFAULT;
#else
  return "omig_node";
#endif
}

std::uint16_t wait_for_port_file(const std::string& path) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  std::uint16_t port = 0;
  while (port == 0) {
    std::ifstream in{path};
    if (in >> port && port != 0) break;
    port = 0;
    if (std::chrono::steady_clock::now() > deadline) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  return port;
}

/// One HTTP GET /metrics against a node's exporter; body only.
std::string scrape_body(std::uint16_t port) {
  const int fd = transport::tcp_connect("127.0.0.1", port);
  if (fd < 0) return "";
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  if (!transport::tcp_send_all(
          fd, reinterpret_cast<const std::uint8_t*>(request.data()),
          request.size())) {
    transport::tcp_close(fd);
    return "";
  }
  std::string response;
  std::uint8_t buffer[4096];
  for (;;) {
    const long n = transport::tcp_recv_some(fd, buffer, sizeof buffer);
    if (n <= 0) break;
    response.append(reinterpret_cast<const char*>(buffer),
                    static_cast<std::size_t>(n));
  }
  transport::tcp_close(fd);
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

long long sample_value(const std::string& body, const std::string& series) {
  const auto pos = body.find("\n" + series + " ");
  if (pos == std::string::npos) return -1;
  return std::stoll(body.substr(pos + series.size() + 2));
}

/// An omig_node child with a durable --data-dir and (optionally) a fault
/// plan whose wal-kill schedule SIGKILLs it between a write and its fsync.
struct DurableNode {
  std::size_t id = 0;
  pid_t pid = -1;
  std::uint16_t port = 0;
  std::uint16_t metrics_port = 0;
  std::string data_dir;
  std::string port_file;
  std::string metrics_port_file;
  std::string plan_file;  ///< empty = run faithfully

  bool spawn(bool with_metrics = false) {
    std::error_code ec;
    std::filesystem::remove(port_file, ec);
    std::filesystem::remove(metrics_port_file, ec);
    const std::string exe = node_binary();
    const std::string id_arg = std::to_string(id);
    pid = fork();
    if (pid == 0) {
      std::vector<const char*> argv{exe.c_str(),       "--serve",
                                    "--id",            id_arg.c_str(),
                                    "--port-file",     port_file.c_str(),
                                    "--data-dir",      data_dir.c_str()};
      if (!plan_file.empty()) {
        argv.push_back("--fault-plan");
        argv.push_back(plan_file.c_str());
      }
      if (with_metrics) {
        argv.push_back("--metrics-port");
        argv.push_back("0");
        argv.push_back("--metrics-port-file");
        argv.push_back(metrics_port_file.c_str());
      }
      argv.push_back(nullptr);
      execv(exe.c_str(), const_cast<char* const*>(argv.data()));
      _exit(127);
    }
    if (pid < 0) return false;
    port = wait_for_port_file(port_file);
    if (with_metrics) metrics_port = wait_for_port_file(metrics_port_file);
    return port != 0;
  }

  /// True once the child has exited (e.g. its scheduled wal-kill fired).
  bool wait_dead(std::chrono::seconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) == pid) {
        pid = -1;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
    return false;
  }

  void kill_hard() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    pid = -1;
  }

  [[nodiscard]] bool reap_clean() {
    if (pid <= 0) return true;
    int status = 0;
    const bool ok = waitpid(pid, &status, 0) == pid && WIFEXITED(status) &&
                    WEXITSTATUS(status) == 0;
    pid = -1;
    return ok;
  }
};

class StoreCrashMatrix : public ::testing::Test {
protected:
  void SetUp() override {
    ASSERT_TRUE(std::filesystem::exists(node_binary()))
        << "omig_node binary not found at " << node_binary()
        << " (set OMIG_NODE_BIN)";
    char dir_template[] = "/tmp/omig-crash-matrix-XXXXXX";
    ASSERT_NE(mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }

  void TearDown() override {
    for (DurableNode& node : nodes_) node.kill_hard();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  DurableNode make_node(std::size_t id) {
    DurableNode node;
    node.id = id;
    node.data_dir = dir_ + "/n" + std::to_string(id);
    node.port_file = dir_ + "/node-" + std::to_string(id) + ".port";
    node.metrics_port_file =
        dir_ + "/node-" + std::to_string(id) + ".metrics-port";
    return node;
  }

  /// Writes a plan scheduling one kill on `node` after `appends` WAL
  /// appends — torn (power loss mid-write) or clean (between fsyncs).
  std::string write_plan(std::uint64_t seed, std::size_t node,
                         std::uint64_t appends, bool torn) {
    const std::string path = dir_ + "/plan-" + std::to_string(node) + ".txt";
    std::ofstream out{path, std::ios::trunc};
    out << "seed " << seed << "\n"
        << (torn ? "wal-torn-kill " : "wal-kill ") << node << " " << appends
        << "\n";
    return path;
  }

  [[nodiscard]] std::vector<transport::Peer> peers() const {
    std::vector<transport::Peer> result;
    for (const DurableNode& node : nodes_) {
      result.push_back(transport::Peer{"127.0.0.1", node.port});
    }
    return result;
  }

  [[nodiscard]] runtime::LiveSystem::Options coordinator_options() const {
    runtime::LiveSystem::Options opts;
    opts.remote_nodes = peers();
    opts.max_retries = 2;
    opts.retry_backoff = std::chrono::milliseconds{1};
    return opts;
  }

  std::string dir_;
  std::vector<DurableNode> nodes_;
};

// SIGKILL node 1 between a WAL write and its fsync at a seed-chosen
// install, relaunch it on the same --data-dir, and require the office-
// style workflow to complete with zero acked-migration loss.
TEST_F(StoreCrashMatrix, KillBetweenFsyncsLosesNoAckedMigration) {
  // The kill point is drawn from the seed (the "seed-chosen point" of the
  // acceptance criteria): node 1 dies on its (k+1)-th WAL append.
  constexpr std::uint64_t kSeed = 20260808;
  sim::Rng rng{kSeed, /*stream=*/0};
  const std::uint64_t kill_after = rng.uniform_int(3);  // 0, 1, or 2 appends

  nodes_.push_back(make_node(0));
  nodes_.push_back(make_node(1));
  nodes_[1].plan_file = write_plan(kSeed, 1, kill_after, /*torn=*/false);
  ASSERT_TRUE(nodes_[0].spawn());
  ASSERT_TRUE(nodes_[1].spawn());

  runtime::LiveSystem sys{coordinator_options()};
  runtime::register_demo_types(sys);
  sys.start();

  // Three counters born on node 0, then migrated to node 1 one at a time.
  // Node 1's (kill_after+1)-th install append SIGKILLs it mid-protocol.
  for (int i = 0; i < 3; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    const std::string count = std::to_string(i);
    ASSERT_TRUE(sys.create(
        name, runtime::make_state("counter", {{"count", count.c_str()}}), 0));
  }
  for (int i = 0; i < 3; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    // migrate() completing IS the ack: afterwards the directory always
    // knows a live home for the object — node 1 if the install landed,
    // node 0 (fallback) if the kill beat it.
    ASSERT_TRUE(sys.migrate(name, 1));
    ASSERT_TRUE(sys.location(name).has_value());
  }
  // The schedule guarantees the kill fired within those three installs.
  ASSERT_TRUE(nodes_[1].wait_dead(std::chrono::seconds{5}))
      << "wal-kill after " << kill_after << " appends never fired";
  sys.crash_node(1);

  // Zero acked loss, part 1: every object is reachable right now.
  for (int i = 0; i < 3; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    const auto loc = sys.location(name);
    ASSERT_TRUE(loc.has_value());
    if (*loc == 1) {
      // Acked onto the dead node: its fsynced WAL record revives it on
      // relaunch. Pull it off the dead node meanwhile — the coordinator
      // checkpoint recovers it (the existing degraded path).
      ASSERT_TRUE(sys.migrate(name, 0));
    }
    EXPECT_EQ(sys.invoke(name, "get", "").value, std::to_string(i));
  }

  // Relaunch node 1 on the SAME data dir, without the fault plan: its
  // store recovers every acked record; unacked ones were never promised.
  nodes_[1].plan_file.clear();
  ASSERT_TRUE(nodes_[1].spawn());
  sys.set_remote_peer(1, transport::Peer{"127.0.0.1", nodes_[1].port});
  sys.restart_node(1);

  // Zero acked loss, part 2: the full workflow completes post-recovery.
  for (int i = 0; i < 3; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    ASSERT_TRUE(sys.migrate(name, 1));
    ASSERT_EQ(sys.location(name), std::size_t{1});
    EXPECT_EQ(sys.invoke(name, "get", "").value, std::to_string(i));
    ASSERT_TRUE(sys.invoke(name, "add", "100").ok);
    ASSERT_TRUE(sys.migrate(name, 0));
    EXPECT_EQ(sys.invoke(name, "get", "").value, std::to_string(i + 100));
  }

  sys.shutdown_remote_nodes();
  for (DurableNode& node : nodes_) EXPECT_TRUE(node.reap_clean());
  sys.stop();
}

// Torn-write power loss: the record is half-written when the process
// dies. The relaunch must detect the tear via CRC, discard it, count it
// in omig_store_replay_truncations_total — and never apply it.
TEST_F(StoreCrashMatrix, TornTailIsDetectedDiscardedAndCounted) {
  nodes_.push_back(make_node(0));
  nodes_.push_back(make_node(1));
  // Node 1 tears its second WAL append (the install after obj-keep's).
  nodes_[1].plan_file = write_plan(7, 1, 1, /*torn=*/true);
  ASSERT_TRUE(nodes_[0].spawn());
  ASSERT_TRUE(nodes_[1].spawn());

  runtime::LiveSystem sys{coordinator_options()};
  runtime::register_demo_types(sys);
  sys.start();

  ASSERT_TRUE(sys.create(
      "obj-keep", runtime::make_state("counter", {{"count", "1"}}), 0));
  ASSERT_TRUE(sys.create(
      "obj-torn", runtime::make_state("counter", {{"count", "2"}}), 0));
  ASSERT_TRUE(sys.migrate("obj-keep", 1));  // append 1: fsynced, acked
  ASSERT_TRUE(sys.migrate("obj-torn", 1));  // append 2: torn, node dies
  ASSERT_TRUE(nodes_[1].wait_dead(std::chrono::seconds{5}));
  sys.crash_node(1);

  // The torn install was never acked, so the coordinator fell back and
  // both objects are still reachable (zero acked loss).
  for (const char* name : {"obj-keep", "obj-torn"}) {
    const auto loc = sys.location(name);
    ASSERT_TRUE(loc.has_value()) << name;
    if (*loc == 1) {
      ASSERT_TRUE(sys.migrate(name, 0));
    }
    EXPECT_TRUE(sys.invoke(name, "get", "").ok) << name;
  }

  // Relaunch with a metrics exporter and read the store's own account of
  // the recovery: exactly one torn tail detected and discarded.
  nodes_[1].plan_file.clear();
  ASSERT_TRUE(nodes_[1].spawn(/*with_metrics=*/true));
  ASSERT_NE(nodes_[1].metrics_port, 0);
  const std::string body = scrape_body(nodes_[1].metrics_port);
  EXPECT_EQ(sample_value(body, "omig_store_replay_truncations_total"), 1);
  // The fsynced first record replayed; the torn one was never applied.
  EXPECT_GE(sample_value(body, "omig_store_replay_records_total"), 1);

  sys.set_remote_peer(1, transport::Peer{"127.0.0.1", nodes_[1].port});
  sys.restart_node(1);
  ASSERT_TRUE(sys.migrate("obj-torn", 1));
  EXPECT_EQ(sys.invoke("obj-torn", "get", "").value, "2");

  sys.shutdown_remote_nodes();
  for (DurableNode& node : nodes_) EXPECT_TRUE(node.reap_clean());
  sys.stop();
}

// Bare SIGKILL with no fault plan — the degenerate cell of the matrix: the
// node dies at an arbitrary point, and on relaunch its own store replays
// the fsynced WAL (visible in the metrics) before the port comes up.
TEST_F(StoreCrashMatrix, BareSigkillRelaunchReplaysTheNodesOwnWal) {
  nodes_.push_back(make_node(0));
  ASSERT_TRUE(nodes_[0].spawn());
  runtime::LiveSystem sys{coordinator_options()};
  runtime::register_demo_types(sys);
  sys.start();
  ASSERT_TRUE(sys.create(
      "c", runtime::make_state("counter", {{"count", "5"}}), 0));
  EXPECT_EQ(sys.invoke("c", "get", "").value, "5");

  nodes_[0].kill_hard();
  sys.crash_node(0);

  // Same data dir, fresh process: the acked create was a fsynced WAL
  // append, so the relaunch replays at least that record.
  ASSERT_TRUE(nodes_[0].spawn(/*with_metrics=*/true));
  ASSERT_NE(nodes_[0].metrics_port, 0);
  const std::string body = scrape_body(nodes_[0].metrics_port);
  EXPECT_GE(sample_value(body, "omig_store_replay_records_total"), 1);
  EXPECT_EQ(sample_value(body, "omig_store_replay_truncations_total"), 0);

  sys.set_remote_peer(0, transport::Peer{"127.0.0.1", nodes_[0].port});
  sys.restart_node(0);
  EXPECT_EQ(sys.invoke("c", "get", "").value, "5");

  sys.shutdown_remote_nodes();
  EXPECT_TRUE(nodes_[0].reap_clean());
  sys.stop();
}

}  // namespace
}  // namespace omig::store
