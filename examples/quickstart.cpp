// Quickstart: build a tiny distributed object system, express a migration
// policy with the paper's primitives (move / end, attach, fix), run it in
// the discrete-event simulator, and compare the place-policy against
// conventional migration under a conflicting workload.
//
// Build & run:   ./build/examples/quickstart
#include <iostream>

#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "core/table.hpp"
#include "migration/primitives.hpp"

using namespace omig;

namespace {

// --- Part 1: the primitives, hands-on -------------------------------------
//
// A 3-node system. A "document" object lives on node 0; a worker process on
// node 2 runs a move-block against it — exactly the pattern of the paper's
// Figure 2 (visit a list, process it locally, let it go).
sim::Task worker(sim::Engine& engine, migration::Primitives& prims,
                 objsys::ObjectId document) {
  const objsys::NodeId me{2};

  migration::MoveBlock blk = prims.move(me, document);
  std::cout << "  worker: requesting move of 'document' to node " << me
            << "\n";
  co_await prims.begin(blk);
  std::cout << "  worker: document now at node "
            << prims.location_of(document) << " (t=" << engine.now()
            << ")\n";

  for (int i = 0; i < 5; ++i) {
    co_await prims.call(me, document);  // local → free
  }
  prims.end(blk);
  std::cout << "  worker: processed 5 calls locally, block ended (t="
            << engine.now() << ")\n";
}

void part1_primitives() {
  std::cout << "Part 1 — the linguistic primitives\n";
  sim::Engine engine;
  net::FullMesh mesh{3};
  net::LatencyModel latency{mesh, net::LatencyMode::Fixed, 1.0};
  objsys::ObjectRegistry registry{engine, 3};
  sim::Rng rng{1, 0};
  objsys::Invoker invoker{engine, registry, latency, rng};
  migration::AttachmentGraph attachments;
  migration::AllianceRegistry alliances;
  migration::MigrationManager manager{
      engine, registry, latency, rng, attachments, alliances, {}};
  auto policy =
      migration::make_policy(migration::PolicyKind::Placement, manager);
  migration::Primitives prims{manager, *policy, invoker};

  const objsys::ObjectId document = registry.create("document", objsys::NodeId{0});
  const objsys::ObjectId index = registry.create("index", objsys::NodeId{0});
  prims.attach(document, index);  // keep the index with the document

  engine.spawn(worker(engine, prims, document));
  engine.run();

  std::cout << "  after the block: index followed the document to node "
            << prims.location_of(index) << "\n\n";
}

// --- Part 2: why the place-policy exists ------------------------------------
void part2_conflict_experiment() {
  std::cout << "Part 2 — conflicting movers (Figure-9 parameters, t_m=10)\n";
  core::TextTable table{{"policy", "mean comm-time/call", "migrations"}};
  for (const auto policy :
       {migration::PolicyKind::Sedentary, migration::PolicyKind::Conventional,
        migration::PolicyKind::Placement}) {
    auto cfg = core::fig8_config(10.0, policy);
    cfg.stopping.relative_target = 0.02;
    cfg.stopping.max_observations = 20'000;
    const auto r = core::run_experiment(cfg);
    table.add_row({std::string{migration::to_string(policy)},
                   core::format_double(r.total_per_call, 3),
                   std::to_string(r.migrations)});
  }
  std::cout << table.to_text()
            << "\nUnder contention the conventional move() thrashes; "
               "transient placement migrates once per conflict epoch and "
               "forwards the losers' calls instead.\n";
}

}  // namespace

int main() {
  std::cout << "omig quickstart — object migration in non-monolithic "
               "distributed applications\n\n";
  part1_primitives();
  part2_conflict_experiment();
  return 0;
}
