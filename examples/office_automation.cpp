// Office-automation scenario (the paper's motivating domain, Section 1):
// two independently developed applications — "invoicing" and "archiving" —
// share a customer-records service. Each attaches the shared records to its
// own working set and uses move-blocks with diverging usage patterns.
//
// The example shows, on one concrete system, the Section 2.4 failure mode
// (each application underestimates what its move drags along) and how
// alliances (A-transitive attachment) repair it.
//
// Build & run:   ./build/examples/office_automation
#include <iostream>

#include "core/table.hpp"
#include "migration/primitives.hpp"
#include "net/latency.hpp"

using namespace omig;

namespace {

struct Office {
  sim::Engine engine;
  net::FullMesh mesh{4};
  net::LatencyModel latency{mesh, net::LatencyMode::Fixed, 1.0};
  objsys::ObjectRegistry registry{engine, 4};
  sim::Rng rng{2026, 0};
  objsys::Invoker invoker{engine, registry, latency, rng};
  migration::AttachmentGraph attachments;
  migration::AllianceRegistry alliances;

  objsys::ObjectId records;   // shared customer records
  objsys::ObjectId invoices;  // invoicing's own data
  objsys::ObjectId archive;   // archiving's own data

  explicit Office(migration::AttachTransitivity transitivity)
      : manager{engine,      registry,  latency,
                rng,         attachments, alliances,
                migration::ManagerOptions{6.0, transitivity,
                                          migration::ClusterTransfer::
                                              Parallel}},
        policy{migration::make_policy(migration::PolicyKind::Conventional,
                                      manager)},
        prims{manager, *policy, invoker} {
    records = registry.create("customer-records", objsys::NodeId{0});
    invoices = registry.create("invoice-store", objsys::NodeId{1});
    archive = registry.create("archive-store", objsys::NodeId{2});

    // Each application declares its own cooperation context and attaches
    // the shared records to its private store *within* that context.
    invoicing = alliances.create("invoicing");
    alliances.add_member(invoicing, records);
    alliances.add_member(invoicing, invoices);
    prims.attach(records, invoices, invoicing);

    archiving = alliances.create("archiving");
    alliances.add_member(archiving, records);
    alliances.add_member(archiving, archive);
    prims.attach(records, archive, archiving);
  }

  migration::MigrationManager manager;
  std::unique_ptr<migration::MigrationPolicy> policy;
  migration::Primitives prims;
  migration::AllianceId invoicing;
  migration::AllianceId archiving;
};

sim::Task run_invoicing(Office& office) {
  // The invoicing app (node 1) pulls the records over for a billing run.
  migration::MoveBlock blk =
      office.prims.move(objsys::NodeId{1}, office.records, office.invoicing);
  co_await office.prims.begin(blk);
  for (int i = 0; i < 6; ++i) co_await office.prims.call(objsys::NodeId{1}, office.records);
  office.prims.end(blk);
}

void report(const char* label, Office& office) {
  core::TextTable table{{"object", "node", "comment"}};
  auto where = [&](objsys::ObjectId o) {
    return std::to_string(office.prims.location_of(o).value());
  };
  table.add_row({"customer-records", where(office.records),
                 "moved by invoicing's block"});
  table.add_row({"invoice-store", where(office.invoices),
                 "invoicing's working set"});
  table.add_row({"archive-store", where(office.archive),
                 "archiving's working set"});
  std::cout << label << "\n" << table.to_text() << "\n";
}

void run_scenario(migration::AttachTransitivity transitivity) {
  Office office{transitivity};
  office.engine.spawn(run_invoicing(office));
  office.engine.run();
  if (transitivity == migration::AttachTransitivity::Unrestricted) {
    report("With conventional (unrestricted) attachment — invoicing's move "
           "also dragged the archive store it knows nothing about:",
           office);
  } else {
    report("With A-transitive attachment (alliances) — the move stays "
           "inside the invoicing cooperation context:",
           office);
  }
}

}  // namespace

int main() {
  std::cout << "office automation: two applications sharing customer "
               "records\n\n";
  run_scenario(migration::AttachTransitivity::Unrestricted);
  run_scenario(migration::AttachTransitivity::ATransitive);
  std::cout << "Alliances make the moved working set equal to the one the "
               "migration decision was based on (Section 3.4).\n";
  return 0;
}
