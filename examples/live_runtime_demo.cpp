// Live-runtime demo: the same primitives on real threads. Three node
// threads host a shopping-cart service; two "applications" race move()
// blocks against the shared cart — once with the conventional policy
// (the loser's work is stolen mid-flight) and once with transient
// placement (the conflicting move is refused and falls back to remote
// invocation). State is linearised and rebuilt on every migration.
//
// Build & run:   ./build/examples/live_runtime_demo
#include <iostream>
#include <thread>

#include "runtime/live_system.hpp"

using namespace omig::runtime;

namespace {

ObjectFactory cart_factory() {
  return [](std::string name, ObjectState state) {
    auto obj = std::make_unique<LiveObject>(std::move(name), std::move(state));
    obj->register_method("add", [](ObjectState& self, const std::string& item) {
      self.fields["items"] += self.fields["items"].empty() ? item : "," + item;
      return self.fields["items"];
    });
    obj->register_method("list", [](ObjectState& self, const std::string&) {
      return self.fields["items"];
    });
    return obj;
  };
}

ObjectState cart_state() {
  ObjectState s;
  s.type = "cart";
  s.fields["items"] = "";
  return s;
}

void race(bool placement) {
  LiveSystem::Options opts;
  opts.nodes = 3;
  opts.policy = placement ? MovePolicy::Placement : MovePolicy::Conventional;
  opts.remote_latency = std::chrono::microseconds{200};
  LiveSystem sys{opts};
  sys.register_type("cart", cart_factory());
  sys.start();
  sys.create("cart", cart_state(), 0);

  std::atomic<int> refused{0};
  auto app = [&](std::size_t home, const char* item) {
    for (int round = 0; round < 20; ++round) {
      auto token = sys.move("cart", home);
      if (!token.granted) ++refused;
      for (int i = 0; i < 5; ++i) sys.invoke_from(home, "cart", "add", item);
      sys.end(token);
    }
  };
  std::thread a{app, 1, "a"};
  std::thread b{app, 2, "b"};
  a.join();
  b.join();

  const std::string items = sys.invoke("cart", "list", "").value;
  const auto adds = 1 + std::count(items.begin(), items.end(), ',');
  std::cout << (placement ? "transient placement" : "conventional move")
            << ": adds=" << adds << " migrations=" << sys.migrations()
            << " refused-moves=" << sys.refused_moves()
            << " remote-invocations=" << sys.remote_invocations() << "\n";
}

}  // namespace

int main() {
  std::cout << "live runtime: two applications racing move() on a shared "
               "cart (200 adds each run)\n\n";
  race(/*placement=*/false);
  race(/*placement=*/true);
  std::cout << "\nBoth runs complete all 200 adds; placement does it with "
               "far fewer migrations — the simulator's Figure-8 story on "
               "real threads.\n";
  return 0;
}
