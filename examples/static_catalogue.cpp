// Static catalogue scenario: a read-mostly product catalogue shared by
// many independently developed storefront components.
//
// Two mechanisms from the paper compose here:
//  * Section 1: "moving a static object simply creates a copy" — declaring
//    the catalogue immutable turns every conflicting move() into a local
//    copy and the hot-spot problem dissolves.
//  * Section 5 (outlook): if the catalogue must stay *mutable* (prices
//    change), replicate-on-read helps only while reads dominate; at higher
//    write rates, uncoordinated invalidations make replication worse than
//    doing nothing — the migration story all over again.
//
// Build & run:   ./build/examples/static_catalogue
#include <iostream>

#include "core/presets.hpp"
#include "core/table.hpp"

using namespace omig;

namespace {

stats::StoppingRule demo_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.03;
  rule.min_observations = 1'000;
  rule.max_observations = 12'000;
  return rule;
}

core::ExperimentResult run(bool immutable, double read_fraction,
                           objsys::ReplicationMode mode) {
  auto cfg = core::fig12_config(12, migration::PolicyKind::Conventional);
  cfg.workload.immutable_servers = immutable;
  cfg.workload.read_fraction = read_fraction;
  cfg.replication = mode;
  cfg.stopping = demo_rule();
  return core::run_experiment(cfg);
}

}  // namespace

int main() {
  std::cout << "static catalogue: 12 storefronts sharing 3 catalogue "
               "objects (hot spot)\n\n";

  core::TextTable table{{"catalogue variant", "comm-time/call",
                         "migrations", "copies", "invalidations"}};

  const auto mutable_hot =
      run(false, 0.0, objsys::ReplicationMode::None);
  table.add_row({"mutable, conventional move()",
                 core::format_double(mutable_hot.total_per_call, 3),
                 std::to_string(mutable_hot.migrations),
                 std::to_string(mutable_hot.replications),
                 std::to_string(mutable_hot.invalidations)});

  const auto immutable_cat =
      run(true, 0.0, objsys::ReplicationMode::None);
  table.add_row({"declared immutable (copies on move)",
                 core::format_double(immutable_cat.total_per_call, 3),
                 std::to_string(immutable_cat.migrations),
                 std::to_string(immutable_cat.replications),
                 std::to_string(immutable_cat.invalidations)});

  const auto repl_reads =
      run(false, 0.98, objsys::ReplicationMode::ReplicateOnRead);
  table.add_row({"mutable, replicate-on-read, 98% reads",
                 core::format_double(repl_reads.total_per_call, 3),
                 std::to_string(repl_reads.migrations),
                 std::to_string(repl_reads.replications),
                 std::to_string(repl_reads.invalidations)});

  const auto repl_writes =
      run(false, 0.60, objsys::ReplicationMode::ReplicateOnRead);
  table.add_row({"mutable, replicate-on-read, 60% reads",
                 core::format_double(repl_writes.total_per_call, 3),
                 std::to_string(repl_writes.migrations),
                 std::to_string(repl_writes.replications),
                 std::to_string(repl_writes.invalidations)});

  const auto no_repl =
      run(false, 0.60, objsys::ReplicationMode::None);
  table.add_row({"mutable, no replication, 60% reads",
                 core::format_double(no_repl.total_per_call, 3),
                 std::to_string(no_repl.migrations), "0", "0"});

  std::cout << table.to_text()
            << "\nTakeaways: declaring the catalogue immutable removes the "
               "conflict problem entirely; replicating a mutable catalogue "
               "is a bet on the read ratio — at 60% reads the invalidation "
               "churn makes it worse than no replication at all, the "
               "paper's Section-5 conjecture in numbers.\n";
  return 0;
}
