// Hot-spot scenario (paper Section 4.2.2): a popular service object used by
// a growing number of clients. "The common knowledge that it is better not
// to migrate such objects" emerges from the data: this example sweeps the
// client count and prints where each policy crosses the sedentary baseline,
// then demonstrates fix() as the operator's big hammer.
//
// Build & run:   ./build/examples/hotspot_registry
#include <iostream>

#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "migration/primitives.hpp"

using namespace omig;

namespace {

stats::StoppingRule demo_rule() {
  stats::StoppingRule rule;
  rule.relative_target = 0.03;
  rule.min_observations = 1'000;
  rule.max_observations = 15'000;
  return rule;
}

void sweep_hotspot() {
  std::vector<core::SweepVariant> variants{
      {"without-migration",
       [](double x) {
         auto cfg = core::fig12_config(static_cast<int>(x),
                                       migration::PolicyKind::Sedentary);
         cfg.stopping = demo_rule();
         return cfg;
       }},
      {"migration",
       [](double x) {
         auto cfg = core::fig12_config(static_cast<int>(x),
                                       migration::PolicyKind::Conventional);
         cfg.stopping = demo_rule();
         return cfg;
       }},
      {"transient-placement",
       [](double x) {
         auto cfg = core::fig12_config(static_cast<int>(x),
                                       migration::PolicyKind::Placement);
         cfg.stopping = demo_rule();
         return cfg;
       }},
  };
  const std::vector<double> xs{2, 4, 6, 8, 12, 16, 20, 24};
  const auto points = core::run_sweep(xs, variants);
  std::cout << core::sweep_table("clients", variants, points,
                                 core::Metric::TotalPerCall, 3)
                   .to_text();

  // Locate the break-even points (first x where the policy is worse than
  // the sedentary baseline).
  auto break_even = [&](std::size_t column) -> double {
    for (const auto& p : points) {
      if (p.results[column].total_per_call >
          p.results[0].total_per_call) {
        return p.x;
      }
    }
    return -1.0;
  };
  const double mig = break_even(1);
  const double pla = break_even(2);
  std::cout << "\nbreak-even vs sedentary: migration at ~"
            << (mig < 0 ? std::string{">24"} : std::to_string(static_cast<int>(mig)))
            << " clients, placement at ~"
            << (pla < 0 ? std::string{">24"} : std::to_string(static_cast<int>(pla)))
            << " clients (paper: 6 vs 20).\n\n";
}

sim::Task impatient_client(sim::Engine& engine,
                           migration::Primitives& prims,
                           objsys::ObjectId registry_obj, objsys::NodeId me,
                           int* refused) {
  migration::MoveBlock blk = prims.move(me, registry_obj);
  co_await prims.begin(blk);
  if (blk.moved.empty() && !blk.lock_held) ++*refused;
  for (int i = 0; i < 4; ++i) co_await prims.call(me, registry_obj);
  prims.end(blk);
  (void)engine;
}

void demonstrate_fix() {
  std::cout << "operator intervention: fix() the hot object\n";
  sim::Engine engine;
  net::FullMesh mesh{8};
  net::LatencyModel latency{mesh, net::LatencyMode::Fixed, 1.0};
  objsys::ObjectRegistry registry{engine, 8};
  sim::Rng rng{3, 0};
  objsys::Invoker invoker{engine, registry, latency, rng};
  migration::AttachmentGraph attachments;
  migration::AllianceRegistry alliances;
  migration::MigrationManager manager{
      engine, registry, latency, rng, attachments, alliances, {}};
  auto policy =
      migration::make_policy(migration::PolicyKind::Placement, manager);
  migration::Primitives prims{manager, *policy, invoker};

  const objsys::ObjectId reg = registry.create("name-registry", objsys::NodeId{0});
  prims.fix(reg);  // the operator pins the hot spot to node 0

  int refused = 0;
  for (std::uint32_t n = 1; n <= 7; ++n) {
    engine.spawn(
        impatient_client(engine, prims, reg, objsys::NodeId{n}, &refused));
  }
  engine.run();
  std::cout << "  7 clients tried to move the fixed registry; " << refused
            << " moves were refused, object stayed at node "
            << prims.location_of(reg) << ", migrations: "
            << registry.migrations() << "\n";
}

}  // namespace

int main() {
  std::cout << "hot-spot registry: when NOT to migrate\n\n";
  sweep_hotspot();
  demonstrate_fix();
  return 0;
}
