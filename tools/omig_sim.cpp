// omig_sim — command-line front-end for the simulator.
//
//   omig_sim policy=placement clients=12 tm=10
//   omig_sim --sweep clients=1:25:13 policy=conventional
//   omig_sim --sweep tm=1:100:12 policy=placement --metric migration
//   omig_sim --trace 40 policy=placement clients=6
//
// Prints the measured per-call metrics (and optionally a sweep table, CSV,
// or the protocol-event trace).
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/sweep.hpp"
#include "core/table.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "trace/log.hpp"
#include "util/executor.hpp"

using namespace omig;

namespace {

struct CliOptions {
  std::vector<std::string> assignments;
  std::string sweep;        // "key=lo:hi:steps"
  core::Metric metric = core::Metric::TotalPerCall;
  int threads = 0;          // 0 = all cores (sweeps only; single runs use 1)
  bool csv = false;
  bool json = false;
  std::size_t trace_lines = 0;
  std::string trace_file;
  std::string trace_json;
  bool list_scenarios = false;
  bool help = false;
};

/// The thread count a sweep will actually use (what --json reports).
int resolved_threads(const CliOptions& opts) {
  return opts.threads > 0
             ? opts.threads
             : static_cast<int>(util::Executor::default_thread_count());
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg{argv[i]};
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw core::ConfigError{std::string{flag} + " needs an argument"};
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--sweep") {
      opts.sweep = next("--sweep");
    } else if (arg == "--metric") {
      const std::string m = next("--metric");
      if (m == "total") {
        opts.metric = core::Metric::TotalPerCall;
      } else if (m == "call") {
        opts.metric = core::Metric::CallDuration;
      } else if (m == "migration") {
        opts.metric = core::Metric::MigrationPerCall;
      } else {
        throw core::ConfigError{"--metric expects total|call|migration"};
      }
    } else if (arg == "--threads") {
      opts.threads = std::stoi(next("--threads"));
      if (opts.threads < 0) {
        throw core::ConfigError{"--threads expects a count >= 0"};
      }
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--fault-plan") {
      opts.assignments.push_back("fault-plan=" + next("--fault-plan"));
    } else if (arg == "--scenario") {
      opts.assignments.push_back("scenario=" + next("--scenario"));
    } else if (arg == "--list-scenarios") {
      opts.list_scenarios = true;
    } else if (arg == "--trace") {
      opts.trace_lines = std::stoul(next("--trace"));
    } else if (arg == "--trace-file") {
      opts.trace_file = next("--trace-file");
    } else if (arg == "--trace-json") {
      opts.trace_json = next("--trace-json");
    } else if (arg.rfind("--", 0) == 0) {
      throw core::ConfigError{"unknown flag '" + arg + "'"};
    } else {
      opts.assignments.push_back(arg);
    }
  }
  return opts;
}

void print_help() {
  std::cout <<
      R"(omig_sim — object-migration simulator (Ciupke/Kottmann/Walter '96)

usage: omig_sim [flags] key=value...

flags:
  --sweep key=lo:hi:steps   run a sweep over a numeric key; prints a table
  --metric total|call|migration   which per-call metric the table reports
  --threads N               sweep worker threads (0 = all cores, 1 = serial;
                            results are bit-identical for every N)
  --csv                     print CSV instead of the aligned table
  --json                    print the single-run result as one JSON object
  --fault-plan PATH         load a fault plan (same as fault-plan=PATH).
                            Directives: drop/delay/dup <from> <to> <x>,
                            crash <node> <at> [<restart-after>], and the
                            disk-fault dimension for durable stores —
                            torn-write/short-write/fsync-fail <node> <prob>,
                            wal-kill/wal-torn-kill <node> <after-appends>
                            (docs/fault_model.md, docs/durability.md)
  --scenario NAME           run open-loop scenario traffic instead of the
                            office workload (same as scenario=NAME; knobs
                            sc-* below, docs/scenarios.md)
  --list-scenarios          print the scenario catalogue and exit
  --trace N                 print the last N protocol events of the run
  --trace-file PATH         dump the full protocol trace as JSONL
  --trace-json PATH         dump the trace in Chrome trace-event format
                            (open in chrome://tracing or Perfetto)
  --help                    this text

)" << core::config_help()
            << R"(
examples:
  omig_sim policy=placement clients=12 tm=10
  omig_sim --sweep clients=1:25:13 policy=conventional nodes=27
  omig_sim --sweep tm=1:100:12 policy=placement --metric migration
)";
}

void print_json(const core::ExperimentConfig& cfg,
                const core::ExperimentResult& r, int threads) {
  std::ostringstream os;
  os.precision(10);
  const char* sep = "";
  auto num = [&](const char* key, double value) {
    // A run that completes zero blocks (e.g. overload collapse bounded by
    // max-time) has ci_relative = inf; bare inf/nan is not valid JSON.
    os << sep << "\n  \"" << key << "\": ";
    if (std::isfinite(value)) {
      os << value;
    } else {
      os << '"' << value << '"';
    }
    sep = ",";
  };
  auto count = [&](const char* key, std::uint64_t value) {
    os << sep << "\n  \"" << key << "\": " << value;
    sep = ",";
  };
  os << "{";
  num("total_per_call", r.total_per_call);
  num("call_duration", r.call_duration);
  num("migration_per_call", r.migration_per_call);
  num("ci_relative", r.ci_relative);
  count("blocks", r.blocks);
  count("calls", r.calls);
  count("migrations", r.migrations);
  count("transfers", r.transfers);
  count("control_messages", r.control_messages);
  count("remote_calls", r.remote_calls);
  count("blocked_calls", r.blocked_calls);
  num("call_p50", r.call_p50);
  num("call_p95", r.call_p95);
  num("call_p99", r.call_p99);
  num("sim_time", r.sim_time);
  count("events", r.events);
  count("dropped_messages", r.dropped_messages);
  count("duplicated_messages", r.duplicated_messages);
  count("delayed_messages", r.delayed_messages);
  count("fault_retries", r.fault_retries);
  count("lease_expiries", r.lease_expiries);
  count("node_crashes", r.node_crashes);
  count("node_restarts", r.node_restarts);
  count("recoveries", r.recoveries);
  if (cfg.scenario.enabled()) {
    os << sep << "\n  \"scenario\": \"" << cfg.scenario.name << "\"";
    count("scenario_bursts", r.scenario_bursts);
    count("scenario_ops", r.scenario_ops);
    num("scenario_offered", r.scenario_offered);
    num("scenario_achieved", r.scenario_achieved);
    num("scenario_op_p50", r.scenario_op_p50);
    num("scenario_op_p99", r.scenario_op_p99);
  }
  const auto adaptive = [](migration::PolicyKind k) {
    return k == migration::PolicyKind::Adaptive ||
           k == migration::PolicyKind::AdaptiveLoad;
  };
  if (adaptive(cfg.policy) ||
      (cfg.egoistic_clients > 0 && adaptive(cfg.egoistic_policy))) {
    count("policy_migrations", r.policy_migrations);
    count("policy_suppressed_hysteresis", r.policy_suppressed_hysteresis);
    count("policy_suppressed_load", r.policy_suppressed_load);
    count("policy_reversals", r.policy_reversals);
    count("ema_updates", r.ema_updates);
  }
  count("seed", cfg.seed);
  count("threads", static_cast<std::uint64_t>(threads));
  // The run's registry state (docs/metrics.md): per-policy fold-ins plus
  // the invocation latency histograms.
  os << sep << "\n  \"metrics\": "
     << obs::MetricsRegistry::global().to_json();
  os << "\n}\n";
  std::cout << os.str();
}

int run_single(const CliOptions& opts) {
  const core::ExperimentConfig cfg = core::parse_config(opts.assignments);
  std::cerr << "running: " << core::describe(cfg) << "\n";
  const bool want_trace = opts.trace_lines > 0 || !opts.trace_file.empty() ||
                          !opts.trace_json.empty();
  trace::TraceLog trace_log{1 << 20};
  const core::ExperimentResult r =
      core::run_experiment(cfg, want_trace ? &trace_log : nullptr);

  if (opts.json) {
    // A single run is one simulation: it always executes on one thread.
    print_json(cfg, r, opts.threads == 0 ? 1 : opts.threads);
    return 0;
  }

  core::TextTable table{{"metric", "value"}};
  table.add_row({"mean communication-time per call",
                 core::format_double(r.total_per_call, 4)});
  table.add_row({"mean duration of one call",
                 core::format_double(r.call_duration, 4)});
  table.add_row({"mean migration-time per call",
                 core::format_double(r.migration_per_call, 4)});
  table.add_row({"99% CI half-width (relative)",
                 core::format_double(r.ci_relative * 100.0, 2) + "%"});
  table.add_row({"blocks", std::to_string(r.blocks)});
  table.add_row({"calls", std::to_string(r.calls)});
  table.add_row({"migrations", std::to_string(r.migrations)});
  table.add_row({"transfers", std::to_string(r.transfers)});
  table.add_row({"control messages", std::to_string(r.control_messages)});
  table.add_row({"remote calls", std::to_string(r.remote_calls)});
  table.add_row({"calls blocked on transit",
                 std::to_string(r.blocked_calls)});
  table.add_row({"call duration p50/p95/p99",
                 core::format_double(r.call_p50, 2) + " / " +
                     core::format_double(r.call_p95, 2) + " / " +
                     core::format_double(r.call_p99, 2)});
  table.add_row({"simulated time", core::format_double(r.sim_time, 1)});
  table.add_row({"engine events", std::to_string(r.events)});
  if (cfg.scenario.enabled()) {
    table.add_row({"scenario bursts", std::to_string(r.scenario_bursts)});
    table.add_row({"scenario ops", std::to_string(r.scenario_ops)});
    table.add_row({"scenario offered bursts/t",
                   core::format_double(r.scenario_offered, 4)});
    table.add_row({"scenario achieved ops/t",
                   core::format_double(r.scenario_achieved, 4)});
    table.add_row({"scenario op p50/p99",
                   core::format_double(r.scenario_op_p50, 3) + " / " +
                       core::format_double(r.scenario_op_p99, 3)});
  }
  if (r.ema_updates > 0) {
    table.add_row({"adaptive migrations triggered",
                   std::to_string(r.policy_migrations)});
    table.add_row({"suppressed (hysteresis / load)",
                   std::to_string(r.policy_suppressed_hysteresis) + " / " +
                       std::to_string(r.policy_suppressed_load)});
    table.add_row({"ping-pong reversals", std::to_string(r.policy_reversals)});
    table.add_row({"locality EMA updates", std::to_string(r.ema_updates)});
  }
  if (!cfg.fault_plan.empty() || cfg.lock_lease > 0.0) {
    table.add_row({"messages dropped/duplicated/delayed",
                   std::to_string(r.dropped_messages) + " / " +
                       std::to_string(r.duplicated_messages) + " / " +
                       std::to_string(r.delayed_messages)});
    table.add_row({"fault retries", std::to_string(r.fault_retries)});
    table.add_row({"lease expiries", std::to_string(r.lease_expiries)});
    table.add_row({"node crashes/restarts",
                   std::to_string(r.node_crashes) + " / " +
                       std::to_string(r.node_restarts)});
    table.add_row({"checkpoint recoveries", std::to_string(r.recoveries)});
  }
  std::cout << (opts.csv ? table.to_csv() : table.to_text());

  if (opts.trace_lines > 0) {
    std::cout << "\nlast protocol events:\n"
              << trace_log.render(opts.trace_lines);
  }
  if (!opts.trace_file.empty()) {
    std::ofstream out{opts.trace_file};
    if (!out) {
      throw core::ConfigError{"cannot open trace file '" + opts.trace_file +
                              "'"};
    }
    const std::size_t n = trace_log.to_jsonl(out);
    std::cerr << "wrote " << n << " events to " << opts.trace_file << "\n";
  }
  if (!opts.trace_json.empty()) {
    std::ofstream out{opts.trace_json};
    if (!out) {
      throw core::ConfigError{"cannot open trace file '" + opts.trace_json +
                              "'"};
    }
    const std::size_t n = trace_log.to_chrome_json(out);
    std::cerr << "wrote " << n << " events to " << opts.trace_json << "\n";
  }
  return 0;
}

int run_sweep(const CliOptions& opts) {
  const auto eq = opts.sweep.find('=');
  if (eq == std::string::npos) {
    throw core::ConfigError{"--sweep expects key=lo:hi:steps"};
  }
  const std::string key = opts.sweep.substr(0, eq);
  const std::string range = opts.sweep.substr(eq + 1);
  const auto c1 = range.find(':');
  const auto c2 = range.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    throw core::ConfigError{"--sweep expects key=lo:hi:steps"};
  }
  const double lo = std::stod(range.substr(0, c1));
  const double hi = std::stod(range.substr(c1 + 1, c2 - c1 - 1));
  const int steps = std::stoi(range.substr(c2 + 1));

  std::vector<core::SweepVariant> variants{{
      "value",
      [&](double x) {
        core::ExperimentConfig cfg = core::parse_config(opts.assignments);
        static const std::set<std::string> int_keys{
            "nodes",      "clients",    "servers1",         "servers2",
            "ws",         "min-blocks", "max-blocks",       "egoistic-clients",
            "seed",       "sc-nodes",   "sc-sources",       "sc-objects",
            "sc-fanout",  "sc-groups"};
        std::ostringstream v;
        if (int_keys.contains(key)) {
          v << static_cast<long long>(std::llround(x));
        } else {
          v << x;
        }
        core::apply_assignment(cfg, key, v.str());
        return cfg;
      },
  }};
  core::SweepOptions sweep_opts;
  sweep_opts.threads = opts.threads;
  sweep_opts.progress = &std::cerr;
  std::cerr << "sweep: " << key << " over [" << lo << ", " << hi << "] in "
            << steps << " steps on " << resolved_threads(opts)
            << " thread(s)\n";

  std::vector<core::SweepPoint> points;
  int exit_code = 0;
  try {
    points = core::run_sweep(core::linspace(lo, hi, steps), variants,
                             sweep_opts);
  } catch (const core::SweepError& e) {
    // Partial failure: print what completed, report the failure, exit 1.
    std::cerr << "omig_sim: " << e.what() << "\n";
    points = e.completed();
    exit_code = 1;
  }
  const auto table = core::sweep_table(key, variants, points, opts.metric);
  std::cout << core::to_string(opts.metric) << "\n"
            << (opts.csv ? table.to_csv() : table.to_text());
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions opts = parse_cli(argc, argv);
    if (opts.help) {
      print_help();
      return 0;
    }
    if (opts.list_scenarios) {
      for (const scenario::ScenarioInfo& info : scenario::list_scenarios()) {
        std::cout << info.name << "\t" << info.summary << "\n";
      }
      return 0;
    }
    return opts.sweep.empty() ? run_single(opts) : run_sweep(opts);
  } catch (const std::exception& e) {
    std::cerr << "omig_sim: " << e.what() << "\n";
    return 1;
  }
}
