// omig_node: one live node as a real OS process, plus a cluster launcher.
//
//   omig_node --serve --id N [--port P] [--port-file FILE]
//             [--data-dir DIR] [--fault-plan FILE]
//             [--metrics-port P [--metrics-port-file FILE]]
//             [--metrics-log-ms N]
//       Hosts node N: a LiveNode event loop behind a loopback frame server
//       (transport/wire). All demo object types are compiled in, so any
//       coordinator can create and migrate demo objects here. The process
//       exits when it receives a Shutdown frame. The bound port is printed
//       to stdout and, with --port-file, written to FILE (atomically, via
//       rename), which is how a launcher discovers an ephemeral port.
//       --data-dir attaches a durable store (docs/durability.md): installs
//       append fsynced WAL checkpoints before they are acked, and a
//       relaunch on the same directory recovers every acked object —
//       hosted state survives SIGKILL. --fault-plan loads a fault plan
//       whose disk directives (torn-write / short-write / fsync-fail /
//       wal-kill) perturb that store; injected power losses SIGKILL this
//       process at the scheduled point, which is how the crash matrix
//       rehearses kill-between-fsyncs.
//       --metrics-port additionally serves the process's metric registry
//       in Prometheus text format over HTTP (0 = ephemeral; docs/metrics.md),
//       and --metrics-log-ms logs snapshot deltas to stderr on that cadence.
//
//   omig_node --cluster N [--scenario NAME [--sources S] [--objects K]
//             [--bursts B] [--seed X] [--threads T]]
//             [--policy conventional|placement|adaptive|adaptive-load]
//             [--hysteresis X] [--transport tcp|async]
//       Spawns N child node processes and coordinates them as a remote
//       LiveSystem. Without --scenario it drives the office workflow
//       (docs/transport.md); with --scenario it replays the named
//       scenario-pack workload (docs/scenarios.md) across the cluster —
//       the same burst streams the simulator measures, on N+1 real
//       processes over TCP. --policy selects the coordinator's move()
//       semantics (docs/policies.md); the adaptive kinds print one line
//       of policy telemetry at the end of the run.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "net/event_loop.hpp"
#include "obs/delta_logger.hpp"
#include "obs/families.hpp"
#include "runtime/demo_types.hpp"
#include "runtime/live_system.hpp"
#include "scenario/live_driver.hpp"
#include "scenario/scenario.hpp"
#include "store/store.hpp"
#include "transport/bridge.hpp"
#include "transport/metrics_exporter.hpp"
#include "transport/node_server.hpp"

namespace {

using namespace omig;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --serve --id N [--port P] [--port-file FILE]\n"
               "              [--data-dir DIR] [--fault-plan FILE]\n"
               "              [--metrics-port P [--metrics-port-file FILE]]\n"
               "              [--metrics-log-ms N]\n"
               "       %s --cluster N [--scenario NAME [--sources S]\n"
               "              [--objects K] [--bursts B] [--seed X]\n"
               "              [--threads T]]\n"
               "              [--policy conventional|placement|adaptive|"
               "adaptive-load]\n"
               "              [--hysteresis X] [--transport tcp|async]\n",
               argv0, argv0);
  return 2;
}

/// --serve options beyond the frame-server basics.
struct ServeOptions {
  int metrics_port = -1;  ///< -1 = no exporter; 0 = ephemeral
  std::string metrics_port_file;
  long metrics_log_ms = 0;  ///< 0 = no delta logging
  std::string data_dir;     ///< durable store directory; empty = volatile
  std::string fault_plan;   ///< plan file with disk directives; empty = none
};

/// Publishes the bound port for the launcher: write-then-rename, so a
/// reader never sees a half-written file.
bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    if (!out) return false;
    out << port << "\n";
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

int serve(std::size_t id, std::uint16_t port, const std::string& port_file,
          const ServeOptions& serve_opts) {
  // Declared before the node: LiveNode::set_store requires the store to
  // outlive the node, and ~LiveNode joins the event-loop thread — which
  // may still be checkpointing into the store on the early-return error
  // paths below. Destruction order (node first, then store/injector) is
  // what makes every `return` after node.start() safe.
  std::unique_ptr<fault::FaultInjector> injector;
  store::DurableStore durable;
  const auto factories = runtime::demo_factories();
  runtime::LiveNode node{id, &factories};

  // Durable store: open (recovering any previous incarnation's state)
  // and preload the hosted objects before the listener comes up, so the
  // coordinator never races an empty node.
  if (!serve_opts.data_dir.empty()) {
    if (!serve_opts.fault_plan.empty()) {
      try {
        injector = std::make_unique<fault::FaultInjector>(
            fault::load_plan(serve_opts.fault_plan));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "omig_node %zu: bad fault plan: %s\n", id,
                     e.what());
        return 1;
      }
    }
    store::DurableStore::OpenOptions sopts;
    sopts.dir = serve_opts.data_dir;
    sopts.injector = injector.get();
    sopts.node = id;
    sopts.process_kill = true;  // injected power loss = SIGKILL, for real
    if (!durable.open(std::move(sopts))) {
      std::fprintf(stderr, "omig_node %zu: cannot open data dir %s\n", id,
                   serve_opts.data_dir.c_str());
      return 1;
    }
    node.set_store(&durable);
    const std::size_t restored = node.preload_from_store();
    const auto info = durable.recovery();
    std::printf(
        "omig_node %zu recovered %zu objects (snapshot=%d, wal records=%llu, "
        "torn tails=%llu)\n",
        id, restored, info.snapshot_loaded ? 1 : 0,
        static_cast<unsigned long long>(info.replayed_records),
        static_cast<unsigned long long>(info.truncations));
    std::fflush(stdout);
  }
  node.start();

  // One proactor loop carries all of this process's socket I/O: the frame
  // server's connections and the metrics scrape endpoint. Declared before
  // the exporter and server so it outlives both (their teardown posts
  // final tasks onto it).
  net::EventLoop loop;
  loop.start();
  std::printf("omig_node %zu event loop backend: %s\n", id,
              loop.backend_name());
  std::fflush(stdout);

  // Pre-register every standard family so a scrape on a fresh node shows
  // the complete schema at zero instead of an empty page.
  obs::register_standard_metrics();
  transport::MetricsExporter exporter{obs::MetricsRegistry::global(), &loop};
  if (serve_opts.metrics_port >= 0) {
    const std::uint16_t bound = exporter.start(
        static_cast<std::uint16_t>(serve_opts.metrics_port));
    if (bound == 0) {
      std::fprintf(stderr, "omig_node %zu: cannot bind metrics port %d\n", id,
                   serve_opts.metrics_port);
      return 1;
    }
    if (!serve_opts.metrics_port_file.empty() &&
        !write_port_file(serve_opts.metrics_port_file, bound)) {
      std::fprintf(stderr, "omig_node %zu: cannot write %s\n", id,
                   serve_opts.metrics_port_file.c_str());
      return 1;
    }
    std::printf("omig_node %zu metrics on http://127.0.0.1:%u/metrics\n", id,
                bound);
    std::fflush(stdout);
  }
  obs::DeltaLogger delta_logger{obs::MetricsRegistry::global(), std::cerr};
  if (serve_opts.metrics_log_ms > 0) {
    delta_logger.start(std::chrono::milliseconds{serve_opts.metrics_log_ms});
  }

  // The server thread flags the Shutdown frame so main can exit; the
  // bridge still forwards it as MsgStop, which ends the node loop.
  std::mutex mutex;
  std::condition_variable cv;
  bool stopping = false;
  transport::NodeServer server{
      [&](transport::Frame frame) {
        const bool is_shutdown =
            std::holds_alternative<transport::WireShutdown>(frame.payload);
        auto reply =
            transport::serve_on_mailbox(node.mailbox(), std::move(frame));
        if (is_shutdown) {
          {
            std::lock_guard lock{mutex};
            stopping = true;
          }
          cv.notify_all();
        }
        return reply;
      },
      &loop};

  const std::uint16_t bound = server.start(port);
  if (bound == 0) {
    std::fprintf(stderr, "omig_node %zu: cannot bind port %u\n", id, port);
    return 1;
  }
  if (!port_file.empty() && !write_port_file(port_file, bound)) {
    std::fprintf(stderr, "omig_node %zu: cannot write %s\n", id,
                 port_file.c_str());
    return 1;
  }
  std::printf("omig_node %zu listening on 127.0.0.1:%u\n", id, bound);
  std::fflush(stdout);

  {
    std::unique_lock lock{mutex};
    cv.wait(lock, [&] { return stopping; });
  }
  node.stop();
  server.stop();
  std::printf("omig_node %zu: processed %llu messages, bye\n", id,
              static_cast<unsigned long long>(node.processed()));
  return 0;
}

/// Path of this binary, for re-exec'ing children.
std::string self_exe(const char* argv0) {
  std::error_code ec;
  auto path = std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? std::string{argv0} : path.string();
}

struct Child {
  pid_t pid = -1;
  std::string port_file;
};

void kill_children(const std::vector<Child>& children) {
  for (const Child& child : children) {
    if (child.pid > 0) kill(child.pid, SIGKILL);
  }
  for (const Child& child : children) {
    if (child.pid > 0) waitpid(child.pid, nullptr, 0);
  }
}

/// --cluster options: which workload the coordinator drives.
struct ClusterOptions {
  std::string scenario;  ///< empty = the office workflow demo
  int sources = 8;
  int objects = 24;
  int bursts = 10;       ///< bursts per source
  int threads = 4;
  std::uint64_t seed = 1;
  /// move()/visit() semantics of the coordinator (docs/policies.md).
  runtime::MovePolicy policy = runtime::MovePolicy::Placement;
  double hysteresis = 0.2;  ///< adaptive kinds: EMA share margin
  /// Coordinator-side transport backend (docs/transport.md): the blocking
  /// thread-per-peer client or the event-loop proactor.
  runtime::TransportKind transport = runtime::TransportKind::Tcp;
};

/// One line of adaptive-policy telemetry, when the run collected any.
void print_policy_stats(const runtime::LiveSystem& sys,
                        runtime::MovePolicy policy) {
  if (sys.ema_updates() == 0) return;
  std::printf(
      "cluster policy %s: migrations=%llu suppressed=%llu/%llu "
      "reversals=%llu ema-updates=%llu\n",
      runtime::to_string(policy),
      static_cast<unsigned long long>(sys.policy_migrations()),
      static_cast<unsigned long long>(sys.policy_suppressed_hysteresis()),
      static_cast<unsigned long long>(sys.policy_suppressed_load()),
      static_cast<unsigned long long>(sys.policy_reversals()),
      static_cast<unsigned long long>(sys.ema_updates()));
}

/// Replays a scenario-pack workload across the remote cluster. Returns 0
/// when every burst completed without a failed invocation.
int run_cluster_scenario(runtime::LiveSystem& sys, std::size_t count,
                         const ClusterOptions& copts) {
  scenario::ScenarioOptions sopts;
  sopts.name = copts.scenario;
  sopts.nodes = static_cast<int>(count);
  sopts.sources = copts.sources;
  sopts.objects = copts.objects;
  const auto scen = scenario::make_scenario(sopts);

  scenario::LiveScenarioOptions lopts;
  lopts.bursts_per_source = copts.bursts;
  lopts.threads = copts.threads;
  lopts.seed = copts.seed;
  const scenario::LiveScenarioResult r =
      scenario::run_live_scenario(sys, *scen, lopts);

  std::printf(
      "cluster scenario %s: bursts=%llu ops=%llu moves=%llu visits=%llu "
      "refusals=%llu failures=%llu ops/s=%.0f migrations=%llu\n",
      copts.scenario.c_str(), static_cast<unsigned long long>(r.bursts),
      static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.moves),
      static_cast<unsigned long long>(r.visits),
      static_cast<unsigned long long>(r.refusals),
      static_cast<unsigned long long>(r.failures), r.ops_per_sec,
      static_cast<unsigned long long>(sys.migrations()));
  if (r.failures != 0) {
    std::fprintf(stderr, "cluster: scenario had failed operations\n");
    return 1;
  }
  return 0;
}

int cluster(const char* argv0, std::size_t count,
            const ClusterOptions& copts) {
  char dir_template[] = "omig-cluster-XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string dir = dir_template;
  const std::string exe = self_exe(argv0);

  // Launch the node processes; they pick ephemeral ports and publish them.
  std::vector<Child> children;
  for (std::size_t i = 0; i < count; ++i) {
    Child child;
    child.port_file = dir + "/node-" + std::to_string(i) + ".port";
    const std::string id = std::to_string(i);
    child.pid = fork();
    if (child.pid == 0) {
      execl(exe.c_str(), exe.c_str(), "--serve", "--id", id.c_str(),
            "--port-file", child.port_file.c_str(),
            static_cast<char*>(nullptr));
      std::perror("execl");
      _exit(127);
    }
    if (child.pid < 0) {
      std::perror("fork");
      kill_children(children);
      return 1;
    }
    children.push_back(std::move(child));
  }

  // Wait for every port file (bounded).
  std::vector<transport::Peer> peers;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  for (const Child& child : children) {
    std::uint16_t port = 0;
    while (port == 0) {
      std::ifstream in{child.port_file};
      if (!(in >> port) || port == 0) {
        port = 0;
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "cluster: node did not come up\n");
          kill_children(children);
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
      }
    }
    peers.push_back(transport::Peer{"127.0.0.1", port});
  }
  std::printf("cluster: %zu node processes up\n", count);

  // Drive the chosen workload as a remote coordinator: a scenario-pack
  // replay when --scenario was given, the office workflow demo otherwise.
  int rc = 0;
  if (!copts.scenario.empty()) {
    runtime::LiveSystem::Options opts;
    opts.remote_nodes = peers;
    opts.policy = copts.policy;
    opts.hysteresis_band = copts.hysteresis;
    opts.transport = copts.transport;
    runtime::LiveSystem sys{opts};
    runtime::register_demo_types(sys);
    sys.start();
    rc = run_cluster_scenario(sys, count, copts);
    print_policy_stats(sys, copts.policy);
    sys.shutdown_remote_nodes();
    sys.stop();
  } else {
    runtime::LiveSystem::Options opts;
    opts.remote_nodes = peers;
    opts.policy = copts.policy;
    opts.hysteresis_band = copts.hysteresis;
    opts.transport = copts.transport;
    runtime::LiveSystem sys{opts};
    runtime::register_demo_types(sys);
    sys.start();

    bool ok = sys.create("case-1",
                         runtime::make_state("case-file", {{"log", ""}}), 0);
    ok = sys.create("ledger",
                    runtime::make_state("ledger", {{"total", "0"}}),
                    count - 1) &&
         ok;
    ok = ok && sys.attach("case-1", "ledger", "billing");
    if (ok) {
      auto intake = sys.visit("case-1", 1 % count, "intake");
      for (int i = 0; i < 5; ++i) {
        ok = sys.invoke_from(1 % count, "case-1", "append", "intake").ok && ok;
      }
      sys.end(intake);
      auto billing = sys.move("case-1", 2 % count, "billing");
      ok = billing.granted && ok;
      ok = sys.invoke_from(2 % count, "ledger", "bill", "").ok && ok;
      ok = sys.invoke_from(2 % count, "case-1", "append", "billed").ok && ok;
      sys.end(billing);
      const auto entries = sys.invoke("case-1", "entries", "");
      const auto total = sys.invoke("ledger", "total", "");
      ok = ok && entries.ok && entries.value == "6" && total.ok &&
           total.value == "10";
      std::printf(
          "cluster: entries=%s total=%s migrations=%llu invocations=%llu\n",
          entries.value.c_str(), total.value.c_str(),
          static_cast<unsigned long long>(sys.migrations()),
          static_cast<unsigned long long>(sys.invocations()));
      print_policy_stats(sys, copts.policy);
    }
    if (!ok) {
      std::fprintf(stderr, "cluster: workflow FAILED\n");
      rc = 1;
    }
    sys.shutdown_remote_nodes();
    sys.stop();
  }

  // The shutdown frames make every child exit on its own; reap them.
  for (const Child& child : children) {
    int status = 0;
    if (waitpid(child.pid, &status, 0) != child.pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "cluster: node process exited abnormally\n");
      rc = 1;
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (rc == 0) std::printf("cluster: all node processes exited cleanly\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve_mode = false;
  std::size_t id = 0;
  std::uint16_t port = 0;
  std::string port_file;
  std::size_t cluster_count = 0;
  ServeOptions serve_opts;
  ClusterOptions cluster_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--serve") {
      serve_mode = true;
    } else if (arg == "--id") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      id = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port_file = v;
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      serve_opts.metrics_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--metrics-port-file") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      serve_opts.metrics_port_file = v;
    } else if (arg == "--metrics-log-ms") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      serve_opts.metrics_log_ms = std::strtol(v, nullptr, 10);
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      serve_opts.data_dir = v;
    } else if (arg == "--fault-plan") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      serve_opts.fault_plan = v;
    } else if (arg == "--cluster") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_count = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.scenario = v;
    } else if (arg == "--sources") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.sources = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--objects") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.objects = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--bursts") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.bursts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.threads = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--policy") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      try {
        cluster_opts.policy = runtime::move_policy_from_string(v);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage(argv[0]);
      }
    } else if (arg == "--hysteresis") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cluster_opts.hysteresis = std::strtod(v, nullptr);
    } else if (arg == "--transport") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      const std::string kind = v;
      if (kind == "tcp") {
        cluster_opts.transport = runtime::TransportKind::Tcp;
      } else if (kind == "async") {
        cluster_opts.transport = runtime::TransportKind::AsyncTcp;
      } else {
        std::fprintf(stderr, "unknown transport '%s' (tcp|async)\n", v);
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  if (serve_mode) return serve(id, port, port_file, serve_opts);
  if (cluster_count >= 2) {
    return cluster(argv[0], cluster_count, cluster_opts);
  }
  return usage(argv[0]);
}
