#include "fault/injector.hpp"

#include "util/assert.hpp"

namespace omig::fault {

namespace {
/// Dedicated RNG stream index so injector draws never collide with the
/// workload/network streams derived from the same master seed.
constexpr std::uint64_t kInjectorStream = 0xFA17;
/// Separate stream for disk-fault draws: adding disk rules to a plan must
/// never perturb the link-fault sequence of the same seed (and vice
/// versa), the same discipline per-cell sweep seeds follow.
constexpr std::uint64_t kDiskStream = 0xD15C;
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_{std::move(plan)},
      rng_{plan_.seed, kInjectorStream},
      disk_rng_{plan_.seed, kDiskStream} {}

Decision FaultInjector::on_message(std::size_t from, std::size_t to) {
  Decision d;
  const LinkFault f = plan_.effective(from, to);
  if (f.drop <= 0.0 && f.duplicate <= 0.0 && f.delay <= 0.0) return d;
  {
    std::lock_guard lock{mutex_};
    if (f.drop > 0.0) d.drop = rng_.uniform() < f.drop;
    if (f.duplicate > 0.0) d.duplicate = rng_.uniform() < f.duplicate;
  }
  d.delay = f.delay;
  if (d.drop) {
    counters_.dropped.fetch_add(1, std::memory_order_relaxed);
  } else if (d.duplicate) {
    counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
  }
  if (!d.drop && d.delay > 0.0) {
    counters_.delayed.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

DiskDecision FaultInjector::on_wal_append(std::size_t node) {
  DiskDecision d;
  const DiskFault f = plan_.effective_disk(node);
  const bool has_schedule = !plan_.wal_kills.empty();
  if (!has_schedule && f.torn_write <= 0.0 && f.short_write <= 0.0) return d;
  bool scheduled = false;
  {
    std::lock_guard lock{mutex_};
    const std::uint64_t seen = wal_appends_[node]++;
    for (const WalKill& k : plan_.wal_kills) {
      if (k.node == node && seen == k.after_appends) {
        (k.torn ? d.torn : d.kill) = true;
        scheduled = true;
      }
    }
    if (!d.torn && !d.kill) {
      if (f.torn_write > 0.0 && disk_rng_.uniform() < f.torn_write) {
        d.torn = true;
      } else if (f.short_write > 0.0 &&
                 disk_rng_.uniform() < f.short_write) {
        d.short_write = true;
      }
    }
  }
  if (d.torn) {
    counters_.torn_writes.fetch_add(1, std::memory_order_relaxed);
  } else if (d.short_write) {
    counters_.short_writes.fetch_add(1, std::memory_order_relaxed);
  }
  if (scheduled) {
    counters_.wal_kills.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

bool FaultInjector::fsync_fails(std::size_t node) {
  const DiskFault f = plan_.effective_disk(node);
  if (f.fsync_fail <= 0.0) return false;
  bool fails = false;
  {
    std::lock_guard lock{mutex_};
    fails = disk_rng_.uniform() < f.fsync_fail;
  }
  if (fails) {
    counters_.fsync_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return fails;
}

NodeHealth::NodeHealth(sim::Engine& engine, std::size_t nodes) {
  gates_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    gates_.push_back(std::make_unique<sim::Gate>(engine));
  }
}

bool NodeHealth::up(std::size_t node) const {
  OMIG_REQUIRE(node < gates_.size(), "node index out of range");
  return gates_[node]->is_open();
}

void NodeHealth::mark_down(std::size_t node) {
  OMIG_REQUIRE(node < gates_.size(), "node index out of range");
  if (!gates_[node]->is_open()) return;
  gates_[node]->close();
  ++crashes_;
}

void NodeHealth::mark_up(std::size_t node) {
  OMIG_REQUIRE(node < gates_.size(), "node index out of range");
  if (gates_[node]->is_open()) return;
  ++restarts_;
  gates_[node]->open();
}

sim::Task NodeHealth::wait_up(std::size_t node) {
  OMIG_REQUIRE(node < gates_.size(), "node index out of range");
  // Re-check after resuming: an earlier-scheduled process may have crashed
  // the node again between the open() and our resumption.
  while (!gates_[node]->is_open()) {
    co_await gates_[node]->wait();
  }
}

namespace {

sim::Task replay_crash(sim::Engine& engine, CrashEvent crash,
                       NodeHealth& health) {
  co_await engine.delay(crash.at);
  health.mark_down(crash.node);
  if (crash.restarts()) {
    co_await engine.delay(crash.restart_after);
    health.mark_up(crash.node);
  }
}

}  // namespace

void spawn_crash_driver(sim::Engine& engine, const FaultPlan& plan,
                        NodeHealth& health) {
  for (const CrashEvent& crash : plan.crashes) {
    OMIG_REQUIRE(crash.node < health.size(),
                 "crash schedule names a node outside the system");
    engine.spawn(replay_crash(engine, crash, health));
  }
}

}  // namespace omig::fault
