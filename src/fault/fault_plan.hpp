// Declarative fault plans for chaos testing.
//
// A FaultPlan describes, ahead of a run, every misbehaviour the environment
// will exhibit: per-link message faults (drop / delay / duplicate with
// fixed probabilities) and a schedule of node crashes with optional
// restarts. The same plan drives both execution backends — the threaded
// live runtime perturbs real mailbox deliveries, the discrete-event
// simulator schedules the equivalent events on simulated time — so one
// chaos schedule exercises both implementations of the paper's protocol.
//
// Plans are deterministic: all probabilistic decisions are drawn from a
// seed-carried RNG stream (see FaultInjector), never from global state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace omig::fault {

/// Wildcard node index: matches any node on that side of a link.
inline constexpr std::size_t kAnyNode = static_cast<std::size_t>(-1);

/// Message fault on a (from, to) link; either side may be kAnyNode.
/// Probabilities are per message; `delay` is additive (simulated time units
/// in the simulator, milliseconds in the live runtime).
struct LinkFault {
  std::size_t from = kAnyNode;
  std::size_t to = kAnyNode;
  double drop = 0.0;       ///< P(message is lost)
  double duplicate = 0.0;  ///< P(message is delivered twice)
  double delay = 0.0;      ///< extra delivery delay, always applied

  [[nodiscard]] bool matches(std::size_t f, std::size_t t) const {
    return (from == kAnyNode || from == f) && (to == kAnyNode || to == t);
  }
};

/// One scheduled node failure. `at` is time since the start of the run;
/// `restart_after < 0` means the node never comes back.
struct CrashEvent {
  std::size_t node = 0;
  double at = 0.0;
  double restart_after = -1.0;

  [[nodiscard]] bool restarts() const { return restart_after >= 0.0; }
};

/// Probabilistic disk fault on a node's durable store (src/store/). The
/// node may be kAnyNode. Probabilities are per WAL operation:
///   torn_write  — the append persists only a prefix of the record and the
///                 store dies (the tear IS the power loss; recovery must
///                 discard the tail). Only meaningful on stores that can
///                 be "rebooted" — a process relaunch or a reopen.
///   short_write — the kernel persists fewer bytes than asked; the store
///                 truncates back and rewrites (recoverable, counted).
///   fsync_fail  — fsync reports failure: the record is applied but its
///                 durability is not promised (degraded mode).
struct DiskFault {
  std::size_t node = kAnyNode;
  double torn_write = 0.0;
  double short_write = 0.0;
  double fsync_fail = 0.0;

  [[nodiscard]] bool matches(std::size_t n) const {
    return node == kAnyNode || node == n;
  }
};

/// One scheduled kill-between-fsyncs: after the store on `node` has
/// appended `after_appends` WAL records, the very next append dies at the
/// power-loss point — after the write, before the fsync (`torn` false), or
/// mid-write with only a prefix on disk (`torn` true). In an omig_node
/// process the store raises SIGKILL; in-process stores go dead and refuse
/// further writes, so a reopen simulates the reboot.
struct WalKill {
  std::size_t node = 0;
  std::uint64_t after_appends = 0;
  bool torn = false;
};

/// The full declarative schedule. An empty (default) plan perturbs nothing:
/// both backends behave bit-identically to a run without fault injection.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Timeout charged per retransmission in the simulator's cost model
  /// (one lost message costs one timeout before the retry is sent).
  double retry_timeout = 4.0;
  std::vector<LinkFault> links;
  std::vector<CrashEvent> crashes;
  std::vector<DiskFault> disk;
  std::vector<WalKill> wal_kills;

  [[nodiscard]] bool empty() const {
    return links.empty() && crashes.empty() && disk.empty() &&
           wal_kills.empty();
  }

  /// Combined fault for a link: probabilities of all matching rules compose
  /// (independent loss processes); delays add.
  [[nodiscard]] LinkFault effective(std::size_t from, std::size_t to) const;

  /// Combined disk fault for a node's store: probabilities of all matching
  /// rules compose (independent failure processes), mirroring effective().
  [[nodiscard]] DiskFault effective_disk(std::size_t node) const;

  /// One-line summary for logs ("2 link faults, 1 crash, seed 42").
  [[nodiscard]] std::string describe() const;
};

/// Parses the textual plan format, one directive per line:
///
///     # comment; blank lines ignored
///     seed 42
///     retry-timeout 4
///     drop <from> <to> <prob>       # '*' = any node
///     delay <from> <to> <time>
///     dup <from> <to> <prob>
///     crash <node> <at> [<restart-after>]
///     # disk faults (durable store, docs/durability.md):
///     torn-write <node> <prob>      # '*' = any node's store
///     short-write <node> <prob>
///     fsync-fail <node> <prob>
///     wal-kill <node> <after-appends>        # SIGKILL between fsyncs
///     wal-torn-kill <node> <after-appends>   # tear the append, then die
///
/// Throws FaultPlanError (with line number) on malformed input.
FaultPlan parse_plan(std::istream& in);
FaultPlan parse_plan_text(const std::string& text);
FaultPlan load_plan(const std::string& path);

class FaultPlanError : public std::runtime_error {
 public:
  explicit FaultPlanError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace omig::fault
