// Seed-driven fault injector shared by both execution backends.
//
// The FaultInjector turns a declarative FaultPlan into per-message
// decisions (drop / duplicate / delay) drawn from its own xoshiro stream,
// so a fixed seed yields a fixed fault sequence per delivery order. The
// live runtime asks it on every mailbox delivery; the simulator asks it on
// every message leg. NodeHealth tracks scheduled crashes for the
// simulator (the live runtime keeps its own health state because crashed
// threads need joining, not gates), and spawn_crash_driver() replays the
// plan's crash schedule on a sim::Engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/engine.hpp"
#include "sim/gate.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace omig::fault {

/// Monotonic robustness counters. Written by the injector and by the
/// protocol layers that act on its decisions (retries, lease expiries,
/// crash-recovery installs); atomics because the live runtime updates them
/// from many threads.
struct FaultCounters {
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> duplicated{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> retries{0};        ///< retransmissions sent
  std::atomic<std::uint64_t> lease_expiries{0};
  std::atomic<std::uint64_t> crashes{0};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> recoveries{0};     ///< objects reinstalled
  // Disk-fault dimension (durable store, docs/durability.md).
  std::atomic<std::uint64_t> torn_writes{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> fsync_failures{0};
  std::atomic<std::uint64_t> wal_kills{0};      ///< scheduled power losses
};

/// Per-message verdict for one delivery attempt.
struct Decision {
  bool drop = false;
  bool duplicate = false;
  double delay = 0.0;
};

/// Verdict for one WAL append on a node's durable store. At most one of
/// the flags is set per decision (a tear already implies the store dies).
struct DiskDecision {
  bool torn = false;         ///< persist a prefix only, then die
  bool short_write = false;  ///< partial write; store truncates + rewrites
  bool kill = false;         ///< die between the write and its fsync
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of one message on the (from, to) link. Thread-safe;
  /// deterministic in the order of calls. Counts what it decides.
  Decision on_message(std::size_t from, std::size_t to);

  /// Decides the fate of one WAL append on `node`'s durable store:
  /// scheduled wal-kills fire on the exact append count, probabilistic
  /// torn/short writes draw from a dedicated splitmix64-derived stream
  /// (independent of the link-fault stream, so adding disk rules never
  /// perturbs the message-fault sequence). Thread-safe; deterministic in
  /// the per-node order of calls. Counts what it decides.
  DiskDecision on_wal_append(std::size_t node);

  /// True when this fsync on `node`'s store must report failure.
  bool fsync_fails(std::size_t node);

  [[nodiscard]] FaultCounters& counters() { return counters_; }
  [[nodiscard]] const FaultCounters& counters() const { return counters_; }

 private:
  FaultPlan plan_;
  std::mutex mutex_;
  sim::Rng rng_;
  sim::Rng disk_rng_;
  /// WAL appends seen per store identity, for the wal-kill schedules.
  std::unordered_map<std::size_t, std::uint64_t> wal_appends_;
  FaultCounters counters_;
};

/// Simulator-side node availability. Gates close while a node is down;
/// processes needing the node co_await wait_up().
class NodeHealth {
 public:
  NodeHealth(sim::Engine& engine, std::size_t nodes);

  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] bool up(std::size_t node) const;
  void mark_down(std::size_t node);
  void mark_up(std::size_t node);

  /// Resumes once the node is up (immediately if it already is).
  sim::Task wait_up(std::size_t node);

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

 private:
  std::vector<std::unique_ptr<sim::Gate>> gates_;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

/// Spawns a root process into `engine` that replays `plan`'s crash
/// schedule against `health`. Both references must outlive the run.
void spawn_crash_driver(sim::Engine& engine, const FaultPlan& plan,
                        NodeHealth& health);

}  // namespace omig::fault
