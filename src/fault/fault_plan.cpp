#include "fault/fault_plan.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace omig::fault {

LinkFault FaultPlan::effective(std::size_t from, std::size_t to) const {
  LinkFault out;
  out.from = from;
  out.to = to;
  // Independent loss/duplication processes compose multiplicatively:
  // P(survives all) = prod(1 - p_i). Delays simply add.
  double survive = 1.0;
  double single = 1.0;
  for (const LinkFault& f : links) {
    if (!f.matches(from, to)) continue;
    survive *= 1.0 - f.drop;
    single *= 1.0 - f.duplicate;
    out.delay += f.delay;
  }
  out.drop = 1.0 - survive;
  out.duplicate = 1.0 - single;
  return out;
}

DiskFault FaultPlan::effective_disk(std::size_t node) const {
  DiskFault out;
  out.node = node;
  double no_tear = 1.0;
  double no_short = 1.0;
  double no_fsync_fail = 1.0;
  for (const DiskFault& f : disk) {
    if (!f.matches(node)) continue;
    no_tear *= 1.0 - f.torn_write;
    no_short *= 1.0 - f.short_write;
    no_fsync_fail *= 1.0 - f.fsync_fail;
  }
  out.torn_write = 1.0 - no_tear;
  out.short_write = 1.0 - no_short;
  out.fsync_fail = 1.0 - no_fsync_fail;
  return out;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << links.size() << " link fault" << (links.size() == 1 ? "" : "s")
     << ", " << crashes.size() << " crash"
     << (crashes.size() == 1 ? "" : "es");
  if (!disk.empty()) {
    os << ", " << disk.size() << " disk fault" << (disk.size() == 1 ? "" : "s");
  }
  if (!wal_kills.empty()) {
    os << ", " << wal_kills.size() << " wal-kill"
       << (wal_kills.size() == 1 ? "" : "s");
  }
  os << ", seed " << seed;
  return os.str();
}

namespace {

std::size_t parse_node(const std::string& tok, int line) {
  if (tok == "*") return kAnyNode;
  try {
    return static_cast<std::size_t>(std::stoull(tok));
  } catch (const std::exception&) {
    throw FaultPlanError{"line " + std::to_string(line) +
                         ": expected node index or '*', got '" + tok + "'"};
  }
}

double parse_number(const std::string& tok, int line) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) throw std::invalid_argument{tok};
    return v;
  } catch (const std::exception&) {
    throw FaultPlanError{"line " + std::to_string(line) +
                         ": expected a number, got '" + tok + "'"};
  }
}

double parse_probability(const std::string& tok, int line) {
  const double p = parse_number(tok, line);
  if (p < 0.0 || p > 1.0) {
    throw FaultPlanError{"line " + std::to_string(line) +
                         ": probability out of [0,1]: '" + tok + "'"};
  }
  return p;
}

}  // namespace

FaultPlan parse_plan(std::istream& in) {
  FaultPlan plan;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls{raw};
    std::string op;
    if (!(ls >> op)) continue;  // blank / comment-only line

    std::vector<std::string> args;
    for (std::string tok; ls >> tok;) args.push_back(tok);
    auto want = [&](std::size_t lo, std::size_t hi) {
      if (args.size() < lo || args.size() > hi) {
        throw FaultPlanError{"line " + std::to_string(line) + ": '" + op +
                             "' takes " + std::to_string(lo) +
                             (hi != lo ? ".." + std::to_string(hi) : "") +
                             " arguments"};
      }
    };

    if (op == "seed") {
      want(1, 1);
      plan.seed = static_cast<std::uint64_t>(
          parse_number(args[0], line));
    } else if (op == "retry-timeout") {
      want(1, 1);
      plan.retry_timeout = parse_number(args[0], line);
      if (plan.retry_timeout < 0.0) {
        throw FaultPlanError{"line " + std::to_string(line) +
                             ": retry-timeout must be >= 0"};
      }
    } else if (op == "drop" || op == "dup" || op == "delay") {
      want(3, 3);
      LinkFault f;
      f.from = parse_node(args[0], line);
      f.to = parse_node(args[1], line);
      if (op == "drop") {
        f.drop = parse_probability(args[2], line);
      } else if (op == "dup") {
        f.duplicate = parse_probability(args[2], line);
      } else {
        f.delay = parse_number(args[2], line);
        if (f.delay < 0.0) {
          throw FaultPlanError{"line " + std::to_string(line) +
                               ": delay must be >= 0"};
        }
      }
      plan.links.push_back(f);
    } else if (op == "crash") {
      want(2, 3);
      CrashEvent c;
      c.node = parse_node(args[0], line);
      if (c.node == kAnyNode) {
        throw FaultPlanError{"line " + std::to_string(line) +
                             ": crash needs a concrete node"};
      }
      c.at = parse_number(args[1], line);
      if (args.size() == 3) c.restart_after = parse_number(args[2], line);
      if (c.at < 0.0) {
        throw FaultPlanError{"line " + std::to_string(line) +
                             ": crash time must be >= 0"};
      }
      plan.crashes.push_back(c);
    } else if (op == "torn-write" || op == "short-write" ||
               op == "fsync-fail") {
      want(2, 2);
      DiskFault f;
      f.node = parse_node(args[0], line);
      const double p = parse_probability(args[1], line);
      if (op == "torn-write") {
        f.torn_write = p;
      } else if (op == "short-write") {
        f.short_write = p;
      } else {
        f.fsync_fail = p;
      }
      plan.disk.push_back(f);
    } else if (op == "wal-kill" || op == "wal-torn-kill") {
      want(2, 2);
      WalKill k;
      k.node = parse_node(args[0], line);
      if (k.node == kAnyNode) {
        throw FaultPlanError{"line " + std::to_string(line) + ": '" + op +
                             "' needs a concrete node"};
      }
      const double after = parse_number(args[1], line);
      if (after < 0.0) {
        throw FaultPlanError{"line " + std::to_string(line) +
                             ": append count must be >= 0"};
      }
      k.after_appends = static_cast<std::uint64_t>(after);
      k.torn = op == "wal-torn-kill";
      plan.wal_kills.push_back(k);
    } else {
      throw FaultPlanError{"line " + std::to_string(line) +
                           ": unknown directive '" + op + "'"};
    }
  }
  return plan;
}

FaultPlan parse_plan_text(const std::string& text) {
  std::istringstream in{text};
  return parse_plan(in);
}

FaultPlan load_plan(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw FaultPlanError{"cannot open fault plan '" + path + "'"};
  return parse_plan(in);
}

}  // namespace omig::fault
