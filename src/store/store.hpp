// DurableStore: the log-structured local store behind a node or
// coordinator (docs/durability.md).
//
// One directory, two files with fixed names:
//
//     <dir>/wal.log       CRC32-framed append-only write-ahead log
//     <dir>/snapshot.bin  compacted materialized view, atomic-installed
//
// Writes append a WAL record (fsynced before the caller acks, unless the
// caller opted into batched syncs) and fold into an in-memory
// materialized view. Compaction snapshots the view with
// atomic_install() and truncates the WAL; `last_seq` in the snapshot
// plus monotonic sequence numbers make recovery idempotent even when a
// crash lands between the snapshot install and the WAL truncation —
// replay simply skips records the snapshot already covers.
//
// Recovery order on open(): load + CRC-validate the snapshot (a corrupt
// snapshot is treated as absent), replay the WAL's valid prefix on top,
// discard any torn tail. The durability contract: no record acked as
// durable is ever lost, no torn record is ever applied.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace omig::store {

class DurableStore {
public:
  struct OpenOptions {
    std::string dir;
    /// Create `dir` (and parents) when missing.
    bool create_if_missing = true;
    /// fsync every append before returning (the default contract). Off,
    /// callers batch with sync() — leases use this internally regardless.
    bool sync_each_append = true;
    /// Auto-compact after this many appends since the last compaction;
    /// 0 disables auto-compaction (callers invoke compact() themselves).
    std::uint64_t compact_every = 0;
    /// Disk-fault injection seam; null runs faithfully.
    fault::FaultInjector* injector = nullptr;
    /// This store's identity for disk-fault rules (kAnyNode for stores
    /// not owned by a numbered node, e.g. the coordinator's).
    std::size_t node = fault::kAnyNode;
    /// Injected power losses SIGKILL the process (omig_node mode)
    /// instead of just marking the store dead.
    bool process_kill = false;
  };

  /// What open() recovered, for counters and logs. Distinguishes objects
  /// that came from the snapshot vs the WAL replay so the runtime can
  /// report durable recoveries separately from in-memory reinstalls.
  struct RecoveryInfo {
    bool snapshot_loaded = false;
    std::uint64_t snapshot_objects = 0;
    std::uint64_t replayed_records = 0;  ///< WAL records applied on top
    std::uint64_t truncations = 0;       ///< torn/corrupt tails discarded
    std::uint64_t last_seq = 0;
  };

  struct AppendOutcome {
    bool applied = false;  ///< the record is in the log + view
    bool durable = false;  ///< ... and fsynced (safe to ack)
  };

  DurableStore() = default;

  /// Opens (recovering) the store. False on I/O failure; recovery()
  /// describes what was found either way.
  bool open(OpenOptions options);

  /// Records an object-state checkpoint hosted on `node` with
  /// location-history cursor `cursor`. `state` is a serde-encoded
  /// ObjectState blob.
  AppendOutcome checkpoint(const std::string& name, std::uint64_t node,
                           std::uint64_t cursor,
                           std::span<const std::uint8_t> state);

  /// Records a completed migration `from` → `to`, advancing the object's
  /// cursor. Creates a state-less entry when the object was never
  /// checkpointed (location knowledge alone is still worth persisting).
  AppendOutcome migration(const std::string& name, std::uint64_t from,
                          std::uint64_t to);

  /// Records a placement-lock grant (audit trail; leases expire on their
  /// own, so recovery does not restore them). Never fsyncs on its own —
  /// lease grants ride on the next synced append.
  AppendOutcome lease(const std::string& name, std::uint64_t token);

  /// Records that the object left this store's node; drops it from the
  /// view.
  AppendOutcome evict(const std::string& name);

  /// Snapshots the view (atomic install) and truncates the WAL.
  bool compact();

  /// fsyncs the WAL (for batched-sync callers).
  bool sync();

  /// Copy of the materialized view (objects recovered + applied so far).
  [[nodiscard]] std::map<std::string, StoredObject> view() const;

  [[nodiscard]] RecoveryInfo recovery() const;
  /// True after an injected power loss killed this store; every append
  /// refuses. Reopening a fresh DurableStore on the same dir is the
  /// reboot.
  [[nodiscard]] bool dead() const;
  [[nodiscard]] std::string wal_path() const;
  [[nodiscard]] std::string snapshot_path() const;

private:
  AppendOutcome append_locked(WalRecord& record, bool sync);
  bool compact_locked();

  mutable std::mutex mutex_;
  OpenOptions options_;
  Wal wal_;
  Snapshot state_;  ///< materialized view; last_seq tracks applied records
  RecoveryInfo recovery_;
  std::uint64_t appends_since_compact_ = 0;
  bool open_ = false;
};

}  // namespace omig::store
