// Append-only write-ahead log with CRC32-framed, length-prefixed records.
//
// The durable store's source of truth between snapshots. Every record is
// framed as
//
//     u32  payload length (little-endian, excludes the 8-byte header)
//     u32  CRC32 of the payload
//     ...  payload
//
// with the payload following runtime/serde's strict little-endian
// discipline:
//
//     u8   format version (kWalVersion)
//     u8   record kind (RecordKind)
//     u64  sequence number (monotonic per store)
//     u32  name length, name bytes
//     u64  operand a (node / token / origin, kind-specific)
//     u64  operand b (cursor / destination, kind-specific)
//     u32  blob length, blob bytes (serde-encoded ObjectState or empty)
//
// Durability contract: a record is promised only after append() returned
// Ok with `durable == true` (the frame was fully written AND fsynced).
// Replay applies the longest valid prefix: the first truncated frame,
// CRC mismatch, or malformed payload marks where a torn write or power
// loss hit — everything from there on is discarded, never applied, and
// the file is truncated back so new appends continue from the last good
// record. Corruption cannot be resynchronised past (framing is gone), so
// discarding the tail is the only sound choice (docs/durability.md).
//
// Disk faults (fault/injector.hpp) inject at this seam: torn writes
// persist a prefix of the frame and kill the store, short writes are
// truncated back and rewritten, fsync failures demote the record to
// not-durable, and scheduled wal-kills raise SIGKILL between the write
// and the fsync — the power-loss scenarios the crash tests replay.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "store/env.hpp"

namespace omig::store {

/// Format version stamped into every record payload.
inline constexpr std::uint8_t kWalVersion = 1;

/// Upper bound on one record's payload; a longer length prefix is treated
/// as corruption before any allocation happens (same cap discipline as
/// transport/wire.hpp).
inline constexpr std::uint32_t kMaxWalPayload = 16u * 1024u * 1024u;

enum class RecordKind : std::uint8_t {
  Checkpoint = 1,  ///< object-state checkpoint: a = node, b = cursor, blob
  Migration = 2,   ///< location update: a = from node, b = to node
  Lease = 3,       ///< placement-lock grant: a = token id
  Evict = 4,       ///< object left this store's node
};

[[nodiscard]] const char* to_string(RecordKind kind);

struct WalRecord {
  RecordKind kind = RecordKind::Checkpoint;
  std::uint64_t seq = 0;
  std::string name;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::vector<std::uint8_t> blob;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Encodes the full frame (header included) — ready to append to the file.
[[nodiscard]] std::vector<std::uint8_t> encode_record(const WalRecord& record);

/// Decodes one payload (the bytes after the 8-byte header). Strict:
/// truncation, unknown version/kind, overlong inner lengths, or trailing
/// bytes all reject. Never reads past the buffer, never throws.
[[nodiscard]] std::optional<WalRecord> decode_record_payload(
    std::span<const std::uint8_t> payload);

/// What replay found in a log file.
struct ReplayResult {
  std::uint64_t records = 0;         ///< valid records applied
  std::uint64_t truncations = 0;     ///< 1 when a torn/corrupt tail was cut
  std::uint64_t discarded_bytes = 0; ///< bytes of tail discarded
  std::uint64_t valid_bytes = 0;     ///< length of the valid prefix
  std::uint64_t last_seq = 0;        ///< seq of the last valid record
};

/// Replays `bytes` as a WAL image, calling `apply` for each valid record
/// in order. Stops at the first framing violation and reports the tail.
ReplayResult replay_wal(std::span<const std::uint8_t> bytes,
                        const std::function<void(const WalRecord&)>& apply);

class Wal {
public:
  enum class AppendStatus {
    Ok,          ///< record persisted (durable iff sync was requested + ok)
    Dead,        ///< store died (injected power loss); reopen to recover
    IoError,     ///< the OS refused the write
    TooLarge,    ///< encoded payload exceeds kMaxWalPayload; nothing written
  };

  struct AppendResult {
    AppendStatus status = AppendStatus::IoError;
    /// True when the record was fsynced to disk. False under sync=false
    /// (caller batches) or when an injected/real fsync failure demoted
    /// this record to page-cache durability.
    bool durable = false;
  };

  Wal() = default;

  /// Opens (creating if needed) the log at `path`, replays the existing
  /// image through `apply`, truncates any torn tail, and positions new
  /// appends after the last valid record. `injector` may be null;
  /// `node` identifies this store to the disk-fault rules.
  bool open(const std::string& path,
            const std::function<void(const WalRecord&)>& apply,
            fault::FaultInjector* injector = nullptr,
            std::size_t node = fault::kAnyNode);

  /// Appends `record` (assigning the next sequence number into it).
  /// With `sync`, the record is fsynced before returning. Records whose
  /// payload would exceed kMaxWalPayload are rejected up front — replay
  /// treats an over-cap length prefix as corruption, so writing one would
  /// ack a record that recovery is guaranteed to discard.
  AppendResult append(WalRecord& record, bool sync);

  /// Raises next_seq() to at least `min_next`. The store calls this after
  /// open() with snapshot.last_seq + 1: a compacted log is empty, so
  /// replay alone would restart sequence numbers below the snapshot's
  /// coverage and the `seq <= covered` recovery filter would silently
  /// drop the next incarnation's acked records.
  void ensure_next_seq(std::uint64_t min_next) {
    if (min_next > next_seq_) next_seq_ = min_next;
  }

  /// fsyncs everything appended so far (for callers batching syncs).
  bool sync();

  /// When set, injected power losses (torn writes, scheduled wal-kills)
  /// raise SIGKILL on the whole process — the omig_node mode, where the
  /// crash matrix relaunches the binary. In-process stores leave this off:
  /// the store goes dead() and refuses writes, so reopen() is the reboot.
  void set_process_kill(bool on) { process_kill_ = on; }

  /// Truncates the log to empty (after a snapshot covered it) and fsyncs.
  bool reset();

  [[nodiscard]] const ReplayResult& recovery() const { return recovery_; }
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  [[nodiscard]] std::uint64_t size() const { return file_.size(); }
  [[nodiscard]] bool dead() const { return dead_; }

private:
  /// Marks the store dead (or SIGKILLs the process) at an injected
  /// power-loss point.
  void die();

  AppendFile file_;
  ReplayResult recovery_;
  std::uint64_t next_seq_ = 1;
  bool dead_ = false;
  bool process_kill_ = false;
  fault::FaultInjector* injector_ = nullptr;
  std::size_t node_ = fault::kAnyNode;
};

}  // namespace omig::store
