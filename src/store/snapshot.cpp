#include "store/snapshot.hpp"

#include "obs/families.hpp"
#include "store/crc32.hpp"
#include "store/env.hpp"

namespace omig::store {

namespace {

/// Inner length cap, matching the WAL's: one corrupt prefix must not
/// allocate gigabytes before validation finishes.
constexpr std::uint32_t kMaxInnerLen = 16u * 1024u * 1024u;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (!ok || bytes.size() - pos < 1) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }

  std::uint32_t u32() {
    if (!ok || bytes.size() - pos < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << shift;
    }
    return v;
  }

  std::uint64_t u64() {
    if (!ok || bytes.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(bytes[pos++]) << shift;
    }
    return v;
  }

  std::span<const std::uint8_t> chunk() {
    const std::uint32_t len = u32();
    if (!ok || len > kMaxInnerLen || bytes.size() - pos < len) {
      ok = false;
      return {};
    }
    const std::span<const std::uint8_t> out = bytes.subspan(pos, len);
    pos += len;
    return out;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap) {
  std::vector<std::uint8_t> body;
  body.push_back(kSnapshotVersion);
  put_u64(body, snap.last_seq);
  put_u32(body, static_cast<std::uint32_t>(snap.objects.size()));
  for (const auto& [name, obj] : snap.objects) {
    put_u32(body, static_cast<std::uint32_t>(name.size()));
    body.insert(body.end(), name.begin(), name.end());
    put_u64(body, obj.node);
    put_u64(body, obj.cursor);
    put_u32(body, static_cast<std::uint32_t>(obj.state.size()));
    body.insert(body.end(), obj.state.begin(), obj.state.end());
  }
  std::vector<std::uint8_t> out;
  out.reserve(4 + body.size());
  put_u32(out, crc32(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Snapshot> decode_snapshot(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return std::nullopt;
  Reader in{bytes};
  const std::uint32_t crc = in.u32();
  if (crc32(bytes.subspan(4)) != crc) return std::nullopt;
  if (in.u8() != kSnapshotVersion) return std::nullopt;
  Snapshot snap;
  snap.last_seq = in.u64();
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; in.ok && i < count; ++i) {
    const std::span<const std::uint8_t> name = in.chunk();
    StoredObject obj;
    obj.node = in.u64();
    obj.cursor = in.u64();
    const std::span<const std::uint8_t> state = in.chunk();
    if (!in.ok) break;
    obj.state.assign(state.begin(), state.end());
    snap.objects.emplace(std::string{name.begin(), name.end()},
                         std::move(obj));
  }
  if (!in.ok || in.pos != bytes.size()) return std::nullopt;
  if (snap.objects.size() != count) return std::nullopt;  // duplicate names
  return snap;
}

std::optional<Snapshot> load_snapshot(const std::string& path) {
  const auto bytes = read_file(path);
  if (!bytes) return std::nullopt;
  return decode_snapshot(*bytes);
}

bool install_snapshot(const std::string& path, const Snapshot& snap) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  if (!atomic_install(path, bytes)) return false;
  obs::store_metrics().snapshot_installs->inc();
  return true;
}

}  // namespace omig::store
