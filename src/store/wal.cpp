#include "store/wal.hpp"

#include <csignal>

#include "obs/families.hpp"
#include "store/crc32.hpp"

namespace omig::store {

namespace {

/// Frame header: u32 payload length + u32 payload CRC32.
constexpr std::size_t kHeaderBytes = 8;
/// Inner string/blob length cap — keeps one corrupt length prefix from
/// allocating gigabytes before the CRC would have caught it anyway.
constexpr std::uint32_t kMaxInnerLen = kMaxWalPayload;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

/// Bounds-checked sequential reader over one payload; mirrors the strict
/// cursor in runtime/serde.cpp.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (!ok || bytes.size() - pos < 1) {
      ok = false;
      return 0;
    }
    return bytes[pos++];
  }

  std::uint32_t u32() {
    if (!ok || bytes.size() - pos < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << shift;
    }
    return v;
  }

  std::uint64_t u64() {
    if (!ok || bytes.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<std::uint64_t>(bytes[pos++]) << shift;
    }
    return v;
  }

  std::span<const std::uint8_t> chunk() {
    const std::uint32_t len = u32();
    if (!ok || len > kMaxInnerLen || bytes.size() - pos < len) {
      ok = false;
      return {};
    }
    const std::span<const std::uint8_t> out = bytes.subspan(pos, len);
    pos += len;
    return out;
  }
};

std::uint32_t read_u32_at(std::span<const std::uint8_t> bytes,
                          std::size_t pos) {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(bytes[pos++]) << shift;
  }
  return v;
}

}  // namespace

const char* to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::Checkpoint: return "checkpoint";
    case RecordKind::Migration: return "migration";
    case RecordKind::Lease: return "lease";
    case RecordKind::Evict: return "evict";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_record(const WalRecord& record) {
  std::vector<std::uint8_t> payload;
  payload.reserve(32 + record.name.size() + record.blob.size());
  payload.push_back(kWalVersion);
  payload.push_back(static_cast<std::uint8_t>(record.kind));
  put_u64(payload, record.seq);
  put_u32(payload, static_cast<std::uint32_t>(record.name.size()));
  payload.insert(payload.end(), record.name.begin(), record.name.end());
  put_u64(payload, record.a);
  put_u64(payload, record.b);
  put_u32(payload, static_cast<std::uint32_t>(record.blob.size()));
  payload.insert(payload.end(), record.blob.begin(), record.blob.end());

  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::optional<WalRecord> decode_record_payload(
    std::span<const std::uint8_t> payload) {
  Reader in{payload};
  if (in.u8() != kWalVersion) return std::nullopt;
  const std::uint8_t kind = in.u8();
  if (kind < static_cast<std::uint8_t>(RecordKind::Checkpoint) ||
      kind > static_cast<std::uint8_t>(RecordKind::Evict)) {
    return std::nullopt;
  }
  WalRecord record;
  record.kind = static_cast<RecordKind>(kind);
  record.seq = in.u64();
  const std::span<const std::uint8_t> name = in.chunk();
  record.a = in.u64();
  record.b = in.u64();
  const std::span<const std::uint8_t> blob = in.chunk();
  if (!in.ok || in.pos != payload.size()) return std::nullopt;
  record.name.assign(name.begin(), name.end());
  record.blob.assign(blob.begin(), blob.end());
  return record;
}

ReplayResult replay_wal(std::span<const std::uint8_t> bytes,
                        const std::function<void(const WalRecord&)>& apply) {
  ReplayResult result;
  std::size_t pos = 0;
  while (bytes.size() - pos >= kHeaderBytes) {
    const std::uint32_t len = read_u32_at(bytes, pos);
    const std::uint32_t crc = read_u32_at(bytes, pos + 4);
    if (len > kMaxWalPayload) break;  // corrupt length prefix
    if (bytes.size() - pos - kHeaderBytes < len) break;  // torn frame
    const std::span<const std::uint8_t> payload =
        bytes.subspan(pos + kHeaderBytes, len);
    if (crc32(payload) != crc) break;
    const std::optional<WalRecord> record = decode_record_payload(payload);
    if (!record) break;
    if (apply) apply(*record);
    ++result.records;
    result.last_seq = record->seq;
    pos += kHeaderBytes + len;
  }
  result.valid_bytes = pos;
  if (pos < bytes.size()) {
    result.truncations = 1;
    result.discarded_bytes = bytes.size() - pos;
  }
  return result;
}

bool Wal::open(const std::string& path,
               const std::function<void(const WalRecord&)>& apply,
               fault::FaultInjector* injector, std::size_t node) {
  injector_ = injector;
  node_ = node;
  dead_ = false;
  recovery_ = {};
  if (const auto bytes = read_file(path)) {
    recovery_ = replay_wal(*bytes, apply);
  }
  if (!file_.open(path)) return false;
  if (file_.size() > recovery_.valid_bytes) {
    // Cut the torn/corrupt tail so the next append starts right after the
    // last valid record instead of burying garbage mid-log.
    if (!file_.truncate(recovery_.valid_bytes) || !file_.sync()) {
      return false;
    }
  }
  next_seq_ = recovery_.last_seq + 1;
  obs::StoreMetrics& m = obs::store_metrics();
  if (recovery_.records > 0) m.replay_records->inc(recovery_.records);
  if (recovery_.truncations > 0) m.replay_truncations->inc(recovery_.truncations);
  return true;
}

void Wal::die() {
  if (process_kill_) {
    std::raise(SIGKILL);
  }
  dead_ = true;
}

Wal::AppendResult Wal::append(WalRecord& record, bool sync) {
  if (dead_ || !file_.is_open()) return {AppendStatus::Dead, false};
  // Enforce the cap before encoding: 34 fixed payload bytes (version,
  // kind, seq, two u32 lengths, operands a/b) plus the variable parts.
  // Checked in u64 so a >4 GiB blob cannot wrap the u32 length prefix.
  const std::uint64_t payload_size =
      34 + static_cast<std::uint64_t>(record.name.size()) +
      static_cast<std::uint64_t>(record.blob.size());
  if (payload_size > kMaxWalPayload) return {AppendStatus::TooLarge, false};
  record.seq = next_seq_;
  const std::vector<std::uint8_t> frame = encode_record(record);
  fault::DiskDecision decision;
  if (injector_ != nullptr) decision = injector_->on_wal_append(node_);

  if (decision.torn) {
    // Power loss mid-write: a strict prefix of the frame reaches the disk
    // image, then the store dies. Recovery must CRC-reject this tail.
    const std::size_t keep = frame.size() / 2;
    (void)file_.append(std::span{frame.data(), keep});
    (void)file_.sync();
    die();
    return {AppendStatus::Dead, false};
  }

  const std::uint64_t base = file_.size();
  if (decision.short_write) {
    // The kernel persisted fewer bytes than asked: truncate the partial
    // frame away and rewrite the whole record (the recoverable case).
    (void)file_.append(std::span{frame.data(), frame.size() / 2});
    if (!file_.truncate(base)) return {AppendStatus::IoError, false};
  }
  if (file_.append(frame) != frame.size()) {
    (void)file_.truncate(base);
    return {AppendStatus::IoError, false};
  }
  ++next_seq_;
  obs::StoreMetrics& m = obs::store_metrics();
  m.wal_appends->inc();
  m.wal_bytes->inc(frame.size());

  if (decision.kill) {
    // The frame is fully written but not fsynced — die exactly between
    // the write and the fsync, the crash-matrix power-loss point.
    die();
    return {AppendStatus::Dead, false};
  }
  bool durable = false;
  if (sync) durable = this->sync();
  return {AppendStatus::Ok, durable};
}

bool Wal::sync() {
  if (dead_ || !file_.is_open()) return false;
  obs::store_metrics().wal_fsyncs->inc();
  if (injector_ != nullptr && injector_->fsync_fails(node_)) return false;
  return file_.sync();
}

bool Wal::reset() {
  if (dead_ || !file_.is_open()) return false;
  // Sequence numbers stay monotonic across compaction: the snapshot
  // carries last_seq, and replay skips records at or below it.
  return file_.truncate(0) && file_.sync();
}

}  // namespace omig::store
