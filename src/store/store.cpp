#include "store/store.hpp"

#include <algorithm>

#include "store/env.hpp"

namespace omig::store {

namespace {

void apply_record(Snapshot& state, const WalRecord& record) {
  switch (record.kind) {
    case RecordKind::Checkpoint: {
      StoredObject& obj = state.objects[record.name];
      obj.node = record.a;
      obj.cursor = record.b;
      obj.state.assign(record.blob.begin(), record.blob.end());
      break;
    }
    case RecordKind::Migration: {
      StoredObject& obj = state.objects[record.name];
      obj.node = record.b;
      ++obj.cursor;
      break;
    }
    case RecordKind::Lease:
      // Audit only: leases expire on their own, recovery never restores
      // them (a recovered lock nobody holds would deadlock placement).
      break;
    case RecordKind::Evict:
      state.objects.erase(record.name);
      break;
  }
  state.last_seq = record.seq;
}

}  // namespace

bool DurableStore::open(OpenOptions options) {
  std::lock_guard lock{mutex_};
  options_ = std::move(options);
  state_ = {};
  recovery_ = {};
  appends_since_compact_ = 0;
  open_ = false;
  if (options_.create_if_missing && !ensure_dir(options_.dir)) return false;

  if (const auto snap = load_snapshot(snapshot_path())) {
    state_ = *snap;
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_objects = state_.objects.size();
  }
  const std::uint64_t covered = state_.last_seq;
  wal_.set_process_kill(options_.process_kill);
  const bool ok = wal_.open(
      wal_path(),
      [this, covered](const WalRecord& record) {
        // Skip records the snapshot already folded in: a crash between
        // snapshot install and WAL truncation leaves them behind, and
        // replaying a migration twice would double-advance the cursor.
        if (record.seq <= covered) return;
        apply_record(state_, record);
        ++recovery_.replayed_records;
      },
      options_.injector, options_.node);
  if (!ok) return false;
  recovery_.truncations = wal_.recovery().truncations;
  // The snapshot may cover records the (truncated) WAL no longer holds.
  recovery_.last_seq = std::max(covered, wal_.recovery().last_seq);
  state_.last_seq = recovery_.last_seq;
  // The WAL derives next_seq from its own file alone; after compaction
  // truncated it, that restarts at 1 — below the snapshot's coverage —
  // and the `seq <= covered` replay filter above would silently discard
  // this incarnation's acked records on the next recovery. Keep sequence
  // numbers monotonic across the snapshot too.
  wal_.ensure_next_seq(recovery_.last_seq + 1);
  open_ = true;
  return true;
}

DurableStore::AppendOutcome DurableStore::append_locked(WalRecord& record,
                                                        bool sync) {
  AppendOutcome outcome;
  if (!open_ || wal_.dead()) return outcome;
  const Wal::AppendResult r = wal_.append(record, sync);
  if (r.status != Wal::AppendStatus::Ok) return outcome;
  apply_record(state_, record);
  outcome.applied = true;
  outcome.durable = r.durable;
  ++appends_since_compact_;
  if (options_.compact_every > 0 &&
      appends_since_compact_ >= options_.compact_every) {
    (void)compact_locked();
  }
  return outcome;
}

DurableStore::AppendOutcome DurableStore::checkpoint(
    const std::string& name, std::uint64_t node, std::uint64_t cursor,
    std::span<const std::uint8_t> state) {
  std::lock_guard lock{mutex_};
  WalRecord record;
  record.kind = RecordKind::Checkpoint;
  record.name = name;
  record.a = node;
  record.b = cursor;
  record.blob.assign(state.begin(), state.end());
  return append_locked(record, options_.sync_each_append);
}

DurableStore::AppendOutcome DurableStore::migration(const std::string& name,
                                                    std::uint64_t from,
                                                    std::uint64_t to) {
  std::lock_guard lock{mutex_};
  WalRecord record;
  record.kind = RecordKind::Migration;
  record.name = name;
  record.a = from;
  record.b = to;
  return append_locked(record, options_.sync_each_append);
}

DurableStore::AppendOutcome DurableStore::lease(const std::string& name,
                                                std::uint64_t token) {
  std::lock_guard lock{mutex_};
  WalRecord record;
  record.kind = RecordKind::Lease;
  record.name = name;
  record.a = token;
  return append_locked(record, /*sync=*/false);
}

DurableStore::AppendOutcome DurableStore::evict(const std::string& name) {
  std::lock_guard lock{mutex_};
  WalRecord record;
  record.kind = RecordKind::Evict;
  record.name = name;
  return append_locked(record, options_.sync_each_append);
}

bool DurableStore::compact_locked() {
  if (!open_ || wal_.dead()) return false;
  if (!install_snapshot(snapshot_path(), state_)) return false;
  // A crash here leaves the old WAL behind the new snapshot — harmless,
  // because replay skips seq ≤ snapshot.last_seq.
  if (!wal_.reset()) return false;
  appends_since_compact_ = 0;
  return true;
}

bool DurableStore::compact() {
  std::lock_guard lock{mutex_};
  return compact_locked();
}

bool DurableStore::sync() {
  std::lock_guard lock{mutex_};
  if (!open_) return false;
  return wal_.sync();
}

std::map<std::string, StoredObject> DurableStore::view() const {
  std::lock_guard lock{mutex_};
  return state_.objects;
}

DurableStore::RecoveryInfo DurableStore::recovery() const {
  std::lock_guard lock{mutex_};
  return recovery_;
}

bool DurableStore::dead() const {
  std::lock_guard lock{mutex_};
  return wal_.dead();
}

std::string DurableStore::wal_path() const {
  return options_.dir + "/wal.log";
}

std::string DurableStore::snapshot_path() const {
  return options_.dir + "/snapshot.bin";
}

}  // namespace omig::store
