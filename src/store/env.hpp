// Thin POSIX file seam for the durable store (LeviDB's env_io shape).
//
// The WAL and the snapshot installer need exactly five capabilities:
// append to a file, fsync it, truncate it back, atomically rename a file
// into place, and fsync the containing directory so the rename itself is
// durable. Centralising them here keeps every durability-critical syscall
// in one reviewable place and gives the disk-fault injector a single seam
// to perturb (fault/injector.hpp: torn write, short write, fsync failure).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace omig::store {

/// An append-only file handle. Not thread-safe; the owner serialises.
class AppendFile {
public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens `path` for appending, creating it if missing. Returns false on
  /// any failure (errno preserved for the caller's error text).
  bool open(const std::string& path);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }

  /// Appends all of `bytes` (looping over partial writes). Returns the
  /// number of bytes actually persisted to the file — shorter than
  /// `bytes.size()` only on an I/O error mid-write.
  std::size_t append(std::span<const std::uint8_t> bytes);

  /// fdatasync; false when the kernel reports the data may not be durable.
  bool sync();

  /// Truncates the file back to `size` bytes (undoes a failed append).
  bool truncate(std::uint64_t size);

  [[nodiscard]] std::uint64_t size() const { return size_; }

private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

/// Reads the whole file; nullopt if it does not exist or cannot be read.
std::optional<std::vector<std::uint8_t>> read_file(const std::string& path);

/// Writes `bytes` to `path + ".tmp"`, fsyncs, renames over `path`, and
/// fsyncs the parent directory — the classic atomic-install sequence: a
/// reader sees either the old file or the complete new one, never a
/// half-written hybrid, even across power loss.
bool atomic_install(const std::string& path,
                    std::span<const std::uint8_t> bytes);

/// fsyncs the directory containing `path` (making renames/creates in it
/// durable). Returns false on failure.
bool sync_dir_of(const std::string& path);

/// Creates the directory (and parents) if missing. False on failure.
bool ensure_dir(const std::string& path);

/// Removes the file if present; true when it is gone afterwards.
bool remove_file(const std::string& path);

/// True when the path names an existing regular file.
bool file_exists(const std::string& path);

}  // namespace omig::store
