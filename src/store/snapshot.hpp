// Compacted snapshots of a store's materialized view.
//
// A snapshot is a single file holding every live object entry plus the
// WAL sequence number it covers, guarded by a whole-file CRC32:
//
//     u32  CRC32 of everything after this word
//     u8   format version (kSnapshotVersion)
//     u64  last_seq — highest WAL seq folded into this snapshot
//     u32  entry count
//     per entry:
//       u32 name length, name bytes
//       u64 node     — where the object lives
//       u64 cursor   — location-history cursor (moves so far)
//       u32 blob length, blob bytes (serde-encoded ObjectState)
//
// Snapshots are only ever written via atomic_install() (tmp + fsync +
// rename + directory fsync), so a reader sees the previous snapshot or
// the complete new one — never a torn hybrid. The CRC catches the
// remaining hazard: bit rot or a partial tmp that somehow got renamed.
// `last_seq` makes recovery idempotent across a crash between snapshot
// install and WAL truncation: replay skips records with seq ≤ last_seq.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace omig::store {

inline constexpr std::uint8_t kSnapshotVersion = 1;

/// One object's durable image inside a snapshot (and in the store's
/// materialized view).
struct StoredObject {
  std::uint64_t node = 0;    ///< hosting node at snapshot time
  std::uint64_t cursor = 0;  ///< location-history cursor (completed moves)
  std::vector<std::uint8_t> state;  ///< serde-encoded ObjectState

  friend bool operator==(const StoredObject&, const StoredObject&) = default;
};

struct Snapshot {
  std::uint64_t last_seq = 0;
  std::map<std::string, StoredObject> objects;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Snapshot& snap);

/// Strict decode: CRC mismatch, truncation, bad version, overlong inner
/// lengths, or trailing bytes all reject. A rejected snapshot is treated
/// as absent (recovery falls back to WAL-only replay).
[[nodiscard]] std::optional<Snapshot> decode_snapshot(
    std::span<const std::uint8_t> bytes);

/// Loads and validates the snapshot at `path`; nullopt when missing or
/// corrupt (the caller recovers from the WAL alone).
[[nodiscard]] std::optional<Snapshot> load_snapshot(const std::string& path);

/// Atomically installs `snap` at `path` (tmp + fsync + rename + dir
/// fsync). Counts into omig_store_snapshot_installs_total on success.
bool install_snapshot(const std::string& path, const Snapshot& snap);

}  // namespace omig::store
