// CRC32 (IEEE 802.3 polynomial, reflected) for WAL record framing.
//
// Every record the durable store writes is guarded by this checksum; a
// mismatch at replay time marks the spot where a torn or corrupted tail
// begins (docs/durability.md). Table-based, one byte per step — fast
// enough for the WAL append path, and dependency-free by design: the
// container must not need zlib to recover a log.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace omig::store {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC32 of `bytes`, continuing from `seed` (pass the previous return value
/// to checksum data in chunks; the default starts a fresh checksum).
[[nodiscard]] constexpr std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                            std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = detail::kCrc32Table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace omig::store
