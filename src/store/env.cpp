#include "store/env.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <utility>

namespace omig::store {

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_{std::exchange(other.fd_, -1)}, size_{std::exchange(other.size_, 0)} {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool AppendFile::open(const std::string& path) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) return false;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    close();
    return false;
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  return true;
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

std::size_t AppendFile::append(std::span<const std::uint8_t> bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  size_ += written;
  return written;
}

bool AppendFile::sync() {
  if (fd_ < 0) return false;
  return ::fdatasync(fd_) == 0;
}

bool AppendFile::truncate(std::uint64_t size) {
  if (fd_ < 0 || size > size_) return false;
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) return false;
  size_ = size;
  return true;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buffer, buffer + n);
  }
  ::close(fd);
  return out;
}

bool sync_dir_of(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path{path}.parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool atomic_install(const std::string& path,
                    std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    AppendFile file;
    // O_APPEND on a fresh file: make sure no stale tmp survives.
    if (!remove_file(tmp) || !file.open(tmp)) return false;
    if (file.append(bytes) != bytes.size()) return false;
    if (!file.sync()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) return false;
  return sync_dir_of(path);
}

bool ensure_dir(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return !ec && std::filesystem::is_directory(path, ec);
}

bool remove_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return !ec;
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace omig::store
