#include "core/presets.hpp"

namespace omig::core {

namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.stopping = stopping_rule_from_env();
  cfg.warmup_time = 500.0;
  return cfg;
}

}  // namespace

workload::WorkloadParams table1_defaults() {
  workload::WorkloadParams p;
  p.nodes = 3;
  p.clients = 3;
  p.servers1 = 3;
  p.servers2 = 0;
  p.migration_duration = 6.0;
  p.mean_calls = 8.0;
  p.mean_intercall = 1.0;
  p.mean_interblock = 30.0;
  return p;
}

ExperimentConfig fig8_config(double mean_interblock,
                             migration::PolicyKind policy) {
  ExperimentConfig cfg = base_config();
  cfg.workload = table1_defaults();
  cfg.workload.mean_interblock = mean_interblock;
  cfg.policy = policy;
  return cfg;
}

ExperimentConfig fig12_config(int clients, migration::PolicyKind policy) {
  ExperimentConfig cfg = base_config();
  cfg.workload = table1_defaults();
  cfg.workload.nodes = 27;
  cfg.workload.clients = clients;
  cfg.policy = policy;
  return cfg;
}

ExperimentConfig fig14_config(int clients, migration::PolicyKind policy) {
  ExperimentConfig cfg = base_config();
  cfg.workload = table1_defaults();
  cfg.workload.nodes = 3;
  cfg.workload.clients = clients;
  cfg.policy = policy;
  return cfg;
}

ExperimentConfig fig16_config(int clients, migration::PolicyKind policy,
                              migration::AttachTransitivity transitivity) {
  ExperimentConfig cfg = base_config();
  cfg.workload = table1_defaults();
  cfg.workload.nodes = 24;
  cfg.workload.clients = clients;
  cfg.workload.servers1 = 6;
  cfg.workload.servers2 = 6;
  cfg.workload.mean_calls = 6.0;
  cfg.workload.working_set_size = 2;
  cfg.policy = policy;
  cfg.transitivity = transitivity;
  return cfg;
}

}  // namespace omig::core
