#include "core/metrics.hpp"

namespace omig::core {

Recorder::Recorder(sim::Engine& engine, stats::StoppingRule rule,
                   sim::SimTime warmup_time)
    : engine_{&engine}, rule_{rule}, warmup_time_{warmup_time} {}

void Recorder::on_block(const migration::MoveBlock& blk) {
  if (engine_->now() < warmup_time_) {
    ++discarded_;
    return;
  }
  ++blocks_;
  calls_ += static_cast<std::uint64_t>(blk.calls);
  const auto weight = static_cast<double>(blk.calls);
  total_.add(blk.total_cost(), weight);
  call_.add(blk.call_time, weight);
  migration_.add(blk.migration_cost, weight);
  if (rule_.satisfied_by(total_)) engine_->request_stop();
}

void Recorder::on_background_migration(double cost) {
  if (engine_->now() < warmup_time_) return;
  // Weightless observation: the cost still lands in the numerator of the
  // per-call ratios, so reinstantiation migrations are not free.
  total_.add(cost, 0.0);
  migration_.add(cost, 0.0);
}

void Recorder::on_call(double duration) {
  if (engine_->now() < warmup_time_) return;
  call_hist_.add(duration);
}

double Recorder::call_duration_quantile(double q) const {
  return call_hist_.quantile(q);
}

double Recorder::total_per_call() const { return total_.overall_ratio(); }

double Recorder::call_duration_per_call() const {
  return call_.overall_ratio();
}

double Recorder::migration_per_call() const {
  return migration_.overall_ratio();
}

stats::ConfidenceInterval Recorder::total_interval() const {
  return total_.interval(rule_.level);
}

}  // namespace omig::core
