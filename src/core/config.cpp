#include "core/config.hpp"

#include <charconv>
#include <sstream>

#include "fault/fault_plan.hpp"

namespace omig::core {

namespace {

double parse_double(std::string_view key, std::string_view value) {
  double out = 0.0;
  const auto* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    throw ConfigError{"value for '" + std::string{key} +
                      "' is not a number: '" + std::string{value} + "'"};
  }
  return out;
}

long long parse_int(std::string_view key, std::string_view value) {
  long long out = 0;
  const auto* end = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), end, out);
  if (ec != std::errc{} || ptr != end) {
    throw ConfigError{"value for '" + std::string{key} +
                      "' is not an integer: '" + std::string{value} + "'"};
  }
  return out;
}

bool parse_bool(std::string_view key, std::string_view value) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  throw ConfigError{"value for '" + std::string{key} +
                    "' is not a boolean: '" + std::string{value} + "'"};
}

template <class Enum>
Enum parse_enum(std::string_view key, std::string_view value,
                std::optional<Enum> (*parser)(std::string_view),
                const char* choices) {
  if (auto parsed = parser(value)) return *parsed;
  throw ConfigError{"unknown value '" + std::string{value} + "' for '" +
                    std::string{key} + "' (choices: " + choices + ")"};
}

}  // namespace

std::optional<migration::PolicyKind> policy_from_string(std::string_view s) {
  using migration::PolicyKind;
  if (s == "sedentary") return PolicyKind::Sedentary;
  if (s == "conventional" || s == "migration") return PolicyKind::Conventional;
  if (s == "placement") return PolicyKind::Placement;
  if (s == "compare-nodes") return PolicyKind::CompareNodes;
  if (s == "compare-reinstantiate") return PolicyKind::CompareReinstantiate;
  if (s == "load-share") return PolicyKind::LoadShare;
  if (s == "adaptive") return PolicyKind::Adaptive;
  if (s == "adaptive-load") return PolicyKind::AdaptiveLoad;
  return std::nullopt;
}

std::optional<migration::AttachTransitivity> transitivity_from_string(
    std::string_view s) {
  using migration::AttachTransitivity;
  if (s == "unrestricted") return AttachTransitivity::Unrestricted;
  if (s == "a-transitive") return AttachTransitivity::ATransitive;
  return std::nullopt;
}

std::optional<migration::ClusterTransfer> transfer_from_string(
    std::string_view s) {
  using migration::ClusterTransfer;
  if (s == "parallel") return ClusterTransfer::Parallel;
  if (s == "serial") return ClusterTransfer::Serial;
  return std::nullopt;
}

std::optional<net::TopologyKind> topology_from_string(std::string_view s) {
  using net::TopologyKind;
  if (s == "full-mesh") return TopologyKind::FullMesh;
  if (s == "ring") return TopologyKind::Ring;
  if (s == "star") return TopologyKind::Star;
  if (s == "grid") return TopologyKind::Grid;
  return std::nullopt;
}

std::optional<net::LatencyMode> latency_from_string(std::string_view s) {
  using net::LatencyMode;
  if (s == "uniform") return LatencyMode::Uniform;
  if (s == "hop-scaled") return LatencyMode::HopScaled;
  if (s == "fixed") return LatencyMode::Fixed;
  return std::nullopt;
}

std::optional<objsys::LocationScheme> location_from_string(
    std::string_view s) {
  using objsys::LocationScheme;
  if (s == "none") return LocationScheme::None;
  if (s == "name-server") return LocationScheme::NameServer;
  if (s == "forwarding") return LocationScheme::Forwarding;
  if (s == "broadcast") return LocationScheme::Broadcast;
  if (s == "immediate-update") return LocationScheme::ImmediateUpdate;
  return std::nullopt;
}

std::optional<objsys::DirectoryKind> directory_kind_from_string(
    std::string_view s) {
  return objsys::directory_from_string(std::string{s});
}

std::optional<objsys::ConsistencyStrategy> dir_strategy_from_string(
    std::string_view s) {
  return objsys::strategy_from_string(std::string{s});
}

const char* to_string(net::TopologyKind kind) {
  switch (kind) {
    case net::TopologyKind::FullMesh:
      return "full-mesh";
    case net::TopologyKind::Ring:
      return "ring";
    case net::TopologyKind::Star:
      return "star";
    case net::TopologyKind::Grid:
      return "grid";
  }
  return "unknown";
}

const char* to_string(net::LatencyMode mode) {
  switch (mode) {
    case net::LatencyMode::Uniform:
      return "uniform";
    case net::LatencyMode::HopScaled:
      return "hop-scaled";
    case net::LatencyMode::Fixed:
      return "fixed";
  }
  return "unknown";
}

const char* to_string(migration::AttachTransitivity transitivity) {
  switch (transitivity) {
    case migration::AttachTransitivity::Unrestricted:
      return "unrestricted";
    case migration::AttachTransitivity::ATransitive:
      return "a-transitive";
  }
  return "unknown";
}

const char* to_string(migration::ClusterTransfer transfer) {
  switch (transfer) {
    case migration::ClusterTransfer::Parallel:
      return "parallel";
    case migration::ClusterTransfer::Serial:
      return "serial";
  }
  return "unknown";
}

void apply_assignment(ExperimentConfig& config, std::string_view key,
                      std::string_view value) {
  auto& w = config.workload;
  if (key == "nodes") {
    w.nodes = static_cast<int>(parse_int(key, value));
  } else if (key == "clients") {
    w.clients = static_cast<int>(parse_int(key, value));
  } else if (key == "servers1") {
    w.servers1 = static_cast<int>(parse_int(key, value));
  } else if (key == "servers2") {
    w.servers2 = static_cast<int>(parse_int(key, value));
  } else if (key == "ws") {
    w.working_set_size = static_cast<int>(parse_int(key, value));
  } else if (key == "m") {
    w.migration_duration = parse_double(key, value);
  } else if (key == "n") {
    w.mean_calls = parse_double(key, value);
  } else if (key == "ti") {
    w.mean_intercall = parse_double(key, value);
  } else if (key == "tm") {
    w.mean_interblock = parse_double(key, value);
  } else if (key == "visit") {
    w.use_visit = parse_bool(key, value);
  } else if (key == "immutable") {
    w.immutable_servers = parse_bool(key, value);
  } else if (key == "fragments") {
    w.fragments = static_cast<int>(parse_int(key, value));
  } else if (key == "view") {
    w.fragment_view = static_cast<int>(parse_int(key, value));
  } else if (key == "monolithic") {
    w.monolithic = parse_bool(key, value);
  } else if (key == "scan") {
    if (value == "sequential") {
      w.parallel_scan = false;
    } else if (value == "parallel") {
      w.parallel_scan = true;
    } else {
      throw ConfigError{"unknown value '" + std::string{value} +
                        "' for 'scan' (choices: sequential|parallel)"};
    }
  } else if (key == "read-fraction") {
    w.read_fraction = parse_double(key, value);
  } else if (key == "replication") {
    if (value == "none") {
      config.replication = objsys::ReplicationMode::None;
    } else if (value == "on-read") {
      config.replication = objsys::ReplicationMode::ReplicateOnRead;
    } else {
      throw ConfigError{"unknown value '" + std::string{value} +
                        "' for 'replication' (choices: none|on-read)"};
    }
  } else if (key == "policy") {
    config.policy = parse_enum(key, value, &policy_from_string,
                               "sedentary|conventional|placement|"
                               "compare-nodes|compare-reinstantiate|"
                               "load-share|adaptive|adaptive-load");
  } else if (key == "attach") {
    config.transitivity =
        parse_enum(key, value, &transitivity_from_string,
                   "unrestricted|a-transitive");
  } else if (key == "exclusive") {
    config.exclusive_attachments = parse_bool(key, value);
  } else if (key == "transfer") {
    config.transfer =
        parse_enum(key, value, &transfer_from_string, "parallel|serial");
  } else if (key == "topology") {
    config.topology = parse_enum(key, value, &topology_from_string,
                                 "full-mesh|ring|star|grid");
  } else if (key == "latency") {
    config.latency_mode = parse_enum(key, value, &latency_from_string,
                                     "uniform|hop-scaled|fixed");
  } else if (key == "location") {
    config.location_scheme =
        parse_enum(key, value, &location_from_string,
                   "none|name-server|forwarding|broadcast|immediate-update");
  } else if (key == "directory") {
    config.directory = parse_enum(key, value, &directory_kind_from_string,
                                  "central|sharded");
  } else if (key == "shards") {
    config.dir_shards = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "dir-strategy") {
    config.dir_strategy =
        parse_enum(key, value, &dir_strategy_from_string,
                   "eager-invalidate|lazy-forward|lease-ttl");
  } else if (key == "dir-lease") {
    config.dir_lease_ttl = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "egoistic-clients") {
    config.egoistic_clients = static_cast<int>(parse_int(key, value));
  } else if (key == "egoistic-policy") {
    config.egoistic_policy =
        parse_enum(key, value, &policy_from_string,
                   "sedentary|conventional|placement|compare-nodes|"
                   "compare-reinstantiate|load-share|adaptive|adaptive-load");
  } else if (key == "ema-decay") {
    config.ema_decay = parse_double(key, value);
    if (config.ema_decay <= 0.0 || config.ema_decay >= 1.0) {
      throw ConfigError{"'ema-decay' must be in (0,1)"};
    }
  } else if (key == "hysteresis") {
    config.hysteresis_band = parse_double(key, value);
    if (config.hysteresis_band < 0.0 || config.hysteresis_band > 1.0) {
      throw ConfigError{"'hysteresis' must be in [0,1]"};
    }
  } else if (key == "min-weight") {
    config.adaptive_min_weight = parse_double(key, value);
    if (config.adaptive_min_weight < 0.0) {
      throw ConfigError{"'min-weight' must be >= 0"};
    }
  } else if (key == "load-factor") {
    config.load_factor = parse_double(key, value);
    if (config.load_factor <= 0.0) {
      throw ConfigError{"'load-factor' must be > 0"};
    }
  } else if (key == "majority") {
    config.clear_majority_minimum = static_cast<int>(parse_int(key, value));
  } else if (key == "ci") {
    config.stopping.relative_target = parse_double(key, value);
  } else if (key == "min-blocks") {
    config.stopping.min_observations =
        static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "max-blocks") {
    config.stopping.max_observations =
        static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "warmup") {
    config.warmup_time = parse_double(key, value);
  } else if (key == "max-time") {
    config.max_time = parse_double(key, value);
  } else if (key == "seed") {
    config.seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "lease") {
    config.lock_lease = parse_double(key, value);
    if (config.lock_lease < 0.0) {
      throw ConfigError{"'lease' must be >= 0 (0 = locks never expire)"};
    }
  } else if (key == "scenario") {
    config.scenario.name = std::string{value};
  } else if (key == "sc-nodes") {
    config.scenario.nodes = static_cast<int>(parse_int(key, value));
  } else if (key == "sc-sources") {
    config.scenario.sources = static_cast<int>(parse_int(key, value));
  } else if (key == "sc-objects") {
    config.scenario.objects = static_cast<int>(parse_int(key, value));
  } else if (key == "sc-rate") {
    config.scenario.rate = parse_double(key, value);
  } else if (key == "sc-theta") {
    config.scenario.zipf_theta = parse_double(key, value);
  } else if (key == "sc-read") {
    config.scenario.read_fraction = parse_double(key, value);
  } else if (key == "sc-move") {
    config.scenario.move_fraction = parse_double(key, value);
  } else if (key == "sc-fanout") {
    config.scenario.fanout = static_cast<int>(parse_int(key, value));
  } else if (key == "sc-groups") {
    config.scenario.groups = static_cast<int>(parse_int(key, value));
  } else if (key == "sc-handoff") {
    config.scenario.handoff_fraction = parse_double(key, value);
  } else if (key == "sc-burst") {
    config.scenario.burst_mean = parse_double(key, value);
  } else if (key == "sc-alpha") {
    config.scenario.burst_alpha = parse_double(key, value);
  } else if (key == "fault-plan") {
    try {
      config.fault_plan = fault::load_plan(std::string{value});
    } catch (const fault::FaultPlanError& e) {
      throw ConfigError{e.what()};
    }
  } else {
    throw ConfigError{"unknown key '" + std::string{key} + "' (see --help)"};
  }
}

ExperimentConfig parse_config(const std::vector<std::string>& tokens,
                              ExperimentConfig base) {
  for (const std::string& token : tokens) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError{"expected key=value, got '" + token + "'"};
    }
    apply_assignment(base, std::string_view{token}.substr(0, eq),
                     std::string_view{token}.substr(eq + 1));
  }
  return base;
}

std::string describe(const ExperimentConfig& config) {
  const auto& w = config.workload;
  std::ostringstream os;
  os << "policy=" << migration::to_string(config.policy) << " nodes="
     << w.nodes << " clients=" << w.clients << " servers1=" << w.servers1
     << " servers2=" << w.servers2 << " m=" << w.migration_duration
     << " n=" << w.mean_calls << " ti=" << w.mean_intercall
     << " tm=" << w.mean_interblock;
  if (w.servers2 > 0) os << " ws=" << w.working_set_size;
  if (w.use_visit) os << " visit=1";
  os << " attach=" << to_string(config.transitivity);
  if (config.exclusive_attachments) os << " exclusive=1";
  if (config.transfer != migration::ClusterTransfer::Parallel) {
    os << " transfer=" << to_string(config.transfer);
  }
  if (config.topology != net::TopologyKind::FullMesh) {
    os << " topology=" << to_string(config.topology);
  }
  if (config.latency_mode != net::LatencyMode::Uniform) {
    os << " latency=" << to_string(config.latency_mode);
  }
  if (config.location_scheme != objsys::LocationScheme::None) {
    os << " location=" << objsys::to_string(config.location_scheme);
  }
  if (config.directory != objsys::DirectoryKind::Central) {
    os << " directory=" << objsys::to_string(config.directory)
       << " dir-strategy=" << objsys::to_string(config.dir_strategy);
    if (config.dir_shards != 0) os << " shards=" << config.dir_shards;
    if (config.dir_strategy == objsys::ConsistencyStrategy::LeaseTtl) {
      os << " dir-lease=" << config.dir_lease_ttl;
    }
  }
  if (config.egoistic_clients > 0) {
    os << " egoistic-clients=" << config.egoistic_clients
       << " egoistic-policy=" << migration::to_string(config.egoistic_policy);
  }
  if (config.policy == migration::PolicyKind::Adaptive ||
      config.policy == migration::PolicyKind::AdaptiveLoad) {
    os << " ema-decay=" << config.ema_decay
       << " hysteresis=" << config.hysteresis_band
       << " min-weight=" << config.adaptive_min_weight;
    if (config.policy == migration::PolicyKind::AdaptiveLoad) {
      os << " load-factor=" << config.load_factor;
    }
  }
  if (config.scenario.enabled()) {
    const auto& sc = config.scenario;
    os << " scenario=" << sc.name << " sc-nodes=" << sc.nodes
       << " sc-sources=" << sc.sources << " sc-objects=" << sc.objects
       << " sc-rate=" << sc.rate;
  }
  if (config.lock_lease > 0.0) os << " lease=" << config.lock_lease;
  if (!config.fault_plan.empty()) {
    os << " faults={" << config.fault_plan.describe() << "}";
  }
  os << " ci=" << config.stopping.relative_target << " seed=" << config.seed;
  return os.str();
}

std::string config_help() {
  return R"(keys (key=value):
  populations:   nodes clients servers1 servers2 ws
  Table 1:       m (migration duration) n (calls/block) ti tm visit
                 immutable (servers are static: moves create copies)
                 read-fraction (share of calls that only read)
                 fragments view monolithic scan={sequential|parallel}
                   (fragmented-service outlook)
                 replication={none|on-read} (mutable read replicas)
  semantics:     policy={sedentary|conventional|placement|compare-nodes|
                         compare-reinstantiate|load-share|adaptive|
                         adaptive-load}
                 attach={unrestricted|a-transitive} exclusive={0|1}
                 transfer={parallel|serial}
  adaptive:      ema-decay (EMA retention per access, docs/policies.md)
                 hysteresis (dominant-vs-host share margin)
                 min-weight (min effective EMA sample size)
                 load-factor (adaptive-load hosted-objects veto)
  substrate:     topology={full-mesh|ring|star|grid}
                 latency={uniform|hop-scaled|fixed}
                 location={none|name-server|forwarding|broadcast|
                           immediate-update}
                 directory={central|sharded} shards=N (0 = one per node)
                 dir-strategy={eager-invalidate|lazy-forward|lease-ttl}
                 dir-lease=T (lease-ttl cache lifetime, logical ticks)
  scenarios:     scenario={cache|game|iot|social} (docs/scenarios.md;
                   replaces the office workload with open-loop traffic)
                 sc-nodes sc-sources sc-objects sc-rate
                 sc-theta (Zipf skew) sc-read sc-move (pull probability)
                 sc-fanout sc-groups sc-handoff (game shards)
                 sc-burst sc-alpha (IoT Pareto burst lengths)
  mixed policy:  egoistic-clients egoistic-policy
  run control:   ci min-blocks max-blocks warmup max-time seed
                 majority (clear-majority threshold for reinstantiation)
  robustness:    fault-plan=FILE (drop/delay/dup/crash schedule,
                   docs/fault_model.md) lease=T (placement-lock lease,
                   0 = never expires)
)";
}

}  // namespace omig::core
