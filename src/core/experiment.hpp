// Experiment configuration and runner: one call = one simulated data point.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "objsys/invocation.hpp"
#include "objsys/location_service.hpp"
#include "scenario/scenario.hpp"
#include "stats/batch_means.hpp"
#include "trace/log.hpp"
#include "workload/params.hpp"

namespace omig::core {

/// Everything that defines one simulation run.
struct ExperimentConfig {
  workload::WorkloadParams workload;
  /// Scenario-pack traffic (docs/scenarios.md). When `scenario.enabled()`
  /// the office workload above is not spawned: the scenario's population
  /// and open-loop sources replace it (its node count wins too). All other
  /// knobs — policy, transitivity, directory, faults, stopping — apply
  /// unchanged.
  scenario::ScenarioOptions scenario;
  migration::PolicyKind policy = migration::PolicyKind::Placement;

  /// Attachment semantics (only relevant when the workload attaches
  /// objects, i.e. the two-layer model).
  migration::AttachTransitivity transitivity =
      migration::AttachTransitivity::Unrestricted;
  bool exclusive_attachments = false;
  migration::ClusterTransfer transfer = migration::ClusterTransfer::Parallel;
  /// "Clear majority" threshold for the reinstantiation policy (see
  /// ManagerOptions::clear_majority_minimum).
  int clear_majority_minimum = 2;

  /// Adaptive-policy knobs (docs/policies.md; only consulted when `policy`
  /// or `egoistic_policy` is Adaptive/AdaptiveLoad). Defaults mirror
  /// ManagerOptions.
  double ema_decay = 0.9;          ///< per-access EMA retention factor
  double hysteresis_band = 0.2;    ///< dominant-vs-host share margin
  double adaptive_min_weight = 4.0;  ///< min effective EMA sample size
  double load_factor = 2.0;        ///< AdaptiveLoad's hosted-objects veto
  /// Attach the locality tracker even under a non-adaptive policy. No
  /// policy consumes it then — this isolates the tracker's bookkeeping
  /// cost on the invocation hot path (bench_policy's A/B; the tracker is
  /// RNG-free, so results are unchanged by construction).
  bool track_locality = false;

  /// Mutable-object replication (Section 5 outlook; see docs/MODEL.md).
  objsys::ReplicationMode replication = objsys::ReplicationMode::None;

  net::TopologyKind topology = net::TopologyKind::FullMesh;
  net::LatencyMode latency_mode = net::LatencyMode::Uniform;
  objsys::LocationScheme location_scheme = objsys::LocationScheme::None;

  /// Directory implementation behind the location seam (docs/directory.md).
  /// Central is the seed behaviour (single name server / registry map);
  /// Sharded hashes objects onto per-node directory shards with per-node
  /// lookup caches kept consistent by `dir_strategy`.
  objsys::DirectoryKind directory = objsys::DirectoryKind::Central;
  /// Directory shards when sharded; 0 = one shard per node.
  std::size_t dir_shards = 0;
  objsys::ConsistencyStrategy dir_strategy =
      objsys::ConsistencyStrategy::LazyForward;
  /// LeaseTtl strategy: cache-entry lifetime in directory logical ticks.
  std::uint64_t dir_lease_ttl = 16;

  /// Beyond-paper (Section 2.4's "completely egoistic" implementor): the
  /// first `egoistic_clients` clients run `egoistic_policy` while everyone
  /// else runs `policy`. One-layer workloads only.
  int egoistic_clients = 0;
  migration::PolicyKind egoistic_policy =
      migration::PolicyKind::Conventional;

  /// Fault injection (docs/fault_model.md): message drops / delays /
  /// duplicates per link plus a node crash schedule, all in sim time.
  /// Empty = no fault machinery is instantiated and the run is identical
  /// to a pre-fault build.
  fault::FaultPlan fault_plan;
  /// Placement-lock lease in sim time; 0 = locks never expire (see
  /// ManagerOptions::lock_lease).
  double lock_lease = 0.0;

  stats::StoppingRule stopping;
  sim::SimTime warmup_time = 500.0;
  sim::SimTime max_time = 1e9;
  std::uint64_t seed = 0x0a1b2c3d4e5f6071ULL;
};

/// The measured outcome of one run.
struct ExperimentResult {
  double total_per_call = 0.0;      ///< Figures 8/12/14/16 y-axis
  double call_duration = 0.0;       ///< Figure 10 y-axis
  double migration_per_call = 0.0;  ///< Figure 11 y-axis
  double ci_half_width = 0.0;
  double ci_relative = 0.0;
  std::uint64_t blocks = 0;
  std::uint64_t calls = 0;
  std::uint64_t migrations = 0;      ///< completed object relocations
  std::uint64_t transfers = 0;       ///< physical transfer operations
  std::uint64_t control_messages = 0;
  std::uint64_t remote_calls = 0;
  std::uint64_t blocked_calls = 0;   ///< calls that waited on a transit
  std::uint64_t replications = 0;    ///< copies installed
  std::uint64_t replica_hits = 0;    ///< calls served by a local copy
  std::uint64_t invalidations = 0;   ///< copies dropped by writes/moves
  std::uint64_t events = 0;
  sim::SimTime sim_time = 0.0;
  double call_p50 = 0.0;  ///< median call duration
  double call_p95 = 0.0;  ///< 95th-percentile call duration
  double call_p99 = 0.0;  ///< 99th-percentile call duration

  // Scenario traffic — all zero unless the run had a scenario enabled.
  std::uint64_t scenario_bursts = 0;    ///< open-loop arrivals generated
  std::uint64_t scenario_ops = 0;       ///< invocations + moves + visits
  double scenario_offered = 0.0;        ///< arrivals per sim-time unit
  double scenario_achieved = 0.0;       ///< completed ops per sim-time unit
  double scenario_op_p50 = 0.0;         ///< invocation latency quantiles
  double scenario_op_p99 = 0.0;         ///< (sim units, bucket upper bound)

  // Adaptive-policy telemetry — all zero unless the run used an adaptive
  // PolicyKind (docs/policies.md).
  std::uint64_t policy_migrations = 0;   ///< adaptive migrations triggered
  std::uint64_t policy_suppressed_hysteresis = 0;  ///< moves under the band
  std::uint64_t policy_suppressed_load = 0;        ///< load-veto refusals
  std::uint64_t policy_reversals = 0;    ///< migrations undoing the previous
  std::uint64_t ema_updates = 0;         ///< locality-tracker record() calls

  // Robustness counters — all zero unless the run had a fault plan.
  std::uint64_t dropped_messages = 0;
  std::uint64_t duplicated_messages = 0;
  std::uint64_t delayed_messages = 0;
  std::uint64_t fault_retries = 0;    ///< retransmissions / down-node polls
  std::uint64_t lease_expiries = 0;   ///< placement locks expired
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t recoveries = 0;       ///< objects pulled from a checkpoint
};

/// Runs one experiment to completion (stopping rule or max_time).
/// If `trace` is non-null, the migration runtime's protocol events are
/// recorded into it (requests, refusals, transits, locks).
ExperimentResult run_experiment(const ExperimentConfig& config,
                                trace::TraceLog* trace = nullptr);

/// Reads OMIG_CI_TARGET / OMIG_MIN_BLOCKS / OMIG_MAX_BLOCKS from the
/// environment into a stopping rule, starting from the paper's defaults
/// (1% at p = 0.99). Lets the benches trade precision for speed.
stats::StoppingRule stopping_rule_from_env();

}  // namespace omig::core
