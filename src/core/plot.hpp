// ASCII line plots for the benchmark harness.
//
// The paper's evaluation is figures; the benches print the same series as
// tables *and* as a terminal plot so the shape (who wins, where curves
// cross) is visible directly in bench_output.txt.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/sweep.hpp"

namespace omig::core {

/// A fixed-size character canvas with auto-scaled axes. Series are drawn
/// in order with per-series glyphs; later series overwrite earlier ones at
/// collisions.
class AsciiPlot {
public:
  explicit AsciiPlot(std::size_t width = 64, std::size_t height = 18);

  /// Adds one series. Points need not be sorted; the plot only places
  /// markers (no interpolation), which is honest for sparse sweeps.
  void add_series(std::string label,
                  std::vector<std::pair<double, double>> points);

  /// Renders the canvas with y-axis labels, an x-axis ruler, and a legend.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }

private:
  struct Series {
    std::string label;
    std::vector<std::pair<double, double>> points;
    char glyph;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
};

/// Convenience: plot a sweep's metric, one series per variant.
std::string plot_sweep(const std::vector<SweepVariant>& variants,
                       const std::vector<SweepPoint>& points, Metric metric,
                       std::size_t width = 64, std::size_t height = 18);

}  // namespace omig::core
