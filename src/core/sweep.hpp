// Parameter sweeps: run a family of experiments over an x-axis and emit the
// paper-style series (one column per policy/variant).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/table.hpp"

namespace omig::core {

/// One curve of a figure: a label plus a config generator over the x-axis.
struct SweepVariant {
  std::string label;
  std::function<ExperimentConfig(double x)> make_config;
};

/// One measured x position: the results of every variant at that x.
struct SweepPoint {
  double x = 0.0;
  std::vector<ExperimentResult> results;
};

/// Which per-call metric a table reports.
enum class Metric {
  TotalPerCall,      ///< Figures 8 / 12 / 14 / 16
  CallDuration,      ///< Figure 10
  MigrationPerCall,  ///< Figure 11
};

[[nodiscard]] const char* to_string(Metric metric);

/// Runs every variant at every x. If `progress` is non-null, one line per
/// point is written to it (x, label, value, blocks — useful on long runs).
std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const std::vector<SweepVariant>& variants,
                                  std::ostream* progress = nullptr);

/// Formats sweep output as a table: x column + one column per variant.
TextTable sweep_table(const std::string& x_label,
                      const std::vector<SweepVariant>& variants,
                      const std::vector<SweepPoint>& points, Metric metric,
                      int precision = 4);

/// Evenly spaced helper (inclusive of both ends when possible).
std::vector<double> linspace(double lo, double hi, int count);

}  // namespace omig::core
