// Parameter sweeps: run a family of experiments over an x-axis and emit the
// paper-style series (one column per policy/variant).
//
// The execution mechanism is separate from the sweep policy (cf. Walker et
// al.): the same (variant × x × replication) grid can run sequentially or on
// a work-stealing pool, and the results are bit-identical either way because
// every cell's RNG seed derives from the cell's *indices* (see cell_seed),
// never from thread identity or completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/table.hpp"

namespace omig::core {

/// One curve of a figure: a label plus a config generator over the x-axis.
/// `make_config` may be called concurrently from several threads when the
/// sweep runs parallel — it must be a pure function of `x`.
struct SweepVariant {
  std::string label;
  std::function<ExperimentConfig(double x)> make_config;
};

/// One measured x position: the results of every variant at that x.
struct SweepPoint {
  double x = 0.0;
  std::vector<ExperimentResult> results;
};

/// Which per-call metric a table reports.
enum class Metric {
  TotalPerCall,      ///< Figures 8 / 12 / 14 / 16
  CallDuration,      ///< Figure 10
  MigrationPerCall,  ///< Figure 11
};

[[nodiscard]] const char* to_string(Metric metric);

/// How a sweep executes. The defaults reproduce the historical behaviour
/// except that the grid fans out over every core.
struct SweepOptions {
  /// Worker threads for the cell grid. 0 = hardware_concurrency;
  /// 1 = today's exact sequential code path (no pool is created).
  int threads = 0;
  /// If non-null, one line per finished cell is written to it — always in
  /// sequential cell order (x-major, then variant, then replication) and
  /// always whole lines, regardless of thread count.
  std::ostream* progress = nullptr;
  /// Independent replications per (variant, x) cell; their results are
  /// merged into one ExperimentResult (per-call metrics averaged weighted
  /// by calls, event counters summed, CI half-widths combined as
  /// independent estimates).
  int replications = 1;
  /// When set, every cell's seed is derived from
  /// cell_seed(*base_seed, variant, x index, replication), overriding the
  /// seed in the generated config. When unset, replication 0 keeps the
  /// config's own seed (so replications=1 reproduces historical results
  /// bit-for-bit) and further replications derive from it.
  std::optional<std::uint64_t> base_seed;
};

/// Splitmix-style hash of (base_seed, variant index, x index, replication):
/// deterministic, order-free, and independent of thread count. This is the
/// only sanctioned way to seed a sweep cell.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t base_seed,
                                      std::size_t variant_index,
                                      std::size_t x_index,
                                      std::size_t replication);

/// Thrown when one or more cells of a sweep fail. The points whose cells
/// *all* completed are carried along so a partial sweep is not lost.
class SweepError : public std::runtime_error {
public:
  SweepError(const std::string& what, std::vector<SweepPoint> completed,
             std::size_t failed_cells)
      : std::runtime_error{what},
        completed_{std::move(completed)},
        failed_cells_{failed_cells} {}

  [[nodiscard]] const std::vector<SweepPoint>& completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::size_t failed_cells() const noexcept {
    return failed_cells_;
  }

private:
  std::vector<SweepPoint> completed_;
  std::size_t failed_cells_;
};

/// Runs every variant at every x (times `options.replications`), fanning the
/// independent cells out over `options.threads` threads. Results are
/// bit-identical for every thread count. If any cell throws, every other
/// cell still runs and a SweepError carrying the completed points and the
/// first (in cell order) failure is raised.
std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const std::vector<SweepVariant>& variants,
                                  const SweepOptions& options);

/// Historical entry point: sequential, no reseeding — byte-for-byte the
/// pre-parallel behaviour.
std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const std::vector<SweepVariant>& variants,
                                  std::ostream* progress = nullptr);

/// Formats sweep output as a table: x column + one column per variant.
TextTable sweep_table(const std::string& x_label,
                      const std::vector<SweepVariant>& variants,
                      const std::vector<SweepPoint>& points, Metric metric,
                      int precision = 4);

/// Evenly spaced helper (inclusive of both ends when possible).
std::vector<double> linspace(double lo, double hi, int count);

}  // namespace omig::core
