#include "core/sweep.hpp"

#include <atomic>
#include <cmath>
#include <mutex>
#include <ostream>
#include <sstream>

#include "sim/random.hpp"
#include "util/assert.hpp"
#include "util/executor.hpp"

namespace omig::core {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::TotalPerCall:
      return "mean communication-time per call";
    case Metric::CallDuration:
      return "mean duration of one call";
    case Metric::MigrationPerCall:
      return "mean migration-time per call";
  }
  return "unknown";
}

std::uint64_t cell_seed(std::uint64_t base_seed, std::size_t variant_index,
                        std::size_t x_index, std::size_t replication) {
  // Chain the splitmix64 finalizer over the indices. Every argument goes
  // through a full avalanche step, so (0,1) and (1,0) land far apart and
  // neighbouring cells get statistically independent streams.
  std::uint64_t h = base_seed;
  for (const std::uint64_t v :
       {static_cast<std::uint64_t>(variant_index),
        static_cast<std::uint64_t>(x_index),
        static_cast<std::uint64_t>(replication)}) {
    sim::SplitMix64 mix{h ^ (v + 0x9e3779b97f4a7c15ULL)};
    h = mix.next();
  }
  return h;
}

namespace {

double pick(const ExperimentResult& r, Metric metric) {
  switch (metric) {
    case Metric::TotalPerCall:
      return r.total_per_call;
    case Metric::CallDuration:
      return r.call_duration;
    case Metric::MigrationPerCall:
      return r.migration_per_call;
  }
  return 0.0;
}

/// Collects per-cell progress lines and emits them strictly in cell order,
/// whole lines at a time, no matter which thread finishes first. Lines are
/// flushed as soon as the ordered prefix grows, so a long run shows output
/// continuously instead of all at the end.
class OrderedProgress {
public:
  OrderedProgress(std::ostream* out, std::size_t cells)
      : out_{out},
        lines_(out == nullptr ? 0 : cells),
        ready_(out == nullptr ? 0 : cells, false) {}

  void report(std::size_t cell, std::string line) {
    if (out_ == nullptr) return;
    const std::lock_guard<std::mutex> lock{m_};
    lines_[cell] = std::move(line);
    ready_[cell] = true;
    bool wrote = false;
    while (cursor_ < ready_.size() && ready_[cursor_]) {
      *out_ << lines_[cursor_];
      lines_[cursor_].clear();  // free early; long sweeps, long lines
      ++cursor_;
      wrote = true;
    }
    if (wrote) out_->flush();
  }

private:
  std::ostream* out_;
  std::mutex m_;
  std::vector<std::string> lines_;
  std::vector<bool> ready_;
  std::size_t cursor_ = 0;
};

std::string progress_line(double x, const std::string& label,
                          const ExperimentResult& r, int replication,
                          int replications) {
  std::ostringstream os;
  os << "  x=" << x << "  " << label;
  if (replications > 1) os << " [rep " << replication << "]";
  os << ": total/call=" << r.total_per_call << "  (blocks=" << r.blocks
     << ", ci=" << r.ci_relative * 100.0 << "%)\n";
  return os.str();
}

/// Merges independent replications of one cell into a single result:
/// per-call metrics are averaged weighted by call count (ratio-of-sums),
/// counters are summed, and the CI half-widths combine as independent
/// estimates of the same mean (sqrt of the sum of squares over R).
ExperimentResult merge_replicates(const std::vector<ExperimentResult>& reps) {
  OMIG_REQUIRE(!reps.empty(), "merge needs at least one replication");
  if (reps.size() == 1) return reps.front();

  ExperimentResult m;
  double calls = 0.0;
  double hw_sq = 0.0;
  for (const auto& r : reps) {
    const auto w = static_cast<double>(r.calls);
    calls += w;
    m.total_per_call += r.total_per_call * w;
    m.call_duration += r.call_duration * w;
    m.migration_per_call += r.migration_per_call * w;
    m.call_p50 += r.call_p50 * w;
    m.call_p95 += r.call_p95 * w;
    m.call_p99 += r.call_p99 * w;
    hw_sq += r.ci_half_width * r.ci_half_width;
    m.blocks += r.blocks;
    m.calls += r.calls;
    m.migrations += r.migrations;
    m.transfers += r.transfers;
    m.control_messages += r.control_messages;
    m.remote_calls += r.remote_calls;
    m.blocked_calls += r.blocked_calls;
    m.replications += r.replications;
    m.replica_hits += r.replica_hits;
    m.invalidations += r.invalidations;
    m.events += r.events;
    m.sim_time += r.sim_time;
    m.dropped_messages += r.dropped_messages;
    m.duplicated_messages += r.duplicated_messages;
    m.delayed_messages += r.delayed_messages;
    m.fault_retries += r.fault_retries;
    m.lease_expiries += r.lease_expiries;
    m.node_crashes += r.node_crashes;
    m.node_restarts += r.node_restarts;
    m.recoveries += r.recoveries;
  }
  if (calls > 0.0) {
    m.total_per_call /= calls;
    m.call_duration /= calls;
    m.migration_per_call /= calls;
    m.call_p50 /= calls;
    m.call_p95 /= calls;
    m.call_p99 /= calls;
  }
  m.ci_half_width = std::sqrt(hw_sq) / static_cast<double>(reps.size());
  m.ci_relative =
      m.total_per_call > 0.0 ? m.ci_half_width / m.total_per_call : 0.0;
  return m;
}

}  // namespace

std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const std::vector<SweepVariant>& variants,
                                  const SweepOptions& options) {
  OMIG_REQUIRE(!variants.empty(), "sweep needs at least one variant");
  OMIG_REQUIRE(options.threads >= 0, "thread count cannot be negative");
  OMIG_REQUIRE(options.replications >= 1,
               "sweep needs at least one replication");

  const std::size_t n_x = xs.size();
  const std::size_t n_v = variants.size();
  const auto n_r = static_cast<std::size_t>(options.replications);
  const std::size_t n_cells = n_x * n_v * n_r;

  std::vector<ExperimentResult> results(n_cells);
  std::vector<std::string> errors(n_cells);  // non-empty = cell failed
  std::atomic<bool> any_error{false};
  OrderedProgress progress{options.progress, n_cells};

  // Cell order is x-major, then variant, then replication — exactly the
  // order the historical sequential loop used, so the progress stream and
  // the error reported first are independent of thread count.
  const auto run_cell = [&](std::size_t cell) {
    const std::size_t xi = cell / (n_v * n_r);
    const std::size_t vi = (cell / n_r) % n_v;
    const std::size_t rep = cell % n_r;
    try {
      ExperimentConfig cfg = variants[vi].make_config(xs[xi]);
      if (options.base_seed.has_value()) {
        cfg.seed = cell_seed(*options.base_seed, vi, xi, rep);
      } else if (rep > 0) {
        cfg.seed = cell_seed(cfg.seed, vi, xi, rep);
      }
      results[cell] = run_experiment(cfg);
      progress.report(cell,
                      progress_line(xs[xi], variants[vi].label, results[cell],
                                    static_cast<int>(rep),
                                    options.replications));
    } catch (const std::exception& e) {
      errors[cell] = e.what();
      any_error.store(true, std::memory_order_relaxed);
      progress.report(cell, "  x=" + std::to_string(xs[xi]) + "  " +
                                variants[vi].label + ": FAILED: " + e.what() +
                                "\n");
    }
  };

  if (options.threads == 1) {
    for (std::size_t cell = 0; cell < n_cells; ++cell) run_cell(cell);
  } else {
    util::Executor executor{static_cast<std::size_t>(options.threads)};
    executor.parallel_for(n_cells, run_cell);
  }

  // Assemble points from the flat grid; a point is only usable when every
  // one of its cells succeeded.
  std::vector<SweepPoint> points;
  points.reserve(n_x);
  std::size_t failed_cells = 0;
  std::string first_error;
  std::vector<ExperimentResult> reps;  // reused across variants and points
  reps.reserve(n_r);
  for (std::size_t xi = 0; xi < n_x; ++xi) {
    SweepPoint point;
    point.x = xs[xi];
    point.results.reserve(n_v);
    bool ok = true;
    for (std::size_t vi = 0; vi < n_v; ++vi) {
      reps.clear();
      for (std::size_t rep = 0; rep < n_r; ++rep) {
        const std::size_t cell = (xi * n_v + vi) * n_r + rep;
        if (!errors[cell].empty()) {
          ++failed_cells;
          if (first_error.empty()) first_error = errors[cell];
          ok = false;
        } else {
          reps.push_back(results[cell]);
        }
      }
      if (ok) point.results.push_back(merge_replicates(reps));
    }
    if (ok) points.push_back(std::move(point));
  }

  if (any_error.load()) {
    std::ostringstream what;
    what << "sweep failed: " << failed_cells << " of " << n_cells
         << " cells raised (first: " << first_error << "); "
         << points.size() << " of " << n_x << " points completed";
    throw SweepError{what.str(), std::move(points), failed_cells};
  }
  return points;
}

std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const std::vector<SweepVariant>& variants,
                                  std::ostream* progress) {
  SweepOptions options;
  options.threads = 1;
  options.progress = progress;
  return run_sweep(xs, variants, options);
}

TextTable sweep_table(const std::string& x_label,
                      const std::vector<SweepVariant>& variants,
                      const std::vector<SweepPoint>& points, Metric metric,
                      int precision) {
  std::vector<std::string> headers{x_label};
  for (const auto& v : variants) headers.push_back(v.label);
  TextTable table{std::move(headers)};
  for (const auto& point : points) {
    std::vector<double> values;
    values.reserve(point.results.size());
    for (const auto& r : point.results) values.push_back(pick(r, metric));
    table.add_numeric_row(point.x, values, precision);
  }
  return table;
}

std::vector<double> linspace(double lo, double hi, int count) {
  OMIG_REQUIRE(count >= 1, "linspace needs at least one point");
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    xs.push_back(lo);
    return xs;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    xs.push_back(lo + step * static_cast<double>(i));
  }
  return xs;
}

}  // namespace omig::core
