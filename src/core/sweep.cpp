#include "core/sweep.hpp"

#include <ostream>

#include "util/assert.hpp"

namespace omig::core {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::TotalPerCall:
      return "mean communication-time per call";
    case Metric::CallDuration:
      return "mean duration of one call";
    case Metric::MigrationPerCall:
      return "mean migration-time per call";
  }
  return "unknown";
}

namespace {

double pick(const ExperimentResult& r, Metric metric) {
  switch (metric) {
    case Metric::TotalPerCall:
      return r.total_per_call;
    case Metric::CallDuration:
      return r.call_duration;
    case Metric::MigrationPerCall:
      return r.migration_per_call;
  }
  return 0.0;
}

}  // namespace

std::vector<SweepPoint> run_sweep(const std::vector<double>& xs,
                                  const std::vector<SweepVariant>& variants,
                                  std::ostream* progress) {
  OMIG_REQUIRE(!variants.empty(), "sweep needs at least one variant");
  std::vector<SweepPoint> points;
  points.reserve(xs.size());
  for (double x : xs) {
    SweepPoint point;
    point.x = x;
    for (const auto& variant : variants) {
      const ExperimentConfig cfg = variant.make_config(x);
      const ExperimentResult r = run_experiment(cfg);
      if (progress != nullptr) {
        *progress << "  x=" << x << "  " << variant.label << ": total/call="
                  << r.total_per_call << "  (blocks=" << r.blocks
                  << ", ci=" << r.ci_relative * 100.0 << "%)\n";
        progress->flush();
      }
      point.results.push_back(r);
    }
    points.push_back(std::move(point));
  }
  return points;
}

TextTable sweep_table(const std::string& x_label,
                      const std::vector<SweepVariant>& variants,
                      const std::vector<SweepPoint>& points, Metric metric,
                      int precision) {
  std::vector<std::string> headers{x_label};
  for (const auto& v : variants) headers.push_back(v.label);
  TextTable table{std::move(headers)};
  for (const auto& point : points) {
    std::vector<double> values;
    values.reserve(point.results.size());
    for (const auto& r : point.results) values.push_back(pick(r, metric));
    table.add_numeric_row(point.x, values, precision);
  }
  return table;
}

std::vector<double> linspace(double lo, double hi, int count) {
  OMIG_REQUIRE(count >= 1, "linspace needs at least one point");
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    xs.push_back(lo);
    return xs;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    xs.push_back(lo + step * static_cast<double>(i));
  }
  return xs;
}

}  // namespace omig::core
