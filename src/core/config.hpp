// Textual experiment configuration ("key=value") for the CLI front-end.
//
// Lets users run any experiment of the paper — and beyond-paper variants —
// without writing C++:   omig_sim policy=placement clients=12 tm=10
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"

namespace omig::core {

/// Thrown on unknown keys or malformed values (with a helpful message).
class ConfigError : public std::runtime_error {
public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Enum parsers (case-sensitive, kebab-case; nullopt on no match).
std::optional<migration::PolicyKind> policy_from_string(std::string_view s);
std::optional<migration::AttachTransitivity> transitivity_from_string(
    std::string_view s);
std::optional<migration::ClusterTransfer> transfer_from_string(
    std::string_view s);
std::optional<net::TopologyKind> topology_from_string(std::string_view s);
std::optional<net::LatencyMode> latency_from_string(std::string_view s);
std::optional<objsys::LocationScheme> location_from_string(
    std::string_view s);

const char* to_string(net::TopologyKind kind);
const char* to_string(net::LatencyMode mode);
const char* to_string(migration::AttachTransitivity transitivity);
const char* to_string(migration::ClusterTransfer transfer);

/// Applies one "key=value" assignment to `config`. Throws ConfigError on
/// unknown keys or unparsable values. Recognised keys:
///   nodes clients servers1 servers2 ws         (populations)
///   m n ti tm visit                            (Table-1 parameters)
///   policy attach exclusive transfer           (migration semantics)
///   topology latency location                  (substrate)
///   egoistic-clients egoistic-policy           (mixed-policy extension)
///   ci min-blocks max-blocks warmup max-time seed   (run control)
void apply_assignment(ExperimentConfig& config, std::string_view key,
                      std::string_view value);

/// Parses a list of "key=value" tokens on top of `base`.
ExperimentConfig parse_config(const std::vector<std::string>& tokens,
                              ExperimentConfig base = {});

/// One-line human-readable summary of a configuration (round-trippable
/// through parse_config for the non-default fields).
std::string describe(const ExperimentConfig& config);

/// The help text listing every key (used by the CLI).
std::string config_help();

}  // namespace omig::core
