// Metric collection and the sequential stopping rule.
//
// The paper's headline metric is the "mean communication-time per call":
// the mean duration of an invocation plus the migration cost evenly
// distributed to the invocations belonging to that migration (Section
// 4.2.1). Figure 10 plots the invocation-duration component and Figure 11
// the migration component separately; we track all three as ratio-of-sums
// with batch-means confidence intervals and stop the simulation when the
// total metric reaches the paper's 1% half-width at p = 0.99.
#pragma once

#include "sim/engine.hpp"
#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "workload/observer.hpp"

namespace omig::core {

/// Collects per-block observations, maintains the three per-call metrics,
/// and requests an engine stop once the stopping rule is satisfied.
class Recorder final : public workload::BlockObserver {
public:
  /// Blocks completing before `warmup_time` are discarded (initial
  /// transient deletion).
  Recorder(sim::Engine& engine, stats::StoppingRule rule,
           sim::SimTime warmup_time);

  void on_block(const migration::MoveBlock& blk) override;
  void on_background_migration(double cost) override;
  void on_call(double duration) override;

  /// Mean communication time per call (call duration + distributed
  /// migration cost) — the y-axis of Figures 8, 12, 14 and 16.
  [[nodiscard]] double total_per_call() const;
  /// Mean duration of one call — Figure 10.
  [[nodiscard]] double call_duration_per_call() const;
  /// Mean migration time per call — Figure 11.
  [[nodiscard]] double migration_per_call() const;

  [[nodiscard]] stats::ConfidenceInterval total_interval() const;

  /// Quantiles of individual call durations (tail latency: blocked calls
  /// show up here long before they move the mean).
  [[nodiscard]] double call_duration_quantile(double q) const;
  [[nodiscard]] const stats::Histogram& call_histogram() const {
    return call_hist_;
  }
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  [[nodiscard]] std::uint64_t calls() const { return calls_; }
  [[nodiscard]] std::uint64_t discarded_blocks() const { return discarded_; }
  [[nodiscard]] const stats::StoppingRule& rule() const { return rule_; }

private:
  sim::Engine* engine_;
  stats::StoppingRule rule_;
  sim::SimTime warmup_time_;
  stats::RatioBatchMeans total_;
  stats::RatioBatchMeans call_;
  stats::RatioBatchMeans migration_;
  stats::Histogram call_hist_{0.0, 60.0, 240};
  std::uint64_t blocks_ = 0;
  std::uint64_t calls_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace omig::core
