#include "core/experiment.hpp"

#include <cstdlib>
#include <memory>
#include <optional>

#include "core/metrics.hpp"
#include "fault/injector.hpp"
#include "migration/alliance.hpp"
#include "migration/attachment.hpp"
#include "migration/policy.hpp"
#include "obs/families.hpp"
#include "obs/metrics.hpp"
#include "objsys/invocation.hpp"
#include "objsys/locality.hpp"
#include "objsys/registry.hpp"
#include "scenario/sim_driver.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "workload/fragmented.hpp"
#include "workload/one_layer.hpp"
#include "workload/two_layer.hpp"

namespace omig::core {

ExperimentResult run_experiment(const ExperimentConfig& config,
                                trace::TraceLog* trace) {
  workload::validate(config.workload);
  OMIG_REQUIRE(config.egoistic_clients >= 0 &&
                   config.egoistic_clients <= config.workload.clients,
               "egoistic client count out of range");
  OMIG_REQUIRE(config.egoistic_clients == 0 ||
                   (config.workload.servers2 == 0 &&
                    config.workload.fragments == 0),
               "mixed policies are only supported on one-layer workloads");

  // Scenario traffic replaces the office workload; the scenario's cluster
  // size wins so `scenario=... sc-nodes=...` needs no matching `nodes=`.
  const std::size_t node_count =
      config.scenario.enabled()
          ? static_cast<std::size_t>(config.scenario.nodes)
          : static_cast<std::size_t>(config.workload.nodes);

  sim::Engine engine;
  auto topology = net::make_topology(config.topology, node_count);
  net::LatencyModel latency{*topology, config.latency_mode, 1.0};
  objsys::ObjectRegistry registry{engine, node_count};

  sim::Rng net_rng{config.seed, 1};
  sim::Rng mgr_rng{config.seed, 2};
  objsys::Invoker invoker{engine, registry, latency, net_rng};
  invoker.set_replication(config.replication,
                          config.workload.migration_duration);

  migration::AttachmentGraph attachments{
      config.exclusive_attachments
          ? migration::AttachmentGraph::Mode::Exclusive
          : migration::AttachmentGraph::Mode::Standard};
  migration::AllianceRegistry alliances;

  migration::ManagerOptions opts;
  opts.migration_duration = config.workload.migration_duration;
  opts.transitivity = config.transitivity;
  opts.transfer = config.transfer;
  opts.clear_majority_minimum = config.clear_majority_minimum;
  opts.lock_lease = config.lock_lease;
  opts.hysteresis_band = config.hysteresis_band;
  opts.adaptive_min_weight = config.adaptive_min_weight;
  opts.load_factor = config.load_factor;
  migration::MigrationManager manager{engine, registry,  latency, mgr_rng,
                                      attachments, alliances, opts};

  // Access-locality telemetry only exists when an adaptive policy consumes
  // it: non-adaptive runs keep a bare invocation hot path (and the tracker
  // would not perturb them anyway — it is pure arithmetic, no RNG).
  const auto is_adaptive = [](migration::PolicyKind k) {
    return k == migration::PolicyKind::Adaptive ||
           k == migration::PolicyKind::AdaptiveLoad;
  };
  std::unique_ptr<objsys::LocalityTracker> locality;
  if (config.track_locality || is_adaptive(config.policy) ||
      (config.egoistic_clients > 0 && is_adaptive(config.egoistic_policy))) {
    locality =
        std::make_unique<objsys::LocalityTracker>(node_count, config.ema_decay);
    invoker.set_locality_tracker(locality.get());
    manager.set_locality_tracker(locality.get());
  }

  // Fault machinery only exists when the plan asks for it — an empty plan
  // leaves every code path and RNG stream exactly as in a fault-free build.
  std::unique_ptr<fault::FaultInjector> injector;
  std::optional<fault::NodeHealth> health;
  if (!config.fault_plan.empty()) {
    injector = std::make_unique<fault::FaultInjector>(config.fault_plan);
    health.emplace(engine, node_count);
    fault::spawn_crash_driver(engine, injector->plan(), *health);
    invoker.set_fault(injector.get(), &*health);
    manager.set_fault(injector.get(), &*health);
  }

  std::optional<objsys::LocationService> service;
  if (config.location_scheme != objsys::LocationScheme::None ||
      config.directory == objsys::DirectoryKind::Sharded) {
    service.emplace(engine, registry, latency, mgr_rng,
                    config.location_scheme);
    if (config.directory == objsys::DirectoryKind::Sharded) {
      objsys::ShardedDirectoryOptions dir;
      dir.shards = config.dir_shards;
      dir.strategy = config.dir_strategy;
      dir.lease_ttl = config.dir_lease_ttl;
      service->enable_sharded(dir);
    }
    invoker.set_location_service(&*service);
    manager.set_location_service(&*service);
  }

  auto policy = migration::make_policy(config.policy, manager);
  Recorder recorder{engine, config.stopping, config.warmup_time};
  manager.set_background_cost_sink(
      [&recorder](double cost) { recorder.on_background_migration(cost); });
  if (trace != nullptr) manager.set_trace(trace);

  std::unique_ptr<scenario::Scenario> scen;
  std::unique_ptr<scenario::ScenarioRun> scen_run;
  scenario::ScenarioTally scen_tally;
  std::unique_ptr<migration::MigrationPolicy> egoistic;
  if (config.scenario.enabled()) {
    scen = scenario::make_scenario(config.scenario);
    scen_run = scenario::spawn_scenario(engine, registry, manager, *policy,
                                        invoker, recorder, *scen, config.seed,
                                        scen_tally);
  } else if (config.workload.fragments > 0) {
    workload::spawn_fragmented(engine, registry, manager, *policy, invoker,
                               recorder, config.workload, config.seed);
  } else if (config.workload.servers2 == 0) {
    std::vector<migration::MigrationPolicy*> per_client(
        static_cast<std::size_t>(config.workload.clients), policy.get());
    if (config.egoistic_clients > 0) {
      egoistic = migration::make_policy(config.egoistic_policy, manager);
      for (int i = 0; i < config.egoistic_clients; ++i) {
        per_client[static_cast<std::size_t>(i)] = egoistic.get();
      }
    }
    workload::spawn_one_layer_mixed(engine, registry, manager, per_client,
                                    invoker, recorder, config.workload,
                                    config.seed);
  } else {
    workload::spawn_two_layer(engine, registry, manager, *policy, invoker,
                              recorder, config.workload, config.seed);
  }

  engine.run_until(config.max_time);

  ExperimentResult r;
  r.total_per_call = recorder.total_per_call();
  r.call_duration = recorder.call_duration_per_call();
  r.migration_per_call = recorder.migration_per_call();
  const auto ci = recorder.total_interval();
  r.ci_half_width = ci.half_width;
  r.ci_relative = ci.relative();
  r.blocks = recorder.blocks();
  r.calls = recorder.calls();
  r.migrations = registry.migrations();
  r.transfers = manager.transfers_started();
  r.control_messages = manager.control_messages();
  r.remote_calls = invoker.remote_invocations();
  r.blocked_calls = invoker.blocked_invocations();
  r.replications = registry.replications();
  r.replica_hits = invoker.replica_hits();
  r.invalidations = registry.invalidations();
  r.events = engine.events_processed();
  r.sim_time = engine.now();
  r.call_p50 = recorder.call_duration_quantile(0.50);
  r.call_p95 = recorder.call_duration_quantile(0.95);
  r.call_p99 = recorder.call_duration_quantile(0.99);
  r.lease_expiries = manager.lease_expiries();
  {
    const migration::PolicyCounters& pc = manager.policy_counters();
    r.policy_migrations = pc.migrations_triggered;
    r.policy_suppressed_hysteresis = pc.suppressed_hysteresis;
    r.policy_suppressed_load = pc.suppressed_load;
    r.policy_reversals = pc.pingpong_reversals;
    if (locality != nullptr) r.ema_updates = locality->updates();
  }
  if (config.scenario.enabled()) {
    r.scenario_bursts = scen_tally.offered_bursts;
    r.scenario_ops = scen_tally.ops_invoke + scen_tally.ops_move +
                     scen_tally.ops_visit;
    if (r.sim_time > 0.0) {
      r.scenario_offered =
          static_cast<double>(scen_tally.offered_bursts) / r.sim_time;
      r.scenario_achieved =
          static_cast<double>(scen_tally.ops_invoke) / r.sim_time;
    }
    // Tally buckets are milli-units; report quantiles in sim units.
    r.scenario_op_p50 = static_cast<double>(scenario::tally_quantile(
                            scen_tally.op_milli, 0.50)) /
                        1000.0;
    r.scenario_op_p99 = static_cast<double>(scenario::tally_quantile(
                            scen_tally.op_milli, 0.99)) /
                        1000.0;
  }
  if (injector != nullptr) {
    const fault::FaultCounters& fc = injector->counters();
    r.dropped_messages = fc.dropped.load();
    r.duplicated_messages = fc.duplicated.load();
    r.delayed_messages = fc.delayed.load();
    r.fault_retries = fc.retries.load();
    r.recoveries = fc.recoveries.load();
  }
  if (health.has_value()) {
    r.node_crashes = health->crashes();
    r.node_restarts = health->restarts();
  }

  // Fold this run's tallies into the process-wide registry, labelled by
  // policy, once at run end: the sweep engine runs cells in parallel, so
  // keeping the fold out of the hot path avoids cache-line contention and
  // cannot perturb the deterministic per-cell RNG streams.
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    const obs::Labels by_policy{
        {"policy", std::string{migration::to_string(config.policy)}}};
    reg.counter("omig_sim_calls_total", "Completed top-level calls by policy",
                by_policy)
        .inc(r.calls);
    reg.counter("omig_sim_migrations_total", "Object migrations by policy",
                by_policy)
        .inc(r.migrations);
    reg.counter("omig_sim_remote_calls_total", "Remote invocations by policy",
                by_policy)
        .inc(r.remote_calls);
    reg.counter("omig_sim_blocked_calls_total",
                "Calls blocked on an in-transit object, by policy", by_policy)
        .inc(r.blocked_calls);
    reg.counter("omig_sim_control_messages_total",
                "Policy control messages by policy", by_policy)
        .inc(r.control_messages);
    // The invocation split and latency histograms accumulated in plain
    // per-run tallies (obs::HistogramTally) on the sim's hottest loop.
    obs::SimMetrics& sm = obs::sim_metrics();
    const std::uint64_t total_invocations = invoker.invocations();
    const std::uint64_t remote = invoker.remote_invocations();
    sm.invocations_local->inc(total_invocations - remote);
    sm.invocations_remote->inc(remote);
    sm.call_local_milli->merge(invoker.local_call_milli());
    sm.call_remote_milli->merge(invoker.remote_call_milli());
    if (config.scenario.enabled()) {
      obs::ScenarioMetrics scm = obs::scenario_metrics(scen->name());
      scm.offered_bursts->inc(scen_tally.offered_bursts);
      scm.completed_bursts->inc(scen_tally.completed_bursts);
      scm.ops_invoke->inc(scen_tally.ops_invoke);
      scm.ops_move->inc(scen_tally.ops_move);
      scm.ops_visit->inc(scen_tally.ops_visit);
      scm.achieved_ops->set(
          static_cast<std::int64_t>(r.scenario_achieved * 1000.0));
      scm.op_milli->merge(scen_tally.op_milli);
      scm.burst_milli->merge(scen_tally.burst_milli);
    }
    if (locality != nullptr) {
      obs::PolicyMetrics pm = obs::policy_metrics(
          std::string{migration::to_string(config.policy)});
      pm.migrations_triggered->inc(r.policy_migrations);
      pm.suppressed_hysteresis->inc(r.policy_suppressed_hysteresis);
      pm.suppressed_load->inc(r.policy_suppressed_load);
      pm.pingpong_reversals->inc(r.policy_reversals);
      pm.ema_updates->inc(r.ema_updates);
    }
    if (service && service->sharded() != nullptr) {
      const objsys::DirectoryStats& ds = service->sharded()->stats();
      obs::DirMetrics& dm = obs::dir_metrics();
      dm.lookups_hit->inc(ds.cache_hits);
      dm.lookups_stale->inc(ds.stale_hits);
      dm.lookups_miss->inc(ds.lookups - ds.cache_hits - ds.stale_hits);
      dm.forward_hops->inc(ds.forward_hops);
      dm.updates->inc(ds.updates);
      dm.invalidations->inc(ds.invalidations);
      dm.unresolved->inc(ds.unresolved);
    }
  }

  // Tear the processes down while every service they reference is alive.
  engine.clear();
  return r;
}

stats::StoppingRule stopping_rule_from_env() {
  stats::StoppingRule rule;
  rule.level = 0.99;
  rule.relative_target = 0.01;
  rule.min_batches = 16;
  rule.min_observations = 2'000;
  rule.max_observations = 120'000;
  if (const char* s = std::getenv("OMIG_CI_TARGET")) {
    const double v = std::atof(s);
    if (v > 0.0) rule.relative_target = v;
  }
  if (const char* s = std::getenv("OMIG_MIN_BLOCKS")) {
    const long v = std::atol(s);
    if (v > 0) rule.min_observations = static_cast<std::uint64_t>(v);
  }
  if (const char* s = std::getenv("OMIG_MAX_BLOCKS")) {
    const long v = std::atol(s);
    if (v > 0) rule.max_observations = static_cast<std::uint64_t>(v);
  }
  return rule;
}

}  // namespace omig::core
