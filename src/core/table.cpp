#include "core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace omig::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_{std::move(headers)} {
  OMIG_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  OMIG_REQUIRE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_numeric_row(double x, const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(format_double(x, precision));
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_text(); }

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace omig::core
