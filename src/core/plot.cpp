#include "core/plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace omig::core {

namespace {
constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
}

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_{width}, height_{height} {
  OMIG_REQUIRE(width >= 8 && height >= 4, "plot canvas too small");
}

void AsciiPlot::add_series(std::string label,
                           std::vector<std::pair<double, double>> points) {
  const char glyph = kGlyphs[series_.size() % std::size(kGlyphs)];
  series_.push_back(Series{std::move(label), std::move(points), glyph});
}

std::string AsciiPlot::render() const {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  std::ostringstream os;
  if (!std::isfinite(xmin)) {
    os << "(empty plot)\n";
    return os.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;
  // Anchor y at 0 when everything is non-negative and near it: the paper's
  // figures all start at 0.
  if (ymin > 0.0 && ymin < 0.5 * ymax) ymin = 0.0;

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  auto col = [&](double x) {
    return static_cast<std::size_t>(std::lround(
        (x - xmin) / (xmax - xmin) * static_cast<double>(width_ - 1)));
  };
  auto row = [&](double y) {
    const auto r = static_cast<std::size_t>(std::lround(
        (y - ymin) / (ymax - ymin) * static_cast<double>(height_ - 1)));
    return height_ - 1 - r;  // row 0 is the top
  };
  for (const Series& s : series_) {
    for (const auto& [x, y] : s.points) {
      canvas[row(y)][col(x)] = s.glyph;
    }
  }

  const int label_width = 9;
  for (std::size_t r = 0; r < height_; ++r) {
    const double y =
        ymax - (ymax - ymin) * static_cast<double>(r) /
                   static_cast<double>(height_ - 1);
    if (r == 0 || r == height_ - 1 || r == height_ / 2) {
      os << std::setw(label_width) << std::fixed << std::setprecision(2)
         << y;
    } else {
      os << std::string(label_width, ' ');
    }
    os << " |" << canvas[r] << '\n';
  }
  os << std::string(label_width + 1, ' ') << '+'
     << std::string(width_, '-') << '\n';
  std::ostringstream xs;
  xs << std::fixed << std::setprecision(1) << xmin;
  std::ostringstream xe;
  xe << std::fixed << std::setprecision(1) << xmax;
  os << std::string(label_width + 2, ' ') << xs.str()
     << std::string(width_ > xs.str().size() + xe.str().size()
                        ? width_ - xs.str().size() - xe.str().size()
                        : 1,
                    ' ')
     << xe.str() << '\n';
  for (const Series& s : series_) {
    os << std::string(label_width + 2, ' ') << s.glyph << " = " << s.label
       << '\n';
  }
  return os.str();
}

std::string plot_sweep(const std::vector<SweepVariant>& variants,
                       const std::vector<SweepPoint>& points, Metric metric,
                       std::size_t width, std::size_t height) {
  AsciiPlot plot{width, height};
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::pair<double, double>> series;
    series.reserve(points.size());
    for (const SweepPoint& p : points) {
      double y = 0.0;
      switch (metric) {
        case Metric::TotalPerCall:
          y = p.results[v].total_per_call;
          break;
        case Metric::CallDuration:
          y = p.results[v].call_duration;
          break;
        case Metric::MigrationPerCall:
          y = p.results[v].migration_per_call;
          break;
      }
      series.emplace_back(p.x, y);
    }
    plot.add_series(variants[v].label, std::move(series));
  }
  return plot.render();
}

}  // namespace omig::core
