// Aligned text tables and CSV output for the benchmark harness.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace omig::core {

/// Builds a column-aligned text table (and CSV) like the series the paper's
/// figures plot: one row per x value, one column per policy/variant.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row of already-formatted cells; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: first cell from `x`, remaining cells from `values`,
  /// formatted with `precision` digits after the decimal point.
  void add_numeric_row(double x, const std::vector<double>& values,
                       int precision = 4);

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by the benches).
std::string format_double(double v, int precision = 4);

}  // namespace omig::core
