// Per-figure experiment presets (the parameter boxes of Figures 9, 13, 15
// and 17 in the paper).
#pragma once

#include "core/experiment.hpp"

namespace omig::core {

/// Figures 8/10/11 (parameters of Figure 9): D=3, C=3, S1=3, S2=0, M=6,
/// N~exp(8), t_i~exp(1); x-axis is the mean distance t_m between usages.
ExperimentConfig fig8_config(double mean_interblock,
                             migration::PolicyKind policy);

/// Figure 12 (parameters of Figure 13): D=27, S1=3, S2=0, M=6, N~exp(8),
/// t_i~exp(1), t_m~exp(30); x-axis is the number of clients.
ExperimentConfig fig12_config(int clients, migration::PolicyKind policy);

/// Figure 14 (parameters of Figure 15): D=3, S1=3, S2=0, M=6, N~exp(8),
/// t_i~exp(1), t_m~exp(30); x-axis is the number of clients. Meant for the
/// placement family (conservative / comparing / comparing+reinstantiation).
ExperimentConfig fig14_config(int clients, migration::PolicyKind policy);

/// Figure 16 (parameters of Figure 17): D=24, S1=6, S2=6, M=6, N~exp(6),
/// t_i~exp(1), t_m~exp(30); x-axis is the number of clients.
ExperimentConfig fig16_config(int clients, migration::PolicyKind policy,
                              migration::AttachTransitivity transitivity);

/// Table 1 defaults: the base parameter set shared by all presets.
workload::WorkloadParams table1_defaults();

}  // namespace omig::core
