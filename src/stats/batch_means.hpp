// Batch-means confidence intervals and the paper's sequential stopping rule.
//
// The paper runs every simulation "as long as a confidence interval of 1%
// was reached with probability p = 0.99" (Section 4.1). We implement this
// with the method of batch means: consecutive observations are grouped into
// batches whose means are (approximately) independent; a Student-t interval
// over the batch means yields the half-width. Batch size doubles whenever
// the batch count exceeds a bound, which keeps the per-batch correlation
// shrinking as the run grows.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/welford.hpp"

namespace omig::stats {

/// A symmetric confidence interval around a point estimate.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  int batches = 0;

  /// Half-width relative to |mean|; infinity when the mean is ~0.
  [[nodiscard]] double relative() const;
};

/// Batch means over scalar observations.
class BatchMeans {
public:
  /// `initial_batch_size`: observations per batch before any doubling;
  /// `max_batches`: when exceeded, adjacent batches are merged pairwise and
  /// the batch size doubles.
  explicit BatchMeans(std::uint64_t initial_batch_size = 64,
                      std::size_t max_batches = 64);

  void add(double x);

  /// Interval at confidence `level` (e.g. 0.99). Needs >= 2 closed batches.
  [[nodiscard]] ConfidenceInterval interval(double level) const;

  /// Grand mean over all closed batches.
  [[nodiscard]] double grand_mean() const;

  [[nodiscard]] std::size_t closed_batches() const { return means_.size(); }
  [[nodiscard]] std::uint64_t observations() const { return total_; }

private:
  void close_batch();
  void coalesce();

  std::uint64_t batch_size_;
  std::size_t max_batches_;
  Welford current_;
  std::vector<double> means_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;  ///< exact stream sum (coalescing may drop batches)
};

/// Batch means for a ratio-of-sums metric: each observation contributes a
/// numerator (cost) and a denominator (weight, e.g. number of calls). The
/// point estimate is sum(cost)/sum(weight); the CI is computed over
/// per-batch ratios. Used for "mean communication time per call", where a
/// move-block contributes its total cost over its number of calls.
class RatioBatchMeans {
public:
  explicit RatioBatchMeans(std::uint64_t initial_batch_size = 32,
                           std::size_t max_batches = 64);

  void add(double cost, double weight);

  [[nodiscard]] ConfidenceInterval interval(double level) const;

  /// Ratio of total cost to total weight over the whole run.
  [[nodiscard]] double overall_ratio() const;

  [[nodiscard]] double total_cost() const { return total_cost_; }
  [[nodiscard]] double total_weight() const { return total_weight_; }
  [[nodiscard]] std::uint64_t observations() const { return total_obs_; }
  [[nodiscard]] std::size_t closed_batches() const { return ratios_.size(); }

private:
  void close_batch();
  void coalesce();

  std::uint64_t batch_size_;
  std::size_t max_batches_;
  std::uint64_t in_current_ = 0;
  double cur_cost_ = 0.0;
  double cur_weight_ = 0.0;
  std::vector<double> ratios_;
  std::vector<double> weights_;  ///< per-batch weights, for coalescing
  double total_cost_ = 0.0;
  double total_weight_ = 0.0;
  std::uint64_t total_obs_ = 0;
};

/// The paper's stopping rule: stop once the relative half-width of the
/// target metric is below `relative_target` at confidence `level`, with
/// floors (minimum batches/observations, to avoid premature stops) and
/// ceilings (maximum observations, to bound runtime).
struct StoppingRule {
  double level = 0.99;
  double relative_target = 0.01;
  std::size_t min_batches = 8;
  std::uint64_t min_observations = 512;
  std::uint64_t max_observations = 2'000'000;

  [[nodiscard]] bool satisfied_by(const RatioBatchMeans& m) const;
};

}  // namespace omig::stats
