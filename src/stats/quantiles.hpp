// Quantile functions needed for confidence intervals.
#pragma once

namespace omig::stats {

/// Inverse CDF of the standard normal distribution (Acklam's algorithm,
/// relative error < 1.15e-9 over (0, 1)).
double normal_quantile(double p);

/// Inverse CDF of Student's t distribution with `df` degrees of freedom,
/// via the Cornish–Fisher expansion around the normal quantile. Accurate to
/// a few 1e-3 for df >= 3, which is ample for stopping-rule decisions.
double student_t_quantile(double p, int df);

}  // namespace omig::stats
