#include "stats/batch_means.hpp"

#include <cmath>
#include <limits>

#include "stats/quantiles.hpp"
#include "util/assert.hpp"

namespace omig::stats {

double ConfidenceInterval::relative() const {
  if (std::abs(mean) < 1e-12) return std::numeric_limits<double>::infinity();
  return half_width / std::abs(mean);
}

namespace {

ConfidenceInterval interval_over(const std::vector<double>& values,
                                 double level) {
  ConfidenceInterval ci;
  ci.batches = static_cast<int>(values.size());
  if (values.size() < 2) {
    ci.mean = values.empty() ? 0.0 : values.front();
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  Welford w;
  for (double v : values) w.add(v);
  ci.mean = w.mean();
  const int df = static_cast<int>(values.size()) - 1;
  const double t = student_t_quantile(0.5 + level / 2.0, df);
  ci.half_width = t * w.stddev() / std::sqrt(static_cast<double>(values.size()));
  return ci;
}

}  // namespace

BatchMeans::BatchMeans(std::uint64_t initial_batch_size,
                       std::size_t max_batches)
    : batch_size_{initial_batch_size}, max_batches_{max_batches} {
  OMIG_REQUIRE(initial_batch_size >= 1, "batch size must be positive");
  OMIG_REQUIRE(max_batches >= 4, "need at least 4 batches");
}

void BatchMeans::add(double x) {
  current_.add(x);
  ++total_;
  sum_ += x;
  if (current_.count() >= batch_size_) close_batch();
}

void BatchMeans::close_batch() {
  means_.push_back(current_.mean());
  current_ = Welford{};
  if (means_.size() > max_batches_) coalesce();
}

void BatchMeans::coalesce() {
  std::vector<double> merged;
  merged.reserve(means_.size() / 2 + 1);
  std::size_t i = 0;
  for (; i + 1 < means_.size(); i += 2) {
    merged.push_back(0.5 * (means_[i] + means_[i + 1]));
  }
  // An odd trailing batch is dropped back into the current accumulator's
  // position by discarding it: simpler and statistically harmless since the
  // batch count stays large.
  means_ = std::move(merged);
  batch_size_ *= 2;
}

ConfidenceInterval BatchMeans::interval(double level) const {
  return interval_over(means_, level);
}

double BatchMeans::grand_mean() const {
  // Exact stream mean: batch coalescing can drop an odd trailing batch from
  // the CI computation, but the point estimate covers every observation.
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

RatioBatchMeans::RatioBatchMeans(std::uint64_t initial_batch_size,
                                 std::size_t max_batches)
    : batch_size_{initial_batch_size}, max_batches_{max_batches} {
  OMIG_REQUIRE(initial_batch_size >= 1, "batch size must be positive");
  OMIG_REQUIRE(max_batches >= 4, "need at least 4 batches");
}

void RatioBatchMeans::add(double cost, double weight) {
  OMIG_REQUIRE(weight >= 0.0, "negative weight");
  cur_cost_ += cost;
  cur_weight_ += weight;
  total_cost_ += cost;
  total_weight_ += weight;
  ++in_current_;
  ++total_obs_;
  if (in_current_ >= batch_size_) close_batch();
}

void RatioBatchMeans::close_batch() {
  if (cur_weight_ > 0.0) {
    ratios_.push_back(cur_cost_ / cur_weight_);
    weights_.push_back(cur_weight_);
  }
  cur_cost_ = 0.0;
  cur_weight_ = 0.0;
  in_current_ = 0;
  if (ratios_.size() > max_batches_) coalesce();
}

void RatioBatchMeans::coalesce() {
  std::vector<double> merged_r;
  std::vector<double> merged_w;
  merged_r.reserve(ratios_.size() / 2 + 1);
  merged_w.reserve(ratios_.size() / 2 + 1);
  std::size_t i = 0;
  for (; i + 1 < ratios_.size(); i += 2) {
    const double w = weights_[i] + weights_[i + 1];
    merged_r.push_back(
        (ratios_[i] * weights_[i] + ratios_[i + 1] * weights_[i + 1]) / w);
    merged_w.push_back(w);
  }
  ratios_ = std::move(merged_r);
  weights_ = std::move(merged_w);
  batch_size_ *= 2;
}

ConfidenceInterval RatioBatchMeans::interval(double level) const {
  ConfidenceInterval ci = interval_over(ratios_, level);
  // Use the weighted overall ratio as the point estimate: it is the metric
  // the paper plots ("migration cost evenly distributed to the invocations").
  if (total_weight_ > 0.0) ci.mean = overall_ratio();
  return ci;
}

double RatioBatchMeans::overall_ratio() const {
  return total_weight_ > 0.0 ? total_cost_ / total_weight_ : 0.0;
}

bool StoppingRule::satisfied_by(const RatioBatchMeans& m) const {
  if (m.observations() >= max_observations) return true;
  if (m.observations() < min_observations) return false;
  if (m.closed_batches() < min_batches) return false;
  const auto ci = m.interval(level);
  return ci.relative() <= relative_target;
}

}  // namespace omig::stats
