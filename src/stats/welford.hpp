// Streaming mean/variance accumulator (Welford's algorithm).
#pragma once

#include <cstdint>

namespace omig::stats {

/// Numerically stable streaming accumulator for count, mean, variance,
/// min and max of a sequence of observations.
class Welford {
public:
  void add(double x);

  /// Merges another accumulator into this one (Chan et al. parallel update).
  void merge(const Welford& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n − 1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace omig::stats
