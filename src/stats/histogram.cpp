#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace omig::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, bin_width_{(hi - lo) / static_cast<double>(bins)},
      counts_(bins, 0) {
  OMIG_REQUIRE(hi > lo, "histogram range must be non-empty");
  OMIG_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  ++counts_[std::min(idx, counts_.size() - 1)];
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  OMIG_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * bin_width_;
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  OMIG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return lo_;
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(std::llround(static_cast<double>(width) *
                                              static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak)));
    os << '[';
    os.precision(3);
    os << bin_lo(i) << ", " << bin_hi(i) << ") ";
    os << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace omig::stats
