// Fixed-bin histogram for distribution diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace omig::stats {

/// Equal-width histogram over [lo, hi) with overflow/underflow buckets.
/// Used by examples and diagnostics to show call-duration distributions.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Approximate quantile by linear interpolation within the bin.
  [[nodiscard]] double quantile(double q) const;

  /// ASCII rendering, `width` characters for the largest bar.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace omig::stats
