// Umbrella header: everything a downstream user of the omig library needs.
//
//   #include <omig.hpp>   (with -I<repo>/src)
//
// Subsystem headers remain individually includable; this header just saves
// application code the scavenger hunt.
#pragma once

// simulation kernel
#include "sim/engine.hpp"
#include "sim/gate.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "sim/when_all.hpp"

// statistics
#include "stats/batch_means.hpp"
#include "stats/histogram.hpp"
#include "stats/quantiles.hpp"
#include "stats/welford.hpp"

// network model
#include "net/latency.hpp"
#include "net/topology.hpp"

// distributed object system
#include "objsys/ids.hpp"
#include "objsys/invocation.hpp"
#include "objsys/location_service.hpp"
#include "objsys/object.hpp"
#include "objsys/registry.hpp"

// instrumentation
#include "trace/event.hpp"
#include "trace/log.hpp"

// the migration runtime (the paper's contribution)
#include "migration/alliance.hpp"
#include "migration/attachment.hpp"
#include "migration/block.hpp"
#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "migration/primitives.hpp"

// workloads
#include "workload/fragmented.hpp"
#include "workload/observer.hpp"
#include "workload/one_layer.hpp"
#include "workload/params.hpp"
#include "workload/two_layer.hpp"

// experiment driver
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/plot.hpp"
#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "core/table.hpp"

// live multi-threaded runtime
#include "runtime/live_object.hpp"
#include "runtime/live_system.hpp"
#include "runtime/serde.hpp"
