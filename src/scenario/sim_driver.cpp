#include "scenario/sim_driver.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace omig::scenario {
namespace {

/// Sim durations are recorded in milli-units, matching the Invoker's call
/// tallies (sub-unit resolution in the power-of-2 buckets).
std::uint64_t to_milli(sim::SimTime duration) {
  return duration <= 0.0
             ? 0
             : static_cast<std::uint64_t>(std::llround(duration * 1000.0));
}

struct SourceEnv {
  sim::Engine* engine;
  migration::MigrationManager* manager;
  migration::MigrationPolicy* policy;
  objsys::Invoker* invoker;
  workload::BlockObserver* observer;
  const Scenario* scenario;
  const ScenarioRun* run;
  ScenarioTally* tally;
};

/// Executes one burst: optional move()/visit() block around a replayed
/// call batch. Every burst — block or not — reports a MoveBlock to the
/// observer so the Recorder's stopping rule and the paper's
/// total-per-call metric see all scenario traffic.
sim::Task run_burst(SourceEnv env, Burst burst, std::size_t source_node) {
  if (burst.calls.empty() && burst.target == kNone) co_return;

  const objsys::NodeId origin{static_cast<std::uint32_t>(
      burst.origin != kNone ? burst.origin : source_node)};
  const bool has_block = burst.target != kNone;
  const std::size_t anchor =
      has_block ? burst.target : burst.calls.front().object;
  const objsys::AllianceId alliance =
      burst.alliance != kNone ? env.run->alliances[burst.alliance]
                              : objsys::AllianceId::invalid();
  const sim::SimTime burst_start = env.engine->now();

  migration::MoveBlock blk = env.manager->new_block(
      origin, env.run->objects[anchor], alliance, burst.visit);
  if (has_block) {
    ++(burst.visit ? env.tally->ops_visit : env.tally->ops_move);
    co_await env.policy->begin_block(blk);
  }

  for (const Burst::Call& call : burst.calls) {
    if (call.gap > 0.0) co_await env.engine->delay(call.gap);
    const sim::SimTime start = env.engine->now();
    co_await env.invoker->invoke(origin, env.run->objects[call.object],
                                 call.read ? objsys::InvocationKind::Read
                                           : objsys::InvocationKind::Write);
    const sim::SimTime duration = env.engine->now() - start;
    env.observer->on_call(duration);
    blk.call_time += duration;
    ++blk.calls;
    ++env.tally->ops_invoke;
    env.tally->op_milli.record(to_milli(duration));
  }

  if (has_block) env.policy->end_block(blk);
  env.observer->on_block(blk);
  ++env.tally->completed_bursts;
  env.tally->burst_milli.record(to_milli(env.engine->now() - burst_start));
}

/// One open-loop traffic source: draws arrivals and bursts from its own
/// Rng stream and fires each burst as an independent task.
sim::Task run_source(SourceEnv env, std::size_t source, std::uint64_t seed) {
  sim::Rng rng{source_stream(seed, env.scenario->name(), source), 0};
  const std::size_t node = env.scenario->source_node(source);
  for (;;) {
    co_await env.engine->delay(env.scenario->next_arrival(source, rng));
    Burst burst;
    env.scenario->next_burst(source, rng, burst);
    ++env.tally->offered_bursts;
    env.engine->spawn(run_burst(env, std::move(burst), node));
  }
}

}  // namespace

std::uint64_t tally_quantile(const obs::HistogramTally& tally, double q) {
  if (tally.count == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(tally.count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    seen += tally.buckets[i];
    if (seen >= rank) return obs::Histogram::bucket_bound(i);
  }
  return obs::Histogram::bucket_bound(obs::Histogram::kBuckets - 1);
}

std::unique_ptr<ScenarioRun> spawn_scenario(
    sim::Engine& engine, objsys::ObjectRegistry& registry,
    migration::MigrationManager& manager, migration::MigrationPolicy& policy,
    objsys::Invoker& invoker, workload::BlockObserver& observer,
    const Scenario& scenario, std::uint64_t seed, ScenarioTally& tally) {
  const Population& pop = scenario.population();
  OMIG_REQUIRE(registry.node_count() >= pop.nodes,
               "registry has fewer nodes than the scenario population");

  auto run = std::make_unique<ScenarioRun>();
  run->objects.reserve(pop.objects.size());
  for (const ObjectSpec& spec : pop.objects) {
    run->objects.push_back(
        registry.create(spec.name,
                        objsys::NodeId{static_cast<std::uint32_t>(spec.home)},
                        spec.size));
  }
  run->alliances.reserve(pop.alliances.size());
  migration::AllianceRegistry& alliances = manager.alliances();
  for (const std::string& name : pop.alliances) {
    run->alliances.push_back(alliances.create(name));
  }
  migration::AttachmentGraph& attachments = manager.attachments();
  for (const AttachSpec& edge : pop.attachments) {
    const objsys::AllianceId ctx = edge.alliance != kNone
                                       ? run->alliances[edge.alliance]
                                       : objsys::AllianceId::invalid();
    attachments.attach(run->objects[edge.a], run->objects[edge.b], ctx);
    if (ctx.valid()) {
      alliances.add_member(ctx, run->objects[edge.a]);
      alliances.add_member(ctx, run->objects[edge.b]);
    }
  }

  SourceEnv env{&engine, &manager, &policy,    &invoker,
                &observer, &scenario, run.get(), &tally};
  for (std::size_t s = 0; s < scenario.sources(); ++s) {
    engine.spawn(run_source(env, s, seed));
  }
  return run;
}

}  // namespace omig::scenario
