// Social-graph fanout: power-law adjacency, visit storms along edges.
//
// The population is an undirected graph grown by preferential attachment
// (Barabási–Albert with m = fanout), so vertex degrees follow a power law —
// a handful of celebrity vertices touch a large share of the traffic. Each
// vertex is an object homed on hash(vertex) % nodes; each vertex forms an
// alliance with its first `fanout` neighbours and attaches to them, so
// migrating a celebrity drags its alliance along under A-transitive
// semantics — this is the scenario that stresses paper claim 4 (unrestricted
// transitivity is devastating; alliances restore sensible behaviour).
//
// A burst is a "visit storm": a degree-weighted random seed vertex is
// visit()ed to the source's node and the source then reads/writes the seed
// plus `fanout` of its neighbours, mimicking a feed render that touches a
// profile and its adjacency.
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace omig::scenario {
namespace {

class SocialScenario final : public Scenario {
public:
  explicit SocialScenario(const ScenarioOptions& options)
      : options_{options}, name_{"social"} {
    const auto n = static_cast<std::size_t>(options.objects);
    const auto m = static_cast<std::size_t>(options.fanout);
    adjacency_.resize(n);

    // Preferential attachment via the repeated-endpoint trick: picking a
    // uniform element of `endpoints` is degree-weighted sampling. The build
    // is internal to the population (not traffic), so it uses a fixed
    // stream id; the graph depends only on (objects, fanout).
    sim::Rng build_rng{0x50c1a1ULL, 7};
    std::vector<std::size_t> endpoints;
    const std::size_t core = std::min(n, m + 1);
    for (std::size_t v = 0; v < core; ++v) {  // seed clique
      for (std::size_t u = 0; u < v; ++u) link(u, v, endpoints);
    }
    for (std::size_t v = core; v < n; ++v) {
      for (std::size_t e = 0; e < m; ++e) {
        const std::size_t u =
            endpoints[build_rng.uniform_int(endpoints.size())];
        if (u != v && !linked(u, v)) link(u, v, endpoints);
      }
    }
    // Isolated vertices can happen when every preferential draw collides;
    // tie them to their successor so every storm has neighbours to touch.
    for (std::size_t v = 0; v + 1 < n; ++v) {
      if (adjacency_[v].empty()) link(v, v + 1, endpoints);
    }

    // Degree-weighted seed-vertex sampling reuses the endpoints list.
    storm_seeds_ = std::move(endpoints);

    population_.nodes = static_cast<std::size_t>(options.nodes);
    population_.objects.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      // Spread vertices across nodes with a splitmix hash, not modulo, so
      // adjacent vertices (which call each other) usually live apart.
      const std::size_t home = static_cast<std::size_t>(
          sim::SplitMix64{0xface7501ULL + v}.next() % population_.nodes);
      population_.objects.push_back(
          {"profile-" + std::to_string(v), home, 1.0});
    }
    // One alliance per vertex covering it and its first m neighbours, with
    // attachment edges vertex->neighbour in that context.
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t ctx = population_.alliances.size();
      population_.alliances.push_back("circle-" + std::to_string(v));
      std::size_t added = 0;
      for (const std::size_t u : adjacency_[v]) {
        if (added++ == m) break;
        population_.attachments.push_back({v, u, ctx});
      }
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Population& population() const override {
    return population_;
  }
  [[nodiscard]] std::size_t sources() const override {
    return static_cast<std::size_t>(options_.sources);
  }
  [[nodiscard]] std::size_t source_node(std::size_t source) const override {
    return source % population_.nodes;
  }
  [[nodiscard]] double next_arrival(std::size_t /*source*/,
                                    sim::Rng& rng) const override {
    return rng.exponential(1.0 / options_.rate);
  }

  void next_burst(std::size_t /*source*/, sim::Rng& rng,
                  Burst& out) const override {
    out.clear();
    const std::size_t seed =
        storm_seeds_[rng.uniform_int(storm_seeds_.size())];
    out.target = seed;
    out.visit = true;  // feed render: pull the profile in, return it after
    out.alliance = seed;  // the vertex's own circle
    const auto& nbrs = adjacency_[seed];
    const std::size_t touched =
        std::min(nbrs.size(), static_cast<std::size_t>(options_.fanout));
    out.calls.reserve(1 + touched);
    out.calls.push_back(
        {seed, rng.uniform() < options_.read_fraction, rng.exponential(0.5)});
    for (std::size_t i = 0; i < touched; ++i) {
      // Walk a rotating window of the adjacency so storms on the same seed
      // don't always touch the same neighbours.
      const std::size_t u = nbrs[(rng.uniform_int(nbrs.size()) + i)
                                 % nbrs.size()];
      out.calls.push_back(
          {u, rng.uniform() < options_.read_fraction, rng.exponential(0.5)});
    }
  }

private:
  [[nodiscard]] bool linked(std::size_t u, std::size_t v) const {
    for (const std::size_t w : adjacency_[u]) {
      if (w == v) return true;
    }
    return false;
  }
  void link(std::size_t u, std::size_t v, std::vector<std::size_t>& ends) {
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
    ends.push_back(u);
    ends.push_back(v);
  }

  ScenarioOptions options_;
  std::string name_;
  Population population_;
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<std::size_t> storm_seeds_;  ///< degree-weighted vertex pool
};

}  // namespace

std::unique_ptr<Scenario> make_social(const ScenarioOptions& options) {
  return std::make_unique<SocialScenario>(options);
}

}  // namespace omig::scenario
