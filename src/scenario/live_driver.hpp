// Live-runtime backend for the scenario pack.
//
// Replays the same Scenario burst streams that drive the simulator against
// a runtime::LiveSystem — real threads, optionally real omig_node processes
// over TCP (tools/omig_node --cluster N --scenario NAME). Objects are
// materialised as "counter" demo objects (reads = get(), writes = add(1)),
// so any node binary with the demo factories can host them.
//
// Determinism: each source keeps the per-source hashed Rng stream from
// scenario.hpp, so the *sequence of operations* a source issues is
// bit-identical for a given seed regardless of how many worker threads
// replay the sources or how the backend schedules them. Wall-clock timing
// (and hence interleaving) naturally varies; the simulator is the
// instrument for timing-sensitive claims.
//
// Open-loop deviation: the live driver paces arrivals (pacing × the drawn
// gap) but executes each source's bursts synchronously — a burst that
// outruns its next arrival delays it. The simulator backend implements the
// pure open-loop semantics; the live driver's job is exercising the real
// protocol stack under each scenario's *pattern*.
#pragma once

#include <chrono>
#include <cstdint>

#include "runtime/live_system.hpp"
#include "scenario/scenario.hpp"

namespace omig::scenario {

struct LiveScenarioOptions {
  int bursts_per_source = 20;  ///< live runs are finite, not CI-stopped
  int threads = 4;             ///< worker threads replaying the sources
  std::uint64_t seed = 1;
  /// Wall-clock time per sim-time unit of drawn inter-arrival gap;
  /// zero = replay as fast as the cluster allows (throughput mode).
  std::chrono::microseconds pacing{0};
};

struct LiveScenarioResult {
  std::uint64_t bursts = 0;   ///< bursts completed
  std::uint64_t ops = 0;      ///< invocations issued
  std::uint64_t moves = 0;    ///< move() blocks opened
  std::uint64_t visits = 0;   ///< visit() blocks opened
  std::uint64_t refusals = 0; ///< move/visit tokens not granted (placement
                              ///< conflicts — expected under contention)
  std::uint64_t failures = 0; ///< failed creates/invokes (should be 0 on a
                              ///< healthy cluster)
  double wall_seconds = 0.0;
  double ops_per_sec = 0.0;
};

/// Materialises the population on `system` (which must be started, with
/// the demo types registered) and replays `options.bursts_per_source`
/// bursts per source. Also folds the run into the omig_scenario_* metric
/// families.
LiveScenarioResult run_live_scenario(runtime::LiveSystem& system,
                                     const Scenario& scenario,
                                     const LiveScenarioOptions& options);

}  // namespace omig::scenario
