// Simulator backend for the scenario pack.
//
// Materialises a Scenario's population in the object registry and spawns
// one open-loop source coroutine per traffic source. Each arrival spawns an
// independent burst task, so burst service time never throttles the arrival
// process (see scenario.hpp for the methodology).
//
// Determinism: each source owns one Rng stream derived by source_stream();
// all of a burst's randomness (targets, gaps, lengths) is drawn in the
// source coroutine via Scenario::next_burst, and the burst task merely
// replays it. The engine is single-threaded per cell, so sweep-level
// parallelism cannot reorder draws.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "obs/metrics.hpp"
#include "objsys/invocation.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "workload/observer.hpp"

namespace omig::scenario {

/// Per-run traffic accounting, kept as plain counters/tallies on the sim's
/// hot path (like Invoker's call tallies) and folded into the global
/// metrics registry once per run by core/experiment.cpp.
struct ScenarioTally {
  std::uint64_t offered_bursts = 0;    ///< arrivals generated (open loop)
  std::uint64_t completed_bursts = 0;  ///< bursts fully executed
  std::uint64_t ops_invoke = 0;        ///< invocations issued
  std::uint64_t ops_move = 0;          ///< move() blocks opened
  std::uint64_t ops_visit = 0;         ///< visit() blocks opened
  obs::HistogramTally op_milli;        ///< invocation latency (sim milli)
  obs::HistogramTally burst_milli;     ///< whole-burst latency (sim milli)
};

/// The materialised population: scenario indices → backend ids. Heap
/// allocated so the source coroutines can hold a stable pointer to it;
/// keep it alive until the engine is cleared.
struct ScenarioRun {
  std::vector<objsys::ObjectId> objects;
  std::vector<objsys::AllianceId> alliances;
};

/// Conservative quantile over a per-run tally (upper bound of the bucket
/// holding the q-th observation, like Histogram::quantile). 0 when empty.
[[nodiscard]] std::uint64_t tally_quantile(const obs::HistogramTally& tally,
                                           double q);

/// Builds the population (objects, alliances, attachments) and spawns the
/// source coroutines. `tally` must outlive the engine run.
std::unique_ptr<ScenarioRun> spawn_scenario(
    sim::Engine& engine, objsys::ObjectRegistry& registry,
    migration::MigrationManager& manager, migration::MigrationPolicy& policy,
    objsys::Invoker& invoker, workload::BlockObserver& observer,
    const Scenario& scenario, std::uint64_t seed, ScenarioTally& tally);

}  // namespace omig::scenario
