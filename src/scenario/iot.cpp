// IoT fleet with bursty producers.
//
// Gateways are objects (one per `objects`), spread round-robin over the
// nodes. Sources are devices: each reports to the gateway device % objects
// and alternates between long OFF periods (exponential, mean 1/rate) and ON
// bursts whose length is heavy-tailed — a discretised Pareto(α) with mean
// `burst_mean`, the classic self-similar traffic model (most bursts are a
// few readings; occasionally a device uploads a backlog of thousands).
//
// Bursts are plain write streams to the gateway. With probability
// `move_fraction` a long burst instead opens a visit() block that pulls
// the gateway to the device's edge node for the duration of the upload and
// migrates it back afterwards — visit() as an edge-affinity optimisation,
// stressing claim 2's transient placement under asymmetric load.
#include <algorithm>
#include <cmath>
#include <string>

#include "scenario/scenario.hpp"

namespace omig::scenario {
namespace {

class IotScenario final : public Scenario {
public:
  explicit IotScenario(const ScenarioOptions& options)
      : options_{options}, name_{"iot"} {
    population_.nodes = static_cast<std::size_t>(options.nodes);
    const auto gateways = static_cast<std::size_t>(options.objects);
    population_.objects.reserve(gateways);
    for (std::size_t g = 0; g < gateways; ++g) {
      population_.objects.push_back(
          {"gateway-" + std::to_string(g), g % population_.nodes, 1.0});
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Population& population() const override {
    return population_;
  }
  [[nodiscard]] std::size_t sources() const override {
    return static_cast<std::size_t>(options_.sources);
  }
  [[nodiscard]] std::size_t source_node(std::size_t source) const override {
    // Devices connect at edge nodes unrelated to their gateway's home.
    return static_cast<std::size_t>(
        sim::SplitMix64{0xde71cceULL + source}.next() % population_.nodes);
  }
  [[nodiscard]] double next_arrival(std::size_t /*source*/,
                                    sim::Rng& rng) const override {
    return rng.exponential(1.0 / options_.rate);  // OFF period
  }

  void next_burst(std::size_t source, sim::Rng& rng,
                  Burst& out) const override {
    out.clear();
    const std::size_t gateway = source % population_.objects.size();

    // Discretised Pareto burst length with mean burst_mean: scale
    // x_m = mean·(α−1)/α, L = round(x_m · u^(−1/α)), clamped to keep a
    // single pathological draw from dominating a whole run.
    const double alpha = options_.burst_alpha;
    const double x_m = options_.burst_mean * (alpha - 1.0) / alpha;
    const double u = std::max(rng.uniform(), 1e-12);
    const auto len = static_cast<std::size_t>(std::clamp(
        std::llround(x_m * std::pow(u, -1.0 / alpha)), 1LL, 10000LL));

    const bool pull = rng.uniform() < options_.move_fraction;
    if (pull) {
      // Backlog upload: bring the gateway to the edge, stream, send back.
      out.target = gateway;
      out.visit = true;
    }
    out.calls.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      out.calls.push_back({gateway, /*read=*/false, rng.exponential(0.05)});
    }
  }

private:
  ScenarioOptions options_;
  std::string name_;
  Population population_;
};

}  // namespace

std::unique_ptr<Scenario> make_iot(const ScenarioOptions& options) {
  return std::make_unique<IotScenario>(options);
}

}  // namespace omig::scenario
