// Scenario pack: an open-loop traffic generator with a workload zoo.
//
// The paper evaluates its placement/attachment claims on one synthetic
// component model (the office workflow, src/workload/). A production-scale
// system must handle many shapes of traffic, so this subsystem describes
// workloads *declaratively*: a `Scenario` names a static population (objects,
// alliances, attachment edges) and, per traffic source, a stochastic stream
// of *bursts* — each burst optionally opening a move()/visit() block and
// issuing a batch of invocations.
//
// The generator is open-loop: arrival times are drawn from the scenario's
// inter-arrival process and do NOT depend on service completion. A slow
// backend therefore accumulates in-flight bursts instead of silently
// throttling the offered load — the standard methodology for measuring
// systems under overload (closed-loop generators hide collapse).
//
// The same Scenario object drives both backends:
//   * the simulator          — src/scenario/sim_driver.{hpp,cpp}
//   * the live runtime       — src/scenario/live_driver.{hpp,cpp}
// Backend-agnosticism is why everything here speaks in plain indices
// (node/object/alliance as size_t) rather than sim or runtime id types.
//
// Determinism contract: every random draw a scenario makes happens via the
// sim::Rng passed in by the driver, which derives one stream per source from
// (base seed, scenario name, source index) — see source_stream(). Sweep
// results stay bit-identical at any thread count because a source's draws
// depend only on its own stream. Scenario constructors may use their own
// internal Rng for population building (e.g. preferential attachment); they
// must derive it from the options seed, never from global state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace omig::scenario {

/// Sentinel index meaning "no such entity" (no target, no alliance).
inline constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Knobs shared by every scenario, parsed from `scenario=`/`sc-*` config
/// keys (core/config.cpp) and CLI flags. A scenario reads only the knobs
/// that make sense for it; docs/scenarios.md has the per-scenario mapping.
struct ScenarioOptions {
  std::string name;        ///< empty = scenario traffic disabled
  int nodes = 8;           ///< cluster size
  int sources = 16;        ///< independent open-loop traffic sources
  int objects = 64;        ///< population size (vertices / keys / gateways)
  double rate = 0.05;      ///< burst arrivals per sim-time unit per source
  double zipf_theta = 0.99;    ///< cache: hot-key skew exponent
  double read_fraction = 0.9;  ///< cache/social: share of read invocations
  double move_fraction = 0.05; ///< cache/iot: P(burst migrates the object)
  int fanout = 3;              ///< social: neighbours per storm; game: squad
  int groups = 4;              ///< game: node groups ("shards")
  double handoff_fraction = 0.15;  ///< game: P(burst is a cross-group move)
  double burst_mean = 6.0;     ///< iot: mean ON-burst length (writes)
  double burst_alpha = 1.5;    ///< iot: Pareto tail index of burst lengths

  [[nodiscard]] bool enabled() const { return !name.empty(); }
};

/// Throws AssertionError on out-of-range knobs.
void validate(const ScenarioOptions& options);

/// One object in the static population.
struct ObjectSpec {
  std::string name;
  std::size_t home = 0;  ///< node index
  double size = 1.0;     ///< migration-cost weight
};

/// One attachment edge (created once at start-up).
struct AttachSpec {
  std::size_t a = 0;
  std::size_t b = 0;
  std::size_t alliance = kNone;  ///< cooperation context, kNone = global
};

/// The static population a scenario needs the backend to materialise.
struct Population {
  std::size_t nodes = 0;
  std::vector<ObjectSpec> objects;
  std::vector<std::string> alliances;
  std::vector<AttachSpec> attachments;
};

/// One open-loop burst: optionally a move()/visit() block on `target`,
/// always a batch of invocations. Gaps are pre-drawn by the scenario so
/// that all randomness is consumed in the source's coroutine (determinism
/// contract above) — the driver replays the burst without touching the Rng.
struct Burst {
  std::size_t target = kNone;   ///< block target object; kNone = no block
  bool visit = false;           ///< visit() instead of move()
  std::size_t alliance = kNone; ///< block's cooperation context
  std::size_t origin = kNone;   ///< node issuing this burst; kNone = the
                                ///< source's own node (game handoffs issue
                                ///< from the destination shard)

  struct Call {
    std::size_t object = 0;  ///< invocation callee
    bool read = true;        ///< Read vs Write invocation
    double gap = 0.0;        ///< think time before this call (sim units)
  };
  std::vector<Call> calls;

  void clear() {
    target = kNone;
    visit = false;
    alliance = kNone;
    origin = kNone;
    calls.clear();
  }
};

/// A workload: static population + per-source burst stream. Implementations
/// live in src/scenario/{social,cache,game,iot}.cpp; add new ones there and
/// register them in make_scenario()/list_scenarios() (docs/scenarios.md
/// walks through it).
class Scenario {
public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// The static population. Stable for the scenario's lifetime; drivers
  /// materialise it once before traffic starts.
  [[nodiscard]] virtual const Population& population() const = 0;

  /// Number of traffic sources (== options.sources unless the scenario
  /// derives it, e.g. IoT devices).
  [[nodiscard]] virtual std::size_t sources() const = 0;

  /// Node index a source issues from.
  [[nodiscard]] virtual std::size_t source_node(std::size_t source) const = 0;

  /// Inter-arrival gap before the source's next burst. Open-loop: the
  /// driver schedules the next arrival immediately, independent of how long
  /// the previous burst takes to complete.
  [[nodiscard]] virtual double next_arrival(std::size_t source,
                                            sim::Rng& rng) const = 0;

  /// Fills `out` with the source's next burst. Must consume randomness only
  /// from `rng`.
  virtual void next_burst(std::size_t source, sim::Rng& rng,
                          Burst& out) const = 0;
};

/// Catalogue entry for --list-scenarios.
struct ScenarioInfo {
  std::string name;
  std::string summary;
};

/// All registered scenarios, sorted by name.
[[nodiscard]] std::vector<ScenarioInfo> list_scenarios();

/// Builds the named scenario. Throws AssertionError for unknown names or
/// invalid knob combinations.
[[nodiscard]] std::unique_ptr<Scenario> make_scenario(
    const ScenarioOptions& options);

/// Per-source seed stream: hashes (base seed, scenario name, source index)
/// through splitmix64 so sources are independent and the thread count that
/// executes them cannot perturb their draws.
[[nodiscard]] std::uint64_t source_stream(std::uint64_t base_seed,
                                          const std::string& scenario_name,
                                          std::size_t source);

}  // namespace omig::scenario
