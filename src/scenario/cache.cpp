// Cache tier with Zipf hot-key skew.
//
// Keys are objects spread round-robin across the nodes; every access picks
// its key from a Zipf(θ) distribution (util/zipf.hpp), so a few keys absorb
// most of the traffic — the canonical CDN / memcached access pattern. Most
// bursts are a single read or write on the key (no move-block: plain remote
// invocation). With probability `move_fraction` the burst instead opens a
// move() block that pulls the key to the caller's node and works on it —
// the migrate-vs-invoke-remotely tension of paper claims 1–2, now under
// skew: hot keys get pulled constantly by *different* nodes (conflicting
// components), cold keys almost never.
#include <string>

#include "scenario/scenario.hpp"
#include "util/zipf.hpp"

namespace omig::scenario {
namespace {

class CacheScenario final : public Scenario {
public:
  explicit CacheScenario(const ScenarioOptions& options)
      : options_{options},
        name_{"cache"},
        zipf_{static_cast<std::uint64_t>(options.objects),
              options.zipf_theta} {
    population_.nodes = static_cast<std::size_t>(options.nodes);
    const auto n = static_cast<std::size_t>(options.objects);
    population_.objects.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      population_.objects.push_back(
          {"key-" + std::to_string(k), k % population_.nodes, 1.0});
    }
    // No alliances/attachments: cache keys are independent. Attachment
    // effects are the social/game scenarios' job.
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Population& population() const override {
    return population_;
  }
  [[nodiscard]] std::size_t sources() const override {
    return static_cast<std::size_t>(options_.sources);
  }
  [[nodiscard]] std::size_t source_node(std::size_t source) const override {
    return source % population_.nodes;
  }
  [[nodiscard]] double next_arrival(std::size_t /*source*/,
                                    sim::Rng& rng) const override {
    return rng.exponential(1.0 / options_.rate);
  }

  void next_burst(std::size_t /*source*/, sim::Rng& rng,
                  Burst& out) const override {
    out.clear();
    const std::size_t key = static_cast<std::size_t>(zipf_.sample(rng));
    if (rng.uniform() < options_.move_fraction) {
      // Pull the key local and hammer it: a short working session.
      out.target = key;
      const int n = rng.exponential_count(4.0);
      out.calls.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        out.calls.push_back({key, rng.uniform() < options_.read_fraction,
                             rng.exponential(0.2)});
      }
    } else {
      // Plain one-shot get/put against wherever the key lives.
      out.calls.push_back(
          {key, rng.uniform() < options_.read_fraction, 0.0});
    }
  }

private:
  ScenarioOptions options_;
  std::string name_;
  Population population_;
  util::ZipfSampler zipf_;
};

}  // namespace

std::unique_ptr<Scenario> make_cache(const ScenarioOptions& options) {
  return std::make_unique<CacheScenario>(options);
}

}  // namespace omig::scenario
