#include "scenario/live_driver.hpp"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/families.hpp"
#include "runtime/demo_types.hpp"
#include "util/assert.hpp"

namespace omig::scenario {
namespace {

/// Per-worker accounting, merged after the join (no contention while
/// traffic flows; the metric histograms are lock-free anyway).
struct WorkerTally {
  std::uint64_t bursts = 0;
  std::uint64_t ops = 0;
  std::uint64_t moves = 0;
  std::uint64_t visits = 0;
  std::uint64_t refusals = 0;
  std::uint64_t failures = 0;
};

void run_source(runtime::LiveSystem& system, const Scenario& scenario,
                const LiveScenarioOptions& options, std::size_t source,
                obs::ScenarioMetrics& metrics, WorkerTally& tally) {
  sim::Rng rng{source_stream(options.seed, scenario.name(), source), 0};
  const Population& pop = scenario.population();
  const std::size_t node_count = system.node_count();
  const std::size_t my_node = scenario.source_node(source) % node_count;
  Burst burst;
  for (int b = 0; b < options.bursts_per_source; ++b) {
    const double gap = scenario.next_arrival(source, rng);
    if (options.pacing.count() > 0) {
      std::this_thread::sleep_for(options.pacing * gap);
    }
    scenario.next_burst(source, rng, burst);
    metrics.offered_bursts->inc();

    const std::size_t origin =
        (burst.origin != kNone ? burst.origin : my_node) % node_count;
    runtime::LiveSystem::MoveToken token;
    const bool has_block = burst.target != kNone;
    if (has_block) {
      const std::string& target = pop.objects[burst.target].name;
      const std::string alliance =
          burst.alliance != kNone ? pop.alliances[burst.alliance] : "";
      token = burst.visit ? system.visit(target, origin, alliance)
                          : system.move(target, origin, alliance);
      ++(burst.visit ? tally.visits : tally.moves);
      (burst.visit ? metrics.ops_visit : metrics.ops_move)->inc();
      if (!token.granted) ++tally.refusals;
    }

    for (const Burst::Call& call : burst.calls) {
      const std::string& object = pop.objects[call.object].name;
      const auto start = std::chrono::steady_clock::now();
      const runtime::InvokeResult result =
          call.read ? system.invoke_from(origin, object, "get", "")
                    : system.invoke_from(origin, object, "add", "1");
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);
      metrics.op_us->record(static_cast<std::uint64_t>(us.count()));
      metrics.ops_invoke->inc();
      ++tally.ops;
      if (!result.ok) ++tally.failures;
    }

    if (has_block) system.end(token);
    ++tally.bursts;
    metrics.completed_bursts->inc();
  }
}

}  // namespace

LiveScenarioResult run_live_scenario(runtime::LiveSystem& system,
                                     const Scenario& scenario,
                                     const LiveScenarioOptions& options) {
  OMIG_REQUIRE(options.bursts_per_source >= 1,
               "live scenario needs at least one burst per source");
  OMIG_REQUIRE(options.threads >= 1, "live scenario needs a worker thread");
  const Population& pop = scenario.population();
  const std::size_t node_count = system.node_count();
  OMIG_REQUIRE(node_count >= 1, "live scenario needs a started system");

  // Materialise the population. Objects are demo "counter"s; creation
  // failures (duplicate names from a previous run on the same system) are
  // tolerated so tests can re-run scenarios against one cluster.
  for (const ObjectSpec& spec : pop.objects) {
    system.create(spec.name, runtime::make_state("counter", {{"count", "0"}}),
                  spec.home % node_count);
  }
  for (const AttachSpec& edge : pop.attachments) {
    system.attach(pop.objects[edge.a].name, pop.objects[edge.b].name,
                  edge.alliance != kNone ? pop.alliances[edge.alliance] : "");
  }

  obs::ScenarioMetrics metrics = obs::scenario_metrics(scenario.name());
  const std::size_t sources = scenario.sources();
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(options.threads),
                            sources);
  std::vector<WorkerTally> tallies(workers);
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        // Static partition: source s belongs to worker s % workers, so a
        // source's op sequence never depends on the worker count.
        for (std::size_t s = w; s < sources; s += workers) {
          run_source(system, scenario, options, s, metrics, tallies[w]);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  LiveScenarioResult result;
  for (const WorkerTally& t : tallies) {
    result.bursts += t.bursts;
    result.ops += t.ops;
    result.moves += t.moves;
    result.visits += t.visits;
    result.refusals += t.refusals;
    result.failures += t.failures;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.ops_per_sec = result.wall_seconds > 0.0
                           ? static_cast<double>(result.ops) /
                                 result.wall_seconds
                           : 0.0;
  metrics.achieved_ops->set(static_cast<std::int64_t>(result.ops_per_sec));
  return result;
}

}  // namespace omig::scenario
