// Game-server shards with player handoff.
//
// Nodes are partitioned into `groups` shards (contiguous ranges). Players
// are objects organised into squads of `fanout`: the squad is an alliance,
// and every member is attached to the squad leader in that context, so a
// handoff that moves the leader drags the whole squad — correlated moves
// between node groups, the pattern that makes per-object placement
// decisions misleading (and where the paper's alliance semantics earn
// their keep). Each squad is homed on one shard.
//
// Most bursts are play traffic: a batch of writes against the source's
// squad members where they live (no block). With probability
// `handoff_fraction` a burst is a *handoff*: a move() block that pulls the
// squad leader (and transitively the squad) to a node in a different
// group, followed by a flurry of correlated writes on the members — a
// party zoning into another shard's map.
#include <string>

#include "scenario/scenario.hpp"
#include "util/assert.hpp"

namespace omig::scenario {
namespace {

class GameScenario final : public Scenario {
public:
  explicit GameScenario(const ScenarioOptions& options)
      : options_{options}, name_{"game"} {
    const auto nodes = static_cast<std::size_t>(options.nodes);
    groups_ = std::min(static_cast<std::size_t>(options.groups), nodes);
    squad_ = static_cast<std::size_t>(options.fanout);
    population_.nodes = nodes;
    const auto players = static_cast<std::size_t>(options.objects);
    const std::size_t squads = (players + squad_ - 1) / squad_;
    population_.objects.reserve(players);
    for (std::size_t s = 0; s < squads; ++s) {
      const std::size_t home = group_node(s % groups_, s / groups_);
      const std::size_t ctx = population_.alliances.size();
      population_.alliances.push_back("squad-" + std::to_string(s));
      const std::size_t leader = s * squad_;
      for (std::size_t m = 0; m < squad_ && leader + m < players; ++m) {
        population_.objects.push_back(
            {"player-" + std::to_string(leader + m), home, 1.0});
        if (m > 0) population_.attachments.push_back({leader + m, leader, ctx});
      }
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Population& population() const override {
    return population_;
  }
  [[nodiscard]] std::size_t sources() const override {
    return static_cast<std::size_t>(options_.sources);
  }
  [[nodiscard]] std::size_t source_node(std::size_t source) const override {
    // Sources are session handlers pinned to their squad's home shard.
    const std::size_t s = source % squad_count();
    return group_node(s % groups_, s / groups_);
  }
  [[nodiscard]] double next_arrival(std::size_t /*source*/,
                                    sim::Rng& rng) const override {
    return rng.exponential(1.0 / options_.rate);
  }

  void next_burst(std::size_t source, sim::Rng& rng,
                  Burst& out) const override {
    out.clear();
    const std::size_t s = source % squad_count();
    const std::size_t leader = s * squad_;
    const std::size_t members = squad_members(s);
    if (rng.uniform() < options_.handoff_fraction) {
      // Handoff: move the leader to a different group; attachments drag
      // the squad along. Then every member acts in the new zone.
      const std::size_t from_group = s % groups_;
      const std::size_t to_group =
          (from_group + 1 + rng.uniform_int(groups_ > 1 ? groups_ - 1 : 1)) %
          groups_;
      out.target = leader;
      out.alliance = s;  // the squad's alliance
      // The block originates from the destination shard: a move() pulls the
      // leader (and squad) to the issuing node.
      out.origin = group_node(to_group, rng.uniform_int(population_.nodes));
      out.calls.reserve(members);
      for (std::size_t m = 0; m < members; ++m) {
        out.calls.push_back({leader + m, false, rng.exponential(0.3)});
      }
    } else {
      // Play burst: correlated writes on squad members, no block.
      const int n = rng.exponential_count(static_cast<double>(members));
      out.calls.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        out.calls.push_back({leader + rng.uniform_int(members), false,
                             rng.exponential(0.2)});
      }
    }
  }

private:
  [[nodiscard]] std::size_t squad_count() const {
    return population_.alliances.size();
  }
  [[nodiscard]] std::size_t squad_members(std::size_t s) const {
    const std::size_t leader = s * squad_;
    const std::size_t players = population_.objects.size();
    return std::min(squad_, players - leader);
  }
  /// Node for the `offset`-th squad of `group` (round-robin inside the
  /// group's contiguous node range).
  [[nodiscard]] std::size_t group_node(std::size_t group,
                                       std::size_t offset) const {
    const std::size_t nodes = population_.nodes;
    const std::size_t base = group * nodes / groups_;
    const std::size_t width =
        std::max<std::size_t>(1, (group + 1) * nodes / groups_ - base);
    return base + offset % width;
  }

  ScenarioOptions options_;
  std::string name_;
  Population population_;
  std::size_t groups_ = 1;
  std::size_t squad_ = 1;
};

}  // namespace

std::unique_ptr<Scenario> make_game(const ScenarioOptions& options) {
  return std::make_unique<GameScenario>(options);
}

}  // namespace omig::scenario
