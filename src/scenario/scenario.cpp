#include "scenario/scenario.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::scenario {

void validate(const ScenarioOptions& options) {
  OMIG_REQUIRE(options.nodes >= 1, "scenario needs at least one node");
  OMIG_REQUIRE(options.sources >= 1, "scenario needs at least one source");
  OMIG_REQUIRE(options.objects >= 1, "scenario needs at least one object");
  OMIG_REQUIRE(options.rate > 0.0, "scenario arrival rate must be positive");
  OMIG_REQUIRE(options.zipf_theta >= 0.0, "zipf theta must be >= 0");
  OMIG_REQUIRE(options.read_fraction >= 0.0 && options.read_fraction <= 1.0,
               "read fraction must be in [0, 1]");
  OMIG_REQUIRE(options.move_fraction >= 0.0 && options.move_fraction <= 1.0,
               "move fraction must be in [0, 1]");
  OMIG_REQUIRE(options.fanout >= 1, "fanout must be >= 1");
  OMIG_REQUIRE(options.groups >= 1, "groups must be >= 1");
  OMIG_REQUIRE(options.handoff_fraction >= 0.0 &&
                   options.handoff_fraction <= 1.0,
               "handoff fraction must be in [0, 1]");
  OMIG_REQUIRE(options.burst_mean >= 1.0, "burst mean must be >= 1");
  OMIG_REQUIRE(options.burst_alpha > 1.0,
               "burst alpha must be > 1 (finite mean)");
}

// Factories, one per translation unit.
std::unique_ptr<Scenario> make_social(const ScenarioOptions& options);
std::unique_ptr<Scenario> make_cache(const ScenarioOptions& options);
std::unique_ptr<Scenario> make_game(const ScenarioOptions& options);
std::unique_ptr<Scenario> make_iot(const ScenarioOptions& options);

std::vector<ScenarioInfo> list_scenarios() {
  std::vector<ScenarioInfo> out{
      {"cache", "cache tier: Zipf hot-key skew, occasional pull-to-caller"},
      {"game", "game-server shards: squads with cross-group player handoff"},
      {"iot", "IoT fleet: on/off producers with heavy-tailed write bursts"},
      {"social", "social graph: power-law adjacency, visit storms on edges"},
  };
  std::sort(out.begin(), out.end(),
            [](const ScenarioInfo& a, const ScenarioInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::unique_ptr<Scenario> make_scenario(const ScenarioOptions& options) {
  validate(options);
  if (options.name == "social") return make_social(options);
  if (options.name == "cache") return make_cache(options);
  if (options.name == "game") return make_game(options);
  if (options.name == "iot") return make_iot(options);
  OMIG_REQUIRE(false, "unknown scenario '" + options.name +
                          "' (see omig_sim --list-scenarios)");
  return nullptr;  // unreachable
}

std::uint64_t source_stream(std::uint64_t base_seed,
                            const std::string& scenario_name,
                            std::size_t source) {
  // Fold the scenario name into the seed so e.g. cache source 3 and game
  // source 3 draw independently, then mix with the source index. splitmix64
  // gives good avalanche for sequential indices.
  std::uint64_t h = base_seed;
  for (const char c : scenario_name) {
    h = sim::SplitMix64{h ^ static_cast<std::uint64_t>(
                                static_cast<unsigned char>(c))}
            .next();
  }
  return sim::SplitMix64{h ^ (0x5ce0a9774c6fb359ULL +
                              static_cast<std::uint64_t>(source))}
      .next();
}

}  // namespace omig::scenario
