// Object registry: the run-time location and mobility state of all objects.
//
// This corresponds to the per-node run-time support of Section 3.1: it knows
// where every object currently resides, whether it is fixed, and whether it
// is in transit (in which case invocations block on the object's gate until
// it is "reinstalled at the target node").
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "objsys/ids.hpp"
#include "objsys/object.hpp"
#include "sim/engine.hpp"
#include "sim/gate.hpp"

namespace omig::objsys {

/// Central bookkeeping for object locations and transit state. In a real
/// system this state is sharded across nodes; the simulator keeps it in one
/// structure since the paper normalises location-mechanism costs away (a
/// LocationService can re-introduce them).
class ObjectRegistry {
public:
  ObjectRegistry(sim::Engine& engine, std::size_t node_count);

  /// Creates an object at its home node. Returns its id.
  ObjectId create(std::string name, NodeId home, double size = 1.0,
                  bool mobile = true, bool immutable = false);

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] const ObjectDescriptor& descriptor(ObjectId id) const;
  [[nodiscard]] NodeId location(ObjectId id) const;
  [[nodiscard]] bool is_resident(ObjectId id, NodeId node) const;

  /// Transient fixing (paper's fix()/unfix()/refix() primitives).
  void fix(ObjectId id);
  void unfix(ObjectId id);
  /// refix = atomically re-assert the fixed state (used after a migration
  /// that was allowed because the object was temporarily unfixed).
  void refix(ObjectId id);
  [[nodiscard]] bool is_fixed(ObjectId id) const;

  /// True if the object may migrate right now (mobile type, not fixed).
  [[nodiscard]] bool is_movable(ObjectId id) const;

  /// Transit state. While in transit, `transit_gate` is closed and callers
  /// must wait on it. `begin_transit` closes; `finish_transit` relocates the
  /// object and reopens the gate.
  void begin_transit(ObjectId id);
  void finish_transit(ObjectId id, NodeId dest);
  [[nodiscard]] bool in_transit(ObjectId id) const;
  [[nodiscard]] sim::Gate& transit_gate(ObjectId id);

  /// Number of completed migrations (diagnostics).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  // --- replicas -------------------------------------------------------------
  // Immutable objects are copied on move (paper Section 1). Mutable objects
  // may carry read replicas (replicate-on-read, the outlook's replication
  // mechanism); those are dropped on every write or migration.
  /// True if `node` holds the primary or a copy of `id`.
  [[nodiscard]] bool has_replica(ObjectId id, NodeId node) const;
  /// Registers a copy at `node` (idempotent).
  void add_replica(ObjectId id, NodeId node);
  /// Invalidates every copy of `id`; returns how many were dropped.
  std::size_t drop_replicas(ObjectId id);
  /// Nodes holding copies (excluding the primary location).
  [[nodiscard]] const std::vector<NodeId>& replicas(ObjectId id) const;
  /// Number of copies created so far (diagnostics).
  [[nodiscard]] std::uint64_t replications() const { return replications_; }
  /// Number of copies invalidated so far (diagnostics).
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }

  /// Full location history of an object (used by forwarding-address
  /// location services); index 0 is the home node.
  [[nodiscard]] const std::vector<NodeId>& history(ObjectId id) const;

  // --- load accounting (Section 2.2's load-sharing goal) --------------------
  /// Number of objects currently resident at `node` (primaries only).
  [[nodiscard]] std::size_t objects_at(NodeId node) const;
  /// Node currently hosting the fewest / most objects (lowest index wins
  /// ties, so the choice is deterministic).
  [[nodiscard]] NodeId least_loaded_node() const;
  [[nodiscard]] NodeId most_loaded_node() const;

private:
  struct Entry {
    ObjectDescriptor desc;
    NodeId location;
    bool fixed = false;
    bool in_transit = false;
    sim::Gate gate;
    std::vector<NodeId> history;
    std::vector<NodeId> replicas;  ///< copies (immutable objects only)

    Entry(sim::Engine& eng, ObjectDescriptor d)
        : desc{std::move(d)}, location{desc.home}, gate{eng},
          history{desc.home} {}
  };

  [[nodiscard]] Entry& entry(ObjectId id);
  [[nodiscard]] const Entry& entry(ObjectId id) const;

  sim::Engine* engine_;
  std::size_t node_count_;
  std::deque<Entry> objects_;  // deque: stable addresses for gates
  std::vector<std::size_t> load_;  ///< resident objects per node
  std::uint64_t migrations_ = 0;
  std::uint64_t replications_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace omig::objsys
