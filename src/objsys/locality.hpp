// Per-object access-locality tracker.
//
// Maintains, for every object, an exponentially-weighted moving average of
// the caller-node distribution of its invocations. The adaptive placement
// policies (docs/policies.md) consult it at move() time: if one node has
// issued a clear EMA majority of the recent accesses, the object migrates
// toward that node; otherwise it stays put.
//
// Hot-path contract (docs/performance.md): record() is O(1), touches no
// atomics, consumes no randomness, and schedules no events — attaching a
// tracker to an Invoker cannot perturb the deterministic per-cell RNG
// streams, so the existing sweep goldens stay byte-identical. The EMA uses
// the growing-weight formulation: each access adds a weight that grows by
// 1/decay per event, which makes the *relative* weights of past accesses
// decay geometrically without revisiting them. Weights are renormalised
// (O(nodes), amortised over thousands of events) before they can overflow.
#pragma once

#include <cstdint>
#include <vector>

#include "objsys/ids.hpp"
#include "util/dense_table.hpp"

namespace omig::objsys {

/// What the tracker knows about one object at a decision point.
struct LocalityEstimate {
  NodeId dominant = NodeId::invalid();  ///< highest-EMA caller node
  double share = 0.0;        ///< dominant's fraction of the EMA mass [0,1]
  double host_share = 0.0;   ///< the queried host's fraction of the mass
  double weight = 0.0;       ///< effective sample size (≤ 1/(1-decay))
};

class LocalityTracker {
public:
  /// `decay` is the per-event retention factor in (0,1): after k further
  /// accesses an access retains decay^k of its original weight. 0.9 keeps
  /// an effective window of ~10 accesses.
  explicit LocalityTracker(std::size_t node_count, double decay = 0.9);

  /// Records one invocation of `callee` issued from `caller`. O(1), no
  /// atomics, no RNG, no events.
  void record(ObjectId callee, NodeId caller);

  /// The EMA-dominant caller node of `obj` and its share of the EMA mass,
  /// plus `host`'s share (0 if `host` never called). Ties break toward the
  /// lowest node index, so the estimate is deterministic. Returns an
  /// invalid dominant for an object that was never recorded.
  [[nodiscard]] LocalityEstimate estimate(ObjectId obj, NodeId host) const;

  /// record() calls so far (folded into omig_policy_ema_updates_total).
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

  [[nodiscard]] double decay() const { return decay_; }
  [[nodiscard]] std::size_t tracked_objects() const { return table_.size(); }

private:
  struct Entry {
    std::vector<double> score;  ///< EMA mass per caller node
    double total = 0.0;         ///< sum of score[]
    double next_weight = 1.0;   ///< weight the next access will add
  };

  std::size_t node_count_;
  double decay_;
  double growth_;  ///< 1/decay: per-event weight growth factor
  util::DenseTable<ObjectId, Entry> table_;
  std::uint64_t updates_ = 0;
};

}  // namespace omig::objsys
