#include "objsys/object.hpp"

#include "util/assert.hpp"

namespace omig::objsys {

void validate(const ObjectDescriptor& desc) {
  OMIG_REQUIRE(desc.id.valid(), "object id must be valid");
  OMIG_REQUIRE(desc.home.valid(), "object home node must be valid");
  OMIG_REQUIRE(desc.size > 0.0, "object size must be positive");
}

}  // namespace omig::objsys
