#include "objsys/sharded_directory.hpp"

#include <algorithm>

namespace omig::objsys {
namespace {

// splitmix64 finaliser: cheap, well-mixed object-id → shard hashing so
// consecutive ids don't all land on the same shard owner.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string to_string(DirectoryKind kind) {
  switch (kind) {
  case DirectoryKind::Central: return "central";
  case DirectoryKind::Sharded: return "sharded";
  }
  return "unknown";
}

std::string to_string(ConsistencyStrategy strategy) {
  switch (strategy) {
  case ConsistencyStrategy::EagerInvalidate: return "eager-invalidate";
  case ConsistencyStrategy::LazyForward: return "lazy-forward";
  case ConsistencyStrategy::LeaseTtl: return "lease-ttl";
  }
  return "unknown";
}

std::optional<DirectoryKind> directory_from_string(const std::string& text) {
  if (text == "central") return DirectoryKind::Central;
  if (text == "sharded") return DirectoryKind::Sharded;
  return std::nullopt;
}

std::optional<ConsistencyStrategy> strategy_from_string(
    const std::string& text) {
  if (text == "eager-invalidate") return ConsistencyStrategy::EagerInvalidate;
  if (text == "lazy-forward") return ConsistencyStrategy::LazyForward;
  if (text == "lease-ttl") return ConsistencyStrategy::LeaseTtl;
  return std::nullopt;
}

ShardedDirectory::ShardedDirectory(ShardedDirectoryOptions options)
    : options_{options},
      shards_{options.shards != 0 ? options.shards
                                  : std::max<std::size_t>(1, options.nodes)},
      hop_limit_{options.hop_limit != 0 ? options.hop_limit : shards_},
      nodes_{std::max<std::size_t>(1, options.nodes)} {}

void ShardedDirectory::insert(ObjectId object, NodeId home) {
  ++now_;
  authoritative_[object] = home;
  const NodeId owner = owner_of(object);
  if (node_up(owner)) nodes_.at(owner.value()).slice[object] = home;
}

bool ShardedDirectory::contains(ObjectId object) const {
  return authoritative_.contains(object);
}

DirectoryLookup ShardedDirectory::lookup(NodeId from, ObjectId object) {
  ++now_;
  ++stats_.lookups;
  auto& viewer = nodes_.at(from.value());
  DirectoryLookup result;
  const NodeId truth = current_host(object);

  auto entry = viewer.cache.get(object);
  if (entry && options_.strategy == ConsistencyStrategy::LeaseTtl &&
      !fresh(*entry)) {
    viewer.cache.invalidate(object);
    entry.reset();
  }
  if (entry) {
    const NodeId cached{static_cast<NodeId::value_type>(entry->node)};
    if (cached == truth && node_up(truth)) {
      ++stats_.cache_hits;
      result.cache_hit = true;
      result.host = truth;
      result.resolved = true;
      return result;
    }
    // Stale entry: chase forwarding pointers from the cached host. Each
    // pointer records where the object went when it last left that node,
    // so departure times strictly increase along the chase — the chain is
    // acyclic and ends at the current host unless it exceeds the hop cap
    // or runs into a crashed node, in which case the shard owner below is
    // the authoritative fallback.
    result.stale = true;
    ++stats_.stale_hits;
    NodeId at = cached;
    while (at != truth && result.hops < hop_limit_ && node_up(at)) {
      const auto& forward = nodes_.at(at.value()).forward;
      auto fw = forward.find(object);
      if (fw == forward.end()) break;
      ++result.hops;
      ++stats_.forward_hops;
      at = fw->second;
    }
    if (at == truth && node_up(truth)) {
      result.host = truth;
      result.resolved = true;
      cache_learn(viewer, object, truth);
      return result;
    }
  }

  result.owner_consulted = true;
  ++stats_.owner_lookups;
  const NodeId owner = owner_of(object);
  if (node_up(owner)) {
    const auto& slice = nodes_.at(owner.value()).slice;
    auto it = slice.find(object);
    if (it != slice.end() && node_up(it->second)) {
      result.host = it->second;
      result.resolved = true;
      cache_learn(viewer, object, it->second);
      return result;
    }
  }
  // Owner crashed (or the host itself is down): the lookup does not
  // settle on a dead host — callers back off and retry after recovery.
  ++stats_.unresolved;
  return result;
}

DirectoryMove ShardedDirectory::record_move(ObjectId object, NodeId dest) {
  ++now_;
  ++stats_.updates;
  DirectoryMove move;
  const auto it = authoritative_.find(object);
  const NodeId from = it != authoritative_.end() ? it->second
                                                 : NodeId::invalid();
  authoritative_[object] = dest;
  const NodeId owner = owner_of(object);
  move.owner = owner;
  if (node_up(owner)) nodes_.at(owner.value()).slice[object] = dest;
  if (from.valid() && from != dest && node_up(from))
    nodes_.at(from.value()).forward[object] = dest;
  // The new host serves the object itself; a leftover pointer from an
  // earlier residence would only add a redundant hop.
  if (node_up(dest)) nodes_.at(dest.value()).forward.erase(object);
  if (options_.strategy == ConsistencyStrategy::EagerInvalidate) {
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (!nodes_[n].up) continue;
      if (nodes_[n].cache.invalidate(object)) {
        ++stats_.invalidations;
        move.invalidated.push_back(
            NodeId{static_cast<NodeId::value_type>(n)});
      }
    }
  }
  return move;
}

void ShardedDirectory::crash_node(NodeId node) {
  ++now_;
  auto& state = nodes_.at(node.value());
  state.up = false;
  state.slice.clear();
  state.forward.clear();
  state.cache.clear();
}

void ShardedDirectory::recover_node(NodeId node) {
  ++now_;
  auto& state = nodes_.at(node.value());
  state.up = true;
  // Re-seed this node's shard slice from the authoritative map — the same
  // role restart_node plays in the live runtime, where the coordinator
  // replays directory updates to a recovered shard owner.
  for (const auto& [object, host] : authoritative_) {
    if (owner_of(object) == node) state.slice[object] = host;
  }
}

bool ShardedDirectory::node_up(NodeId node) const {
  if (!node.valid() || node.value() >= nodes_.size()) return false;
  return nodes_[node.value()].up;
}

void ShardedDirectory::tick(std::uint64_t amount) { now_ += amount; }

std::size_t ShardedDirectory::shard_of(ObjectId object) const {
  return static_cast<std::size_t>(mix(object.value())) % shards_;
}

NodeId ShardedDirectory::shard_owner(std::size_t shard) const {
  return NodeId{static_cast<NodeId::value_type>(shard % nodes_.size())};
}

NodeId ShardedDirectory::owner_of(ObjectId object) const {
  return shard_owner(shard_of(object));
}

NodeId ShardedDirectory::current_host(ObjectId object) const {
  auto it = authoritative_.find(object);
  return it != authoritative_.end() ? it->second : NodeId::invalid();
}

const LocationCache& ShardedDirectory::cache(NodeId node) const {
  return nodes_.at(node.value()).cache;
}

bool ShardedDirectory::fresh(const CachedLocation& entry) const {
  return now_ - entry.stamp <= options_.lease_ttl;
}

void ShardedDirectory::cache_learn(NodeState& viewer, ObjectId object,
                                   NodeId host) {
  viewer.cache.put(object, host.value(), now_);
}

}  // namespace omig::objsys
