#include "objsys/registry.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::objsys {

ObjectRegistry::ObjectRegistry(sim::Engine& engine, std::size_t node_count)
    : engine_{&engine}, node_count_{node_count}, load_(node_count, 0) {
  OMIG_REQUIRE(node_count >= 1, "need at least one node");
}

ObjectId ObjectRegistry::create(std::string name, NodeId home, double size,
                                bool mobile, bool immutable) {
  OMIG_REQUIRE(home.valid() && home.value() < node_count_,
               "home node out of range");
  ObjectDescriptor desc;
  desc.id = ObjectId{static_cast<ObjectId::value_type>(objects_.size())};
  desc.name = std::move(name);
  desc.home = home;
  desc.size = size;
  desc.mobile = mobile;
  desc.immutable = immutable;
  validate(desc);
  objects_.emplace_back(*engine_, std::move(desc));
  ++load_[objects_.back().location.value()];
  return objects_.back().desc.id;
}

ObjectRegistry::Entry& ObjectRegistry::entry(ObjectId id) {
  OMIG_REQUIRE(id.valid() && id.value() < objects_.size(),
               "unknown object id");
  return objects_[id.value()];
}

const ObjectRegistry::Entry& ObjectRegistry::entry(ObjectId id) const {
  OMIG_REQUIRE(id.valid() && id.value() < objects_.size(),
               "unknown object id");
  return objects_[id.value()];
}

const ObjectDescriptor& ObjectRegistry::descriptor(ObjectId id) const {
  return entry(id).desc;
}

NodeId ObjectRegistry::location(ObjectId id) const {
  return entry(id).location;
}

bool ObjectRegistry::is_resident(ObjectId id, NodeId node) const {
  return entry(id).location == node;
}

void ObjectRegistry::fix(ObjectId id) { entry(id).fixed = true; }

void ObjectRegistry::unfix(ObjectId id) { entry(id).fixed = false; }

void ObjectRegistry::refix(ObjectId id) {
  Entry& e = entry(id);
  OMIG_REQUIRE(!e.in_transit, "cannot refix an object in transit");
  e.fixed = true;
}

bool ObjectRegistry::is_fixed(ObjectId id) const { return entry(id).fixed; }

bool ObjectRegistry::is_movable(ObjectId id) const {
  const Entry& e = entry(id);
  return e.desc.mobile && !e.fixed && !e.in_transit;
}

void ObjectRegistry::begin_transit(ObjectId id) {
  Entry& e = entry(id);
  OMIG_REQUIRE(!e.in_transit, "object is already in transit");
  OMIG_REQUIRE(e.desc.mobile, "sedentary object cannot migrate");
  OMIG_REQUIRE(!e.desc.immutable,
               "immutable objects are copied, never transited");
  e.in_transit = true;
  e.gate.close();
}

void ObjectRegistry::finish_transit(ObjectId id, NodeId dest) {
  OMIG_REQUIRE(dest.valid() && dest.value() < node_count_,
               "destination node out of range");
  Entry& e = entry(id);
  OMIG_REQUIRE(e.in_transit, "object is not in transit");
  e.in_transit = false;
  if (e.location != dest) {
    --load_[e.location.value()];
    ++load_[dest.value()];
    e.location = dest;
    e.history.push_back(dest);
    ++migrations_;
    // Read replicas of a relocated mutable object are stale: invalidate.
    invalidations_ += e.replicas.size();
    e.replicas.clear();
  }
  e.gate.open();
}

bool ObjectRegistry::in_transit(ObjectId id) const {
  return entry(id).in_transit;
}

sim::Gate& ObjectRegistry::transit_gate(ObjectId id) {
  return entry(id).gate;
}

const std::vector<NodeId>& ObjectRegistry::history(ObjectId id) const {
  return entry(id).history;
}

bool ObjectRegistry::has_replica(ObjectId id, NodeId node) const {
  const Entry& e = entry(id);
  if (e.location == node) return true;
  return std::find(e.replicas.begin(), e.replicas.end(), node) !=
         e.replicas.end();
}

void ObjectRegistry::add_replica(ObjectId id, NodeId node) {
  OMIG_REQUIRE(node.valid() && node.value() < node_count_,
               "replica node out of range");
  Entry& e = entry(id);
  if (has_replica(id, node)) return;
  e.replicas.push_back(node);
  ++replications_;
}

std::size_t ObjectRegistry::drop_replicas(ObjectId id) {
  Entry& e = entry(id);
  const std::size_t dropped = e.replicas.size();
  invalidations_ += dropped;
  e.replicas.clear();
  return dropped;
}

const std::vector<NodeId>& ObjectRegistry::replicas(ObjectId id) const {
  return entry(id).replicas;
}

std::size_t ObjectRegistry::objects_at(NodeId node) const {
  OMIG_REQUIRE(node.valid() && node.value() < node_count_,
               "node index out of range");
  return load_[node.value()];
}

NodeId ObjectRegistry::least_loaded_node() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < node_count_; ++i) {
    if (load_[i] < load_[best]) best = i;
  }
  return NodeId{static_cast<NodeId::value_type>(best)};
}

NodeId ObjectRegistry::most_loaded_node() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < node_count_; ++i) {
    if (load_[i] > load_[best]) best = i;
  }
  return NodeId{static_cast<NodeId::value_type>(best)};
}

}  // namespace omig::objsys
