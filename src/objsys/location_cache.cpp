#include "objsys/location_cache.hpp"

namespace omig::objsys {

// The two instantiations every layer shares (simulator model by id, live
// runtime by name) are compiled once here.
template class BasicLocationCache<ObjectId>;
template class BasicLocationCache<std::string>;

}  // namespace omig::objsys
