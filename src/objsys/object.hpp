// Object descriptors.
//
// Objects in the model are opaque state carriers: they have an identity, a
// size (which scales migration cost) and a mobility attribute (the paper's
// permanent type-level "sedentary" property, as opposed to the transient
// fix()/unfix() runtime state kept by the registry).
#pragma once

#include <string>

#include "objsys/ids.hpp"

namespace omig::objsys {

/// Static properties of an object. Created once; never changes.
struct ObjectDescriptor {
  ObjectId id;
  std::string name;
  NodeId home;        ///< node the object is created on
  double size = 1.0;  ///< scales the migration duration (paper: all 1)
  bool mobile = true; ///< permanent sedentariness (type attribute)
  /// Immutable ("static") object: parallel accesses are safe, so "moving a
  /// static object simply creates a copy" (paper Section 1). Copies never
  /// conflict and never block callers.
  bool immutable = false;
};

/// Validates descriptor fields; throws AssertionError on violations.
void validate(const ObjectDescriptor& desc);

}  // namespace omig::objsys
