#include "objsys/invocation.hpp"

#include "objsys/locality.hpp"
#include "objsys/location_service.hpp"
#include "util/assert.hpp"

namespace omig::objsys {

namespace {
/// Bound on retransmissions per message leg and on down-node polls, so a
/// plan with drop probability 1.0 (or a node that never restarts while
/// nothing relocates its objects) cannot hang the simulation.
constexpr int kMaxLegRetries = 64;
constexpr int kMaxDownPolls = 100000;

/// Sim time is unit-mean message latency; histograms store integers, so
/// durations are recorded in milli-units (×1000) to keep sub-unit
/// resolution in the power-of-2 buckets.
std::uint64_t to_milli(sim::SimTime duration) {
  if (duration <= 0.0) return 0;
  return static_cast<std::uint64_t>(duration * 1000.0);
}
}  // namespace

Invoker::Invoker(sim::Engine& engine, ObjectRegistry& registry,
                 const net::LatencyModel& latency, sim::Rng& rng)
    : engine_{&engine}, registry_{&registry}, latency_{&latency}, rng_{&rng} {}

sim::SimTime Invoker::message_leg(std::size_t from, std::size_t to) {
  sim::SimTime cost = latency_->sample(*rng_, from, to);
  if (fault_ == nullptr) return cost;
  for (int attempt = 0; attempt < kMaxLegRetries; ++attempt) {
    const fault::Decision dec = fault_->on_message(from, to);
    if (!dec.drop) return cost + dec.delay;
    // Lost: the sender waits out its timeout, then retransmits.
    cost += fault_->plan().retry_timeout;
    fault_->counters().retries.fetch_add(1, std::memory_order_relaxed);
    cost += latency_->sample(*rng_, from, to);
  }
  return cost;
}

void Invoker::set_replication(ReplicationMode mode, double copy_duration) {
  OMIG_REQUIRE(copy_duration >= 0.0, "copy duration must be non-negative");
  replication_ = mode;
  copy_duration_ = copy_duration;
}

sim::Task Invoker::invoke(NodeId caller, ObjectId callee,
                          InvocationKind kind) {
  const sim::SimTime start = engine_->now();
  // "When the object migrates at the moment of the invocation, the call is
  // blocked until the object is operational once again" (Section 4.1).
  if (registry_->in_transit(callee)) {
    ++blocked_;
    while (registry_->in_transit(callee)) {
      co_await registry_->transit_gate(callee).wait();
    }
  }
  // Callee hosted by a crashed node: the caller's messages go unanswered,
  // so it retries on its timeout until the node recovers or a migration
  // pulls the object elsewhere (checkpoint recovery makes it reachable
  // again). Caller processes themselves ride out crashes — the fault
  // model perturbs object availability, not client code.
  if (health_ != nullptr) {
    NodeId where = registry_->location(callee);
    if (where.valid() && !health_->up(where.value())) {
      ++blocked_;
      const double timeout = fault_ ? fault_->plan().retry_timeout : 1.0;
      for (int polls = 0;
           where.valid() && !health_->up(where.value()) &&
           polls < kMaxDownPolls;
           ++polls) {
        if (fault_ != nullptr) {
          fault_->counters().retries.fetch_add(1, std::memory_order_relaxed);
        }
        co_await engine_->delay(timeout);
        where = registry_->location(callee);
      }
    }
  }
  ++invocations_;
  if (locality_ != nullptr) locality_->record(callee, caller);
  const bool immutable = registry_->descriptor(callee).immutable;
  const NodeId loc = registry_->location(callee);

  // Writes to a mutable replicated object invalidate every copy. The
  // invalidation messages fan out asynchronously — they are counted but do
  // not delay the writer (the paper's model neglects background load).
  if (!immutable && kind == InvocationKind::Write) {
    invalidation_messages_ += registry_->drop_replicas(callee);
  }

  if (loc == caller) {  // local invocation: negligible execution cost
    local_call_milli_.record(to_milli(engine_->now() - start));
    co_return;
  }

  // A local copy serves the call if the access permits it: always for
  // immutable ("static") objects, reads only for mutable ones.
  const bool copy_serves =
      (immutable || kind == InvocationKind::Read) &&
      registry_->has_replica(callee, caller);
  if (copy_serves) {
    ++replica_hits_;
    // Served locally, whatever the primary says.
    local_call_milli_.record(to_milli(engine_->now() - start));
    co_return;
  }

  ++remote_;
  if (service_ != nullptr) {
    co_await service_->resolve(caller, callee);
  }
  // Call message to the callee, result message back.
  co_await engine_->delay(message_leg(caller.value(), loc.value()));
  co_await engine_->delay(message_leg(loc.value(), caller.value()));

  // Replicate-on-read: the reply ships the object's state; installing the
  // local copy costs one state transfer, experienced by the caller.
  if (!immutable && kind == InvocationKind::Read &&
      replication_ == ReplicationMode::ReplicateOnRead) {
    co_await engine_->delay(copy_duration_);
    // The object may have moved or been written meanwhile; only install a
    // copy if the state we carried is still current (no write dropped our
    // in-flight copy — approximated by re-checking the location).
    if (registry_->location(callee) == loc &&
        !registry_->in_transit(callee)) {
      registry_->add_replica(callee, caller);
    }
  }
  remote_call_milli_.record(to_milli(engine_->now() - start));
}

sim::Task Invoker::invoke_from_object(ObjectId caller, ObjectId callee,
                                      InvocationKind kind) {
  // An object in transit cannot execute; its outgoing call starts once it
  // is reinstalled.
  while (registry_->in_transit(caller)) {
    co_await registry_->transit_gate(caller).wait();
  }
  co_await invoke(registry_->location(caller), callee, kind);
}

}  // namespace omig::objsys
