#include "objsys/invocation.hpp"

#include "objsys/location_service.hpp"
#include "util/assert.hpp"

namespace omig::objsys {

Invoker::Invoker(sim::Engine& engine, ObjectRegistry& registry,
                 const net::LatencyModel& latency, sim::Rng& rng)
    : engine_{&engine}, registry_{&registry}, latency_{&latency}, rng_{&rng} {}

void Invoker::set_replication(ReplicationMode mode, double copy_duration) {
  OMIG_REQUIRE(copy_duration >= 0.0, "copy duration must be non-negative");
  replication_ = mode;
  copy_duration_ = copy_duration;
}

sim::Task Invoker::invoke(NodeId caller, ObjectId callee,
                          InvocationKind kind) {
  // "When the object migrates at the moment of the invocation, the call is
  // blocked until the object is operational once again" (Section 4.1).
  if (registry_->in_transit(callee)) {
    ++blocked_;
    while (registry_->in_transit(callee)) {
      co_await registry_->transit_gate(callee).wait();
    }
  }
  ++invocations_;
  const bool immutable = registry_->descriptor(callee).immutable;
  const NodeId loc = registry_->location(callee);

  // Writes to a mutable replicated object invalidate every copy. The
  // invalidation messages fan out asynchronously — they are counted but do
  // not delay the writer (the paper's model neglects background load).
  if (!immutable && kind == InvocationKind::Write) {
    invalidation_messages_ += registry_->drop_replicas(callee);
  }

  if (loc == caller) co_return;  // local invocation: negligible

  // A local copy serves the call if the access permits it: always for
  // immutable ("static") objects, reads only for mutable ones.
  const bool copy_serves =
      (immutable || kind == InvocationKind::Read) &&
      registry_->has_replica(callee, caller);
  if (copy_serves) {
    ++replica_hits_;
    co_return;
  }

  ++remote_;
  if (service_ != nullptr) {
    co_await service_->resolve(caller, callee);
  }
  // Call message to the callee, result message back.
  co_await engine_->delay(
      latency_->sample(*rng_, caller.value(), loc.value()));
  co_await engine_->delay(
      latency_->sample(*rng_, loc.value(), caller.value()));

  // Replicate-on-read: the reply ships the object's state; installing the
  // local copy costs one state transfer, experienced by the caller.
  if (!immutable && kind == InvocationKind::Read &&
      replication_ == ReplicationMode::ReplicateOnRead) {
    co_await engine_->delay(copy_duration_);
    // The object may have moved or been written meanwhile; only install a
    // copy if the state we carried is still current (no write dropped our
    // in-flight copy — approximated by re-checking the location).
    if (registry_->location(callee) == loc &&
        !registry_->in_transit(callee)) {
      registry_->add_replica(callee, caller);
    }
  }
}

sim::Task Invoker::invoke_from_object(ObjectId caller, ObjectId callee,
                                      InvocationKind kind) {
  // An object in transit cannot execute; its outgoing call starts once it
  // is reinstalled.
  while (registry_->in_transit(caller)) {
    co_await registry_->transit_gate(caller).wait();
  }
  co_await invoke(registry_->location(caller), callee, kind);
}

}  // namespace omig::objsys
