// Sharded object-location directory with per-node caches.
//
// The paper's location-service variants (name-server lookup, forwarding
// addresses, broadcast — Section 4.3) all assume a single directory, which
// becomes the scalability choke point once node counts grow ≫ 10. This
// module shards the directory by object-id hash: object → shard →
// owner node, so lookup traffic spreads across the deployment instead of
// funnelling through one name server. Each node additionally keeps a local
// LocationCache; migrations leave forwarding pointers at the old host, and
// a pluggable ConsistencyStrategy decides how stale cache entries are
// healed — the paper's variants become cache-consistency strategies:
//
//   EagerInvalidate  every migration invalidates the object's entry in all
//                    caches (the "immediate update" scheme, fanned out).
//   LazyForward      stale entries are chased through forwarding pointers
//                    until the chain reaches the current host (the
//                    "forwarding address" scheme, bounded by hop_limit).
//   LeaseTtl         cache entries expire after a lease; within the lease
//                    a bounded number of stale hops may occur.
//
// This class is the *model*: a pure, deterministic, single-threaded state
// machine with an explicit logical clock, shared by the simulator's
// LocationService (which charges message latencies for the operations the
// model reports) and by the property suite in
// tests/objsys/sharded_directory_test.cpp, which drives random
// move/lookup/crash interleavings against it and checks the contract:
// every resolved lookup returns the current host via a forwarding chain of
// ≤ shard-count hops, and stale hits are bounded by the strategy. The live
// runtime implements the same protocol over real wire messages
// (DirLookup/DirUpdate, see src/transport/wire.hpp and runtime/live_system).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "objsys/ids.hpp"
#include "objsys/location_cache.hpp"

namespace omig::objsys {

/// Which directory implementation a run uses. Central is the seed
/// behaviour (single map / name server); Sharded spreads the directory
/// across nodes and enables the per-node caches.
enum class DirectoryKind { Central, Sharded };

/// How per-node caches are kept consistent with the moving truth.
enum class ConsistencyStrategy { EagerInvalidate, LazyForward, LeaseTtl };

[[nodiscard]] std::string to_string(DirectoryKind kind);
[[nodiscard]] std::string to_string(ConsistencyStrategy strategy);
[[nodiscard]] std::optional<DirectoryKind> directory_from_string(
    const std::string& text);
[[nodiscard]] std::optional<ConsistencyStrategy> strategy_from_string(
    const std::string& text);

struct ShardedDirectoryOptions {
  std::size_t nodes = 1;
  /// Number of directory shards; 0 means one shard per node.
  std::size_t shards = 0;
  ConsistencyStrategy strategy = ConsistencyStrategy::LazyForward;
  /// LeaseTtl only: cache entries older than this many logical ticks are
  /// discarded on lookup.
  std::uint64_t lease_ttl = 16;
  /// Maximum forwarding hops chased before falling back to the shard
  /// owner; 0 means "shard count" (the bound the property suite asserts).
  std::size_t hop_limit = 0;
};

/// Outcome of one lookup, with enough provenance for cost models and for
/// the property checker.
struct DirectoryLookup {
  /// Host the lookup settled on. Only meaningful when `resolved`.
  NodeId host = NodeId::invalid();
  /// Forwarding hops chased (0 when the cache or owner answered directly).
  std::size_t hops = 0;
  /// The local cache answered with the current host — no messages at all.
  bool cache_hit = false;
  /// The local cache answered, but the entry pointed at an old host.
  bool stale = false;
  /// The authoritative shard owner was consulted.
  bool owner_consulted = false;
  /// False when neither a forwarding chain nor the shard owner could
  /// produce a live host (owner crashed and not yet recovered). Callers
  /// retry after recovery — a lookup never settles on a dead host.
  bool resolved = false;
};

/// What a migration did to the directory, for cost accounting: the shard
/// owner that was updated plus every node whose cache entry was eagerly
/// invalidated.
struct DirectoryMove {
  NodeId owner = NodeId::invalid();
  std::vector<NodeId> invalidated;
};

struct DirectoryStats {
  std::uint64_t lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t stale_hits = 0;
  std::uint64_t forward_hops = 0;
  std::uint64_t owner_lookups = 0;
  std::uint64_t updates = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t unresolved = 0;
};

class ShardedDirectory {
public:
  explicit ShardedDirectory(ShardedDirectoryOptions options);

  /// Register `object` as living on `home`. Seeds the owning shard.
  void insert(ObjectId object, NodeId home);
  [[nodiscard]] bool contains(ObjectId object) const;

  /// Resolve `object` from the point of view of node `from`: local cache
  /// first, then forwarding chain (strategy permitting), then the shard
  /// owner. Updates `from`'s cache with whatever was learned.
  DirectoryLookup lookup(NodeId from, ObjectId object);

  /// Record a migration to `dest`: updates the authoritative entry, the
  /// owning shard's slice, leaves a forwarding pointer at the old host,
  /// and (EagerInvalidate) drops the entry from every node cache.
  DirectoryMove record_move(ObjectId object, NodeId dest);

  /// Crash `node`: its shard slice, forwarding pointers, and cache are
  /// volatile state and vanish. Authoritative entries survive (they model
  /// the coordinator / durable layer underneath).
  void crash_node(NodeId node);

  /// Recover `node`: re-seed its shard slice from the authoritative map.
  void recover_node(NodeId node);

  [[nodiscard]] bool node_up(NodeId node) const;

  /// Advance the logical clock without doing work (ages LeaseTtl entries).
  void tick(std::uint64_t amount = 1);

  [[nodiscard]] std::size_t shard_of(ObjectId object) const;
  [[nodiscard]] NodeId shard_owner(std::size_t shard) const;
  [[nodiscard]] NodeId owner_of(ObjectId object) const;

  /// Current authoritative host (test/model oracle, not a protocol step).
  [[nodiscard]] NodeId current_host(ObjectId object) const;

  [[nodiscard]] std::size_t shards() const { return shards_; }
  [[nodiscard]] std::size_t hop_limit() const { return hop_limit_; }
  [[nodiscard]] ConsistencyStrategy strategy() const {
    return options_.strategy;
  }
  [[nodiscard]] const DirectoryStats& stats() const { return stats_; }
  [[nodiscard]] const LocationCache& cache(NodeId node) const;

private:
  struct NodeState {
    bool up = true;
    /// This node's slice of the directory: objects whose shard it owns.
    std::unordered_map<ObjectId, NodeId> slice;
    /// Forwarding pointers left behind when an object migrated away.
    std::unordered_map<ObjectId, NodeId> forward;
    LocationCache cache;
  };

  [[nodiscard]] bool fresh(const CachedLocation& entry) const;
  void cache_learn(NodeState& viewer, ObjectId object, NodeId host);

  ShardedDirectoryOptions options_;
  std::size_t shards_;
  std::size_t hop_limit_;
  /// Ground truth that survives crashes; mirrors the object registry /
  /// coordinator map the shards are a distributed index over.
  std::unordered_map<ObjectId, NodeId> authoritative_;
  std::vector<NodeState> nodes_;
  std::uint64_t now_ = 0;
  DirectoryStats stats_;
};

}  // namespace omig::objsys
