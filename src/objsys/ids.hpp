// Identifier spaces of the distributed object system.
#pragma once

#include "util/strong_id.hpp"

namespace omig::objsys {

struct NodeTag {};
struct ObjectTag {};
struct AllianceTag {};
struct BlockTag {};

/// A physical node in the distributed system.
using NodeId = StrongId<NodeTag>;
/// A (potentially mobile) object.
using ObjectId = StrongId<ObjectTag>;
/// A cooperation context ("alliance", Section 3.4 of the paper).
using AllianceId = StrongId<AllianceTag>;
/// One dynamic move-block instance (Figure 2 of the paper).
using BlockId = StrongId<BlockTag>;

}  // namespace omig::objsys
