// Synchronous object invocation.
//
// Calls are trapped by proxies, linearised and forwarded to the current
// location of the callee (Section 3.1). In the model this costs one call
// message plus one result message (each exp(1)); a local invocation is free
// ("about 4 orders of magnitude below the duration of a remote action").
// If the callee is in transit, the call blocks until the object is
// reinstalled — this is the mechanism that inflates call durations under
// conflicting migration policies.
#pragma once

#include <cstdint>

#include "fault/injector.hpp"
#include "net/latency.hpp"
#include "obs/metrics.hpp"
#include "objsys/registry.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace omig::objsys {

class LocationService;
class LocalityTracker;

/// Whether an invocation only observes the callee's state (Read) or
/// modifies it (Write). The paper's model does not distinguish them; the
/// distinction powers the outlook's replication mechanism: reads can be
/// served by a local copy, writes go to the primary and invalidate copies.
enum class InvocationKind { Read, Write };

/// Replication strategy for *mutable* objects (Section 5 outlook).
enum class ReplicationMode {
  None,            ///< paper default: no mutable replicas
  ReplicateOnRead, ///< a remote read installs a local copy (cost: one
                   ///< state transfer, charged into the call duration)
};

/// Executes synchronous invocations against the registry.
class Invoker {
public:
  Invoker(sim::Engine& engine, ObjectRegistry& registry,
          const net::LatencyModel& latency, sim::Rng& rng);

  /// Optional location-mechanism cost model (paper normalises this away;
  /// see `LocationService` and the ablation benches). Not owned.
  void set_location_service(LocationService* service) { service_ = service; }

  /// Optional access-locality tracker (docs/policies.md): every invocation
  /// records its caller node into the per-object EMA the adaptive policies
  /// consult. Pure arithmetic on the hot path — no RNG, no events — so
  /// attaching it cannot change any simulated outcome. Not owned; null
  /// disables (the default, and the only mode non-adaptive runs use).
  void set_locality_tracker(LocalityTracker* tracker) { locality_ = tracker; }

  /// Optional fault model (docs/fault_model.md). With an injector, each
  /// message leg may be dropped (the caller waits out its retry timeout and
  /// retransmits) or delayed; with node health, a call on an object hosted
  /// by a crashed node polls on the retry timeout until the node recovers
  /// or a migration pulls the object elsewhere. Neither is owned; null
  /// disables.
  void set_fault(fault::FaultInjector* injector, fault::NodeHealth* health) {
    fault_ = injector;
    health_ = health;
  }

  /// Configures mutable-object replication (default: None) and the state
  /// transfer duration a replicate-on-read pays (default: the migration
  /// duration M — it ships the same state).
  void set_replication(ReplicationMode mode, double copy_duration);

  /// One synchronous invocation from node `caller` on `callee`. Completes
  /// when the result message has arrived back at the caller. Writes go to
  /// the primary and invalidate read replicas; reads may be served by a
  /// local copy.
  sim::Task invoke(NodeId caller, ObjectId callee,
                   InvocationKind kind = InvocationKind::Write);

  /// Nested invocation issued *by* an object (e.g. a first-layer server
  /// calling into its working set): waits until the calling object is
  /// operational, then invokes from its current location.
  sim::Task invoke_from_object(ObjectId caller, ObjectId callee,
                               InvocationKind kind = InvocationKind::Write);

  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }
  [[nodiscard]] std::uint64_t remote_invocations() const { return remote_; }
  [[nodiscard]] std::uint64_t blocked_invocations() const { return blocked_; }
  [[nodiscard]] std::uint64_t replica_hits() const { return replica_hits_; }
  [[nodiscard]] std::uint64_t invalidation_messages() const {
    return invalidation_messages_;
  }

  /// Call-duration tallies in sim-time milli-units, split local vs remote.
  /// Plain (non-atomic) accumulators — the invocation path is the sim's
  /// hottest loop and the engine is single-threaded — folded into the
  /// process-wide registry once per run (core/experiment.cpp).
  [[nodiscard]] const obs::HistogramTally& local_call_milli() const {
    return local_call_milli_;
  }
  [[nodiscard]] const obs::HistogramTally& remote_call_milli() const {
    return remote_call_milli_;
  }

private:
  /// Cost of one message leg including injected faults: a dropped leg adds
  /// the retry timeout plus the retransmission's latency; a delayed leg
  /// adds its extra delay. Faultless legs are a single latency sample.
  sim::SimTime message_leg(std::size_t from, std::size_t to);

  sim::Engine* engine_;
  ObjectRegistry* registry_;
  const net::LatencyModel* latency_;
  sim::Rng* rng_;
  LocationService* service_ = nullptr;
  LocalityTracker* locality_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  fault::NodeHealth* health_ = nullptr;
  ReplicationMode replication_ = ReplicationMode::None;
  double copy_duration_ = 6.0;
  std::uint64_t invocations_ = 0;
  std::uint64_t remote_ = 0;
  std::uint64_t blocked_ = 0;  ///< calls that had to wait for a migration
  std::uint64_t replica_hits_ = 0;
  std::uint64_t invalidation_messages_ = 0;
  obs::HistogramTally local_call_milli_;
  obs::HistogramTally remote_call_milli_;
};

}  // namespace omig::objsys
