#include "objsys/location_service.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::objsys {

const char* to_string(LocationScheme scheme) {
  switch (scheme) {
    case LocationScheme::None:
      return "none";
    case LocationScheme::NameServer:
      return "name-server";
    case LocationScheme::Forwarding:
      return "forwarding";
    case LocationScheme::Broadcast:
      return "broadcast";
    case LocationScheme::ImmediateUpdate:
      return "immediate-update";
  }
  return "unknown";
}

LocationService::LocationService(sim::Engine& engine, ObjectRegistry& registry,
                                 const net::LatencyModel& latency,
                                 sim::Rng& rng, LocationScheme scheme,
                                 NodeId name_server)
    : engine_{&engine}, registry_{&registry}, latency_{&latency}, rng_{&rng},
      scheme_{scheme}, name_server_{name_server} {
  OMIG_REQUIRE(name_server.value() < registry.node_count(),
               "name server node out of range");
  if (scheme_ == LocationScheme::Forwarding) {
    known_.resize(registry.node_count());
  }
}

void LocationService::enable_sharded(ShardedDirectoryOptions options) {
  options.nodes = registry_->node_count();
  sharded_.emplace(options);
}

void LocationService::ensure_registered(ObjectId obj) {
  if (!sharded_->contains(obj)) {
    sharded_->insert(obj, registry_->location(obj));
  }
}

sim::Task LocationService::resolve(NodeId from, ObjectId obj) {
  if (sharded_) {
    // Sharded directory: the model decides what the lookup cost — nothing
    // (cache hit), an owner round-trip, and/or forwarding hops — and we
    // charge one simulated message per reported leg. The chase legs are
    // approximated as from↔host samples; the model guarantees hop count ≤
    // shard count, so the charge is bounded.
    ensure_registered(obj);
    const DirectoryLookup r = sharded_->lookup(from, obj);
    if (r.cache_hit) co_return;
    if (r.stale) {
      // One message to the stale host that bounced, plus one per chain hop.
      const std::size_t legs = 1 + r.hops;
      const NodeId target = r.host.valid() ? r.host : registry_->location(obj);
      for (std::size_t i = 0; i < legs; ++i) {
        ++messages_;
        co_await engine_->delay(
            latency_->sample(*rng_, from.value(), target.value()));
      }
    }
    if (r.owner_consulted) {
      const NodeId owner = sharded_->owner_of(obj);
      messages_ += 2;
      co_await engine_->delay(
          latency_->sample(*rng_, from.value(), owner.value()));
      co_await engine_->delay(
          latency_->sample(*rng_, owner.value(), from.value()));
    }
    co_return;
  }

  switch (scheme_) {
    case LocationScheme::None:
    case LocationScheme::ImmediateUpdate:
      // Location is always current at every node.
      co_return;

    case LocationScheme::NameServer: {
      if (from == name_server_) co_return;  // local lookup
      messages_ += 2;
      co_await engine_->delay(
          latency_->sample(*rng_, from.value(), name_server_.value()));
      co_await engine_->delay(
          latency_->sample(*rng_, name_server_.value(), from.value()));
      co_return;
    }

    case LocationScheme::Broadcast: {
      // One broadcast query (modelled as a single message duration: all
      // copies are in flight concurrently) plus the answer from the host.
      messages_ += 2;
      const NodeId loc = registry_->location(obj);
      co_await engine_->delay(
          latency_->sample(*rng_, from.value(), loc.value()));
      co_await engine_->delay(
          latency_->sample(*rng_, loc.value(), from.value()));
      co_return;
    }

    case LocationScheme::Forwarding: {
      // The caller only knows the location it last contacted; the call is
      // forwarded along the chain of addresses the object left behind.
      // Each extra chain hop is one extra message duration.
      const auto& hist = registry_->history(obj);
      OMIG_ASSERT(from.value() < known_.size());
      std::vector<std::uint32_t>& row = known_[from.value()];
      if (row.size() <= obj.value()) row.resize(obj.value() + 1, 0);
      const std::size_t current = hist.size() - 1;
      const std::size_t cached =
          std::min<std::size_t>(row[obj.value()], current);
      for (std::size_t i = cached; i < current; ++i) {
        ++messages_;
        co_await engine_->delay(latency_->sample(*rng_, hist[i].value(),
                                                 hist[i + 1].value()));
      }
      row[obj.value()] = static_cast<std::uint32_t>(current);
      co_return;
    }
  }
}

sim::SimTime LocationService::migration_overhead(ObjectId obj, NodeId from,
                                                 NodeId dest, bool relocates) {
  if (sharded_) {
    // Replica copies leave the primary location untouched — the directory
    // does not change and nothing is charged.
    if (!relocates) return 0.0;
    ensure_registered(obj);
    const DirectoryMove move = sharded_->record_move(obj, dest);
    // One update message to the shard owner, overlapped with any eager
    // invalidations fanning out in parallel: the migration is extended by
    // the slowest leg.
    ++messages_;
    sim::SimTime worst =
        latency_->sample(*rng_, dest.value(), move.owner.value());
    for (const NodeId node : move.invalidated) {
      ++messages_;
      worst =
          std::max(worst, latency_->sample(*rng_, dest.value(), node.value()));
    }
    return worst;
  }

  switch (scheme_) {
    case LocationScheme::None:
    case LocationScheme::Forwarding:
    case LocationScheme::Broadcast:
      return 0.0;

    case LocationScheme::NameServer:
      // One update message to the name server, overlapped with the
      // transfer; it extends the transit if it is the slower leg.
      ++messages_;
      return latency_->sample(*rng_, dest.value(), name_server_.value());

    case LocationScheme::ImmediateUpdate: {
      // Update messages fan out to every node in parallel; the migration
      // completes when the slowest update has landed.
      sim::SimTime worst = 0.0;
      const std::size_t n = registry_->node_count();
      for (std::size_t i = 0; i < n; ++i) {
        if (i == dest.value()) continue;
        ++messages_;
        worst = std::max(worst, latency_->sample(*rng_, from.value(), i));
      }
      return worst;
    }
  }
  return 0.0;
}

}  // namespace omig::objsys
