#include "objsys/location_service.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace omig::objsys {

const char* to_string(LocationScheme scheme) {
  switch (scheme) {
    case LocationScheme::None:
      return "none";
    case LocationScheme::NameServer:
      return "name-server";
    case LocationScheme::Forwarding:
      return "forwarding";
    case LocationScheme::Broadcast:
      return "broadcast";
    case LocationScheme::ImmediateUpdate:
      return "immediate-update";
  }
  return "unknown";
}

LocationService::LocationService(sim::Engine& engine, ObjectRegistry& registry,
                                 const net::LatencyModel& latency,
                                 sim::Rng& rng, LocationScheme scheme,
                                 NodeId name_server)
    : engine_{&engine}, registry_{&registry}, latency_{&latency}, rng_{&rng},
      scheme_{scheme}, name_server_{name_server} {
  OMIG_REQUIRE(name_server.value() < registry.node_count(),
               "name server node out of range");
  if (scheme_ == LocationScheme::Forwarding) {
    known_.resize(registry.node_count());
  }
}

sim::Task LocationService::resolve(NodeId from, ObjectId obj) {
  switch (scheme_) {
    case LocationScheme::None:
    case LocationScheme::ImmediateUpdate:
      // Location is always current at every node.
      co_return;

    case LocationScheme::NameServer: {
      if (from == name_server_) co_return;  // local lookup
      messages_ += 2;
      co_await engine_->delay(
          latency_->sample(*rng_, from.value(), name_server_.value()));
      co_await engine_->delay(
          latency_->sample(*rng_, name_server_.value(), from.value()));
      co_return;
    }

    case LocationScheme::Broadcast: {
      // One broadcast query (modelled as a single message duration: all
      // copies are in flight concurrently) plus the answer from the host.
      messages_ += 2;
      const NodeId loc = registry_->location(obj);
      co_await engine_->delay(
          latency_->sample(*rng_, from.value(), loc.value()));
      co_await engine_->delay(
          latency_->sample(*rng_, loc.value(), from.value()));
      co_return;
    }

    case LocationScheme::Forwarding: {
      // The caller only knows the location it last contacted; the call is
      // forwarded along the chain of addresses the object left behind.
      // Each extra chain hop is one extra message duration.
      const auto& hist = registry_->history(obj);
      OMIG_ASSERT(from.value() < known_.size());
      std::vector<std::uint32_t>& row = known_[from.value()];
      if (row.size() <= obj.value()) row.resize(obj.value() + 1, 0);
      const std::size_t current = hist.size() - 1;
      const std::size_t cached =
          std::min<std::size_t>(row[obj.value()], current);
      for (std::size_t i = cached; i < current; ++i) {
        ++messages_;
        co_await engine_->delay(latency_->sample(*rng_, hist[i].value(),
                                                 hist[i + 1].value()));
      }
      row[obj.value()] = static_cast<std::uint32_t>(current);
      co_return;
    }
  }
}

sim::SimTime LocationService::migration_overhead(NodeId from, NodeId dest) {
  switch (scheme_) {
    case LocationScheme::None:
    case LocationScheme::Forwarding:
    case LocationScheme::Broadcast:
      return 0.0;

    case LocationScheme::NameServer:
      // One update message to the name server, overlapped with the
      // transfer; it extends the transit if it is the slower leg.
      ++messages_;
      return latency_->sample(*rng_, dest.value(), name_server_.value());

    case LocationScheme::ImmediateUpdate: {
      // Update messages fan out to every node in parallel; the migration
      // completes when the slowest update has landed.
      sim::SimTime worst = 0.0;
      const std::size_t n = registry_->node_count();
      for (std::size_t i = 0; i < n; ++i) {
        if (i == dest.value()) continue;
        ++messages_;
        worst = std::max(worst, latency_->sample(*rng_, from.value(), i));
      }
      return worst;
    }
  }
  return 0.0;
}

}  // namespace omig::objsys
