#include "objsys/locality.hpp"

#include "util/assert.hpp"

namespace omig::objsys {

namespace {
/// Renormalisation threshold for the growing weight. Doubles overflow near
/// 1e308; rescaling at 1e100 leaves ~200 orders of magnitude of headroom
/// and, with decay >= 0.5, triggers at most once every ~330 events.
constexpr double kRenormAt = 1e100;
}  // namespace

LocalityTracker::LocalityTracker(std::size_t node_count, double decay)
    : node_count_{node_count}, decay_{decay}, growth_{1.0 / decay} {
  OMIG_REQUIRE(decay > 0.0 && decay < 1.0,
               "locality decay must be in (0,1)");
  OMIG_REQUIRE(node_count > 0, "locality tracker needs at least one node");
}

void LocalityTracker::record(ObjectId callee, NodeId caller) {
  OMIG_ASSERT(caller.valid() && caller.value() < node_count_);
  Entry& e = table_[callee];
  if (e.score.empty()) e.score.resize(node_count_, 0.0);
  e.score[caller.value()] += e.next_weight;
  e.total += e.next_weight;
  e.next_weight *= growth_;
  if (e.next_weight >= kRenormAt) {
    const double inv = 1.0 / e.next_weight;
    for (double& s : e.score) s *= inv;
    e.total *= inv;
    e.next_weight = 1.0;
  }
  ++updates_;
}

LocalityEstimate LocalityTracker::estimate(ObjectId obj, NodeId host) const {
  LocalityEstimate out;
  const Entry* e = table_.find(obj);
  if (e == nullptr || e->total <= 0.0) return out;
  std::size_t best = 0;
  for (std::size_t n = 1; n < e->score.size(); ++n) {
    if (e->score[n] > e->score[best]) best = n;  // lowest index wins ties
  }
  out.dominant = NodeId{static_cast<NodeId::value_type>(best)};
  out.share = e->score[best] / e->total;
  if (host.valid() && host.value() < e->score.size()) {
    out.host_share = e->score[host.value()] / e->total;
  }
  // Effective sample size in units of "the most recent access counts 1":
  // total / weight-of-the-latest-event = sum of decay^age over all events.
  out.weight = e->total * growth_ / e->next_weight;
  return out;
}

}  // namespace omig::objsys
