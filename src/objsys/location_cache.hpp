// Per-node object-location cache.
//
// Each node of a sharded directory deployment keeps a local cache of
// object → host mappings so the common lookup never leaves the node. The
// cache is deliberately dumb: it stores whatever the last lookup or update
// said, stamped with a logical or wall clock, and the *consistency
// strategy* (docs/directory.md) decides when an entry is trusted, chased
// through forwarding pointers, or invalidated.
//
// Thread-safe: the live runtime invalidates entries from the migration
// path while invocation threads look them up concurrently (the race the
// TSan suite in tests/objsys/location_cache_test.cpp pins down). The
// simulator and the property-test model use the same class single-threaded
// — one mutex acquisition per op is noise there.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "objsys/ids.hpp"

namespace omig::objsys {

/// A cached location: where the object was last known to live, and when
/// that knowledge was written (lease-TTL strategies age entries by stamp).
struct CachedLocation {
  std::uint64_t node = 0;
  std::uint64_t stamp = 0;

  friend bool operator==(const CachedLocation&,
                         const CachedLocation&) = default;
};

/// Object-id (simulator / model) or name (live runtime) keyed cache.
template <class Key>
class BasicLocationCache {
public:
  /// The entry for `key`, or nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<CachedLocation> get(const Key& key) const {
    std::lock_guard lock{mutex_};
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  void put(const Key& key, std::uint64_t node, std::uint64_t stamp) {
    std::lock_guard lock{mutex_};
    map_[key] = CachedLocation{node, stamp};
  }

  /// Drops the entry; true if one was present (an invalidation that
  /// actually reached cached state, the count eager strategies report).
  bool invalidate(const Key& key) {
    std::lock_guard lock{mutex_};
    if (map_.erase(key) == 0) return false;
    ++invalidations_;
    return true;
  }

  /// Drops everything (node crash: the cache dies with the node).
  void clear() {
    std::lock_guard lock{mutex_};
    map_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock{mutex_};
    return map_.size();
  }

  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard lock{mutex_};
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard lock{mutex_};
    return misses_;
  }
  [[nodiscard]] std::uint64_t invalidations() const {
    std::lock_guard lock{mutex_};
    return invalidations_;
  }

private:
  mutable std::mutex mutex_;
  std::unordered_map<Key, CachedLocation> map_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

/// The two key spaces in use: the simulator / property-test model caches
/// by ObjectId, the live runtime by object name.
using LocationCache = BasicLocationCache<ObjectId>;
using NamedLocationCache = BasicLocationCache<std::string>;

extern template class BasicLocationCache<ObjectId>;
extern template class BasicLocationCache<std::string>;

}  // namespace omig::objsys
