// Bridges wire frames onto a live node's mailbox.
//
// The server side of the TCP backend: a request frame is rebuilt into the
// promise-carrying runtime::Message the node loop already understands,
// pushed into the mailbox, and the awaited promise value is marshalled
// back as the reply frame quoting the request's correlation ID. Node
// semantics — at-most-once dedup, reply caches, crash behaviour — stay in
// LiveNode; the bridge only translates.
#pragma once

#include <optional>

#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "transport/wire.hpp"

namespace omig::transport {

/// Serves one request frame against `mailbox`. Returns the reply frame, or
/// nullopt when there is nothing to send back: a rejected push (mailbox
/// closed), a promise broken by a crash mid-processing, a fire-and-forget
/// Shutdown, or a nonsensical frame (a reply sent to a server). The
/// caller's loss signal in all of those cases is the connection reset.
[[nodiscard]] std::optional<Frame> serve_on_mailbox(
    runtime::Mailbox<runtime::Message>& mailbox, Frame request);

}  // namespace omig::transport
