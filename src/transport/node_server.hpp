// Frame server for one live node.
//
// Listens on a loopback port, reassembles request frames from each
// connection (transport/wire) and hands them to a handler; the handler's
// optional reply frame is written back on the same connection. Frames on
// one connection are served in order — the same sequencing a node's
// mailbox imposes — while separate connections proceed independently.
//
// A malformed frame closes the connection (a byte stream that lost framing
// cannot be resynchronised), and stop() closes everything, which is how a
// node crash becomes a connection reset on the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "transport/wire.hpp"

namespace omig::transport {

class NodeServer {
public:
  /// Serves one request; may block (e.g. awaiting the node's mailbox).
  /// nullopt = no reply (fire-and-forget request, or the node died while
  /// processing — the caller's loss signal is the connection reset).
  using Handler = std::function<std::optional<Frame>(Frame)>;

  explicit NodeServer(Handler handler);
  ~NodeServer();
  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Binds `host:port` (0 = ephemeral) and starts accepting. Returns the
  /// bound port, or 0 on failure. No-op (returns the bound port) if
  /// already running.
  std::uint16_t start(std::uint16_t port = 0,
                      const std::string& host = "127.0.0.1");

  /// Closes the listener and every connection, then joins all threads.
  /// Pending handlers run to completion first (their replies are simply
  /// not delivered). Idempotent.
  void stop();

  [[nodiscard]] bool running() const;
  /// Port of the current (or, after stop(), the last) listener.
  [[nodiscard]] std::uint16_t port() const;

private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    bool done = false;  ///< set by the thread on exit (requires mutex_)
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Joins connection threads that already finished (requires mutex_).
  void reap_finished_locked();

  Handler handler_;
  mutable std::mutex mutex_;
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
  bool stopping_ = false;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace omig::transport
