// Frame server for one live node, driven by a net::EventLoop.
//
// Listens on a loopback port, reassembles request frames from each
// connection (transport/wire) and hands them to a handler; the handler's
// optional reply frame is written back on the same connection. Frames on
// one connection are served in order — the same sequencing a node's
// mailbox imposes — while separate connections proceed independently.
//
// Execution model: all socket I/O — accept, read, write — runs as
// coroutines on one event loop (owned, or shared with the rest of the
// process via the constructor), so ten thousand idle connections cost
// ten thousand fds and some heap, not ten thousand blocked threads.
// Handlers are the exception: they may block (awaiting the node's
// mailbox), so frames are dispatched to a small pool of handler strands.
// Each connection is pinned to one strand, which preserves per-connection
// frame order; the pool size bounds handler concurrency, not connection
// count.
//
// A malformed frame closes the connection (a byte stream that lost framing
// cannot be resynchronised), and stop() closes everything, which is how a
// node crash becomes a connection reset on the wire.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.hpp"
#include "transport/wire.hpp"

namespace omig::transport {

class NodeServer {
public:
  /// Serves one request; may block (e.g. awaiting the node's mailbox).
  /// nullopt = no reply (fire-and-forget request, or the node died while
  /// processing — the caller's loss signal is the connection reset).
  using Handler = std::function<std::optional<Frame>(Frame)>;

  /// `loop` = nullptr: the server owns a private loop (one per start()
  /// cycle — loops are single-use). Otherwise all I/O runs on the given
  /// loop, which must outlive the server and keep running across stop().
  /// `handler_threads` bounds concurrent handler execution.
  explicit NodeServer(Handler handler, net::EventLoop* loop = nullptr,
                      int handler_threads = 2);
  ~NodeServer();
  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  /// Binds `host:port` (0 = ephemeral) and starts accepting. Returns the
  /// bound port, or 0 on failure. No-op (returns the bound port) if
  /// already running.
  std::uint16_t start(std::uint16_t port = 0,
                      const std::string& host = "127.0.0.1");

  /// Closes the listener and every connection, then quiesces the loop
  /// tasks and joins the handler strands. In-flight handlers run to
  /// completion first (their replies are simply not delivered).
  /// Idempotent; start() may be called again afterwards.
  void stop();

  [[nodiscard]] bool running() const;
  /// Port of the current (or, after stop(), the last) listener.
  [[nodiscard]] std::uint16_t port() const;

private:
  /// Per-connection state. Loop-thread only. Held by shared_ptr so the
  /// reader/writer coroutines of a connection that just closed can still
  /// observe `closed` instead of a dangling pointer.
  struct Conn {
    Conn(net::EventLoop& loop, std::uint64_t id_)
        : id(id_), out_ready(loop) {}
    std::uint64_t id;
    int fd = -1;
    bool closed = false;
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t out_off = 0;
    net::Event out_ready;
  };

  /// One handler strand: a worker thread draining a frame queue.
  /// Connections hash onto strands, so one connection's frames are
  /// handled in order while different connections can overlap.
  struct Strand {
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::pair<std::uint64_t, Frame>> queue;  ///< (conn id, frame)
    bool stop = false;
  };

  static sim::Task accept_task(NodeServer* s, int listener);
  static sim::Task reader_task(NodeServer* s, std::shared_ptr<Conn> conn);
  static sim::Task writer_task(NodeServer* s, std::shared_ptr<Conn> conn);
  static sim::Task teardown_task(NodeServer* s, int listener,
                                 std::promise<void>* done);

  void strand_worker(Strand& strand);
  /// Loop thread: appends reply bytes to the connection's output queue
  /// (dropped silently if the connection closed meanwhile).
  void queue_reply_on_loop(std::uint64_t conn_id,
                           std::vector<std::uint8_t> bytes);
  /// Loop thread: closes the fd, wakes and detaches both coroutines,
  /// forgets the connection.
  void close_conn(Conn& conn);

  Handler handler_;
  net::EventLoop* const external_loop_;
  const int handler_threads_;

  mutable std::mutex mutex_;  ///< control plane: start/stop/port
  std::unique_ptr<net::EventLoop> owned_loop_;
  net::EventLoop* loop_ = nullptr;  ///< non-null while running
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Strand>> strands_;

  // Loop-thread only:
  std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t live_tasks_ = 0;
  std::vector<std::uint8_t> read_scratch_;

  struct TaskGuard {
    explicit TaskGuard(NodeServer* s) : s_(s) { ++s_->live_tasks_; }
    ~TaskGuard() { --s_->live_tasks_; }
    TaskGuard(const TaskGuard&) = delete;
    TaskGuard& operator=(const TaskGuard&) = delete;

  private:
    NodeServer* s_;
  };
};

}  // namespace omig::transport
