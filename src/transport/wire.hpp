// Wire protocol for the live runtime: every NodeMessage variant as a
// length-prefixed frame.
//
// Inside one process the runtime's messages carry `std::promise` reply
// channels; those cannot cross a process boundary. At the transport seam a
// request instead carries a correlation ID, and the peer answers with a
// reply frame quoting the same ID — the sending transport matches it back
// to the waiting future. The frame layout is
//
//     u32  payload length (little-endian, excludes this prefix)
//     u8   protocol version (kWireVersion)
//     u8   frame type (FrameType)
//     u64  correlation ID (little-endian)
//     ...  type-specific body
//
// Strings use the same u32-length-prefix idiom as runtime/serde, and an
// embedded ObjectState is carried as a serde blob, so the object codec is
// written (and validated) exactly once. Decoding follows runtime/serde's
// strict discipline: truncation, overlong lengths, unknown versions or
// types, and trailing bytes all reject the frame — decode never reads past
// the buffer and never throws.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "runtime/message.hpp"

namespace omig::transport {

/// Protocol version stamped into every frame header.
inline constexpr std::uint8_t kWireVersion = 1;

/// Upper bound on one frame's payload. A length prefix beyond this is
/// treated as malformed before any allocation happens, so a corrupt or
/// hostile peer cannot make the receiver reserve gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  Invoke = 1,
  Install = 2,
  Evict = 3,
  Shutdown = 4,
  InvokeReply = 5,
  InstallReply = 6,
  EvictReply = 7,
  DirLookup = 8,
  DirUpdate = 9,
  DirLookupReply = 10,
  DirUpdateReply = 11,
};

[[nodiscard]] const char* to_string(FrameType type);

// --- request bodies (promise-free mirrors of runtime::Msg*) ----------------

struct WireInvoke {
  std::uint64_t seq = 0;  ///< at-most-once dedup id (runtime::MsgInvoke)
  std::string object;
  std::string method;
  std::string argument;

  friend bool operator==(const WireInvoke&, const WireInvoke&) = default;
};

struct WireInstall {
  std::uint64_t seq = 0;
  std::string name;
  runtime::ObjectState state;

  friend bool operator==(const WireInstall&, const WireInstall&) = default;
};

struct WireEvict {
  std::uint64_t seq = 0;
  std::string name;

  friend bool operator==(const WireEvict&, const WireEvict&) = default;
};

/// Asks a node process to stop (runtime::MsgStop). Fire-and-forget: the
/// peer closes the connection instead of replying.
struct WireShutdown {
  friend bool operator==(const WireShutdown&, const WireShutdown&) = default;
};

/// Asks a shard-owner node for its directory entry (slice record or
/// forwarding hint) for `name` (runtime::MsgDirLookup, docs/directory.md).
struct WireDirLookup {
  std::uint64_t seq = 0;
  std::string name;

  friend bool operator==(const WireDirLookup&,
                         const WireDirLookup&) = default;
};

/// Installs (`invalidate` false) or drops (`invalidate` true) a directory
/// entry at the receiving node: shard-slice updates after a migration and
/// forwarding hints left at the old host use the same message.
struct WireDirUpdate {
  std::uint64_t seq = 0;
  std::string name;
  std::uint64_t node = 0;
  bool invalidate = false;

  friend bool operator==(const WireDirUpdate&,
                         const WireDirUpdate&) = default;
};

// --- reply bodies ----------------------------------------------------------

struct WireInvokeReply {
  runtime::InvokeResult result;

  friend bool operator==(const WireInvokeReply&,
                         const WireInvokeReply&) = default;
};

struct WireInstallReply {
  bool ok = false;

  friend bool operator==(const WireInstallReply&,
                         const WireInstallReply&) = default;
};

struct WireEvictReply {
  runtime::ObjectState state;  ///< empty type signals failure (as in-proc)

  friend bool operator==(const WireEvictReply&,
                         const WireEvictReply&) = default;
};

struct WireDirLookupReply {
  bool found = false;
  std::uint64_t node = 0;

  friend bool operator==(const WireDirLookupReply&,
                         const WireDirLookupReply&) = default;
};

struct WireDirUpdateReply {
  bool ok = false;

  friend bool operator==(const WireDirUpdateReply&,
                         const WireDirUpdateReply&) = default;
};

/// One decoded frame: correlation ID plus the typed payload.
struct Frame {
  using Payload =
      std::variant<WireInvoke, WireInstall, WireEvict, WireShutdown,
                   WireInvokeReply, WireInstallReply, WireEvictReply,
                   WireDirLookup, WireDirUpdate, WireDirLookupReply,
                   WireDirUpdateReply>;

  std::uint64_t corr = 0;
  Payload payload;

  [[nodiscard]] FrameType type() const;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Encodes a frame, length prefix included — the buffer can go onto a
/// socket as-is. The encoder does not enforce kMaxFramePayload; senders
/// check the encoded size (SendStatus::Oversized) and every receiver
/// rejects an overlong length prefix, so an oversized frame can never
/// cross the wire unnoticed.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Decodes one frame payload (the bytes *after* the u32 length prefix).
/// Returns nullopt on any malformation: short header, unknown version or
/// type, truncated body, overlong inner length, or trailing bytes.
[[nodiscard]] std::optional<Frame> decode_payload(
    std::span<const std::uint8_t> payload);

/// Reassembles frames from a TCP byte stream. recv() boundaries carry no
/// meaning on a stream socket, so feed() accepts arbitrary splits and
/// coalescings; next() hands out complete frames in order. A malformed
/// length or payload poisons the buffer permanently (error() turns true):
/// a byte stream that has lost framing cannot be resynchronised.
class FrameBuffer {
public:
  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame, or nullopt if more bytes are needed (or the
  /// stream is poisoned — check error() to tell the cases apart).
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] bool error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

private:
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted lazily
  bool error_ = false;
};

}  // namespace omig::transport
