#include "transport/tcp_transport.hpp"

#include <algorithm>
#include <utility>

#include "obs/families.hpp"
#include "transport/tcp.hpp"

namespace omig::transport {

TcpTransport::TcpTransport(Options options, fault::FaultInjector* injector)
    : SocketTransport{injector}, options_{std::move(options)} {
  conns_.reserve(options_.peers.size());
  for (const Peer& peer : options_.peers) {
    auto conn = std::make_unique<Conn>();
    conn->peer = peer;
    conn->rtt = &obs::MetricsRegistry::global().histogram(
        "omig_transport_rtt_us", "Request-to-reply round trip per peer",
        {{"peer", std::to_string(conns_.size())}});
    conns_.push_back(std::move(conn));
  }
}

TcpTransport::~TcpTransport() {
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& conn : conns_) {
    std::thread reader;
    {
      std::lock_guard lock{conn->mutex};
      disconnect_locked(*conn);
      reader = std::move(conn->reader);
    }
    if (reader.joinable()) reader.join();
  }
}

SendStatus TcpTransport::send_invoke(std::size_t from, std::size_t to,
                                     const WireInvoke& msg,
                                     std::future<runtime::InvokeResult>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus TcpTransport::send_install(std::size_t from, std::size_t to,
                                      const WireInstall& msg,
                                      std::future<bool>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus TcpTransport::send_evict(std::size_t from, std::size_t to,
                                    const WireEvict& msg,
                                    std::future<runtime::ObjectState>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus TcpTransport::send_dir_lookup(
    std::size_t from, std::size_t to, const WireDirLookup& msg,
    std::future<runtime::DirReply>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus TcpTransport::send_dir_update(
    std::size_t from, std::size_t to, const WireDirUpdate& msg,
    std::future<runtime::DirAck>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus TcpTransport::send_shutdown(std::size_t to) {
  if (to >= conns_.size()) return SendStatus::Unreachable;
  Conn& conn = *conns_[to];
  std::unique_lock lock{conn.mutex};
  if (!ensure_connected(lock, conn)) return SendStatus::Unreachable;
  const std::uint64_t corr =
      next_corr_.fetch_add(1, std::memory_order_relaxed);
  const SendStatus status =
      write_frame_locked(conn, Frame{corr, WireShutdown{}});
  if (status == SendStatus::Closed) disconnect_locked(conn);
  return status;
}

void TcpTransport::on_node_crash(std::size_t node) {
  if (node >= conns_.size()) return;
  std::lock_guard lock{conns_[node]->mutex};
  disconnect_locked(*conns_[node]);
}

void TcpTransport::set_peer(std::size_t node, Peer peer) {
  if (node >= conns_.size()) return;
  std::lock_guard lock{conns_[node]->mutex};
  disconnect_locked(*conns_[node]);
  conns_[node]->peer = std::move(peer);
}

template <class WireT, class ReplyT>
SendStatus TcpTransport::send_request(std::size_t from, std::size_t to,
                                      const WireT& msg,
                                      std::future<ReplyT>& reply) {
  if (to >= conns_.size()) return SendStatus::Unreachable;
  // Same verdict order as the in-process backend: delay, drop, duplicate.
  const fault::Decision verdict = decide(from, to);
  if (verdict.delay > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>{verdict.delay});
  }
  if (verdict.drop) {
    break_reply(reply);
    return SendStatus::Ok;  // "sent", but lost in flight
  }
  Conn& conn = *conns_[to];
  std::unique_lock lock{conn.mutex};
  if (!ensure_connected(lock, conn)) {
    obs::transport_metrics().send_rejections->inc();
    return SendStatus::Unreachable;
  }
  if (verdict.duplicate) {
    // Same-seq copy under a fresh correlation ID with no pending entry:
    // the peer's dedup layer answers it, and the answer is discarded.
    (void)write_frame_locked(
        conn,
        Frame{next_corr_.fetch_add(1, std::memory_order_relaxed), msg});
  }
  const std::uint64_t corr =
      next_corr_.fetch_add(1, std::memory_order_relaxed);
  std::promise<ReplyT> promise;
  reply = promise.get_future();
  conn.pending.emplace(corr, Pending{PendingReply{std::move(promise)},
                                     std::chrono::steady_clock::now()});
  const SendStatus status = write_frame_locked(conn, Frame{corr, msg});
  if (status == SendStatus::Ok) return SendStatus::Ok;
  if (status == SendStatus::Oversized) {
    conn.pending.erase(corr);  // breaks `reply`; the link stays healthy
    return SendStatus::Oversized;
  }
  // Write hit a dead socket: the link is gone, and so is every reply that
  // was still in flight on it. The next send reconnects.
  disconnect_locked(conn);
  return SendStatus::Closed;
}

bool TcpTransport::ensure_connected(std::unique_lock<std::mutex>& lock,
                                    Conn& conn) {
  for (;;) {
    if (conn.fd >= 0) return true;
    if (stopping_.load(std::memory_order_relaxed)) return false;
    if (conn.reader.joinable() && !conn.connecting) {
      // The old link's reader is finished or about to be; claim the thread
      // object and join it outside the lock (it needs the mutex to exit).
      std::thread dead = std::move(conn.reader);
      lock.unlock();
      dead.join();
      lock.lock();
      continue;  // another sender may have reconnected meanwhile
    }
    if (conn.connecting) {
      // Another sender is mid connect/backoff with the lock released.
      // Wait for its outcome instead of dialling concurrently; if it
      // fails, loop around and run our own bounded attempt budget.
      conn.cv.wait(lock, [&conn] { return conn.fd >= 0 || !conn.connecting; });
      continue;
    }
    break;
  }
  // Idle link and we are the elected connector: dial with bounded
  // exponential backoff, releasing the lock across every sleep and
  // connect(2) so senders to a healthy reconnected link (or ones that
  // will fail fast) never stall behind our backoff.
  conn.connecting = true;
  bool connected = false;
  for (int attempt = 0; attempt < options_.max_connect_attempts; ++attempt) {
    const Peer peer = conn.peer;  // re-read: set_peer may land mid-dial
    lock.unlock();
    if (attempt > 0) {
      const int shift = std::min(attempt - 1, 6);
      std::this_thread::sleep_for(options_.connect_backoff * (1 << shift));
    }
    const int fd = tcp_connect(peer.host, peer.port);
    lock.lock();
    if (stopping_.load(std::memory_order_relaxed)) {
      tcp_close(fd);
      break;
    }
    if (fd < 0) continue;
    if (conn.peer.host != peer.host || conn.peer.port != peer.port) {
      tcp_close(fd);  // peer was re-pointed while we dialled the old one
      continue;
    }
    conn.fd = fd;
    ++conn.generation;
    if (conn.ever_connected) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      obs::transport_metrics().reconnects->inc();
    }
    conn.ever_connected = true;
    const std::uint64_t generation = conn.generation;
    conn.reader = std::thread{
        [this, &conn, fd, generation] { reader_loop(conn, fd, generation); }};
    connected = true;
    break;
  }
  conn.connecting = false;
  conn.cv.notify_all();
  return connected;
}

SendStatus TcpTransport::write_frame_locked(Conn& conn, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  if (bytes.size() - 4 > kMaxFramePayload) {
    obs::transport_metrics().send_rejections->inc();
    return SendStatus::Oversized;
  }
  if (!tcp_send_all(conn.fd, bytes.data(), bytes.size())) {
    obs::transport_metrics().send_rejections->inc();
    return SendStatus::Closed;
  }
  obs::TransportMetrics& m = obs::transport_metrics();
  m.frames_out->inc();
  m.frame_bytes_out->inc(bytes.size());
  return SendStatus::Ok;
}

void TcpTransport::disconnect_locked(Conn& conn) {
  if (conn.fd >= 0) {
    tcp_shutdown(conn.fd);  // wakes the reader; it closes the fd on exit
    conn.fd = -1;
    ++conn.generation;  // anything the old reader still does is stale
  }
  conn.pending.clear();  // destroys the promises: every caller's reply breaks
}

void TcpTransport::reader_loop(Conn& conn, int fd, std::uint64_t generation) {
  FrameBuffer frames;
  std::uint8_t buffer[16 * 1024];
  bool healthy = true;
  while (healthy) {
    const long n = tcp_recv_some(fd, buffer, sizeof(buffer));
    if (n <= 0) break;  // EOF, reset, or shutdown by a disconnect
    obs::transport_metrics().frame_bytes_in->inc(
        static_cast<std::uint64_t>(n));
    frames.feed({buffer, static_cast<std::size_t>(n)});
    while (auto frame = frames.next()) {
      obs::transport_metrics().frames_in->inc();
      std::lock_guard lock{conn.mutex};
      if (conn.generation != generation) {
        healthy = false;  // the link was reset under us; stop touching state
        break;
      }
      const auto it = conn.pending.find(frame->corr);
      if (it == conn.pending.end()) continue;  // a duplicate's answer
      conn.rtt->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - it->second.sent_at)
              .count()));
      const bool matched =
          fulfil_pending(it->second.promise, std::move(frame->payload));
      conn.pending.erase(it);
      if (!matched) {
        healthy = false;  // type-confused peer: drop the connection
        break;
      }
    }
    if (frames.error()) healthy = false;  // malformed stream
  }
  {
    std::lock_guard lock{conn.mutex};
    if (conn.generation == generation) {
      conn.fd = -1;
      ++conn.generation;
      conn.pending.clear();
    }
  }
  // The reader owns its fd's close — exactly once, after the link state no
  // longer references it.
  tcp_close(fd);
}

}  // namespace omig::transport
