#include "transport/transport.hpp"

#include <chrono>
#include <thread>

namespace omig::transport {

namespace {

/// Rebuilds the promise-carrying runtime message for a wire request. With
/// `reply` null the message's reply channel is deliberately unawaited —
/// that is how injected duplicates travel.
runtime::Message to_message(const WireInvoke& w,
                            std::future<runtime::InvokeResult>* reply) {
  runtime::MsgInvoke m;
  m.object = w.object;
  m.method = w.method;
  m.argument = w.argument;
  m.seq = w.seq;
  if (reply) *reply = m.reply.get_future();
  return runtime::Message{std::move(m)};
}

runtime::Message to_message(const WireInstall& w, std::future<bool>* reply) {
  runtime::MsgInstall m;
  m.name = w.name;
  m.state = w.state;
  m.seq = w.seq;
  if (reply) *reply = m.done.get_future();
  return runtime::Message{std::move(m)};
}

runtime::Message to_message(const WireEvict& w,
                            std::future<runtime::ObjectState>* reply) {
  runtime::MsgEvict m;
  m.name = w.name;
  m.seq = w.seq;
  if (reply) *reply = m.state.get_future();
  return runtime::Message{std::move(m)};
}

runtime::Message to_message(const WireDirLookup& w,
                            std::future<runtime::DirReply>* reply) {
  runtime::MsgDirLookup m;
  m.name = w.name;
  m.seq = w.seq;
  if (reply) *reply = m.reply.get_future();
  return runtime::Message{std::move(m)};
}

runtime::Message to_message(const WireDirUpdate& w,
                            std::future<runtime::DirAck>* reply) {
  runtime::MsgDirUpdate m;
  m.name = w.name;
  m.node = w.node;
  m.invalidate = w.invalidate;
  m.seq = w.seq;
  if (reply) *reply = m.done.get_future();
  return runtime::Message{std::move(m)};
}

}  // namespace

const char* to_string(SendStatus status) {
  switch (status) {
    case SendStatus::Ok:
      return "ok";
    case SendStatus::Closed:
      return "closed";
    case SendStatus::Unreachable:
      return "unreachable";
    case SendStatus::Oversized:
      return "oversized";
  }
  return "unknown";
}

template <class WireT, class ReplyT>
SendStatus InProcTransport::send_request(std::size_t from, std::size_t to,
                                         const WireT& msg,
                                         std::future<ReplyT>& reply) {
  runtime::Mailbox<runtime::Message>* box = mailboxes_(to);
  if (box == nullptr) return SendStatus::Closed;
  const fault::Decision d = decide(from, to);
  if (d.delay > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>{d.delay});
  }
  if (d.drop) {
    // Lost in flight: the sender observes the loss through the broken
    // reply, exactly as when the message object was destroyed pre-seam.
    break_reply(reply);
    return SendStatus::Ok;
  }
  if (d.duplicate) {
    (void)box->push(to_message(msg, static_cast<std::future<ReplyT>*>(nullptr)));
  }
  const runtime::PushStatus pushed = box->push(to_message(msg, &reply));
  return pushed == runtime::PushStatus::Ok ? SendStatus::Ok
                                           : SendStatus::Closed;
}

SendStatus InProcTransport::send_invoke(
    std::size_t from, std::size_t to, const WireInvoke& msg,
    std::future<runtime::InvokeResult>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus InProcTransport::send_install(std::size_t from, std::size_t to,
                                         const WireInstall& msg,
                                         std::future<bool>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus InProcTransport::send_evict(
    std::size_t from, std::size_t to, const WireEvict& msg,
    std::future<runtime::ObjectState>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus InProcTransport::send_dir_lookup(
    std::size_t from, std::size_t to, const WireDirLookup& msg,
    std::future<runtime::DirReply>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus InProcTransport::send_dir_update(
    std::size_t from, std::size_t to, const WireDirUpdate& msg,
    std::future<runtime::DirAck>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus InProcTransport::send_shutdown(std::size_t to) {
  runtime::Mailbox<runtime::Message>* box = mailboxes_(to);
  if (box == nullptr) return SendStatus::Closed;
  return box->push(runtime::Message{runtime::MsgStop{}}) ==
                 runtime::PushStatus::Ok
             ? SendStatus::Ok
             : SendStatus::Closed;
}

}  // namespace omig::transport
