// Correlation-ID reply matching, shared by the socket transports.
//
// A request sent over a socket parks a typed std::promise keyed by its
// correlation ID; the peer's reply frame is matched back by ID and must
// carry the reply type the sender awaits. Both the blocking TcpTransport
// (one demux thread per connection) and AsyncTcpTransport (one demux
// coroutine per connection) use this table — the demux logic is identical,
// only the execution model differs.
#pragma once

#include <chrono>
#include <future>
#include <utility>
#include <variant>

#include "runtime/message.hpp"
#include "transport/wire.hpp"

namespace omig::transport {

using PendingReply = std::variant<std::promise<runtime::InvokeResult>,
                                  std::promise<bool>,
                                  std::promise<runtime::ObjectState>,
                                  std::promise<runtime::DirReply>,
                                  std::promise<runtime::DirAck>>;

/// A reply someone awaits, stamped at send time so the demux can record
/// the request/reply round trip into the peer's RTT histogram.
struct Pending {
  PendingReply promise;
  std::chrono::steady_clock::time_point sent_at;
};

/// Fulfils one pending reply from a reply frame's payload. Returns false
/// when the reply type does not match what the sender awaits — a protocol
/// violation that costs the peer its connection.
inline bool fulfil_pending(PendingReply& pending, Frame::Payload&& payload) {
  if (auto* invoke =
          std::get_if<std::promise<runtime::InvokeResult>>(&pending)) {
    auto* reply = std::get_if<WireInvokeReply>(&payload);
    if (reply == nullptr) return false;
    invoke->set_value(std::move(reply->result));
    return true;
  }
  if (auto* install = std::get_if<std::promise<bool>>(&pending)) {
    auto* reply = std::get_if<WireInstallReply>(&payload);
    if (reply == nullptr) return false;
    install->set_value(reply->ok);
    return true;
  }
  if (auto* lookup = std::get_if<std::promise<runtime::DirReply>>(&pending)) {
    auto* reply = std::get_if<WireDirLookupReply>(&payload);
    if (reply == nullptr) return false;
    lookup->set_value(runtime::DirReply{reply->found, reply->node});
    return true;
  }
  if (auto* update = std::get_if<std::promise<runtime::DirAck>>(&pending)) {
    auto* reply = std::get_if<WireDirUpdateReply>(&payload);
    if (reply == nullptr) return false;
    update->set_value(runtime::DirAck{reply->ok});
    return true;
  }
  auto& evict = std::get<std::promise<runtime::ObjectState>>(pending);
  auto* reply = std::get_if<WireEvictReply>(&payload);
  if (reply == nullptr) return false;
  evict.set_value(std::move(reply->state));
  return true;
}

}  // namespace omig::transport
