#include "transport/metrics_exporter.hpp"

#include <utility>
#include <vector>

#include "transport/tcp.hpp"

namespace omig::transport {

MetricsExporter::MetricsExporter(obs::MetricsRegistry& registry,
                                 net::EventLoop* loop)
    : registry_{registry}, external_loop_{loop} {}

MetricsExporter::~MetricsExporter() { stop(); }

std::uint16_t MetricsExporter::start(std::uint16_t port,
                                     const std::string& host) {
  std::lock_guard lock{mutex_};
  if (listener_fd_ >= 0) return port_;
  const int fd = tcp_listen(host, port);
  if (fd < 0) return 0;
  if (!tcp_set_nonblocking(fd)) {
    tcp_close(fd);
    return 0;
  }
  listener_fd_ = fd;
  port_ = tcp_local_port(fd);
  stopping_.store(false, std::memory_order_release);
  if (external_loop_ != nullptr) {
    loop_ = external_loop_;
  } else {
    owned_loop_ = std::make_unique<net::EventLoop>();
    owned_loop_->start();
    loop_ = owned_loop_.get();
  }
  loop_->post([this, fd] { loop_->spawn(accept_task(this, fd)); });
  return port_;
}

void MetricsExporter::stop() {
  std::lock_guard lock{mutex_};
  if (listener_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  const int listener = listener_fd_;
  if (loop_->running()) {
    std::promise<void> done;
    std::future<void> finished = done.get_future();
    loop_->post([this, listener, &done] {
      loop_->spawn(teardown_task(this, listener, &done));
    });
    (void)finished.wait_for(std::chrono::seconds{5});
  } else {
    tcp_close(listener);
  }
  listener_fd_ = -1;
  if (owned_loop_) {
    owned_loop_->stop();
    owned_loop_.reset();
  }
  loop_ = nullptr;
}

bool MetricsExporter::running() const {
  std::lock_guard lock{mutex_};
  return listener_fd_ >= 0 && !stopping_.load(std::memory_order_acquire);
}

std::uint16_t MetricsExporter::port() const {
  std::lock_guard lock{mutex_};
  return port_;
}

sim::Task MetricsExporter::accept_task(MetricsExporter* e, int listener) {
  TaskGuard guard{e};
  net::EventLoop& loop = *e->loop_;
  for (;;) {
    const bool ok = co_await loop.readable(listener);
    if (!ok || e->stopping_.load(std::memory_order_acquire)) co_return;
    for (;;) {
      const long fd = tcp_accept_nonblocking(listener);
      if (fd == kWouldBlock) break;
      if (fd < 0) co_return;  // listener is gone
      e->scrape_fds_.insert(static_cast<int>(fd));
      loop.spawn(serve_task(e, static_cast<int>(fd)));
    }
  }
}

sim::Task MetricsExporter::serve_task(MetricsExporter* e, int fd) {
  TaskGuard guard{e};
  net::EventLoop& loop = *e->loop_;
  // Read the request until the header terminator; scrapes are tiny, so a
  // small bounded buffer suffices and anything larger is dropped.
  std::string request;
  std::uint8_t chunk[512];
  bool alive = true;
  while (alive && request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos && request.size() < 8192) {
    const bool ok = co_await loop.readable(fd);
    if (!ok || !e->scrape_fds_.contains(fd)) co_return;  // torn down
    const long n = tcp_read_some(fd, chunk, sizeof chunk);
    if (n == kWouldBlock) continue;
    if (n <= 0) {
      alive = false;
      break;
    }
    request.append(reinterpret_cast<const char*>(chunk),
                   static_cast<std::size_t>(n));
  }
  if (alive) {
    const std::string body = e->registry_.to_prometheus();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n"
        "\r\n" + body;
    std::size_t off = 0;
    while (off < response.size()) {
      const long n = tcp_write_some(
          fd, reinterpret_cast<const std::uint8_t*>(response.data()) + off,
          response.size() - off);
      if (n == kWouldBlock) {
        const bool ok = co_await loop.writable(fd);
        if (!ok || !e->scrape_fds_.contains(fd)) co_return;
        continue;
      }
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }
  loop.cancel_fd(fd);
  tcp_close(fd);
  e->scrape_fds_.erase(fd);
}

sim::Task MetricsExporter::teardown_task(MetricsExporter* e, int listener,
                                         std::promise<void>* done) {
  net::EventLoop& loop = *e->loop_;
  loop.cancel_fd(listener);
  tcp_close(listener);
  // Cancelling the fds wakes every parked scrape coroutine with `false`;
  // each checks scrape_fds_ and exits without touching the closed fd.
  const std::vector<int> open(e->scrape_fds_.begin(), e->scrape_fds_.end());
  e->scrape_fds_.clear();
  for (const int fd : open) {
    loop.cancel_fd(fd);
    tcp_close(fd);
  }
  for (int i = 0; i < 4000 && e->live_tasks_ > 0; ++i) {
    co_await loop.sleep_for(std::chrono::milliseconds{1});
  }
  done->set_value();
}

}  // namespace omig::transport
