#include "transport/metrics_exporter.hpp"

#include <utility>

#include "transport/tcp.hpp"

namespace omig::transport {

MetricsExporter::MetricsExporter(obs::MetricsRegistry& registry)
    : registry_{registry} {}

MetricsExporter::~MetricsExporter() { stop(); }

std::uint16_t MetricsExporter::start(std::uint16_t port,
                                     const std::string& host) {
  std::lock_guard lock{mutex_};
  if (listener_fd_ >= 0) return port_;
  const int fd = tcp_listen(host, port);
  if (fd < 0) return 0;
  listener_fd_ = fd;
  port_ = tcp_local_port(fd);
  stopping_ = false;
  accept_thread_ = std::thread{[this] { accept_loop(); }};
  return port_;
}

void MetricsExporter::stop() {
  std::thread accept_thread;
  std::vector<std::thread> connections;
  {
    std::lock_guard lock{mutex_};
    if (listener_fd_ < 0 && !accept_thread_.joinable()) return;
    stopping_ = true;
    tcp_shutdown(listener_fd_);
    tcp_close(listener_fd_);
    listener_fd_ = -1;
    accept_thread = std::move(accept_thread_);
    connections = std::move(connections_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
}

bool MetricsExporter::running() const {
  std::lock_guard lock{mutex_};
  return listener_fd_ >= 0;
}

std::uint16_t MetricsExporter::port() const {
  std::lock_guard lock{mutex_};
  return port_;
}

void MetricsExporter::accept_loop() {
  for (;;) {
    int listener = -1;
    {
      std::lock_guard lock{mutex_};
      if (stopping_) return;
      listener = listener_fd_;
    }
    const int fd = tcp_accept(listener);
    if (fd < 0) return;  // listener closed by stop()
    std::lock_guard lock{mutex_};
    if (stopping_) {
      tcp_close(fd);
      return;
    }
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void MetricsExporter::serve_connection(int fd) {
  // Read the request until the header terminator; scrapes are tiny, so a
  // small bounded buffer suffices and anything larger is dropped.
  std::string request;
  std::uint8_t chunk[512];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos &&
         request.size() < 8192) {
    const long n = tcp_recv_some(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    request.append(reinterpret_cast<const char*>(chunk),
                   static_cast<std::size_t>(n));
  }
  const std::string body = registry_.to_prometheus();
  std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n"
      "Connection: close\r\n"
      "\r\n" + body;
  (void)tcp_send_all(fd, reinterpret_cast<const std::uint8_t*>(response.data()),
                     response.size());
  tcp_close(fd);
}

}  // namespace omig::transport
