#include "transport/node_server.hpp"

#include <algorithm>
#include <utility>

#include "obs/families.hpp"
#include "transport/tcp.hpp"
#include "util/assert.hpp"

namespace omig::transport {

NodeServer::NodeServer(Handler handler, net::EventLoop* loop,
                       int handler_threads)
    : handler_{std::move(handler)},
      external_loop_{loop},
      handler_threads_{std::max(1, handler_threads)} {
  OMIG_REQUIRE(handler_ != nullptr, "server needs a handler");
}

NodeServer::~NodeServer() { stop(); }

std::uint16_t NodeServer::start(std::uint16_t port, const std::string& host) {
  std::lock_guard lock{mutex_};
  if (listener_fd_ >= 0) return port_;  // already running: idempotent
  // Big backlog: the async client side can dial thousands of connections
  // in one burst (the kernel clamps to somaxconn).
  const int fd = tcp_listen(host, port, 4096);
  if (fd < 0) return 0;
  if (!tcp_set_nonblocking(fd)) {
    tcp_close(fd);
    return 0;
  }
  listener_fd_ = fd;
  port_ = tcp_local_port(fd);
  stopping_.store(false, std::memory_order_release);
  if (external_loop_ != nullptr) {
    loop_ = external_loop_;
  } else {
    // Loops are single-use, so every start() cycle owns a fresh one.
    owned_loop_ = std::make_unique<net::EventLoop>();
    owned_loop_->start();
    loop_ = owned_loop_.get();
  }
  strands_.clear();
  for (int i = 0; i < handler_threads_; ++i) {
    auto strand = std::make_unique<Strand>();
    Strand* raw = strand.get();
    strand->thread = std::thread{[this, raw] { strand_worker(*raw); }};
    strands_.push_back(std::move(strand));
  }
  loop_->post([this, fd] { loop_->spawn(accept_task(this, fd)); });
  return port_;
}

void NodeServer::stop() {
  std::lock_guard lock{mutex_};
  if (listener_fd_ < 0) return;  // already stopped: idempotent
  stopping_.store(true, std::memory_order_release);
  // Strands first: in-flight handlers finish, queued frames are dropped,
  // and after the joins no strand can post replies any more — so the
  // teardown task below (FIFO after any reply post) sees the last of them.
  for (auto& strand : strands_) {
    {
      std::lock_guard strand_lock{strand->mutex};
      strand->stop = true;
    }
    strand->cv.notify_all();
  }
  for (auto& strand : strands_) {
    if (strand->thread.joinable()) strand->thread.join();
  }
  // strands_ stays populated until the teardown below quiesced the reader
  // coroutines — they push into the strand queues without mutex_.
  const int listener = listener_fd_;
  if (loop_->running()) {
    std::promise<void> done;
    std::future<void> finished = done.get_future();
    loop_->post([this, listener, &done] {
      loop_->spawn(teardown_task(this, listener, &done));
    });
    (void)finished.wait_for(std::chrono::seconds{5});
  } else {
    tcp_close(listener);  // external loop died first; just free the fd
  }
  strands_.clear();
  listener_fd_ = -1;
  if (owned_loop_) {
    owned_loop_->stop();
    owned_loop_.reset();
  }
  loop_ = nullptr;
}

bool NodeServer::running() const {
  std::lock_guard lock{mutex_};
  return listener_fd_ >= 0 && !stopping_.load(std::memory_order_acquire);
}

std::uint16_t NodeServer::port() const {
  std::lock_guard lock{mutex_};
  return port_;
}

sim::Task NodeServer::accept_task(NodeServer* s, int listener) {
  TaskGuard guard{s};
  net::EventLoop& loop = *s->loop_;
  for (;;) {
    const bool ok = co_await loop.readable(listener);
    if (!ok || s->stopping_.load(std::memory_order_acquire)) co_return;
    for (;;) {  // drain the whole accept burst before sleeping again
      const int fd = static_cast<int>(tcp_accept_nonblocking(listener));
      if (fd == kWouldBlock) break;
      if (fd < 0) co_return;  // listener is gone
      auto conn = std::make_shared<Conn>(loop, s->next_conn_id_++);
      conn->fd = fd;
      s->conns_.emplace(conn->id, conn);
      loop.spawn(reader_task(s, conn));
      loop.spawn(writer_task(s, conn));
    }
  }
}

sim::Task NodeServer::reader_task(NodeServer* s, std::shared_ptr<Conn> conn) {
  TaskGuard guard{s};
  net::EventLoop& loop = *s->loop_;
  FrameBuffer frames;
  for (;;) {
    const bool ok = co_await loop.readable(conn->fd);
    if (!ok || conn->closed) co_return;
    if (s->read_scratch_.empty()) s->read_scratch_.resize(16 * 1024);
    const long n = tcp_read_some(conn->fd, s->read_scratch_.data(),
                                 s->read_scratch_.size());
    if (n == kWouldBlock) continue;
    if (n <= 0) {  // EOF, reset, or malformed close below
      s->close_conn(*conn);
      co_return;
    }
    obs::node_metrics().server_bytes_in->inc(static_cast<std::uint64_t>(n));
    frames.feed({s->read_scratch_.data(), static_cast<std::size_t>(n)});
    while (auto frame = frames.next()) {
      // Pin the connection to one strand: per-connection frame order is
      // the contract (it mirrors the node's mailbox sequencing).
      Strand& strand = *s->strands_[conn->id % s->strands_.size()];
      {
        std::lock_guard lock{strand.mutex};
        strand.queue.emplace_back(conn->id, std::move(*frame));
      }
      strand.cv.notify_one();
    }
    if (frames.error()) {  // malformed stream: drop the connection
      s->close_conn(*conn);
      co_return;
    }
  }
}

sim::Task NodeServer::writer_task(NodeServer* s, std::shared_ptr<Conn> conn) {
  TaskGuard guard{s};
  net::EventLoop& loop = *s->loop_;
  for (;;) {
    while (!conn->closed && conn->outq.empty()) {
      if (!co_await conn->out_ready.wait()) co_return;
    }
    if (conn->closed) co_return;
    const std::vector<std::uint8_t>& front = conn->outq.front();
    const long n = tcp_write_some(conn->fd, front.data() + conn->out_off,
                                  front.size() - conn->out_off);
    if (n == kWouldBlock) {
      const bool ok = co_await loop.writable(conn->fd);
      if (!ok || conn->closed) co_return;
      continue;
    }
    if (n <= 0) {
      s->close_conn(*conn);
      co_return;
    }
    conn->out_off += static_cast<std::size_t>(n);
    if (conn->out_off == front.size()) {
      obs::node_metrics().server_bytes_out->inc(front.size());
      conn->outq.pop_front();
      conn->out_off = 0;
    }
  }
}

sim::Task NodeServer::teardown_task(NodeServer* s, int listener,
                                    std::promise<void>* done) {
  net::EventLoop& loop = *s->loop_;
  loop.cancel_fd(listener);
  tcp_close(listener);
  // Snapshot: close_conn erases from conns_ while we iterate.
  std::vector<std::shared_ptr<Conn>> open;
  open.reserve(s->conns_.size());
  for (auto& [id, conn] : s->conns_) open.push_back(conn);
  for (auto& conn : open) s->close_conn(*conn);
  for (int i = 0; i < 4000 && s->live_tasks_ > 0; ++i) {
    co_await loop.sleep_for(std::chrono::milliseconds{1});
  }
  done->set_value();
}

void NodeServer::strand_worker(Strand& strand) {
  for (;;) {
    std::pair<std::uint64_t, Frame> work{0, Frame{}};
    {
      std::unique_lock lock{strand.mutex};
      strand.cv.wait(lock,
                     [&strand] { return strand.stop || !strand.queue.empty(); });
      if (strand.stop) return;  // queued frames are dropped, like unread bytes
      work = std::move(strand.queue.front());
      strand.queue.pop_front();
    }
    std::optional<Frame> reply = handler_(std::move(work.second));
    if (!reply.has_value()) continue;
    std::vector<std::uint8_t> bytes = encode_frame(*reply);
    loop_->post([this, conn_id = work.first, bytes = std::move(bytes)]() mutable {
      queue_reply_on_loop(conn_id, std::move(bytes));
    });
  }
}

void NodeServer::queue_reply_on_loop(std::uint64_t conn_id,
                                     std::vector<std::uint8_t> bytes) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // connection died while the handler ran
  it->second->outq.push_back(std::move(bytes));
  it->second->out_ready.set();
}

void NodeServer::close_conn(Conn& conn) {
  if (conn.closed) return;
  conn.closed = true;
  if (conn.fd >= 0) {
    loop_->cancel_fd(conn.fd);
    tcp_close(conn.fd);
    conn.fd = -1;
  }
  conn.out_ready.cancel();
  conns_.erase(conn.id);  // shared_ptr keeps it alive for its coroutines
}

}  // namespace omig::transport
