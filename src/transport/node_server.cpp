#include "transport/node_server.hpp"

#include "obs/families.hpp"
#include "transport/tcp.hpp"
#include "util/assert.hpp"

namespace omig::transport {

NodeServer::NodeServer(Handler handler) : handler_{std::move(handler)} {
  OMIG_REQUIRE(handler_ != nullptr, "server needs a handler");
}

NodeServer::~NodeServer() { stop(); }

std::uint16_t NodeServer::start(std::uint16_t port, const std::string& host) {
  std::lock_guard lock{mutex_};
  if (listener_fd_ >= 0) return port_;  // already running: idempotent
  const int fd = tcp_listen(host, port);
  if (fd < 0) return 0;
  listener_fd_ = fd;
  port_ = tcp_local_port(fd);
  stopping_ = false;
  accept_thread_ = std::thread{[this] { accept_loop(); }};
  return port_;
}

void NodeServer::stop() {
  std::thread accept;
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock{mutex_};
    if (listener_fd_ < 0 && connections_.empty() &&
        !accept_thread_.joinable()) {
      return;  // already stopped: idempotent
    }
    stopping_ = true;
    // shutdown() wakes the blocked accept()/recv() calls without closing
    // the fds — they are closed exactly once, after their thread joined.
    tcp_shutdown(listener_fd_);
    for (auto& conn : connections_) tcp_shutdown(conn->fd);
    accept = std::move(accept_thread_);
    conns = std::move(connections_);
  }
  if (accept.joinable()) accept.join();
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    tcp_close(conn->fd);
  }
  std::lock_guard lock{mutex_};
  tcp_close(listener_fd_);
  listener_fd_ = -1;
}

bool NodeServer::running() const {
  std::lock_guard lock{mutex_};
  return listener_fd_ >= 0 && !stopping_;
}

std::uint16_t NodeServer::port() const {
  std::lock_guard lock{mutex_};
  return port_;
}

void NodeServer::accept_loop() {
  for (;;) {
    int listener = -1;
    {
      std::lock_guard lock{mutex_};
      if (stopping_) return;
      listener = listener_fd_;
    }
    const int fd = tcp_accept(listener);
    if (fd < 0) return;  // listener shut down
    std::lock_guard lock{mutex_};
    if (stopping_) {
      tcp_close(fd);
      return;
    }
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    raw->thread = std::thread{[this, raw, fd] {
      serve_connection(fd);
      std::lock_guard exit_lock{mutex_};
      raw->done = true;
    }};
  }
}

void NodeServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done) {
      // The thread has released mutex_ already; the join is immediate.
      if ((*it)->thread.joinable()) (*it)->thread.join();
      tcp_close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void NodeServer::serve_connection(int fd) {
  FrameBuffer frames;
  std::uint8_t buffer[16 * 1024];
  for (;;) {
    const long n = tcp_recv_some(fd, buffer, sizeof(buffer));
    if (n <= 0) return;  // EOF, reset, or shutdown by stop()
    obs::node_metrics().server_bytes_in->inc(static_cast<std::uint64_t>(n));
    frames.feed({buffer, static_cast<std::size_t>(n)});
    while (auto frame = frames.next()) {
      std::optional<Frame> reply = handler_(std::move(*frame));
      if (reply.has_value()) {
        const std::vector<std::uint8_t> bytes = encode_frame(*reply);
        if (!tcp_send_all(fd, bytes.data(), bytes.size())) return;
        obs::node_metrics().server_bytes_out->inc(bytes.size());
      }
    }
    if (frames.error()) return;  // malformed stream: drop the connection
  }
}

}  // namespace omig::transport
