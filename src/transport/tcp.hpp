// Thin POSIX TCP helpers for the localhost transport.
//
// Deliberately minimal: blocking sockets, IPv4 loopback by default, no
// external dependencies. Everything returns -1 / false on failure and
// never throws; callers decide whether a failure is retryable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace omig::transport {

/// Binds and listens on `host:port` (port 0 = ephemeral) with
/// SO_REUSEADDR, so a restarted node can rebind its old port immediately.
/// Returns the listening fd, or -1.
[[nodiscard]] int tcp_listen(const std::string& host, std::uint16_t port,
                             int backlog = 64);

/// Port a listening (or connected) socket is bound to locally; 0 on error.
[[nodiscard]] std::uint16_t tcp_local_port(int fd);

/// Blocking accept; returns the connection fd (TCP_NODELAY set) or -1
/// (listener closed).
[[nodiscard]] int tcp_accept(int listener_fd);

/// Blocking connect to `host:port`; returns the fd (TCP_NODELAY set) or -1.
[[nodiscard]] int tcp_connect(const std::string& host, std::uint16_t port);

/// Writes the whole buffer (retrying short writes). False = peer gone.
[[nodiscard]] bool tcp_send_all(int fd, const std::uint8_t* data,
                                std::size_t size);

/// Reads up to `size` bytes. >0 bytes read, 0 = orderly EOF, <0 = error.
[[nodiscard]] long tcp_recv_some(int fd, std::uint8_t* buffer,
                                 std::size_t size);

/// Shuts down both directions (wakes a thread blocked in recv) without
/// closing the fd.
void tcp_shutdown(int fd);

/// Closes the fd (ignores errors and -1).
void tcp_close(int fd);

// --- nonblocking variants for the event loop (net/event_loop.hpp) ----------
//
// Would-block is a distinct, expected outcome on the loop — the caller
// parks on a readiness awaiter — so these helpers report it explicitly
// (kWouldBlock) instead of folding it into the error case.

inline constexpr long kWouldBlock = -2;

/// Puts the fd into O_NONBLOCK mode. False on fcntl failure.
[[nodiscard]] bool tcp_set_nonblocking(int fd);

/// Starts a nonblocking connect to `host:port`: returns a nonblocking,
/// TCP_NODELAY fd whose connect is complete or in progress (await
/// writability, then check tcp_connect_done), or -1 on immediate failure.
[[nodiscard]] int tcp_connect_begin(const std::string& host,
                                    std::uint16_t port);

/// After the fd turned writable: did the nonblocking connect succeed?
[[nodiscard]] bool tcp_connect_done(int fd);

/// Nonblocking accept. Returns the connection fd (nonblocking,
/// TCP_NODELAY), kWouldBlock when the backlog is empty, or -1 on error.
[[nodiscard]] long tcp_accept_nonblocking(int listener_fd);

/// One nonblocking send (MSG_NOSIGNAL): >0 bytes written, kWouldBlock,
/// or -1 (peer gone).
[[nodiscard]] long tcp_write_some(int fd, const std::uint8_t* data,
                                  std::size_t size);

/// One nonblocking recv: >0 bytes read, 0 = orderly EOF, kWouldBlock,
/// or -1 (error).
[[nodiscard]] long tcp_read_some(int fd, std::uint8_t* buffer,
                                 std::size_t size);

}  // namespace omig::transport
