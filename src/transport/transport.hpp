// Transport seam of the live runtime.
//
// Walker et al. (PAPERS.md) argue transmission policy belongs behind a
// clean transport boundary; this is that boundary for the live runtime.
// The system layer (runtime/live_system) speaks typed requests — invoke,
// install, evict — and receives typed futures; *how* a request reaches the
// hosting node is the backend's business:
//
//   InProcTransport  — today's mailbox semantics, bit for bit: the request
//                      becomes a runtime::Message carrying a std::promise
//                      and lands in the destination node's mailbox.
//   TcpTransport     — the request is marshalled into a wire frame
//                      (transport/wire) and sent over a localhost socket;
//                      a correlation ID matches the reply frame back to
//                      the caller's future. Peers may live in the same
//                      process (NodeServer bridging to a mailbox) or in
//                      separate omig_node processes.
//
// Fault injection lives at this seam: every send consults the shared
// fault::FaultInjector, so one FaultPlan drives both backends — drops
// break the reply future (the in-flight loss the retry layer observes),
// delays stall the sending thread, duplicates travel as same-seq copies
// whose replies nobody awaits, and a crashed peer manifests as a typed
// send rejection (closed mailbox / connection reset).
//
// Send failures are explicit: SendStatus tells the retry/backoff layer
// *that* and *why* an endpoint rejected a message, instead of making it
// infer the loss from a broken promise.
#pragma once

#include <cstdint>
#include <functional>
#include <future>

#include "fault/injector.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"
#include "transport/wire.hpp"

namespace omig::transport {

/// Typed verdict of one send attempt. Ok means the message was handed to
/// the endpoint — delivery can still fail asynchronously (injected drop,
/// crash mid-flight), which the caller observes through the reply future.
enum class SendStatus : std::uint8_t {
  Ok = 0,
  Closed,       ///< endpoint rejected it: mailbox closed / connection reset
  Unreachable,  ///< no connection within the reconnect budget
  Oversized,    ///< frame exceeds kMaxFramePayload
};

[[nodiscard]] const char* to_string(SendStatus status);

/// A peer endpoint of the TCP backend.
struct Peer {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class Transport {
public:
  virtual ~Transport() = default;

  /// Sends a request towards node `to`. On SendStatus::Ok the matching
  /// `reply` future is armed; it is fulfilled by the peer's answer or
  /// broken (std::future_error) when the message or its node dies.
  /// `from` is the sending node (or the system layer's external-sender
  /// sentinel) — it only feeds the fault injector's link matching.
  virtual SendStatus send_invoke(std::size_t from, std::size_t to,
                                 const WireInvoke& msg,
                                 std::future<runtime::InvokeResult>& reply) = 0;
  virtual SendStatus send_install(std::size_t from, std::size_t to,
                                  const WireInstall& msg,
                                  std::future<bool>& reply) = 0;
  virtual SendStatus send_evict(std::size_t from, std::size_t to,
                                const WireEvict& msg,
                                std::future<runtime::ObjectState>& reply) = 0;
  virtual SendStatus send_dir_lookup(std::size_t from, std::size_t to,
                                     const WireDirLookup& msg,
                                     std::future<runtime::DirReply>& reply) = 0;
  virtual SendStatus send_dir_update(std::size_t from, std::size_t to,
                                     const WireDirUpdate& msg,
                                     std::future<runtime::DirAck>& reply) = 0;

  /// Fire-and-forget stop request (multi-process mode; in-proc this is a
  /// MsgStop). No reply: a TCP peer simply closes the connection.
  virtual SendStatus send_shutdown(std::size_t to) = 0;

  /// Lifecycle notifications from the system layer, so a backend can drop
  /// per-peer state (TCP: reset the connection; in-proc: nothing — the
  /// crashed mailbox itself rejects sends).
  virtual void on_node_crash(std::size_t node) { (void)node; }
  virtual void on_node_restart(std::size_t node) { (void)node; }

protected:
  explicit Transport(fault::FaultInjector* injector) : injector_{injector} {}

  /// Per-message verdict from the shared injector (no-fault default).
  [[nodiscard]] fault::Decision decide(std::size_t from, std::size_t to) {
    return injector_ ? injector_->on_message(from, to) : fault::Decision{};
  }

  /// Arms `reply` with a future whose promise is already gone — the
  /// canonical "lost in flight" signal the retry layer knows how to read.
  template <class T>
  static void break_reply(std::future<T>& reply) {
    std::promise<T> abandoned;
    reply = abandoned.get_future();
  }

private:
  fault::FaultInjector* injector_;  ///< non-owning; may be null
};

/// Shared surface of the socket-backed backends (blocking TcpTransport,
/// event-loop AsyncTcpTransport): the system layer re-points a peer after
/// a node restarts on a fresh port and reads the reconnect count, without
/// caring which backend sits behind the seam.
class SocketTransport : public Transport {
public:
  /// Re-points a peer (e.g. a node process restarted on a new port) and
  /// resets its connection.
  virtual void set_peer(std::size_t node, Peer peer) = 0;

  /// Connections re-established after a reset (0 on an undisturbed run).
  [[nodiscard]] virtual std::uint64_t reconnects() const = 0;

protected:
  using Transport::Transport;
};

/// The original in-process backend: requests become promise-carrying
/// runtime::Messages pushed straight into the destination node's mailbox.
/// Mailbox rejections map to SendStatus::Closed.
class InProcTransport final : public Transport {
public:
  /// `mailboxes` resolves a node index to its (possibly crashed) mailbox;
  /// it must stay valid for the transport's lifetime.
  using MailboxLookup =
      std::function<runtime::Mailbox<runtime::Message>*(std::size_t)>;

  InProcTransport(MailboxLookup mailboxes, fault::FaultInjector* injector)
      : Transport{injector}, mailboxes_{std::move(mailboxes)} {}

  SendStatus send_invoke(std::size_t from, std::size_t to,
                         const WireInvoke& msg,
                         std::future<runtime::InvokeResult>& reply) override;
  SendStatus send_install(std::size_t from, std::size_t to,
                          const WireInstall& msg,
                          std::future<bool>& reply) override;
  SendStatus send_evict(std::size_t from, std::size_t to,
                        const WireEvict& msg,
                        std::future<runtime::ObjectState>& reply) override;
  SendStatus send_dir_lookup(std::size_t from, std::size_t to,
                             const WireDirLookup& msg,
                             std::future<runtime::DirReply>& reply) override;
  SendStatus send_dir_update(std::size_t from, std::size_t to,
                             const WireDirUpdate& msg,
                             std::future<runtime::DirAck>& reply) override;
  SendStatus send_shutdown(std::size_t to) override;

private:
  template <class WireT, class ReplyT>
  SendStatus send_request(std::size_t from, std::size_t to, const WireT& msg,
                          std::future<ReplyT>& reply);

  MailboxLookup mailboxes_;
};

}  // namespace omig::transport
