// TCP backend of the transport seam: localhost sockets, one connection
// per peer, correlation-ID request/reply matching.
//
// Connection management: connections are opened lazily on first send and
// re-opened after a reset with bounded exponential backoff (the fault
// layer's retry discipline: base doubled per attempt, shift capped). A
// dead link breaks every pending reply — exactly the broken-promise loss
// signal the in-process backend produces — and the next send reconnects.
// A peer crash therefore looks like: send fails (SendStatus::Closed) or
// the reply future breaks, then SendStatus::Unreachable until the peer's
// listener is back.
//
// One reader thread per live connection demultiplexes reply frames back to
// the pending futures by correlation ID. A reply nobody is waiting for
// (an injected duplicate's answer) is discarded; a malformed or
// type-mismatched reply kills the connection — strict, like the codec.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "transport/pending_reply.hpp"
#include "transport/transport.hpp"

namespace omig::transport {

class TcpTransport final : public SocketTransport {
public:
  struct Options {
    /// Peer endpoints, indexed by node id.
    std::vector<Peer> peers;
    /// Connect attempts per send (including the first).
    int max_connect_attempts = 4;
    /// Base reconnect backoff; doubled per attempt, shift capped at 6.
    std::chrono::milliseconds connect_backoff{1};
  };

  TcpTransport(Options options, fault::FaultInjector* injector);
  ~TcpTransport() override;

  SendStatus send_invoke(std::size_t from, std::size_t to,
                         const WireInvoke& msg,
                         std::future<runtime::InvokeResult>& reply) override;
  SendStatus send_install(std::size_t from, std::size_t to,
                          const WireInstall& msg,
                          std::future<bool>& reply) override;
  SendStatus send_evict(std::size_t from, std::size_t to,
                        const WireEvict& msg,
                        std::future<runtime::ObjectState>& reply) override;
  SendStatus send_dir_lookup(std::size_t from, std::size_t to,
                             const WireDirLookup& msg,
                             std::future<runtime::DirReply>& reply) override;
  SendStatus send_dir_update(std::size_t from, std::size_t to,
                             const WireDirUpdate& msg,
                             std::future<runtime::DirAck>& reply) override;
  SendStatus send_shutdown(std::size_t to) override;

  /// Crash notification: reset the connection so pending replies break now
  /// and later sends observe Closed/Unreachable instead of timing out.
  void on_node_crash(std::size_t node) override;

  /// Re-points a peer (e.g. a node process restarted on a new port).
  void set_peer(std::size_t node, Peer peer) override;

  /// Connections re-established after a reset (0 on an undisturbed run).
  [[nodiscard]] std::uint64_t reconnects() const override {
    return reconnects_.load(std::memory_order_relaxed);
  }

private:
  /// Per-peer link state. `generation` ties a reader thread to the link it
  /// serves: a reader that outlives its link (reset + reconnect won the
  /// race) sees a newer generation and leaves the fresh state alone.
  /// `connecting` elects one sender as the connector; everyone else waits
  /// on `cv` with the mutex *released*, so a peer that is down does not
  /// stall unrelated senders behind a backoff sleep.
  struct Conn {
    std::mutex mutex;
    std::condition_variable cv;  ///< signalled when a connect attempt ends
    Peer peer;
    int fd = -1;
    std::uint64_t generation = 0;
    bool ever_connected = false;
    bool connecting = false;  ///< a sender is mid connect/backoff, unlocked
    std::thread reader;
    std::unordered_map<std::uint64_t, Pending> pending;
    obs::Histogram* rtt = nullptr;  ///< omig_transport_rtt_us{peer="N"}
  };

  template <class WireT, class ReplyT>
  SendStatus send_request(std::size_t from, std::size_t to, const WireT& msg,
                          std::future<ReplyT>& reply);

  /// Connects (with backoff) if the link is down; reaps a finished reader
  /// first. `lock` must hold conn.mutex and still holds it on return.
  bool ensure_connected(std::unique_lock<std::mutex>& lock, Conn& conn);
  /// Encodes and writes one frame on the held connection.
  SendStatus write_frame_locked(Conn& conn, const Frame& frame);
  /// Kills the link: wakes the reader, breaks every pending reply.
  void disconnect_locked(Conn& conn);
  void reader_loop(Conn& conn, int fd, std::uint64_t generation);

  Options options_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> next_corr_{1};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace omig::transport
