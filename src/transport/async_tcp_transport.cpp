#include "transport/async_tcp_transport.hpp"

#include <algorithm>
#include <utility>

#include "obs/families.hpp"
#include "transport/tcp.hpp"
#include "util/assert.hpp"

namespace omig::transport {

AsyncTcpTransport::AsyncTcpTransport(Options options,
                                     fault::FaultInjector* injector)
    : SocketTransport{injector}, options_{std::move(options)} {
  if (options_.loop != nullptr) {
    loop_ = options_.loop;
  } else {
    owned_loop_ = std::make_unique<net::EventLoop>(
        net::EventLoop::Options{options_.backend});
    owned_loop_->start();
    loop_ = owned_loop_.get();
  }
  conns_.reserve(options_.peers.size());
  for (const Peer& peer : options_.peers) {
    auto conn = std::make_unique<Conn>(*loop_, conns_.size(), peer);
    conn->rtt = &obs::MetricsRegistry::global().histogram(
        "omig_transport_rtt_us", "Request-to-reply round trip per peer",
        {{"peer", std::to_string(conns_.size())}});
    conns_.push_back(std::move(conn));
  }
}

AsyncTcpTransport::~AsyncTcpTransport() {
  stopping_.store(true, std::memory_order_release);
  if (loop_->running()) {
    std::promise<void> done;
    std::future<void> finished = done.get_future();
    loop_->post([this, &done] { loop_->spawn(teardown_task(this, &done)); });
    (void)finished.wait_for(std::chrono::seconds{5});
  }
  if (owned_loop_) owned_loop_->stop();
}

SendStatus AsyncTcpTransport::send_invoke(
    std::size_t from, std::size_t to, const WireInvoke& msg,
    std::future<runtime::InvokeResult>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus AsyncTcpTransport::send_install(std::size_t from, std::size_t to,
                                           const WireInstall& msg,
                                           std::future<bool>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus AsyncTcpTransport::send_evict(
    std::size_t from, std::size_t to, const WireEvict& msg,
    std::future<runtime::ObjectState>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus AsyncTcpTransport::send_dir_lookup(
    std::size_t from, std::size_t to, const WireDirLookup& msg,
    std::future<runtime::DirReply>& reply) {
  return send_request(from, to, msg, reply);
}

SendStatus AsyncTcpTransport::send_dir_update(
    std::size_t from, std::size_t to, const WireDirUpdate& msg,
    std::future<runtime::DirAck>& reply) {
  return send_request(from, to, msg, reply);
}

template <class WireT, class ReplyT>
SendStatus AsyncTcpTransport::send_request(std::size_t from, std::size_t to,
                                           const WireT& msg,
                                           std::future<ReplyT>& reply) {
  if (to >= conns_.size()) return SendStatus::Unreachable;
  if (stopping_.load(std::memory_order_acquire)) {
    obs::transport_metrics().send_rejections->inc();
    return SendStatus::Closed;
  }
  // Same verdict order as the other backends — decide, delay, drop, dup —
  // and crucially decide() runs here on the caller's thread, so the
  // injector's RNG stream is consumed in the same order as under the
  // blocking backend (trace parity depends on this). The delay itself
  // becomes a loop timer instead of a caller sleep.
  const fault::Decision verdict = decide(from, to);
  if (verdict.drop) {
    break_reply(reply);
    return SendStatus::Ok;  // "sent", but lost in flight
  }
  auto box = std::make_shared<Enqueue>();
  box->to = to;
  if (verdict.duplicate) {
    // Same-seq copy under a fresh correlation ID with no pending entry,
    // allocated before the original's ID — the order the blocking
    // backend writes them in.
    box->dup_bytes = encode_frame(
        Frame{next_corr_.fetch_add(1, std::memory_order_relaxed), msg});
  }
  box->corr = next_corr_.fetch_add(1, std::memory_order_relaxed);
  box->bytes = encode_frame(Frame{box->corr, msg});
  std::promise<ReplyT> promise;
  reply = promise.get_future();
  if (box->bytes.size() - 4 > kMaxFramePayload) {
    obs::transport_metrics().send_rejections->inc();
    return SendStatus::Oversized;  // promise dies here: `reply` breaks,
                                   // the typed status is the signal
  }
  box->promise = PendingReply{std::move(promise)};
  post_enqueue(std::move(box), verdict.delay);
  return SendStatus::Ok;
}

SendStatus AsyncTcpTransport::send_shutdown(std::size_t to) {
  if (to >= conns_.size()) return SendStatus::Unreachable;
  if (stopping_.load(std::memory_order_acquire)) return SendStatus::Closed;
  OMIG_ASSERT(!loop_->on_loop_thread());  // we block on the loop's progress
  auto box = std::make_shared<Enqueue>();
  box->to = to;
  box->corr = next_corr_.fetch_add(1, std::memory_order_relaxed);
  box->bytes = encode_frame(Frame{box->corr, WireShutdown{}});
  std::promise<SendStatus> done;
  std::future<SendStatus> written = done.get_future();
  box->on_written = std::move(done);
  post_enqueue(std::move(box), 0.0);
  if (written.wait_for(std::chrono::seconds{2}) !=
      std::future_status::ready) {
    return SendStatus::Unreachable;
  }
  try {
    return written.get();
  } catch (const std::future_error&) {
    return SendStatus::Unreachable;  // dropped before it hit the wire
  }
}

void AsyncTcpTransport::on_node_crash(std::size_t node) {
  if (node >= conns_.size()) return;
  loop_->post([this, node] { reset_conn_on_loop(node, std::nullopt); });
}

void AsyncTcpTransport::set_peer(std::size_t node, Peer peer) {
  if (node >= conns_.size()) return;
  loop_->post([this, node, peer = std::move(peer)] {
    reset_conn_on_loop(node, peer);
  });
}

void AsyncTcpTransport::post_enqueue(std::shared_ptr<Enqueue> box,
                                     double delay_ms) {
  loop_->post([this, box = std::move(box), delay_ms] {
    if (delay_ms > 0) {
      const auto delay = std::chrono::ceil<std::chrono::milliseconds>(
          std::chrono::duration<double, std::milli>{delay_ms});
      // run_after refuses during shutdown (returns 0); the box then dies
      // with this lambda and the reply promise breaks — lost in flight.
      (void)loop_->run_after(delay, [this, box] { enqueue_on_loop(*box); });
    } else {
      enqueue_on_loop(*box);
    }
  });
}

void AsyncTcpTransport::enqueue_on_loop(Enqueue& e) {
  if (stopping_.load(std::memory_order_acquire)) return;  // promise breaks
  Conn& conn = *conns_[e.to];
  if (e.promise.has_value()) {
    conn.pending.emplace(e.corr,
                         Pending{std::move(*e.promise),
                                 std::chrono::steady_clock::now()});
  }
  if (e.dup_bytes.has_value()) {
    conn.outq.push_back(Out{std::move(*e.dup_bytes), std::nullopt});
  }
  conn.outq.push_back(Out{std::move(e.bytes), std::move(e.on_written)});
  ensure_conn_active(conn);
}

void AsyncTcpTransport::ensure_conn_active(Conn& conn) {
  if (conn.fd >= 0) {
    conn.out_ready.set();
    return;
  }
  if (conn.connecting) return;  // the dialler picks the queue up on success
  conn.connecting = true;
  loop_->spawn(connect_task(this, &conn));
}

void AsyncTcpTransport::fail_conn(Conn& conn) {
  if (conn.fd >= 0) {
    loop_->cancel_fd(conn.fd);  // reader/writer wake with false and exit
    tcp_close(conn.fd);
    conn.fd = -1;
  }
  ++conn.generation;  // anything still parked resumes, sees this, exits
  conn.out_ready.cancel();
  for (Out& out : conn.outq) {
    if (out.on_written) out.on_written->set_value(SendStatus::Closed);
  }
  conn.outq.clear();
  conn.out_off = 0;
  conn.pending.clear();  // destroys the promises: every reply breaks
}

void AsyncTcpTransport::reset_conn_on_loop(std::size_t node,
                                           std::optional<Peer> new_peer) {
  Conn& conn = *conns_[node];
  fail_conn(conn);
  if (new_peer.has_value()) conn.peer = std::move(*new_peer);
}

sim::Task AsyncTcpTransport::connect_task(AsyncTcpTransport* t, Conn* conn) {
  TaskGuard guard{t};
  net::EventLoop& loop = *t->loop_;
  for (int attempt = 0; attempt < t->options_.max_connect_attempts;
       ++attempt) {
    if (attempt > 0) {
      const int shift = std::min(attempt - 1, 6);
      co_await loop.sleep_for(t->options_.connect_backoff * (1 << shift));
    }
    if (t->stopping_.load(std::memory_order_acquire)) break;
    const Peer peer = conn->peer;  // re-read: set_peer may land mid-dial
    const int fd = tcp_connect_begin(peer.host, peer.port);
    if (fd < 0) continue;
    const bool ok = co_await loop.writable(fd);
    if (!ok || t->stopping_.load(std::memory_order_acquire)) {
      tcp_close(fd);
      break;
    }
    if (!tcp_connect_done(fd)) {
      tcp_close(fd);
      continue;
    }
    if (conn->peer.host != peer.host || conn->peer.port != peer.port) {
      tcp_close(fd);  // peer was re-pointed while we dialled the old one
      continue;
    }
    conn->fd = fd;
    const std::uint64_t generation = ++conn->generation;
    if (conn->ever_connected) {
      t->reconnects_.fetch_add(1, std::memory_order_relaxed);
      obs::transport_metrics().reconnects->inc();
    }
    conn->ever_connected = true;
    conn->connecting = false;
    loop.spawn(reader_task(t, conn, fd, generation));
    loop.spawn(writer_task(t, conn, fd, generation));
    co_return;
  }
  // Budget exhausted (or shutdown): everyone awaiting a reply on this
  // link gets the typed-rejection accounting the blocking backend gives
  // its Unreachable senders, then the broken-promise loss signal.
  conn->connecting = false;
  for (std::size_t i = 0; i < conn->pending.size(); ++i) {
    obs::transport_metrics().send_rejections->inc();
  }
  t->fail_conn(*conn);
}

sim::Task AsyncTcpTransport::writer_task(AsyncTcpTransport* t, Conn* conn,
                                         int fd, std::uint64_t generation) {
  TaskGuard guard{t};
  net::EventLoop& loop = *t->loop_;
  for (;;) {
    while (conn->generation == generation && conn->outq.empty()) {
      if (!co_await conn->out_ready.wait()) co_return;  // link reset
    }
    if (conn->generation != generation) co_return;
    Out& front = conn->outq.front();
    const long n = tcp_write_some(fd, front.bytes.data() + conn->out_off,
                                  front.bytes.size() - conn->out_off);
    if (n == kWouldBlock) {
      const bool ok = co_await loop.writable(fd);
      if (!ok || conn->generation != generation) co_return;
      continue;
    }
    if (n <= 0) {
      if (conn->generation == generation) t->fail_conn(*conn);
      co_return;
    }
    conn->out_off += static_cast<std::size_t>(n);
    if (conn->out_off == front.bytes.size()) {
      obs::TransportMetrics& m = obs::transport_metrics();
      m.frames_out->inc();
      m.frame_bytes_out->inc(front.bytes.size());
      if (front.on_written) front.on_written->set_value(SendStatus::Ok);
      conn->outq.pop_front();
      conn->out_off = 0;
    }
  }
}

sim::Task AsyncTcpTransport::reader_task(AsyncTcpTransport* t, Conn* conn,
                                         int fd, std::uint64_t generation) {
  TaskGuard guard{t};
  net::EventLoop& loop = *t->loop_;
  FrameBuffer frames;
  for (;;) {
    const bool ok = co_await loop.readable(fd);
    if (!ok || conn->generation != generation) co_return;
    // The scratch buffer is shared across every reader on this loop:
    // single-threaded, and never held across a suspension point.
    if (t->read_scratch_.empty()) t->read_scratch_.resize(16 * 1024);
    const long n =
        tcp_read_some(fd, t->read_scratch_.data(), t->read_scratch_.size());
    if (n == kWouldBlock) continue;
    if (n <= 0) {
      t->fail_conn(*conn);
      co_return;
    }
    obs::transport_metrics().frame_bytes_in->inc(
        static_cast<std::uint64_t>(n));
    frames.feed({t->read_scratch_.data(), static_cast<std::size_t>(n)});
    while (auto frame = frames.next()) {
      obs::transport_metrics().frames_in->inc();
      const auto it = conn->pending.find(frame->corr);
      if (it == conn->pending.end()) continue;  // a duplicate's answer
      conn->rtt->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - it->second.sent_at)
              .count()));
      const bool matched =
          fulfil_pending(it->second.promise, std::move(frame->payload));
      conn->pending.erase(it);
      if (!matched) {
        t->fail_conn(*conn);  // type-confused peer: drop the connection
        co_return;
      }
    }
    if (frames.error()) {
      t->fail_conn(*conn);  // malformed stream
      co_return;
    }
  }
}

sim::Task AsyncTcpTransport::teardown_task(AsyncTcpTransport* t,
                                           std::promise<void>* done) {
  net::EventLoop& loop = *t->loop_;
  // Short grace so frames already queued (a shutdown burst, tail
  // replies) reach the wire before the links are torn down.
  for (int i = 0; i < 100; ++i) {
    bool busy = false;
    for (const auto& conn : t->conns_) {
      if (!conn->outq.empty() && (conn->fd >= 0 || conn->connecting)) {
        busy = true;
        break;
      }
    }
    if (!busy) break;
    co_await loop.sleep_for(std::chrono::milliseconds{2});
  }
  for (const auto& conn : t->conns_) t->fail_conn(*conn);
  // Wait for every reader/writer/connect coroutine to observe the reset
  // and finish — after this nothing on the loop references the conns,
  // so the destructor can free them even when the loop is shared.
  for (int i = 0; i < 4000 && t->live_tasks_ > 0; ++i) {
    co_await loop.sleep_for(std::chrono::milliseconds{1});
  }
  done->set_value();
}

}  // namespace omig::transport
