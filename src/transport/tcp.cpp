#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

namespace omig::transport {

namespace {

/// Frames are small and latency-sensitive; Nagle buffering would batch a
/// request behind an unrelated reply.
void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool make_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port, int backlog) {
  sockaddr_in addr{};
  if (!make_addr(host, port, addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, backlog) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t tcp_local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int tcp_accept(int listener_fd) {
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  if (!make_addr(host, port, addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

bool tcp_send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const auto n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long tcp_recv_some(int fd, std::uint8_t* buffer, std::size_t size) {
  for (;;) {
    const auto n = ::recv(fd, buffer, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

bool tcp_set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int tcp_connect_begin(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  if (!make_addr(host, port, addr)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  set_nodelay(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;  // localhost fast path: completed synchronously
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) return fd;
    ::close(fd);
    return -1;
  }
}

bool tcp_connect_done(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return false;
  return err == 0;
}

long tcp_accept_nonblocking(int listener_fd) {
  for (;;) {
    const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd >= 0) {
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

long tcp_write_some(int fd, const std::uint8_t* data, std::size_t size) {
  for (;;) {
    const auto n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

long tcp_read_some(int fd, std::uint8_t* buffer, std::size_t size) {
  for (;;) {
    const auto n = ::recv(fd, buffer, size, 0);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

void tcp_shutdown(int fd) {
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void tcp_close(int fd) {
  if (fd >= 0) (void)::close(fd);
}

}  // namespace omig::transport
