#include "transport/wire.hpp"

#include "runtime/serde.hpp"

namespace omig::transport {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_state(std::vector<std::uint8_t>& out,
               const runtime::ObjectState& state) {
  // Embedded as a serde blob: the object codec lives in runtime/serde only.
  const std::vector<std::uint8_t> blob = runtime::encode(state);
  put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

/// Strict cursor over one frame payload; mirrors runtime/serde's Reader.
class Reader {
public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_{bytes} {}

  bool read_u8(std::uint8_t& out) {
    if (bytes_.size() - pos_ < 1) return false;
    out = bytes_[pos_++];
    return true;
  }

  bool read_u32(std::uint32_t& out) {
    if (bytes_.size() - pos_ < 4) return false;
    out = static_cast<std::uint32_t>(bytes_[pos_]) |
          static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8 |
          static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16 |
          static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& out) {
    std::uint32_t lo = 0, hi = 0;
    if (!read_u32(lo) || !read_u32(hi)) return false;
    out = static_cast<std::uint64_t>(hi) << 32 | lo;
    return true;
  }

  bool read_str(std::string& out) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  bool read_state(runtime::ObjectState& out) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    auto decoded = runtime::decode(bytes_.subspan(pos_, len));
    if (!decoded.has_value()) return false;
    out = std::move(*decoded);
    pos_ += len;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::Invoke:
      return "invoke";
    case FrameType::Install:
      return "install";
    case FrameType::Evict:
      return "evict";
    case FrameType::Shutdown:
      return "shutdown";
    case FrameType::InvokeReply:
      return "invoke-reply";
    case FrameType::InstallReply:
      return "install-reply";
    case FrameType::EvictReply:
      return "evict-reply";
    case FrameType::DirLookup:
      return "dir-lookup";
    case FrameType::DirUpdate:
      return "dir-update";
    case FrameType::DirLookupReply:
      return "dir-lookup-reply";
    case FrameType::DirUpdateReply:
      return "dir-update-reply";
  }
  return "unknown";
}

FrameType Frame::type() const {
  // variant alternatives are declared in FrameType order, starting at 1.
  return static_cast<FrameType>(payload.index() + 1);
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // length prefix, patched below
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type()));
  put_u64(out, frame.corr);
  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, WireInvoke>) {
          put_u64(out, body.seq);
          put_str(out, body.object);
          put_str(out, body.method);
          put_str(out, body.argument);
        } else if constexpr (std::is_same_v<T, WireInstall>) {
          put_u64(out, body.seq);
          put_str(out, body.name);
          put_state(out, body.state);
        } else if constexpr (std::is_same_v<T, WireEvict>) {
          put_u64(out, body.seq);
          put_str(out, body.name);
        } else if constexpr (std::is_same_v<T, WireShutdown>) {
          // no body
        } else if constexpr (std::is_same_v<T, WireInvokeReply>) {
          out.push_back(body.result.ok ? 1 : 0);
          put_str(out, body.result.value);
        } else if constexpr (std::is_same_v<T, WireInstallReply>) {
          out.push_back(body.ok ? 1 : 0);
        } else if constexpr (std::is_same_v<T, WireEvictReply>) {
          put_state(out, body.state);
        } else if constexpr (std::is_same_v<T, WireDirLookup>) {
          put_u64(out, body.seq);
          put_str(out, body.name);
        } else if constexpr (std::is_same_v<T, WireDirUpdate>) {
          put_u64(out, body.seq);
          put_str(out, body.name);
          put_u64(out, body.node);
          out.push_back(body.invalidate ? 1 : 0);
        } else if constexpr (std::is_same_v<T, WireDirLookupReply>) {
          out.push_back(body.found ? 1 : 0);
          put_u64(out, body.node);
        } else if constexpr (std::is_same_v<T, WireDirUpdateReply>) {
          out.push_back(body.ok ? 1 : 0);
        }
      },
      frame.payload);
  // Not clamped to kMaxFramePayload here: the sender turns an oversized
  // encoding into a typed SendStatus, and receivers reject the length.
  const auto len = static_cast<std::uint32_t>(out.size() - 4);
  out[0] = static_cast<std::uint8_t>(len);
  out[1] = static_cast<std::uint8_t>(len >> 8);
  out[2] = static_cast<std::uint8_t>(len >> 16);
  out[3] = static_cast<std::uint8_t>(len >> 24);
  return out;
}

std::optional<Frame> decode_payload(std::span<const std::uint8_t> payload) {
  Reader reader{payload};
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  Frame frame;
  if (!reader.read_u8(version) || !reader.read_u8(type) ||
      !reader.read_u64(frame.corr)) {
    return std::nullopt;
  }
  if (version != kWireVersion) return std::nullopt;
  bool ok = false;
  switch (static_cast<FrameType>(type)) {
    case FrameType::Invoke: {
      WireInvoke body;
      ok = reader.read_u64(body.seq) && reader.read_str(body.object) &&
           reader.read_str(body.method) && reader.read_str(body.argument);
      frame.payload = std::move(body);
      break;
    }
    case FrameType::Install: {
      WireInstall body;
      ok = reader.read_u64(body.seq) && reader.read_str(body.name) &&
           reader.read_state(body.state);
      frame.payload = std::move(body);
      break;
    }
    case FrameType::Evict: {
      WireEvict body;
      ok = reader.read_u64(body.seq) && reader.read_str(body.name);
      frame.payload = std::move(body);
      break;
    }
    case FrameType::Shutdown: {
      frame.payload = WireShutdown{};
      ok = true;
      break;
    }
    case FrameType::InvokeReply: {
      WireInvokeReply body;
      std::uint8_t flag = 0;
      ok = reader.read_u8(flag) && reader.read_str(body.result.value);
      body.result.ok = flag != 0;
      frame.payload = std::move(body);
      break;
    }
    case FrameType::InstallReply: {
      WireInstallReply body;
      std::uint8_t flag = 0;
      ok = reader.read_u8(flag);
      body.ok = flag != 0;
      frame.payload = body;
      break;
    }
    case FrameType::EvictReply: {
      WireEvictReply body;
      ok = reader.read_state(body.state);
      frame.payload = std::move(body);
      break;
    }
    case FrameType::DirLookup: {
      WireDirLookup body;
      ok = reader.read_u64(body.seq) && reader.read_str(body.name);
      frame.payload = std::move(body);
      break;
    }
    case FrameType::DirUpdate: {
      WireDirUpdate body;
      std::uint8_t flag = 0;
      ok = reader.read_u64(body.seq) && reader.read_str(body.name) &&
           reader.read_u64(body.node) && reader.read_u8(flag);
      body.invalidate = flag != 0;
      frame.payload = std::move(body);
      break;
    }
    case FrameType::DirLookupReply: {
      WireDirLookupReply body;
      std::uint8_t flag = 0;
      ok = reader.read_u8(flag) && reader.read_u64(body.node);
      body.found = flag != 0;
      frame.payload = body;
      break;
    }
    case FrameType::DirUpdateReply: {
      WireDirUpdateReply body;
      std::uint8_t flag = 0;
      ok = reader.read_u8(flag);
      body.ok = flag != 0;
      frame.payload = body;
      break;
    }
    default:
      return std::nullopt;  // unknown frame type
  }
  if (!ok || !reader.exhausted()) return std::nullopt;  // trailing garbage
  return frame;
}

void FrameBuffer::feed(std::span<const std::uint8_t> bytes) {
  if (error_) return;  // poisoned: drop everything
  // Compact the consumed prefix before growing, so the buffer stays
  // bounded by one partial frame plus whatever one feed() delivers.
  if (pos_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameBuffer::next() {
  if (error_) return std::nullopt;
  if (buffered() < 4) return std::nullopt;
  const std::uint8_t* p = buffer_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            static_cast<std::uint32_t>(p[1]) << 8 |
                            static_cast<std::uint32_t>(p[2]) << 16 |
                            static_cast<std::uint32_t>(p[3]) << 24;
  if (len > kMaxFramePayload) {
    error_ = true;  // oversized length: framing is lost for good
    return std::nullopt;
  }
  if (buffered() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  auto frame = decode_payload(
      std::span<const std::uint8_t>{buffer_.data() + pos_ + 4, len});
  if (!frame.has_value()) {
    error_ = true;  // malformed payload poisons the stream
    return std::nullopt;
  }
  pos_ += 4 + static_cast<std::size_t>(len);
  return frame;
}

}  // namespace omig::transport
