// Prometheus scrape endpoint over the transport's own TCP plumbing.
//
// Lives in transport (not obs) because obs sits below transport in the
// layering — transport instruments itself against the registry, so the
// registry cannot link back up to the sockets. The server side is a
// deliberately tiny HTTP/1.0 responder: read until the blank line, answer
// any GET with the full text-format exposition, close. That is exactly
// what `curl` and a Prometheus scraper need, and nothing more.
//
// Rendering the exposition never blocks, so — unlike the node frame
// server — every scrape runs entirely as a coroutine on the event loop:
// no per-connection threads, and therefore no threads to reap. (The old
// thread-per-scrape implementation only reaped its connection threads in
// stop(), so a long-lived exporter accumulated one dead thread per
// scrape; the loop conversion removes the leak by construction.)
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "net/event_loop.hpp"
#include "obs/metrics.hpp"

namespace omig::transport {

class MetricsExporter {
public:
  /// Serves `registry` (usually MetricsRegistry::global()); the registry
  /// must outlive the exporter. `loop` = nullptr: own a private loop per
  /// start() cycle; otherwise scrape I/O shares the given loop, which
  /// must outlive the exporter and keep running across stop().
  explicit MetricsExporter(obs::MetricsRegistry& registry,
                           net::EventLoop* loop = nullptr);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Binds `host:port` (0 = ephemeral) and starts answering scrapes.
  /// Returns the bound port, or 0 on failure. Idempotent while running.
  std::uint16_t start(std::uint16_t port = 0,
                      const std::string& host = "127.0.0.1");

  /// Closes the listener and every in-flight scrape. Idempotent;
  /// start() may be called again afterwards.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] std::uint16_t port() const;

private:
  static sim::Task accept_task(MetricsExporter* e, int listener);
  static sim::Task serve_task(MetricsExporter* e, int fd);
  static sim::Task teardown_task(MetricsExporter* e, int listener,
                                 std::promise<void>* done);

  obs::MetricsRegistry& registry_;
  net::EventLoop* const external_loop_;

  mutable std::mutex mutex_;  ///< control plane: start/stop/port
  std::unique_ptr<net::EventLoop> owned_loop_;
  net::EventLoop* loop_ = nullptr;  ///< non-null while running
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};

  // Loop-thread only:
  std::unordered_set<int> scrape_fds_;  ///< in-flight scrape connections
  std::uint64_t live_tasks_ = 0;

  struct TaskGuard {
    explicit TaskGuard(MetricsExporter* e) : e_(e) { ++e_->live_tasks_; }
    ~TaskGuard() { --e_->live_tasks_; }
    TaskGuard(const TaskGuard&) = delete;
    TaskGuard& operator=(const TaskGuard&) = delete;

  private:
    MetricsExporter* e_;
  };
};

}  // namespace omig::transport
