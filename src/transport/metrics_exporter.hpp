// Prometheus scrape endpoint over the transport's own TCP plumbing.
//
// Lives in transport (not obs) because obs sits below transport in the
// layering — transport instruments itself against the registry, so the
// registry cannot link back up to the sockets. The server side is a
// deliberately tiny HTTP/1.0 responder: read until the blank line, answer
// any GET with the full text-format exposition, close. That is exactly
// what `curl` and a Prometheus scraper need, and nothing more.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace omig::transport {

class MetricsExporter {
public:
  /// Serves `registry` (usually MetricsRegistry::global()); the registry
  /// must outlive the exporter.
  explicit MetricsExporter(obs::MetricsRegistry& registry);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Binds `host:port` (0 = ephemeral) and starts answering scrapes.
  /// Returns the bound port, or 0 on failure. Idempotent while running.
  std::uint16_t start(std::uint16_t port = 0,
                      const std::string& host = "127.0.0.1");

  /// Closes the listener and joins all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] std::uint16_t port() const;

private:
  void accept_loop();
  void serve_connection(int fd);

  obs::MetricsRegistry& registry_;
  mutable std::mutex mutex_;
  int listener_fd_ = -1;
  std::uint16_t port_ = 0;
  bool stopping_ = false;
  std::thread accept_thread_;
  std::vector<std::thread> connections_;
};

}  // namespace omig::transport
