// Event-loop TCP backend of the transport seam: the same wire protocol,
// correlation-ID matching and fault semantics as TcpTransport, but all
// I/O multiplexed onto one net::EventLoop instead of one reader thread
// per peer plus blocking sends.
//
// Execution model: the caller's thread runs only the synchronous part of
// a send — the fault injector's decide() (so the injector's RNG stream
// is consumed in exactly the same order as the blocking backend, which
// is what keeps traces byte-identical), frame encoding, and the
// Oversized check. The encoded bytes then hop onto the loop, where all
// per-connection state lives lock-free on the loop thread:
//
//   connect coroutine — nonblocking dial with the same bounded
//       exponential backoff, but the backoff is a loop timer, not a
//       sleeping thread;
//   writer coroutine  — drains the connection's output queue with
//       nonblocking writes, parking on a net::Event when idle and on
//       writability when the socket pushes back;
//   reader coroutine  — one per connection (instead of one thread),
//       feeds a FrameBuffer and fulfils pending replies by corr ID.
//
// Failure semantics: once a send returns Ok, every asynchronous failure
// — connect budget exhausted, link reset, injected drop — surfaces as a
// broken reply future, the exact "lost in flight" signal the retry
// layer already handles. Injected delays arm a loop timer that defers
// the enqueue; decide → delay → drop → dup ordering is unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "transport/pending_reply.hpp"
#include "transport/transport.hpp"

namespace omig::transport {

class AsyncTcpTransport final : public SocketTransport {
public:
  struct Options {
    /// Peer endpoints, indexed by node id.
    std::vector<Peer> peers;
    /// Connect attempts per dial (including the first).
    int max_connect_attempts = 4;
    /// Base reconnect backoff; doubled per attempt, shift capped at 6.
    std::chrono::milliseconds connect_backoff{1};
    /// Run on this loop (shared with e.g. the NodeServers of the same
    /// process); nullptr = own a private loop + thread.
    net::EventLoop* loop = nullptr;
    /// Poller backend for the owned loop (ignored with an external one).
    net::PollBackend backend = net::PollBackend::Auto;
  };

  AsyncTcpTransport(Options options, fault::FaultInjector* injector);
  ~AsyncTcpTransport() override;

  SendStatus send_invoke(std::size_t from, std::size_t to,
                         const WireInvoke& msg,
                         std::future<runtime::InvokeResult>& reply) override;
  SendStatus send_install(std::size_t from, std::size_t to,
                          const WireInstall& msg,
                          std::future<bool>& reply) override;
  SendStatus send_evict(std::size_t from, std::size_t to,
                        const WireEvict& msg,
                        std::future<runtime::ObjectState>& reply) override;
  SendStatus send_dir_lookup(std::size_t from, std::size_t to,
                             const WireDirLookup& msg,
                             std::future<runtime::DirReply>& reply) override;
  SendStatus send_dir_update(std::size_t from, std::size_t to,
                             const WireDirUpdate& msg,
                             std::future<runtime::DirAck>& reply) override;

  /// Queues the shutdown frame and waits (bounded) until it is actually
  /// on the wire — callers tearing a cluster down need the frame flushed
  /// before they start waiting for the peer process to exit.
  SendStatus send_shutdown(std::size_t to) override;

  void on_node_crash(std::size_t node) override;
  void set_peer(std::size_t node, Peer peer) override;
  [[nodiscard]] std::uint64_t reconnects() const override {
    return reconnects_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] net::EventLoop& loop() { return *loop_; }

private:
  /// One queued output buffer; `on_written` (shutdown frames) is
  /// fulfilled when the last byte hits the socket, or set to Closed when
  /// the link dies first.
  struct Out {
    std::vector<std::uint8_t> bytes;
    std::optional<std::promise<SendStatus>> on_written;
  };

  /// Per-peer state. Loop-thread only — no mutex anywhere. `generation`
  /// ties the reader/writer/connect coroutines to the link incarnation
  /// they serve; a stale coroutine woken after a reset sees the mismatch
  /// and exits without touching the fresh state.
  struct Conn {
    Conn(net::EventLoop& loop, std::size_t id_, Peer peer_)
        : id(id_), peer(std::move(peer_)), out_ready(loop) {}
    std::size_t id;
    Peer peer;
    int fd = -1;
    bool connecting = false;
    bool ever_connected = false;
    std::uint64_t generation = 0;
    std::deque<Out> outq;
    std::size_t out_off = 0;  ///< bytes of outq.front() already written
    net::Event out_ready;     ///< parks the writer between bursts
    std::unordered_map<std::uint64_t, Pending> pending;
    obs::Histogram* rtt = nullptr;  ///< omig_transport_rtt_us{peer="N"}
  };

  /// Everything one send ships to the loop. Dropped whole (promise
  /// breaks) if the loop stops before the enqueue runs.
  struct Enqueue {
    std::size_t to = 0;
    std::uint64_t corr = 0;
    std::vector<std::uint8_t> bytes;
    std::optional<std::vector<std::uint8_t>> dup_bytes;
    std::optional<PendingReply> promise;               // requests
    std::optional<std::promise<SendStatus>> on_written;  // shutdown
  };

  template <class WireT, class ReplyT>
  SendStatus send_request(std::size_t from, std::size_t to, const WireT& msg,
                          std::future<ReplyT>& reply);
  void post_enqueue(std::shared_ptr<Enqueue> box, double delay_ms);
  void enqueue_on_loop(Enqueue& e);
  void ensure_conn_active(Conn& conn);
  /// Kills the link: cancels waiters, closes the fd, breaks every
  /// pending reply and queued write. Loop thread only.
  void fail_conn(Conn& conn);
  void reset_conn_on_loop(std::size_t node, std::optional<Peer> new_peer);

  static sim::Task connect_task(AsyncTcpTransport* t, Conn* conn);
  static sim::Task writer_task(AsyncTcpTransport* t, Conn* conn, int fd,
                               std::uint64_t generation);
  static sim::Task reader_task(AsyncTcpTransport* t, Conn* conn, int fd,
                               std::uint64_t generation);
  static sim::Task teardown_task(AsyncTcpTransport* t,
                                 std::promise<void>* done);

  Options options_;
  std::unique_ptr<net::EventLoop> owned_loop_;
  net::EventLoop* loop_ = nullptr;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<std::uint64_t> next_corr_{1};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<bool> stopping_{false};
  std::uint64_t live_tasks_ = 0;  ///< loop-thread only; teardown drains to 0
  /// Shared recv scratch: loop-thread only and never held across a
  /// suspension point, so one buffer serves every reader coroutine.
  std::vector<std::uint8_t> read_scratch_;

  struct TaskGuard {
    explicit TaskGuard(AsyncTcpTransport* t) : t_(t) { ++t_->live_tasks_; }
    ~TaskGuard() { --t_->live_tasks_; }
    TaskGuard(const TaskGuard&) = delete;
    TaskGuard& operator=(const TaskGuard&) = delete;

  private:
    AsyncTcpTransport* t_;
  };
};

}  // namespace omig::transport
