#include "transport/bridge.hpp"

#include <future>

namespace omig::transport {

namespace {

/// Pushes `message` and waits for its reply value. nullopt when the push
/// was rejected or the promise broke (node crashed mid-processing).
template <class T>
std::optional<T> push_and_await(runtime::Mailbox<runtime::Message>& mailbox,
                                runtime::Message message,
                                std::future<T> reply) {
  if (mailbox.push(std::move(message)) != runtime::PushStatus::Ok) {
    return std::nullopt;
  }
  try {
    return reply.get();
  } catch (const std::future_error&) {
    return std::nullopt;  // discarded by a crash before processing
  }
}

}  // namespace

std::optional<Frame> serve_on_mailbox(
    runtime::Mailbox<runtime::Message>& mailbox, Frame request) {
  const std::uint64_t corr = request.corr;
  return std::visit(
      [&](auto& body) -> std::optional<Frame> {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, WireInvoke>) {
          runtime::MsgInvoke msg;
          msg.object = std::move(body.object);
          msg.method = std::move(body.method);
          msg.argument = std::move(body.argument);
          msg.seq = body.seq;
          auto reply = msg.reply.get_future();
          auto result = push_and_await(
              mailbox, runtime::Message{std::move(msg)}, std::move(reply));
          if (!result.has_value()) return std::nullopt;
          return Frame{corr, WireInvokeReply{std::move(*result)}};
        } else if constexpr (std::is_same_v<T, WireInstall>) {
          runtime::MsgInstall msg;
          msg.name = std::move(body.name);
          msg.state = std::move(body.state);
          msg.seq = body.seq;
          auto reply = msg.done.get_future();
          auto result = push_and_await(
              mailbox, runtime::Message{std::move(msg)}, std::move(reply));
          if (!result.has_value()) return std::nullopt;
          return Frame{corr, WireInstallReply{*result}};
        } else if constexpr (std::is_same_v<T, WireEvict>) {
          runtime::MsgEvict msg;
          msg.name = std::move(body.name);
          msg.seq = body.seq;
          auto reply = msg.state.get_future();
          auto result = push_and_await(
              mailbox, runtime::Message{std::move(msg)}, std::move(reply));
          if (!result.has_value()) return std::nullopt;
          return Frame{corr, WireEvictReply{std::move(*result)}};
        } else if constexpr (std::is_same_v<T, WireDirLookup>) {
          runtime::MsgDirLookup msg;
          msg.name = std::move(body.name);
          msg.seq = body.seq;
          auto reply = msg.reply.get_future();
          auto result = push_and_await(
              mailbox, runtime::Message{std::move(msg)}, std::move(reply));
          if (!result.has_value()) return std::nullopt;
          return Frame{corr, WireDirLookupReply{result->found, result->node}};
        } else if constexpr (std::is_same_v<T, WireDirUpdate>) {
          runtime::MsgDirUpdate msg;
          msg.name = std::move(body.name);
          msg.node = body.node;
          msg.invalidate = body.invalidate;
          msg.seq = body.seq;
          auto reply = msg.done.get_future();
          auto result = push_and_await(
              mailbox, runtime::Message{std::move(msg)}, std::move(reply));
          if (!result.has_value()) return std::nullopt;
          return Frame{corr, WireDirUpdateReply{result->ok}};
        } else if constexpr (std::is_same_v<T, WireShutdown>) {
          (void)mailbox.push(runtime::Message{runtime::MsgStop{}});
          return std::nullopt;
        } else {
          return std::nullopt;  // a reply frame sent to a server: ignore
        }
      },
      request.payload);
}

}  // namespace omig::transport
