// The standard metric families, registered into the global registry.
//
// Each layer's instrumentation points grab its struct once (a
// function-local static, so registration cost is paid on first use) and
// then touch only lock-free metric objects. Centralising the names here
// keeps the naming scheme (docs/metrics.md) in one place and lets an
// exporter process (tools/omig_node) pre-register every family so a
// scrape shows the full schema even before traffic flows.
#pragma once

#include "obs/metrics.hpp"

namespace omig::obs {

/// Simulator layer (objsys invocation + core experiment driver).
/// Durations are recorded in sim-time milli-units (sim time × 1000): the
/// paper's unit is the mean one-way message ≈ 1.0, so a remote call ≈
/// 2000 milli-units.
struct SimMetrics {
  Counter* invocations_local;    ///< omig_sim_invocations_total{kind=local}
  Counter* invocations_remote;   ///< omig_sim_invocations_total{kind=remote}
  Histogram* call_local_milli;   ///< local-call duration (incl. transit waits)
  Histogram* call_remote_milli;  ///< remote-call duration (legs + faults)
};
[[nodiscard]] SimMetrics& sim_metrics();

/// Live runtime layer (runtime/live_system): the paper's primitives on
/// real threads. Wall-clock durations in microseconds.
struct RuntimeMetrics {
  Counter* invocations_local;   ///< omig_runtime_invocations_total{kind=local}
  Counter* invocations_remote;  ///< omig_runtime_invocations_total{kind=remote}
  Histogram* invoke_local_us;   ///< send→reply wall time, caller-local calls
  Histogram* invoke_remote_us;  ///< send→reply wall time, remote calls
  Counter* migrations;          ///< completed object relocations
  Histogram* migration_us;      ///< evict→install wall time per object
  Counter* refused_moves;       ///< placement conflicts (move not granted)
  Counter* lease_acquisitions;  ///< placement locks taken by move/visit
  Counter* lease_expiries;      ///< locks released by lease expiry
  Counter* retries;             ///< message retransmissions
  Counter* recoveries;          ///< objects reinstalled from a checkpoint
  Counter* crashes;
  Counter* restarts;
  Counter* send_rejections;     ///< typed transport rejections observed
};
[[nodiscard]] RuntimeMetrics& runtime_metrics();

/// Transport layer (wire frames over sockets). Per-peer RTT histograms
/// are registered lazily by TcpTransport under
/// omig_transport_rtt_us{peer="N"}.
struct TransportMetrics {
  Counter* frames_out;
  Counter* frames_in;
  Counter* frame_bytes_out;  ///< omig_transport_frame_bytes_out_total
  Counter* frame_bytes_in;
  Counter* reconnects;       ///< connections re-established after a reset
  Counter* send_rejections;  ///< sends rejected with a typed status
};
[[nodiscard]] TransportMetrics& transport_metrics();

/// Node layer (runtime/live_node + transport/node_server): what one
/// hosting node executes, regardless of which transport delivered it.
struct NodeMetrics {
  Counter* invokes;     ///< omig_node_messages_total{type=invoke}
  Counter* installs;    ///< omig_node_messages_total{type=install}
  Counter* evicts;      ///< omig_node_messages_total{type=evict}
  Counter* dedup_hits;  ///< requests answered from the at-most-once cache
  Gauge* hosted_objects;
  Counter* server_bytes_in;   ///< bytes into this node's frame server
  Counter* server_bytes_out;  ///< reply bytes out of the frame server
};
[[nodiscard]] NodeMetrics& node_metrics();

/// Durable store layer (src/store/): the write-ahead log, snapshot
/// installs, and recovery replay (docs/durability.md).
struct StoreMetrics {
  Counter* wal_appends;          ///< records appended to the WAL
  Counter* wal_fsyncs;           ///< fsyncs issued by the WAL
  Counter* wal_bytes;            ///< frame bytes written to the WAL
  Counter* replay_records;       ///< records applied during recovery
  Counter* replay_truncations;   ///< torn/corrupt tails detected + discarded
  Counter* snapshot_installs;    ///< compacted snapshots atomically installed
};
[[nodiscard]] StoreMetrics& store_metrics();

/// Location-directory layer (objsys/sharded_directory + the live
/// runtime's sharded lookup path, docs/directory.md). Both backends feed
/// the same family: the simulator folds its model stats in once per run,
/// the live runtime increments per lookup/update.
struct DirMetrics {
  Counter* lookups_hit;    ///< omig_dir_lookups_total{result=hit}
  Counter* lookups_stale;  ///< omig_dir_lookups_total{result=stale}
  Counter* lookups_miss;   ///< omig_dir_lookups_total{result=miss}
  Counter* forward_hops;   ///< forwarding-pointer hops chased
  Counter* updates;        ///< shard-owner updates (migrations, installs)
  Counter* invalidations;  ///< cache entries dropped by eager invalidation
  Counter* fallbacks;      ///< lookups resolved by the coordinator fallback
  Counter* unresolved;     ///< lookups that found no live host (retried)
  Histogram* lookup_us;    ///< live-runtime wall time per directory lookup
};
[[nodiscard]] DirMetrics& dir_metrics();

/// Scenario-pack traffic layer (src/scenario/, docs/scenarios.md): the
/// open-loop generator's offered load, issued operations by kind, achieved
/// throughput, and op-latency distributions, labelled by scenario. Both
/// backends feed the same family — the simulator folds a per-run
/// ScenarioTally in (durations in sim milli-units), the live driver
/// records wall-clock microseconds.
struct ScenarioMetrics {
  Counter* offered_bursts;    ///< omig_scenario_offered_bursts_total
  Counter* completed_bursts;  ///< omig_scenario_completed_bursts_total
  Counter* ops_invoke;        ///< omig_scenario_ops_total{kind=invoke}
  Counter* ops_move;          ///< omig_scenario_ops_total{kind=move}
  Counter* ops_visit;         ///< omig_scenario_ops_total{kind=visit}
  Gauge* achieved_ops;        ///< ops per unit time (sim: per 1000 sim
                              ///< units; live: per second), last run wins
  Histogram* op_milli;        ///< sim invocation latency (milli-units)
  Histogram* burst_milli;     ///< sim whole-burst latency (milli-units)
  Histogram* op_us;           ///< live invocation wall latency (µs)
};
/// Unlike the fixed families above this one is keyed by scenario name, so
/// it returns by value; registration is idempotent and cheap on a hit.
[[nodiscard]] ScenarioMetrics scenario_metrics(const std::string& scenario);

/// Adaptive-placement policy layer (docs/policies.md): the decisions the
/// feedback-driven policies took and the locality telemetry that fed them,
/// labelled by policy kind. Both backends feed the same family — the
/// simulator folds per-run PolicyCounters in once per run
/// (core/experiment.cpp), the live runtime increments per decision.
struct PolicyMetrics {
  Counter* migrations_triggered;   ///< omig_policy_migrations_total
  Counter* suppressed_hysteresis;  ///< omig_policy_suppressed_total{reason=hysteresis}
  Counter* suppressed_load;        ///< omig_policy_suppressed_total{reason=load}
  Counter* pingpong_reversals;     ///< omig_policy_pingpong_reversals_total
  Counter* ema_updates;            ///< omig_policy_ema_updates_total
};
/// Keyed by policy name ("adaptive" / "adaptive-load"), so it returns by
/// value like scenario_metrics; registration is idempotent.
[[nodiscard]] PolicyMetrics policy_metrics(const std::string& policy);

/// Touches every family above so an exporter shows the full schema
/// before any traffic (Prometheus convention: export zeros, not absence).
void register_standard_metrics();

}  // namespace omig::obs
